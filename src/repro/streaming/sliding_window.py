"""Sliding-window k-center with outliers — the DBMZ structure (§1, §6).

De Berg, Monemizadeh and Zhong (ESA 2021) maintain, for every radius guess
``r`` in a geometric ladder, a cover of the window at granularity
``eps * r`` in which every mini-cell remembers the ``z+1`` most recent
arrivals it received.  The ``z+1`` recency buffers are what make expiration
survivable: a cell remains certifiably non-outlier as long as at least one
unexpired arrival is stored, and any cell that received more than ``z+1``
arrivals inside the window can never be all-outliers.  Storage is
``O((k z / eps^d) log sigma)`` over the ladder — the bound this paper's §6
proves optimal (Theorem 30).

This reproduction (a substrate — the paper under reproduction contributes
the *lower* bound) keeps the structure per guess:

* mini-cells of ``L_inf`` side ``eps * r / sqrt(d)`` (so the Euclidean
  cell diameter is at most ``eps * r``), each holding the latest ``z+1``
  ``(time, point)`` pairs;
* a capacity of ``k * O(1/eps)^d + z`` live cells; exceeding it evicts the
  cell with the oldest newest-arrival and poisons the guess for all query
  windows that still contain the evicted arrival (the guess is then
  provably too small for those windows anyway, or a coarser guess serves
  them).

Queries walk the ladder from the smallest guess and return the first valid
cover as a weighted coreset of the window (weights are recency-buffer
counts, capped at ``z+1`` — sufficient for outlier accounting, as weights
beyond ``z+1`` can never be declared outliers).
"""

from __future__ import annotations

import heapq
from math import ceil, sqrt

import numpy as np

from ..core.greedy import charikar_greedy
from ..core.metrics import get_metric
from ..core.points import WeightedPointSet

__all__ = ["default_cell_capacity", "GuessStructure", "SlidingWindowCoreset"]


def default_cell_capacity(k: int, z: int, eps: float, d: int) -> int:
    """Live-cell capacity per guess, ``k * ceil(6 sqrt(d)/eps)^d + z``.

    ``k`` optimal balls of radius ``opt`` intersect at most
    ``(O(sqrt(d))/eps)^d`` cells of side ``eps*opt/sqrt(d)`` each, plus one
    cell per outlier (the Lemma 25 argument at window scope).
    """
    if eps <= 0:
        raise ValueError("eps must be positive")
    return int(k * ceil(6.0 * sqrt(d) / eps) ** d + z)


class GuessStructure:
    """The per-radius-guess sliding-window cover (see module docstring)."""

    def __init__(self, r: float, k: int, z: int, eps: float, d: int, window: int,
                 capacity: "int | None" = None):
        if r <= 0:
            raise ValueError("guess radius must be positive")
        self.r = float(r)
        self.k, self.z, self.eps, self.d = int(k), int(z), float(eps), int(d)
        self.window = int(window)
        self.side = eps * r / sqrt(d)
        self.capacity = (
            default_cell_capacity(k, z, eps, d) if capacity is None else int(capacity)
        )
        #: cell key -> list of (time, point) pairs, newest last, length <= z+1
        self.cells: "dict[tuple, list[tuple[int, np.ndarray]]]" = {}
        #: queries whose window still contains an evicted arrival are invalid
        self.invalid_through: int = -1
        #: lazy min-heap of (newest-arrival time, key) used by the batch
        #: path; entries go stale when a cell receives a newer arrival and
        #: are skipped on pop.  None until first batch (the scalar path
        #: invalidates it rather than maintaining it).
        self._recency: "list[tuple[int, tuple]] | None" = None

    def _key(self, p: np.ndarray) -> tuple:
        return tuple(np.floor(np.asarray(p, dtype=float) / self.side).astype(np.int64).tolist())

    def _purge_expired(self, now: int) -> None:
        cutoff = now - self.window + 1
        dead = [key for key, buf in self.cells.items() if buf[-1][0] < cutoff]
        for key in dead:
            del self.cells[key]

    def insert(self, p: np.ndarray, t: int) -> None:
        """Record arrival of ``p`` at time ``t`` (times must be
        non-decreasing).  This is the scalar reference path; the batch
        path (:meth:`extend`) is bit-identical to it (the parity test in
        ``tests/test_sliding_window.py`` proves both)."""
        self._recency = None  # scalar path does not maintain the heap
        p = np.asarray(p, dtype=float).reshape(-1)
        key = self._key(p)
        buf = self.cells.setdefault(key, [])
        buf.append((int(t), p))
        if len(buf) > self.z + 1:
            buf.pop(0)
        self._purge_expired(int(t))
        while len(self.cells) > self.capacity:
            # evict the cell whose newest arrival is oldest
            victim = min(self.cells, key=lambda c: self.cells[c][-1][0])
            newest = self.cells[victim][-1][0]
            # windows [tq-W+1, tq] containing `newest` are poisoned
            self.invalid_through = max(self.invalid_through, newest + self.window - 1)
            del self.cells[victim]

    def _live_top(self) -> "tuple[int, tuple]":
        """Smallest (newest-arrival, key) over live cells, skipping stale
        heap entries.  Newest times are unique (one arrival per time per
        guess), so this is exactly the scalar path's ``min()`` victim."""
        heap = self._recency
        while True:
            tn, key = heap[0]
            buf = self.cells.get(key)
            if buf is None or buf[-1][0] != tn:
                heapq.heappop(heap)
                continue
            return tn, key

    def extend(self, pts: np.ndarray, t0: int, keys: "np.ndarray | None" = None) -> None:
        """Record a batch of arrivals at times ``t0, t0+1, ...``.

        Bit-identical to ``insert`` per row, but the cell keys for the
        whole batch are computed in one vectorized pass (``keys`` lets
        :class:`SlidingWindowCoreset` hand in keys computed for the whole
        ladder at once) and expiry/eviction run off a recency heap
        instead of a full scan per point.
        """
        pts = np.atleast_2d(np.asarray(pts, dtype=float))
        if len(pts) == 0:
            return
        if keys is None:
            keys = np.floor(pts / self.side).astype(np.int64)
        if self._recency is None:
            self._recency = [(buf[-1][0], key) for key, buf in self.cells.items()]
            heapq.heapify(self._recency)
        heap = self._recency
        cap = self.z + 1
        for i in range(len(pts)):
            t = int(t0) + i
            key = tuple(keys[i].tolist())
            buf = self.cells.setdefault(key, [])
            buf.append((t, pts[i].copy()))
            if len(buf) > cap:
                buf.pop(0)
            heapq.heappush(heap, (t, key))
            # purge: drop every cell whose newest arrival expired
            cutoff = t - self.window + 1
            while self.cells:
                tn, kk = self._live_top()
                if tn >= cutoff:
                    break
                heapq.heappop(heap)
                del self.cells[kk]
            while len(self.cells) > self.capacity:
                tn, kk = self._live_top()
                self.invalid_through = max(self.invalid_through, tn + self.window - 1)
                heapq.heappop(heap)
                del self.cells[kk]

    @property
    def stored_items(self) -> int:
        """Stored (time, point) pairs — the Table 1 storage unit."""
        return sum(len(buf) for buf in self.cells.values())

    def snapshot(self) -> dict:
        """Cells in insertion order (dict order is part of the state:
        ``query`` reports representatives in that order), flattened into
        four arrays plus the poison watermark."""
        keys: "list[tuple]" = []
        sizes: "list[int]" = []
        times: "list[int]" = []
        pts: "list[np.ndarray]" = []
        for key, buf in self.cells.items():
            keys.append(key)
            sizes.append(len(buf))
            for t, p in buf:
                times.append(int(t))
                pts.append(p)
        d = self.d
        return {
            "r": float(self.r),
            "window": int(self.window),
            "z": int(self.z),
            "capacity": int(self.capacity),
            "invalid_through": int(self.invalid_through),
            "cell_keys": np.asarray(keys, dtype=np.int64).reshape(len(keys), d),
            "cell_sizes": np.asarray(sizes, dtype=np.int64),
            "times": np.asarray(times, dtype=np.int64),
            "points": (np.asarray(pts, dtype=float).reshape(len(times), d)
                       if pts else np.zeros((0, d))),
        }

    def restore(self, state: dict) -> None:
        """Rebuild the cell map (in snapshot order) from a :meth:`snapshot`.

        The rung's geometry (guess radius, window, outlier budget,
        capacity) is part of the state's meaning — expiry, eviction and
        the poison watermark were all computed under it — so a mismatch
        raises instead of silently reinterpreting the cells.
        """
        from ..persist import SnapshotError

        if (float(state.get("r", -1.0)) != self.r
                or int(state.get("window", -1)) != self.window
                or int(state.get("z", -1)) != self.z
                or int(state.get("capacity", -1)) != self.capacity):
            raise SnapshotError(
                "sliding-window snapshot was taken under different "
                "(r, window, z, capacity) parameters; geometry-changing "
                "option overrides cannot be applied to restored state"
            )
        cell_keys = np.asarray(state["cell_keys"], dtype=np.int64)
        sizes = np.asarray(state["cell_sizes"], dtype=np.int64)
        times = np.asarray(state["times"], dtype=np.int64)
        pts = np.asarray(state["points"], dtype=float)
        if len(cell_keys) != len(sizes) or int(sizes.sum()) != len(times) \
                or len(times) != len(pts):
            raise SnapshotError("inconsistent sliding-window snapshot arrays")
        self.cells = {}
        pos = 0
        for i in range(len(cell_keys)):
            key = tuple(int(v) for v in cell_keys[i])
            cnt = int(sizes[i])
            self.cells[key] = [
                (int(times[pos + j]), pts[pos + j].copy()) for j in range(cnt)
            ]
            pos += cnt
        self.invalid_through = int(state["invalid_through"])
        self._recency = None  # rebuilt lazily by the next batch

    def query(self, now: int) -> "WeightedPointSet | None":
        """Coreset of the window ``[now-W+1, now]`` or ``None`` when this
        guess cannot serve the window (poisoned or over capacity)."""
        if now <= self.invalid_through:
            return None
        cutoff = now - self.window + 1
        reps: "list[np.ndarray]" = []
        weights: "list[int]" = []
        live_cells = 0
        for buf in self.cells.values():
            in_window = [(t, p) for t, p in buf if t >= cutoff]
            if not in_window:
                continue
            live_cells += 1
            reps.append(in_window[-1][1])
            weights.append(len(in_window))
        if live_cells > self.capacity:
            return None
        if not reps:
            return WeightedPointSet.empty(self.d)
        return WeightedPointSet(np.asarray(reps), np.asarray(weights, dtype=np.int64))


class SlidingWindowCoreset:
    """Ladder of :class:`GuessStructure` over ``[r_min, r_max]``.

    Parameters
    ----------
    r_min, r_max:
        Bounds on the distance scale (the ladder has
        ``ceil(log2(r_max/r_min)) + 1`` rungs — the ``log sigma`` factor).
    window:
        Window length ``W`` in arrivals.
    ladder_ratio:
        Spacing of consecutive guesses (2.0 by default; the granularity
        ``eps*r`` scales with the guess, so a constant ratio suffices for
        a ``(1+O(eps))``-quality cover).
    """

    def __init__(self, k: int, z: int, eps: float, d: int, window: int,
                 r_min: float, r_max: float, metric=None, ladder_ratio: float = 2.0,
                 capacity: "int | None" = None, dtype: "str | None" = None,
                 kernel_chunk: "int | None" = None,
                 kernel_backend: "str | None" = None):
        if not (0 < r_min <= r_max):
            raise ValueError("need 0 < r_min <= r_max")
        if ladder_ratio <= 1:
            raise ValueError("ladder_ratio must exceed 1")
        self.k, self.z, self.eps, self.d = int(k), int(z), float(eps), int(d)
        self.window = int(window)
        self.metric = get_metric(metric)
        #: distance-kernel knobs for the greedy radius query
        #: (:mod:`repro.kernels`); coresets themselves are kernel-free
        self.dtype = dtype
        self.kernel_chunk = kernel_chunk
        self.kernel_backend = kernel_backend
        self._t = -1
        rungs = int(ceil(np.log(r_max / r_min) / np.log(ladder_ratio))) + 1
        self.guesses = [
            GuessStructure(r_min * ladder_ratio**i, k, z, eps, d, window, capacity)
            for i in range(rungs)
        ]

    @property
    def num_guesses(self) -> int:
        """Ladder length (the ``log sigma`` factor)."""
        return len(self.guesses)

    @property
    def stored_items(self) -> int:
        """Total stored items across the ladder."""
        return sum(g.stored_items for g in self.guesses)

    @property
    def now(self) -> int:
        """Time of the latest arrival."""
        return self._t

    def snapshot(self) -> dict:
        """The clock plus every rung's cell state."""
        return {
            "t": int(self._t),
            "guesses": {str(i): g.snapshot()
                        for i, g in enumerate(self.guesses)},
        }

    def restore(self, state: dict) -> None:
        """Apply a :meth:`snapshot` across the ladder."""
        from ..persist import SnapshotError

        guesses = state["guesses"]
        if len(guesses) != len(self.guesses):
            raise SnapshotError(
                f"snapshot has {len(guesses)} ladder rungs, structure has "
                f"{len(self.guesses)} (r_min/r_max/ladder_ratio mismatch)"
            )
        self._t = int(state["t"])
        for i, g in enumerate(self.guesses):
            g.restore(guesses[str(i)])

    def insert(self, p) -> None:
        """Process the next arrival (time advances by one per insert;
        scalar reference path)."""
        self._t += 1
        for g in self.guesses:
            g.insert(np.asarray(p, dtype=float), self._t)

    def extend(self, points) -> None:
        """Process a batch of arrivals (the vectorized hot path).

        Cell keys for the whole batch are computed against every rung of
        the guess ladder in a single broadcast ``floor(points / side)``
        pass; each :class:`GuessStructure` then only does per-point
        bookkeeping.  Bit-identical to per-point :meth:`insert`.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if len(pts) == 0:
            return
        t0 = self._t + 1
        self._t += len(pts)
        sides = np.array([g.side for g in self.guesses])
        # (rungs, n, d) key tensor: one vectorized pass for the whole ladder
        ladder_keys = np.floor(pts[None, :, :] / sides[:, None, None]).astype(np.int64)
        for g, keys in zip(self.guesses, ladder_keys):
            g.extend(pts, t0, keys=keys)

    def coreset(self) -> WeightedPointSet:
        """Coreset of the current window from the smallest serving guess."""
        for g in self.guesses:
            cs = g.query(self._t)
            if cs is not None:
                return cs
        raise RuntimeError(
            "no guess can serve the window; r_max below the window's scale"
        )

    def radius(self) -> float:
        """``O(1)``-approximate ``opt_{k,z}`` of the window (greedy on the
        reported coreset)."""
        cs = self.coreset()
        if len(cs) == 0 or cs.total_weight <= self.z:
            return 0.0
        return charikar_greedy(
            cs, self.k, self.z, self.metric,
            dtype=self.dtype, kernel_chunk=self.kernel_chunk,
            kernel_backend=self.kernel_backend,
        ).radius
