"""Deterministic fully dynamic coreset (the §5 discussion, realized).

The paper notes that Algorithm 5 is randomized only through its two
sketching subroutines, and that the sample-recovery side "can be made
deterministic by using the Vandermonde matrix"; what remains open is
*deterministically* testing whether a grid has at most ``O(s)`` non-empty
cells.  :class:`DeterministicDynamicCoreset` instantiates exactly that
design:

* per grid ``G_i``, a :class:`~repro.sketches.vandermonde.VandermondeSketch`
  of sparsity ``s = k (4 sqrt(d)/eps)^d + z`` (no F0 estimator at all);
* a query walks the grids finest-to-coarsest and returns the weighted
  cell centres of the first grid whose sketch decodes consistently.

Every component is deterministic; following the paper's caveat, the grid-
sparsity test is the decoder's consistency check (exact for supports up
to ``s + check``, heuristic beyond — see the module docstring of
``repro.sketches.vandermonde``).  Storage is ``O((k/eps^d + z) log Delta)``
field elements, matching the Omega((k/eps^d) log Delta + z) lower bound of
Theorem 28 up to the per-cell word size.
"""

from __future__ import annotations

import numpy as np

from ..core.points import WeightedPointSet
from ..geometry.grid import GridHierarchy
from ..geometry.packing import grid_cell_bound
from ..sketches.vandermonde import PRIME_31, VandermondeSketch

__all__ = ["DeterministicDynamicCoreset"]


class DeterministicDynamicCoreset:
    """Fully dynamic relaxed ``(eps,k,z)``-coreset over ``[Delta]^d`` with
    no randomness anywhere.

    Parameters
    ----------
    k, z, eps:
        Problem parameters.
    delta_universe, dim:
        The discrete universe; ``delta_universe^dim`` must stay below
        ``2^31 - 2`` (the Vandermonde field), e.g. ``Delta = 2^15, d = 2``.
    check:
        Extra verification syndromes per sketch.
    s_override:
        Explicit sparsity (tests use small values).
    """

    def __init__(
        self,
        k: int,
        z: int,
        eps: float,
        delta_universe: int,
        dim: int,
        check: int = 4,
        s_override: "int | None" = None,
    ):
        if not 0 < eps <= 1:
            raise ValueError("eps must be in (0, 1]")
        self.k, self.z, self.eps = int(k), int(z), float(eps)
        self.hier = GridHierarchy(delta_universe, dim)
        self.s = int(s_override) if s_override is not None else grid_cell_bound(
            k, z, eps, dim
        )
        finest_cells = self.hier.level(0).num_cells
        if finest_cells + 1 >= PRIME_31:
            raise ValueError(
                f"universe Delta^d = {finest_cells} exceeds the Vandermonde "
                f"field; use the randomized DynamicCoreset instead"
            )
        self._levels = self.hier.levels()
        self._sketches = [
            VandermondeSketch(self.s, lvl.num_cells, check=check)
            for lvl in self._levels
        ]
        self._updates = 0

    # -- stream interface -------------------------------------------------

    def _update(self, point, sign: int) -> None:
        p = np.asarray(point, dtype=np.int64).reshape(1, -1)
        self._updates += 1
        for lvl, sk in zip(self._levels, self._sketches):
            sk.update(int(lvl.cell_ids(p)[0]), sign)

    def insert(self, point) -> None:
        """Insert a point of ``[Delta]^d``."""
        self._update(point, +1)

    def delete(self, point) -> None:
        """Delete a previously inserted point (strict turnstile)."""
        self._update(point, -1)

    def _apply_batch(self, points, sign: int) -> None:
        """Batched updates: one vectorized cell-id pass per grid, one
        field update per distinct touched cell (linearity makes this
        exactly equivalent to per-point updates).  All cell ids are
        computed (validating every coordinate) before any field update,
        so a bad batch raises with the structure unmutated
        (all-or-nothing)."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.int64))
        if len(pts) == 0:
            return
        per_level = [
            np.unique(lvl.cell_ids(pts), return_counts=True)
            for lvl in self._levels
        ]
        self._updates += len(pts)
        for (cids, counts), sk in zip(per_level, self._sketches):
            for cid, c in zip(cids.tolist(), counts.tolist()):
                sk.update(int(cid), sign * int(c))

    def extend(self, points) -> None:
        """Insert a batch of points (vectorized cell-id computation)."""
        self._apply_batch(points, +1)

    def delete_many(self, points) -> None:
        """Delete a batch of previously inserted points."""
        self._apply_batch(points, -1)

    # -- accounting --------------------------------------------------------

    @property
    def storage_cells(self) -> int:
        """Field elements across all grids: ``(2s + check) * (log Delta + 1)``."""
        return sum(sk.storage_cells for sk in self._sketches)

    @property
    def updates_seen(self) -> int:
        return self._updates

    # -- persistence --------------------------------------------------------

    def snapshot(self) -> dict:
        """Mutable state: every grid's syndrome vector (no randomness)."""
        return {
            "updates": int(self._updates),
            "sketches": {str(i): sk.snapshot()
                         for i, sk in enumerate(self._sketches)},
        }

    def restore(self, state: dict) -> None:
        """Apply a :meth:`snapshot` across the grids."""
        from ..persist import SnapshotError

        sketches = state["sketches"]
        if len(sketches) != len(self._sketches):
            raise SnapshotError(
                f"snapshot has {len(sketches)} grids, structure has "
                f"{len(self._sketches)} (delta_universe/dim mismatch)"
            )
        for i, sk in enumerate(self._sketches):
            sk.restore(sketches[str(i)])
        self._updates = int(state["updates"])

    # -- queries ------------------------------------------------------------

    def coreset(self) -> WeightedPointSet:
        """The relaxed ``(eps,k,z)``-coreset from the finest decodable
        grid.  Deterministic: same update sequence, same output."""
        for lvl, sk in zip(self._levels, self._sketches):
            res = sk.decode()
            if not res.success or len(res.items) > self.s:
                continue
            if not res.items:
                return WeightedPointSet.empty(self.hier.dim)
            cells = np.array(sorted(res.items))
            weights = np.array([res.items[c] for c in cells], dtype=np.int64)
            centers = np.array([lvl.cell_center(int(c)) for c in cells])
            return WeightedPointSet(centers, weights)
        raise RuntimeError(
            "no grid decoded; the live set's support exceeds the sketches' "
            "capacity at every level (cannot happen when s follows Lemma 25)"
        )

    def selected_level(self) -> int:
        """Index of the grid the current query reports from."""
        for i, sk in enumerate(self._sketches):
            res = sk.decode()
            if res.success and len(res.items) <= self.s:
                return i
        raise RuntimeError("no grid decoded")
