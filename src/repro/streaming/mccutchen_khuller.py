"""McCutchen-Khuller streaming baseline (Table 1 context, §1).

McCutchen and Khuller (APPROX 2008) gave a ``(4+eps)``-approximation for
k-center with ``z`` outliers in general metric spaces using ``O(kz/eps)``
space — the pre-coreset state of the art the paper contrasts with.

We implement the doubling-phase variant: a buffer of stored (weighted)
points is condensed whenever it exceeds ``k(z+1) + z + 1`` items by a
greedy heavy-disk pass at the current radius guess (double and retry until
at most ``k`` representatives plus at most weight-``z`` leftovers remain).
Because condensation relocates points by ``O(r)`` while ``r`` doubles, the
total displacement telescopes and the reported radius is within a constant
factor of the optimum; the original paper sharpens the constant to
``4 + eps`` by running ``O(1/eps)`` staggered instances, which we expose
via ``instances`` (storage then scales as ``kz/eps``, the Table 1 shape).

Fidelity note (DESIGN.md §2): this reproduction preserves MK08's *storage
shape* and constant-factor quality, not their exact constant.
"""

from __future__ import annotations

import numpy as np

from ..core.greedy import charikar_greedy
from ..core.metrics import get_metric
from ..core.points import WeightedPointSet
from ..core.radius import min_pairwise_distance

__all__ = ["MKInstance", "McCutchenKhuller"]


class MKInstance:
    """One doubling-phase instance (see module docstring)."""

    def __init__(self, k: int, z: int, metric, stagger: float = 1.0):
        self.k, self.z = int(k), int(z)
        self.metric = metric
        self.r = 0.0
        #: multiplicative offset applied when the radius is bootstrapped,
        #: so the doubling ladders of parallel instances interleave
        self.stagger = float(stagger)
        self._pts: "list[np.ndarray]" = []
        self._w: "list[int]" = []
        self.capacity = self.k * (self.z + 1) + self.z + 1

    @property
    def size(self) -> int:
        """Stored items."""
        return len(self._pts)

    def _stored(self) -> WeightedPointSet:
        if not self._pts:
            return WeightedPointSet.empty(1)
        return WeightedPointSet(np.asarray(self._pts), np.asarray(self._w))

    def insert(self, p: np.ndarray) -> None:
        self._pts.append(np.asarray(p, dtype=float).reshape(-1))
        self._w.append(1)
        if len(self._pts) > self.capacity:
            self._condense()

    def _condense(self) -> None:
        pts = np.asarray(self._pts)
        w = np.asarray(self._w, dtype=np.int64)
        if self.r == 0.0:
            mind = min_pairwise_distance(pts, self.metric)
            self.r = (mind / 2.0 if mind > 0 else 1e-12) * self.stagger
        while True:
            reps_pts, reps_w = self._try_condense(pts, w, self.r)
            if reps_pts is not None:
                self._pts = [p for p in reps_pts]
                self._w = [int(x) for x in reps_w]
                return
            self.r *= 2.0

    def _try_condense(self, pts: np.ndarray, w: np.ndarray, r: float):
        """Greedy heavy-disk pass: up to ``k`` reps absorbing weight within
        ``2r``; succeed if leftover weight <= z (leftovers are kept as
        points)."""
        n = len(pts)
        remaining = np.ones(n, dtype=bool)
        out_pts: "list[np.ndarray]" = []
        out_w: "list[int]" = []
        tol = 1e-12 * max(1.0, r)
        for _ in range(self.k):
            if not remaining.any():
                break
            wu = w * remaining
            # candidate = stored point absorbing maximum weight within 2r
            D = self.metric.pairwise(pts[remaining], pts)
            gains = (D <= 2.0 * r + tol) @ wu
            local = int(np.argmax(gains))
            v = np.flatnonzero(remaining)[local]
            ball = remaining & (self.metric.to_set(pts[v], pts) <= 2.0 * r + tol)
            out_pts.append(pts[v])
            out_w.append(int(w[ball].sum()))
            remaining &= ~ball
        leftover_w = int(w[remaining].sum())
        if leftover_w > self.z:
            return None, None
        for i in np.flatnonzero(remaining):
            out_pts.append(pts[i])
            out_w.append(int(w[i]))
        return out_pts, out_w

    def estimate(self) -> float:
        """Constant-factor radius estimate from the stored summary."""
        stored = self._stored()
        if len(stored) == 0 or stored.total_weight <= self.z:
            return 0.0
        res = charikar_greedy(stored, self.k, self.z, self.metric)
        return float(res.radius)


class McCutchenKhuller:
    """MK08-style streaming estimator with ``instances`` staggered copies.

    Parameters
    ----------
    instances:
        Number of staggered doubling instances (``ceil(1/eps)`` in MK08);
        total storage is ``instances * (k(z+1)+z+1)``.
    """

    def __init__(self, k: int, z: int, eps: float, metric=None, instances: "int | None" = None):
        metric = get_metric(metric)
        if instances is None:
            instances = max(1, int(np.ceil(1.0 / max(eps, 1e-9))))
        self.metric = metric
        # stagger the doubling ladders multiplicatively across [1, 2)
        self.instances = [
            MKInstance(k, z, metric, stagger=2.0 ** (i / instances))
            for i in range(instances)
        ]

    @property
    def size(self) -> int:
        """Total stored items over all instances (the Table 1 quantity)."""
        return sum(inst.size for inst in self.instances)

    def insert(self, p) -> None:
        for inst in self.instances:
            inst.insert(np.asarray(p, dtype=float))

    def extend(self, points) -> None:
        for p in np.atleast_2d(np.asarray(points, dtype=float)):
            self.insert(p)

    def estimate(self) -> float:
        """Minimum feasible radius estimate over the staggered instances."""
        vals = [inst.estimate() for inst in self.instances]
        return float(min(vals))
