"""Algorithm 5 — fully dynamic streaming coreset over ``[Delta]^d`` (§5.1).

For every grid ``G_i`` of the hierarchy (cell side ``2^i``) the algorithm
maintains two linear sketches keyed by cell id:

* an s-sample/sparse-recovery sketch ``S(G_i)`` (Lemma 20 / Lemma 22)
  from which all non-empty cells with their exact point counts can be
  recovered whenever at most ``s`` cells are non-empty, and
* an ``||F||_0`` estimator ``F(G_i)`` (Lemma 19) approximating the number
  of non-empty cells,

with ``s = k (4 sqrt(d)/eps)^d + z`` (Lemma 25).  A query walks the grids
from finest to coarsest, uses ``F(G_i)`` to find the first grid with at
most ``s`` non-empty cells, recovers its cells, and reports the weighted
cell centres — a *relaxed* ``(eps,k,z)``-coreset whp (Theorem 21).

Both sketches are linear, so insertions and deletions are symmetric
``+-1`` updates; the strict-turnstile discipline (never delete an absent
point) is the caller's contract, as in the paper.

:class:`DynamicKCenter` is the §5 remark made concrete: re-solving greedily
on the maintained coreset after every update yields the first fully
dynamic ``(3+eps)``-approximation for k-center with outliers whose update
time is independent of ``n``.
"""

from __future__ import annotations

import numpy as np

from ..core.greedy import charikar_greedy
from ..core.metrics import get_metric
from ..core.points import WeightedPointSet
from ..geometry.grid import GridHierarchy
from ..geometry.packing import grid_cell_bound
from ..sketches.f0 import F0Estimator
from ..sketches.sparse_recovery import SSparseRecovery

__all__ = ["DynamicCoreset", "DynamicKCenter"]


class DynamicCoreset:
    """Fully dynamic relaxed ``(eps,k,z)``-coreset over ``[Delta]^d``.

    Parameters
    ----------
    k, z, eps:
        Problem parameters.
    delta_universe:
        The universe size ``Delta``; coordinates are integers in
        ``1..Delta``.
    dim:
        Dimension ``d``.
    failure:
        Sketch failure probability knob ``delta`` (per paper, the
        polylog space factor).
    rng:
        Seeded generator for the sketch randomness.
    use_f0:
        When True (paper-faithful), grid selection first consults the F0
        estimators; when False, the query simply attempts sparse-recovery
        decoding per grid (cheaper, same output distribution — the
        ablation of experiment E6).

    Notes
    -----
    ``storage_cells`` reports total sketch cells, the quantity matching
    Theorem 21's ``O((k/eps^d + z) log^4(k Delta / eps delta))`` bound.
    """

    def __init__(
        self,
        k: int,
        z: int,
        eps: float,
        delta_universe: int,
        dim: int,
        failure: float = 0.05,
        rng: "np.random.Generator | None" = None,
        use_f0: bool = True,
        s_override: "int | None" = None,
    ):
        if not 0 < eps <= 1:
            raise ValueError("eps must be in (0, 1]")
        rng = rng or np.random.default_rng()
        self.k, self.z, self.eps = int(k), int(z), float(eps)
        self.hier = GridHierarchy(delta_universe, dim)
        self.s = int(s_override) if s_override is not None else grid_cell_bound(k, z, eps, dim)
        self.use_f0 = bool(use_f0)
        self._updates = 0
        self._levels = self.hier.levels()
        self._sparse: "list[SSparseRecovery]" = []
        self._f0: "list[F0Estimator | None]" = []
        for lvl in self._levels:
            self._sparse.append(
                SSparseRecovery(self.s, lvl.num_cells, delta=failure, rng=rng)
            )
            self._f0.append(
                F0Estimator(lvl.num_cells, eps=0.5, rng=rng) if use_f0 else None
            )

    # -- stream interface -------------------------------------------------

    def _update(self, point, sign: int) -> None:
        p = np.asarray(point, dtype=np.int64).reshape(1, -1)
        self._updates += 1
        for lvl, sk, f0 in zip(self._levels, self._sparse, self._f0):
            cid = int(lvl.cell_ids(p)[0])
            sk.update(cid, sign)
            if f0 is not None:
                f0.update(cid, sign)

    def insert(self, point) -> None:
        """Insert one point of ``[Delta]^d``."""
        self._update(point, +1)

    def delete(self, point) -> None:
        """Delete one previously inserted point (strict turnstile)."""
        self._update(point, -1)

    def _apply_batch(self, points, sign: int) -> None:
        """Batched ``+-1`` updates: per grid, ONE vectorized cell-id pass
        plus one sketch update per distinct touched cell.  The sketches
        are linear, so the final state is identical to per-point updates.

        All cell ids are computed (which validates every coordinate
        against ``[Delta]^d``) *before* any sketch is touched, so a bad
        batch raises with the structure unmutated — the batch is
        all-or-nothing, which is what makes the session's update
        accounting exact.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=np.int64))
        if len(pts) == 0:
            return
        per_level = [
            np.unique(lvl.cell_ids(pts), return_counts=True)
            for lvl in self._levels
        ]
        self._updates += len(pts)
        for (cids, counts), sk, f0 in zip(per_level, self._sparse, self._f0):
            for cid, c in zip(cids.tolist(), counts.tolist()):
                sk.update(int(cid), sign * int(c))
                if f0 is not None:
                    f0.update(int(cid), sign * int(c))

    def extend(self, points) -> None:
        """Insert a batch of points (vectorized cell-id computation)."""
        self._apply_batch(points, +1)

    def delete_many(self, points) -> None:
        """Delete a batch of previously inserted points."""
        self._apply_batch(points, -1)

    # -- accounting --------------------------------------------------------

    @property
    def storage_cells(self) -> int:
        """Total sketch cells across all grids (Theorem 21's unit)."""
        total = sum(sk.storage_cells for sk in self._sparse)
        total += sum(f0.storage_cells for f0 in self._f0 if f0 is not None)
        return total

    @property
    def updates_seen(self) -> int:
        """Number of stream updates processed."""
        return self._updates

    # -- persistence --------------------------------------------------------

    def snapshot(self) -> dict:
        """Mutable state of every per-grid sketch.

        The sketch randomness (hash functions, fingerprint points) is
        *derived*, not stored: reconstructing the structure from the same
        seed re-draws it identically, and the per-sketch digests inside
        the state let :meth:`restore` verify that happened.
        """
        state: dict = {
            "updates": int(self._updates),
            "sparse": {str(i): sk.snapshot()
                       for i, sk in enumerate(self._sparse)},
        }
        if self.use_f0:
            state["f0"] = {str(i): f0.snapshot()
                           for i, f0 in enumerate(self._f0)}
        return state

    def restore(self, state: dict) -> None:
        """Apply a :meth:`snapshot`; queries afterwards are identical to
        the uninterrupted structure's (the sketches are linear)."""
        from ..persist import SnapshotError

        sparse = state["sparse"]
        if len(sparse) != len(self._sparse):
            raise SnapshotError(
                f"snapshot has {len(sparse)} grids, structure has "
                f"{len(self._sparse)} (delta_universe/dim mismatch)"
            )
        if bool(self.use_f0) != ("f0" in state):
            raise SnapshotError(
                "snapshot and structure disagree on use_f0"
            )
        for i, sk in enumerate(self._sparse):
            sk.restore(sparse[str(i)])
        if self.use_f0:
            f0s = state["f0"]
            if len(f0s) != len(self._f0):
                raise SnapshotError("F0 estimator count mismatch")
            for i, f0 in enumerate(self._f0):
                f0.restore(f0s[str(i)])
        self._updates = int(state["updates"])

    # -- queries ------------------------------------------------------------

    def coreset(self) -> WeightedPointSet:
        """Recover the relaxed ``(eps,k,z)``-coreset (Theorem 21).

        Walks grids finest-to-coarsest; for each candidate the F0 estimate
        is checked first (when enabled), then full recovery is attempted.
        Raises ``RuntimeError`` if every grid fails (probability bounded
        by the sketch failure parameter; never observed in tests).
        """
        for i, (lvl, sk, f0) in enumerate(zip(self._levels, self._sparse, self._f0)):
            if f0 is not None and not f0.at_most(self.s):
                continue
            res = sk.decode(max_items=2 * self.s + 2)
            if not res.success or len(res.items) > 2 * self.s:
                # F0 was optimistic or decode failed; try the next grid
                continue
            if not res.items:
                return WeightedPointSet.empty(self.hier.dim)
            cells = np.array(sorted(res.items))
            weights = np.array([res.items[c] for c in cells], dtype=np.int64)
            centers = np.array([lvl.cell_center(int(c)) for c in cells])
            return WeightedPointSet(centers, weights)
        raise RuntimeError("all grid sketches failed to decode (sketch failure)")

    def selected_level(self) -> int:
        """Index of the grid the current query would report from."""
        for i, (lvl, sk, f0) in enumerate(zip(self._levels, self._sparse, self._f0)):
            if f0 is not None and not f0.at_most(self.s):
                continue
            res = sk.decode(max_items=2 * self.s + 2)
            if res.success and len(res.items) <= 2 * self.s:
                return i
        raise RuntimeError("all grid sketches failed to decode")


class DynamicKCenter:
    """Fully dynamic ``(3+eps)``-approximate k-center with outliers.

    Wraps :class:`DynamicCoreset`; :meth:`radius` re-runs the greedy
    3-approximation on the maintained coreset, so each query costs time
    polynomial in the coreset size only — the fast-update-time dynamic
    algorithm the paper notes was previously unknown (§1, discussion after
    Theorem 21).
    """

    def __init__(self, k: int, z: int, eps: float, delta_universe: int, dim: int,
                 metric=None, rng: "np.random.Generator | None" = None):
        self.core = DynamicCoreset(k, z, eps, delta_universe, dim, rng=rng)
        self.metric = get_metric(metric)
        self.k, self.z = int(k), int(z)

    def insert(self, point) -> None:
        """Insert a point."""
        self.core.insert(point)

    def delete(self, point) -> None:
        """Delete a point."""
        self.core.delete(point)

    def radius(self) -> float:
        """A ``3(1+O(eps))``-approximation of ``opt_{k,z}`` of the live
        point set."""
        cs = self.core.coreset()
        if len(cs) == 0 or cs.total_weight <= self.z:
            return 0.0
        return charikar_greedy(cs, self.k, self.z, self.metric).radius

    def centers(self) -> np.ndarray:
        """Greedy centers on the current coreset."""
        cs = self.core.coreset()
        if len(cs) == 0:
            return np.zeros((0, self.core.hier.dim))
        res = charikar_greedy(cs, self.k, self.z, self.metric)
        return cs.points[res.centers_idx]
