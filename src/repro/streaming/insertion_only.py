"""Algorithm 3 — the space-optimal insertion-only streaming coreset (§4.3).

Maintains a radius estimate ``r <= opt_{k,z}(P(t))`` and a weighted
representative set ``P*``:

* a new point within ``(eps/2) r`` of a representative is absorbed into
  its weight;
* otherwise it becomes a representative itself;
* while ``r == 0``, once ``|P*| = k + z + 1`` the estimate is initialized
  to half the minimum pairwise distance (two representatives must share an
  optimal ball);
* whenever ``|P*|`` reaches ``k (16/eps)^d + z``, the radius is *doubled*
  and ``UpdateCoreset`` (Algorithm 4) re-absorbs at ``(eps/2) r`` —
  doubling (rather than a gentler growth) is what keeps the accumulated
  assignment error telescoping to ``eps * r`` (Lemma 16).

Theorem 18: the structure is an ``(eps,k,z)``-coreset of the prefix at all
times and stores at most ``k (16/eps)^d + z`` points, matching the
Omega(k/eps^d + z) lower bound of §4.1-4.2.

Implementation notes: representatives live in a pre-allocated, doubling
NumPy buffer so each arrival costs one vectorized distance evaluation
against ``P*`` (the guides' "no per-point Python objects" rule); the paper
threshold is astronomical for small ``eps`` and moderate ``d``, so
``size_cap`` lets applications bound the structure (at the documented cost
of the worst-case guarantee — the cap is exercised by the failure-injection
tests).
"""

from __future__ import annotations

from math import ceil

import numpy as np

from ..core.mbc import update_coreset
from ..core.metrics import get_metric
from ..core.points import WeightedPointSet
from ..core.radius import min_pairwise_distance

__all__ = ["paper_size_threshold", "InsertionOnlyCoreset"]


def paper_size_threshold(k: int, z: int, eps: float, d: int) -> int:
    """Algorithm 3's re-clustering threshold ``k * ceil(16/eps)^d + z``."""
    if eps <= 0:
        raise ValueError("eps must be positive")
    return int(k * ceil(16.0 / eps) ** d + z)


class InsertionOnlyCoreset:
    """Streaming ``(eps,k,z)``-coreset for insertion-only streams.

    Parameters
    ----------
    k, z, eps:
        Problem parameters (``0 < eps <= 1``).
    d:
        Doubling dimension used in the size threshold (for point sets in
        ``R^dim`` under the built-in norms, ``d = dim``).
    metric:
        Metric instance or name; Euclidean by default.
    size_cap:
        Override for the re-clustering threshold.  ``None`` uses the
        paper's ``k (16/eps)^d + z``.  Values below ``k + z + 2`` are
        rejected (the structure could not even initialize ``r``).

    Attributes
    ----------
    r:
        Current radius estimate (always ``<= opt_{k,z}`` of the prefix
        when running with the paper threshold).
    doublings:
        Number of radius doublings performed (diagnostics).
    """

    def __init__(
        self,
        k: int,
        z: int,
        eps: float,
        d: int,
        metric=None,
        size_cap: "int | None" = None,
    ):
        if not 0 < eps <= 1:
            raise ValueError("eps must be in (0, 1]")
        if k < 1 or z < 0 or d < 1:
            raise ValueError("need k >= 1, z >= 0, d >= 1")
        self.k, self.z, self.eps, self.d = int(k), int(z), float(eps), int(d)
        self.metric = get_metric(metric)
        self.threshold = (
            paper_size_threshold(k, z, eps, d) if size_cap is None else int(size_cap)
        )
        if self.threshold < k + z + 2:
            raise ValueError("size_cap must be at least k + z + 2")
        self.r = 0.0
        self.doublings = 0
        #: rows per vectorized chunk in :meth:`extend`; bounds the distance
        #: matrix at chunk_rows x |P*| and, more importantly, the work
        #: thrown away when a mid-chunk recompression invalidates it
        #: (256 empirically beats larger chunks across absorb- and
        #: rep-heavy regimes)
        self._batch_chunk = 256
        #: adaptive flag: True while chunks mostly create representatives,
        #: in which case the scalar loop outpaces the vectorized path
        self._batch_dense = False
        self._n = 0
        self._dim: "int | None" = None
        self._buf = np.zeros((0, 0))
        self._w = np.zeros(0, dtype=np.int64)
        self._size = 0

    # -- buffer plumbing ---------------------------------------------------

    def _ensure_capacity(self, dim: int) -> None:
        if self._dim is None:
            self._dim = dim
            self._buf = np.zeros((16, dim))
            self._w = np.zeros(16, dtype=np.int64)
        elif dim != self._dim:
            raise ValueError(f"point dim {dim} != stream dim {self._dim}")
        if self._size == len(self._buf):
            self._buf = np.concatenate([self._buf, np.zeros_like(self._buf)])
            self._w = np.concatenate([self._w, np.zeros_like(self._w)])

    def _set_reps(self, wps: WeightedPointSet) -> None:
        n = len(wps)
        cap = max(16, 1 << int(np.ceil(np.log2(max(n, 1)))))
        self._buf = np.zeros((cap, self._dim))
        self._buf[:n] = wps.points
        self._w = np.zeros(cap, dtype=np.int64)
        self._w[:n] = wps.weights
        self._size = n

    # -- public interface ----------------------------------------------------

    @property
    def size(self) -> int:
        """Number of stored representatives ``|P*|``."""
        return self._size

    @property
    def points_seen(self) -> int:
        """Stream length so far."""
        return self._n

    def coreset(self) -> WeightedPointSet:
        """The current ``(eps,k,z)``-coreset ``P*`` (Theorem 18)."""
        if self._size == 0:
            return WeightedPointSet.empty(self._dim or 1)
        return WeightedPointSet(
            self._buf[: self._size].copy(), self._w[: self._size].copy()
        )

    def snapshot(self) -> dict:
        """The full mutable state: representatives, weights, radius ladder.

        Buffer capacity (a power-of-two growth artifact) is not state:
        only ``P*[:size]`` ever affects outputs, so restore may repack it.
        """
        return {
            "n": int(self._n),
            "r": float(self.r),
            "doublings": int(self.doublings),
            "batch_dense": bool(self._batch_dense),
            "threshold": int(self.threshold),
            "dim": int(self._dim) if self._dim is not None else None,
            "points": self._buf[: self._size].copy(),
            "weights": self._w[: self._size].copy(),
        }

    def restore(self, state: dict) -> None:
        """Apply a :meth:`snapshot`; continuing the stream afterwards is
        bit-identical to never having snapshotted (parity-tested)."""
        from ..persist import SnapshotError

        if int(state["threshold"]) != self.threshold:
            raise SnapshotError(
                f"snapshot threshold {state['threshold']} != structure "
                f"threshold {self.threshold} (size_cap/eps mismatch)"
            )
        dim = state["dim"]
        pts = np.asarray(state["points"], dtype=float)
        w = np.asarray(state["weights"], dtype=np.int64)
        if len(pts) != len(w):
            raise SnapshotError("representative/weight length mismatch")
        self.r = float(state["r"])
        self.doublings = int(state["doublings"])
        self._n = int(state["n"])
        self._batch_dense = bool(state["batch_dense"])
        if dim is None:
            self._dim = None
            self._buf = np.zeros((0, 0))
            self._w = np.zeros(0, dtype=np.int64)
            self._size = 0
            return
        self._dim = int(dim)
        self._set_reps(WeightedPointSet(pts.reshape(len(pts), self._dim), w))

    def insert(self, point) -> None:
        """HandleArrival(p_t) of Algorithm 3."""
        p = np.asarray(point, dtype=float).reshape(-1)
        self._ensure_capacity(len(p))
        self._n += 1
        absorb = self.eps / 2.0 * self.r
        if self._size:
            dists = self.metric.to_set(p, self._buf[: self._size])
            j = int(np.argmin(dists))
            if dists[j] <= absorb + 1e-12 * max(1.0, absorb):
                self._w[j] += 1
                return
        # new representative
        self._buf[self._size] = p
        self._w[self._size] = 1
        self._size += 1
        self._ensure_capacity(len(p))

        if self.r == 0.0 and self._size >= self.k + self.z + 1:
            delta_min = min_pairwise_distance(self._buf[: self._size], self.metric)
            if delta_min > 0:
                self.r = delta_min / 2.0
        while self.r > 0.0 and self._size >= self.threshold:
            self.r *= 2.0
            self.doublings += 1
            mbc = update_coreset(self.coreset(), self.eps / 2.0 * self.r, self.metric)
            self._set_reps(mbc.coreset)

    def extend(self, points) -> None:
        """Insert a batch of points in order — the vectorized hot path.

        Semantically identical to calling :meth:`insert` per row (same
        representatives, weights and radius estimate, bit for bit), but
        processed in chunks whose distances to ``P*`` are evaluated as
        ONE metric matrix, with runs of absorptions applied as a single
        ``bincount`` weight update.  A radius doubling (which rebuilds
        ``P*``) invalidates the chunk matrix, so the loop restarts from
        the next unprocessed row.

        The vectorized path only pays off while the structure absorbs;
        when a chunk turns mostly into new representatives (the coreset
        is still growing towards its threshold), the per-chunk adaptive
        switch falls back to the scalar loop and re-evaluates on every
        subsequent chunk.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.shape[0] == 0:
            return
        n_batch = len(pts)
        i = 0
        while i < n_batch:
            hi = min(n_batch, i + self._batch_chunk)
            size0, doublings0 = self._size, self.doublings
            if self._batch_dense:
                for j in range(i, hi):
                    self.insert(pts[j])
                consumed = hi - i
            else:
                consumed = self._extend_chunk(pts[i:hi])
            i += consumed
            # adapt: a chunk that mostly created representatives means the
            # structure is not absorbing yet — scalar inserts are cheaper
            # there.  Skip the update when a recompression shrank P* mid-
            # chunk (the size delta is meaningless then).
            if consumed and self.doublings == doublings0:
                self._batch_dense = (self._size - size0) / consumed > 0.6

    def _extend_chunk(self, chunk: np.ndarray) -> int:
        """Vectorized insertion of ``chunk`` rows in order.

        Returns the number of rows consumed — fewer than ``len(chunk)``
        when a recompression invalidated the distance matrix (the caller
        restarts from the next row).
        """
        self._ensure_capacity(chunk.shape[1])
        m = len(chunk)
        base = self._size
        # ONE matrix for the chunk against the current P*; the per-point
        # running (min distance, argmin rep) is then maintained with one
        # vectorized column per representative created mid-chunk.
        if base:
            D = self.metric.pairwise(chunk, self._buf[:base])
            cur_arg = np.argmin(D, axis=1)
            cur_min = D[np.arange(m), cur_arg]
        else:
            cur_arg = np.full(m, -1, dtype=np.int64)
            cur_min = np.full(m, np.inf)
        j = 0
        while j < m:
            # the absorb radius only changes at representative events
            # (r init / recompression), so every point up to the next
            # non-absorbable one is a plain weight increment: find the
            # run and apply it with one bincount.
            absorb = self.eps / 2.0 * self.r
            tol = 1e-12 * max(1.0, absorb)
            absorbable = (cur_arg[j:] >= 0) & (cur_min[j:] <= absorb + tol)
            run = int(np.argmin(absorbable)) if not absorbable.all() else m - j
            if run:
                self._w[: self._size] += np.bincount(
                    cur_arg[j: j + run], minlength=self._size
                )
                self._n += run
                j += run
                if j >= m:
                    break
            # chunk[j] opens a new representative
            p = chunk[j]
            self._n += 1
            ridx = self._size
            self._buf[ridx] = p
            self._w[ridx] = 1
            self._size += 1
            self._ensure_capacity(len(p))
            if j + 1 < m:
                # strict < keeps np.argmin's earliest-index tie-break
                # (the new representative has the highest index)
                col = self.metric.pairwise(chunk[j + 1:], p[None, :])[:, 0]
                upd = col < cur_min[j + 1:]
                cur_min[j + 1:][upd] = col[upd]
                cur_arg[j + 1:][upd] = ridx
            j += 1
            if self.r == 0.0 and self._size >= self.k + self.z + 1:
                delta_min = min_pairwise_distance(
                    self._buf[: self._size], self.metric
                )
                if delta_min > 0:
                    self.r = delta_min / 2.0
                # P* is unchanged, so the maintained distances stay
                # valid; only the absorb radius (recomputed per run)
                # has grown
            if self.r > 0.0 and self._size >= self.threshold:
                while self.r > 0.0 and self._size >= self.threshold:
                    self.r *= 2.0
                    self.doublings += 1
                    mbc = update_coreset(
                        self.coreset(), self.eps / 2.0 * self.r, self.metric
                    )
                    self._set_reps(mbc.coreset)
                # P* was rebuilt: the maintained distances are stale;
                # hand the remaining rows back to the caller
                return j
        return m
