"""Ceccarello-Pietracaprina-Pucci streaming baseline (Table 1 row 6).

CPP19's insertion-only algorithm maintains a doubling clustering with
``k + z`` proxy centers and refines *every* proxy's cluster at
granularity ``eps * r`` — so the outlier part of the structure also pays
the ``(1/eps)^d`` refinement factor, giving ``O(k/eps^d + z/eps^d)``
storage versus the paper's ``O(k/eps^d + z)``.

We reproduce that storage shape with the same absorption machinery as
Algorithm 3 but the CPP19 threshold ``(k + z) * (16/eps)^d``: the
structure is a valid coreset (the guarantee argument of Lemma 17 goes
through verbatim with the larger threshold) whose size exhibits exactly
the baseline's ``z/eps^d`` term — the quantity experiment E4 compares.
"""

from __future__ import annotations

from math import ceil

from .insertion_only import InsertionOnlyCoreset

__all__ = ["cpp_size_threshold", "CeccarelloStreamingCoreset"]


def cpp_size_threshold(k: int, z: int, eps: float, d: int) -> int:
    """CPP19's re-clustering threshold ``(k + z) * ceil(16/eps)^d``."""
    if eps <= 0:
        raise ValueError("eps must be positive")
    return int((k + z) * ceil(16.0 / eps) ** d)


class CeccarelloStreamingCoreset(InsertionOnlyCoreset):
    """Insertion-only streaming coreset with CPP19's ``(k+z)/eps^d``
    storage shape (see module docstring)."""

    def __init__(self, k: int, z: int, eps: float, d: int, metric=None):
        super().__init__(
            k, z, eps, d, metric=metric, size_cap=cpp_size_threshold(k, z, eps, d)
        )
