"""Stream event model.

Three stream flavours appear in the paper:

* insertion-only (§4): points arrive one by one, adversarially ordered;
* fully dynamic (§5): signed updates ``(point, +-1)`` over ``[Delta]^d``
  in the strict turnstile model;
* sliding window (§6): arrivals with implicit expiration after ``W``
  steps.

:class:`UpdateEvent` is the common currency for the sparse/dynamic
flavours; the helpers build event sequences from arrays and replay them
into any object exposing ``insert`` / ``delete`` methods.  For large
pure-insertion arrays, :func:`replay_chunks` is the vectorized path: it
feeds the sink's batched ``extend`` with array chunks instead of boxing
one Python tuple per point (``insertion_stream`` allocates an
:class:`UpdateEvent` — a tuple, a dataclass and an int — per row, which
dominates replay time and RAM long before the geometry does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = [
    "UpdateEvent",
    "insertion_stream",
    "dynamic_stream",
    "replay",
    "replay_chunks",
    "live_set",
]


@dataclass(frozen=True)
class UpdateEvent:
    """A single stream update.

    Attributes
    ----------
    point:
        Coordinates (tuple, so events are hashable and immutable).
    sign:
        ``+1`` for insert, ``-1`` for delete.
    time:
        Arrival index (0-based position in the stream).
    """

    point: tuple
    sign: int
    time: int

    def __post_init__(self):
        if self.sign not in (1, -1):
            raise ValueError("sign must be +1 or -1")


def insertion_stream(points: np.ndarray) -> "list[UpdateEvent]":
    """Wrap an array of points as a pure-insertion event sequence."""
    pts = np.atleast_2d(np.asarray(points))
    return [UpdateEvent(tuple(p.tolist()), 1, t) for t, p in enumerate(pts)]


def dynamic_stream(
    updates: "Iterable[tuple[np.ndarray, int]]",
) -> "list[UpdateEvent]":
    """Wrap ``(point, sign)`` pairs as an event sequence, checking the
    strict-turnstile invariant (no multiset element goes negative)."""
    events = []
    live: dict[tuple, int] = {}
    for t, (p, sign) in enumerate(updates):
        key = tuple(np.asarray(p).tolist())
        cnt = live.get(key, 0) + int(sign)
        if cnt < 0:
            raise ValueError(f"turnstile violation at t={t}: deleting absent {key}")
        live[key] = cnt
        events.append(UpdateEvent(key, int(sign), t))
    return events


def replay(events: "Iterable[UpdateEvent]", sink) -> None:
    """Feed events into ``sink`` (``insert(point)`` / ``delete(point)``)."""
    for ev in events:
        if ev.sign > 0:
            sink.insert(np.asarray(ev.point))
        else:
            sink.delete(np.asarray(ev.point))


def replay_chunks(points, sink, batch: "int | None" = None) -> int:
    """Vectorized pure-insertion replay: feed ``points`` into ``sink``
    as array chunks via its batched ``extend``.

    ``points`` may be a dense ``(n, d)`` array, a
    :class:`~repro.store.PointSource`, or an iterator of chunks; the
    result is identical to ``replay(insertion_stream(points), sink)``
    (every backend's ``extend`` is bit-identical to per-point
    ``insert``) without materializing one event object per row.
    Returns the number of rows replayed.
    """
    from ..store import iter_point_chunks

    extend = getattr(sink, "extend", None)
    n = 0
    for pts, w in iter_point_chunks(points, batch):
        if w is not None:
            raise ValueError(
                "replay_chunks replays unit-weight insertion streams; "
                "weighted chunks have no event-stream equivalent"
            )
        pts = np.atleast_2d(np.asarray(pts))
        if not len(pts):
            continue
        if extend is not None:
            extend(pts)
        else:  # per-point fallback for insert-only sinks
            for p in pts:
                sink.insert(p)
        n += len(pts)
    return n


def live_set(events: "Iterable[UpdateEvent]") -> "list[tuple]":
    """The multiset of currently live points after replaying ``events``
    (used by tests to compare sketches against ground truth)."""
    live: dict[tuple, int] = {}
    for ev in events:
        live[ev.point] = live.get(ev.point, 0) + ev.sign
    out: list[tuple] = []
    for p, c in live.items():
        out.extend([p] * c)
    return out
