"""Streaming algorithms: insertion-only (§4.3), fully dynamic (§5.1),
sliding window (DBMZ substrate for §6), and prior-work baselines."""

from .baseline_ceccarello import CeccarelloStreamingCoreset, cpp_size_threshold
from .dynamic import DynamicCoreset, DynamicKCenter
from .dynamic_deterministic import DeterministicDynamicCoreset
from .insertion_only import InsertionOnlyCoreset, paper_size_threshold
from .mccutchen_khuller import McCutchenKhuller, MKInstance
from .sliding_window import (
    GuessStructure,
    SlidingWindowCoreset,
    default_cell_capacity,
)
from .stream import (
    UpdateEvent,
    dynamic_stream,
    insertion_stream,
    live_set,
    replay,
    replay_chunks,
)

__all__ = [
    "CeccarelloStreamingCoreset",
    "DeterministicDynamicCoreset",
    "DynamicCoreset",
    "DynamicKCenter",
    "GuessStructure",
    "InsertionOnlyCoreset",
    "MKInstance",
    "McCutchenKhuller",
    "SlidingWindowCoreset",
    "UpdateEvent",
    "cpp_size_threshold",
    "default_cell_capacity",
    "dynamic_stream",
    "insertion_stream",
    "live_set",
    "paper_size_threshold",
    "replay",
    "replay_chunks",
]
