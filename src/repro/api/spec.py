"""The problem specification every algorithm in the library consumes.

The paper solves one problem — k-center with ``z`` outliers at quality
``eps`` — in five computational models.  :class:`ProblemSpec` is the
single validated carrier of those parameters: algorithms stop taking
loose positional ``(k, z, eps, ...)`` tuples and instead receive a frozen
spec, so a stream session, an MPC run and an offline solve are guaranteed
to be talking about the *same* instance.

The spec also pins the :class:`~repro.core.metrics.Metric` (resolved once,
at construction) and the random seed, which makes every facade run
reproducible: two sessions built from equal specs consume identical
randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.metrics import Metric, get_metric

__all__ = ["ProblemSpec"]


@dataclass(frozen=True)
class ProblemSpec:
    """A validated ``(eps, k, z)`` problem instance description.

    Parameters
    ----------
    k:
        Number of centers (``>= 1``).
    z:
        Outlier weight budget (``>= 0``).
    eps:
        Coreset quality parameter in ``(0, 1]``.
    metric:
        Metric instance, registry name (``"euclidean"``, ``"linf"``, ...)
        or ``None`` (Euclidean).  Resolved to a
        :class:`~repro.core.metrics.Metric` instance at construction.
    seed:
        Seed for every random choice a backend makes (sketch randomness,
        random partitioning).  ``None`` means fresh OS entropy — fine for
        production, but parity/replay tooling should always set it.
    dim:
        Ambient dimension ``d`` of the point space.  Required by the
        backends whose size thresholds depend on the doubling dimension
        (streaming, sliding-window, dynamic); ``None`` is accepted for
        purely offline/MPC use.
    executor:
        How backends fan out their machine-local work: ``"serial"``,
        ``"thread"``, ``"process"`` (optionally ``"thread:8"`` with an
        inline job count), or ``None`` for serial.  Honored by the MPC
        backends; results are bit-identical under every executor (see
        :mod:`repro.engine`).
    jobs:
        Worker count for the executor; ``None`` means one worker per
        item up to the CPU count.
    dtype:
        Distance-kernel precision (:mod:`repro.kernels`): ``None`` /
        ``"float64"`` is the bit-exact reference path; ``"float32"``
        halves kernel memory traffic at a documented ~1e-6 relative
        distance error.  Honored by every backend whose hot path runs
        the Greedy radius search (offline, MPC, session ``solve``).
    kernel_chunk:
        Rows per chunked distance block in the radius-search stack;
        ``None`` autotunes against a fixed working-set budget.
    kernel_backend:
        Distance-kernel implementation (:mod:`repro.kernels`): ``None`` /
        ``"numpy"`` is the default vectorized path; ``"numba"`` dispatches
        the hot kernels to compiled implementations when the optional
        ``repro[accel]`` extra is installed (bit-identical results).
        Validated by name only, so a spec naming ``"numba"`` can be
        stored/loaded on machines without the extra — availability is
        checked at solve time.
    prune:
        Grid pruning of the Greedy radius search
        (:func:`repro.core.greedy.charikar_greedy`): ``None`` / ``"auto"``
        prunes whenever the exactness gate applies, ``"off"`` (alias
        ``"dense"``) forces the dense chunked path, ``"grid"`` *requires*
        pruning and fails at solve time when the gate is inapplicable.
        Pruned results are bit-identical to the dense float64 reference.
    decision_jobs:
        Threads each pruned radius-search decision shards its cell scans
        across (``>= 1``; ``None`` means serial).  The deterministic
        shard reduction keeps results bit-identical to serial at any job
        count.  Independent of ``jobs``, which fans out per-machine MPC
        work.
    """

    k: int
    z: int
    eps: float
    metric: "Metric | str | None" = None
    seed: "int | None" = None
    dim: "int | None" = None
    executor: "str | None" = None
    jobs: "int | None" = None
    dtype: "str | None" = None
    kernel_chunk: "int | None" = None
    kernel_backend: "str | None" = None
    prune: "str | None" = None
    decision_jobs: "int | None" = None
    _metric_obj: Metric = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if int(self.k) < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if int(self.z) < 0:
            raise ValueError(f"z must be >= 0, got {self.z}")
        if not 0 < float(self.eps) <= 1:
            raise ValueError(f"eps must be in (0, 1], got {self.eps}")
        if self.dim is not None and int(self.dim) < 1:
            raise ValueError(f"dim must be >= 1, got {self.dim}")
        if self.seed is not None and int(self.seed) < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")
        if self.executor is not None and not isinstance(self.executor, str):
            raise ValueError(
                f"executor must be an executor name or None, got {self.executor!r}"
            )
        if self.jobs is not None and int(self.jobs) < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.dtype is not None:
            from ..kernels import resolve_dtype

            object.__setattr__(self, "dtype", resolve_dtype(self.dtype).name)
        if self.kernel_chunk is not None:
            if int(self.kernel_chunk) < 1:
                raise ValueError(
                    f"kernel_chunk must be >= 1, got {self.kernel_chunk}"
                )
            object.__setattr__(self, "kernel_chunk", int(self.kernel_chunk))
        if self.kernel_backend is not None:
            from ..kernels import resolve_backend

            object.__setattr__(
                self, "kernel_backend", resolve_backend(self.kernel_backend)
            )
        if self.jobs is not None:
            object.__setattr__(self, "jobs", int(self.jobs))
        if self.prune is not None:
            if self.prune not in ("auto", "off", "grid", "dense"):
                raise ValueError(
                    "prune must be 'auto', 'off', 'grid', 'dense' or None, "
                    f"got {self.prune!r}"
                )
        if self.decision_jobs is not None:
            if int(self.decision_jobs) < 1:
                raise ValueError(
                    f"decision_jobs must be >= 1, got {self.decision_jobs}"
                )
            object.__setattr__(self, "decision_jobs", int(self.decision_jobs))
        object.__setattr__(self, "k", int(self.k))
        object.__setattr__(self, "z", int(self.z))
        object.__setattr__(self, "eps", float(self.eps))
        if self.dim is not None:
            object.__setattr__(self, "dim", int(self.dim))
        if self.seed is not None:
            object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "_metric_obj", get_metric(self.metric))

    # -- resolved views ----------------------------------------------------

    @property
    def resolved_metric(self) -> Metric:
        """The :class:`Metric` instance the spec was resolved against."""
        return self._metric_obj

    @property
    def metric_name(self) -> str:
        """Short metric identifier (``"euclidean"``, ``"chebyshev"``, ...)."""
        return self._metric_obj.name

    def require_dim(self) -> int:
        """``dim``, raising a helpful error when the spec omitted it."""
        if self.dim is None:
            raise ValueError(
                "this backend needs ProblemSpec.dim (the ambient dimension); "
                "build the spec with ProblemSpec(k, z, eps, dim=d)"
            )
        return self.dim

    def rng(self, salt: int = 0) -> np.random.Generator:
        """A generator derived from ``seed`` (fresh entropy when unset).

        ``salt`` decorrelates independent consumers of the same spec
        (e.g. the partitioner and the sketch randomness).
        """
        if self.seed is None:
            return np.random.default_rng()
        return np.random.default_rng(self.seed + salt)

    def resolved_executor(self):
        """The :class:`~repro.engine.Executor` the spec's ``executor`` /
        ``jobs`` knobs describe (a fresh instance per call).  Same rule
        the MPC backends apply: ``jobs`` alone implies a thread pool,
        neither knob means serial."""
        from ..engine import get_executor  # local: keep spec import-light

        if self.executor is None and self.jobs is None:
            return get_executor(None)
        return get_executor(
            self.executor if self.executor is not None else "thread", self.jobs
        )

    # -- derivation --------------------------------------------------------

    def replace(self, **changes) -> "ProblemSpec":
        """A copy of the spec with the given fields replaced."""
        base = {
            "k": self.k, "z": self.z, "eps": self.eps,
            "metric": self.metric, "seed": self.seed, "dim": self.dim,
            "executor": self.executor, "jobs": self.jobs,
            "dtype": self.dtype, "kernel_chunk": self.kernel_chunk,
            "kernel_backend": self.kernel_backend,
            "prune": self.prune, "decision_jobs": self.decision_jobs,
        }
        base.update(changes)
        return ProblemSpec(**base)

    def as_dict(self) -> dict:
        """Plain-dict view (used by provenance records and reports)."""
        return {
            "k": self.k,
            "z": self.z,
            "eps": self.eps,
            "metric": self.metric_name,
            "seed": self.seed,
            "dim": self.dim,
            "executor": self.executor,
            "jobs": self.jobs,
            "dtype": self.dtype,
            "kernel_chunk": self.kernel_chunk,
            "kernel_backend": self.kernel_backend,
            "prune": self.prune,
            "decision_jobs": self.decision_jobs,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProblemSpec(k={self.k}, z={self.z}, eps={self.eps}, "
            f"metric={self.metric_name!r}, seed={self.seed}, dim={self.dim})"
        )

