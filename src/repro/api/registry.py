"""String-keyed backend registry.

Every coreset algorithm in the library self-registers here under a stable
name (``"insertion-only"``, ``"mpc-two-round"``, ...), so drivers,
benchmarks and services select implementations by configuration string
instead of importing concrete classes — the registry/driver pattern that
lets a comparison harness sweep ``available_backends()`` and lets future
sharding/caching layers target one construction point.

A registration carries metadata (paper algorithm, guarantee, model,
capabilities) alongside the factory, so ``backend_table()`` doubles as the
README's algorithm index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .backends import CoresetBackend
    from .spec import ProblemSpec

__all__ = [
    "BackendInfo",
    "BackendError",
    "UnknownBackendError",
    "DuplicateBackendError",
    "register_backend",
    "unregister_backend",
    "get_backend",
    "available_backends",
    "backend_table",
]


class BackendError(KeyError):
    """Base class for registry lookup/registration failures."""

    def __str__(self) -> str:  # KeyError quotes its payload; keep prose
        return self.args[0] if self.args else ""


class UnknownBackendError(BackendError):
    """Raised by :func:`get_backend` for an unregistered name."""


class DuplicateBackendError(BackendError):
    """Raised by :func:`register_backend` on a name collision."""


@dataclass(frozen=True)
class BackendInfo:
    """A registered backend: factory plus provenance metadata.

    Attributes
    ----------
    name:
        Registry key.
    factory:
        ``factory(spec, **options) -> CoresetBackend``.
    model:
        Computational model: ``"offline"``, ``"insertion-only"``,
        ``"fully-dynamic"``, ``"sliding-window"`` or ``"mpc"``.
    algorithm:
        Paper reference (e.g. ``"Algorithm 3 (Theorem 18)"``).
    guarantee:
        Human-readable guarantee/space statement for the backend table.
    supports_delete:
        Whether :meth:`CoresetBackend.delete` is implemented.
    deterministic:
        Whether equal specs (same seed irrelevant) give equal outputs.
    """

    name: str
    factory: "Callable[..., CoresetBackend]" = field(compare=False)
    model: str = "offline"
    algorithm: str = ""
    guarantee: str = ""
    supports_delete: bool = False
    deterministic: bool = True

    def create(self, spec: "ProblemSpec", **options) -> "CoresetBackend":
        """Instantiate the backend for ``spec``."""
        return self.factory(spec, **options)


_BACKENDS: "dict[str, BackendInfo]" = {}


def register_backend(
    name: str,
    factory: "Callable[..., CoresetBackend] | None" = None,
    *,
    model: str = "offline",
    algorithm: str = "",
    guarantee: str = "",
    supports_delete: bool = False,
    deterministic: bool = True,
    overwrite: bool = False,
) -> "Callable":
    """Register ``factory`` under ``name``.

    Usable directly (``register_backend("x", make_x)``) or as a class/
    function decorator::

        @register_backend("insertion-only", model="insertion-only", ...)
        class InsertionOnlyBackend: ...

    Raises :class:`DuplicateBackendError` when the name is taken and
    ``overwrite`` is False (tests and plugins pass ``overwrite=True`` to
    shadow a builtin deliberately).
    """

    def _register(f):
        if not name or not isinstance(name, str):
            raise ValueError("backend name must be a non-empty string")
        if name in _BACKENDS and not overwrite:
            raise DuplicateBackendError(
                f"backend {name!r} is already registered; pass overwrite=True "
                "to replace it"
            )
        _BACKENDS[name] = BackendInfo(
            name=name,
            factory=f,
            model=model,
            algorithm=algorithm,
            guarantee=guarantee,
            supports_delete=supports_delete,
            deterministic=deterministic,
        )
        return f

    if factory is not None:
        return _register(factory)
    return _register


def unregister_backend(name: str) -> None:
    """Remove a registration (primarily for test isolation)."""
    if name not in _BACKENDS:
        raise UnknownBackendError(f"backend {name!r} is not registered")
    del _BACKENDS[name]


def get_backend(name: str) -> BackendInfo:
    """Look up a registered backend by name.

    Raises :class:`UnknownBackendError` listing the known names — the
    error message is the discovery mechanism for CLI/config typos.
    """
    try:
        return _BACKENDS[name]
    except KeyError:
        raise UnknownBackendError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None


def available_backends(model: "str | None" = None) -> "list[str]":
    """Sorted names of all registered backends.

    ``model`` filters by computational model (``"mpc"``,
    ``"insertion-only"``, ...).
    """
    names = [
        n for n, info in _BACKENDS.items()
        if model is None or info.model == model
    ]
    return sorted(names)


def backend_table() -> "list[BackendInfo]":
    """All registrations, sorted by name (the README's backend table)."""
    return [_BACKENDS[n] for n in available_backends()]
