"""`KCenterSession` — one facade over every computational model.

A session binds a :class:`~repro.api.spec.ProblemSpec` to a registered
backend and exposes the uniform stream/query surface::

    spec = ProblemSpec(k=3, z=10, eps=0.5, dim=2, seed=0)
    sess = KCenterSession.from_spec(spec, backend="insertion-only")
    sess.extend(points)           # vectorized batched ingest (hot path)
    sol = sess.solve()            # enriched Solution with provenance

``extend(array)`` is the hot path: the array is handed to the backend in
one call, so vectorized backends evaluate one metric matrix (or one
cell-id pass) per batch instead of a per-point Python loop — the
difference ``benchmarks/bench_api_batched.py`` measures.

``solve()`` runs an offline solver on the maintained coreset (the
paper's end-to-end recipe) and returns a :class:`Solution` carrying full
provenance: backend name, the composed ``eps`` guarantee, coreset size,
update count and wall-clock time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.greedy import charikar_greedy
from ..core.points import WeightedPointSet
from ..core.solver import solve_kcenter_outliers
from .backends import CoresetBackend, Guarantee
from .registry import BackendInfo, get_backend
from .spec import ProblemSpec

__all__ = ["Solution", "KCenterSession"]


@dataclass(frozen=True)
class Solution:
    """A k-center-with-outliers solution with provenance.

    Extends the shape of :class:`repro.core.Solution` (``centers``,
    ``radius``, ``method``) with the facade's provenance record, so a
    result can be logged, compared across backends, and audited.
    """

    centers: np.ndarray
    radius: float
    method: str
    backend: str
    spec: ProblemSpec
    eps_guarantee: float
    coreset_size: int
    updates: int
    wall_time: float
    stats: dict = field(default_factory=dict)

    @property
    def approx_factor(self) -> str:
        """The end-to-end approximation statement of the Table 1 recipe."""
        if self.method == "brute":
            return f"(1 + {self.eps_guarantee:.3g})"
        return f"3 * (1 + {self.eps_guarantee:.3g})"


class KCenterSession:
    """Spec-driven facade over any registered coreset backend.

    Parameters
    ----------
    spec:
        The validated problem instance.
    backend:
        Registry name (see :func:`repro.api.available_backends`).
    **options:
        Backend-specific options (``delta_universe``, ``window``,
        ``num_machines``, ...), forwarded to the backend factory.
    """

    def __init__(self, spec: ProblemSpec, backend: str = "insertion-only",
                 **options):
        self.spec = spec
        self.info: BackendInfo = get_backend(backend)
        self.backend: CoresetBackend = self.info.create(spec, **options)
        self._updates = 0
        self._wall_time = 0.0

    @classmethod
    def from_spec(cls, spec: ProblemSpec, backend: str = "insertion-only",
                  **options) -> "KCenterSession":
        """Construct a session (the canonical entry point)."""
        return cls(spec, backend=backend, **options)

    # -- ingest ------------------------------------------------------------

    def insert(self, point) -> None:
        """Insert a single point."""
        t0 = time.perf_counter()
        self.backend.insert(point)
        self._updates += 1
        self._wall_time += time.perf_counter() - t0

    def delete(self, point) -> None:
        """Delete a point (fully-dynamic backends only)."""
        t0 = time.perf_counter()
        self.backend.delete(point)
        self._updates += 1
        self._wall_time += time.perf_counter() - t0

    def extend(self, points) -> None:
        """Batched ingest: the whole array goes to the backend in one
        call (the vectorized hot path)."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        t0 = time.perf_counter()
        self.backend.extend(pts)
        self._updates += len(pts)
        self._wall_time += time.perf_counter() - t0

    def delete_many(self, points) -> None:
        """Batched deletion (fully-dynamic backends only)."""
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        t0 = time.perf_counter()
        delete_many = getattr(self.backend, "delete_many", None)
        if delete_many is not None:
            delete_many(pts)
        else:
            for p in pts:
                self.backend.delete(p)
        self._updates += len(pts)
        self._wall_time += time.perf_counter() - t0

    # -- queries -----------------------------------------------------------

    def coreset(self) -> WeightedPointSet:
        """The backend's current ``(eps,k,z)``-coreset."""
        t0 = time.perf_counter()
        out = self.backend.coreset()
        self._wall_time += time.perf_counter() - t0
        return out

    def radius(self) -> float:
        """Greedy 3-approximate radius on the current coreset."""
        return self.solve(method="greedy3").radius

    def guarantee(self) -> Guarantee:
        """The backend's composed guarantee for its current output."""
        return self.backend.guarantee()

    def solve(self, method: str = "greedy3") -> Solution:
        """Run an offline solver on the maintained coreset.

        ``method="greedy3"`` (Charikar et al.) gives a
        ``3(1+eps)``-approximation; ``method="brute"`` an exact solve on
        the coreset, i.e. a ``(1+eps)``-approximation of the original
        instance (Definition 1).
        """
        t0 = time.perf_counter()
        cs = self.backend.coreset()
        spec = self.spec
        if len(cs) == 0 or cs.total_weight <= spec.z:
            centers = np.zeros((0, cs.dim if len(cs) else (spec.dim or 1)))
            radius = 0.0
        elif method == "greedy3":
            res = charikar_greedy(
                cs, spec.k, spec.z, spec.resolved_metric,
                dtype=spec.dtype, kernel_chunk=spec.kernel_chunk,
            )
            centers, radius = cs.points[res.centers_idx], res.radius
        else:
            sol = solve_kcenter_outliers(
                cs, spec.k, spec.z, spec.resolved_metric, method=method
            )
            centers, radius = sol.centers, sol.radius
        self._wall_time += time.perf_counter() - t0
        return Solution(
            centers=centers,
            radius=float(radius),
            method=method,
            backend=self.info.name,
            spec=spec,
            eps_guarantee=self.backend.guarantee().eps,
            coreset_size=len(cs),
            updates=self._updates,
            wall_time=self._wall_time,
            stats=self.backend.stats(),
        )

    # -- accounting --------------------------------------------------------

    @property
    def backend_name(self) -> str:
        """Registry name of the active backend."""
        return self.info.name

    @property
    def updates_seen(self) -> int:
        """Points ingested (inserts + deletes + batched rows)."""
        return self._updates

    @property
    def wall_time(self) -> float:
        """Accumulated seconds spent inside backend calls."""
        return self._wall_time

    def stats(self) -> dict:
        """Merged provenance: spec, backend stats, session accounting.

        Session-level keys (``backend``, ``model``, ``updates``,
        ``wall_time``) are authoritative and cannot be shadowed by a
        backend's own stats.
        """
        out = dict(self.spec.as_dict())
        out.update(self.backend.stats())
        out.update({
            "backend": self.info.name,
            "model": self.info.model,
            "updates": self._updates,
            "wall_time": self._wall_time,
        })
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KCenterSession(backend={self.info.name!r}, spec={self.spec!r}, "
            f"updates={self._updates})"
        )
