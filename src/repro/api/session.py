"""`KCenterSession` — one facade over every computational model.

A session binds a :class:`~repro.api.spec.ProblemSpec` to a registered
backend and exposes the uniform stream/query surface::

    spec = ProblemSpec(k=3, z=10, eps=0.5, dim=2, seed=0)
    sess = KCenterSession.from_spec(spec, backend="insertion-only")
    sess.extend(points)           # vectorized batched ingest (hot path)
    sol = sess.solve()            # enriched Solution with provenance

``extend(array)`` is the hot path: the array is handed to the backend in
one call, so vectorized backends evaluate one metric matrix (or one
cell-id pass) per batch instead of a per-point Python loop — the
difference ``benchmarks/bench_api_batched.py`` measures.

``solve()`` runs an offline solver on the maintained coreset (the
paper's end-to-end recipe) and returns a :class:`Solution` carrying full
provenance: backend name, the composed ``eps`` guarantee, coreset size,
update count and wall-clock time.

``save(path)`` / ``load(path)`` make a session durable: the backend's
full mutable state goes into a versioned snapshot file
(:mod:`repro.persist`), and a loaded session continues the stream
bit-identically to one that never stopped — the contract every
long-running streaming service and the matrix checkpointing rely on.

**Concurrency contract.** A session is thread-safe: every mutating or
state-reading operation (``insert``/``delete``/``extend``/
``delete_many``/``coreset``/``solve``/``save``/``stats``) runs under one
internal re-entrant lock, so concurrent callers serialize at operation
granularity — each batch is applied atomically and the accounting stays
exact.  What interleaved callers get is equivalent to *some* serial
order of their operations; for order-insensitive backends (the linear
dynamic sketches) that serial order is irrelevant and the final state is
bit-identical to any serial run of the same multiset
(``tests/test_api_threadsafety.py``).  The lock does not make multiple
*sessions* coordinate — that is the job of :mod:`repro.serve`'s session
manager.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.greedy import charikar_greedy
from ..core.metrics import get_metric
from ..core.points import WeightedPointSet
from ..core.solver import solve_kcenter_outliers
from ..persist import SnapshotError, read_snapshot, write_snapshot
from ..store import is_chunked, iter_point_chunks
from .backends import CoresetBackend, Guarantee, UnsupportedOperationError
from .registry import BackendInfo, get_backend
from .spec import ProblemSpec

__all__ = ["Solution", "KCenterSession"]

#: ``kind`` tag in session snapshot manifests.
_SNAPSHOT_KIND = "kcenter-session"


@dataclass(frozen=True)
class Solution:
    """A k-center-with-outliers solution with provenance.

    Extends the shape of :class:`repro.core.Solution` (``centers``,
    ``radius``, ``method``) with the facade's provenance record, so a
    result can be logged, compared across backends, and audited.
    """

    centers: np.ndarray
    radius: float
    method: str
    backend: str
    spec: ProblemSpec
    eps_guarantee: float
    coreset_size: int
    updates: int
    wall_time: float
    stats: dict = field(default_factory=dict)

    @property
    def approx_factor(self) -> str:
        """The end-to-end approximation statement of the Table 1 recipe."""
        if self.method == "brute":
            return f"(1 + {self.eps_guarantee:.3g})"
        return f"3 * (1 + {self.eps_guarantee:.3g})"


class KCenterSession:
    """Spec-driven facade over any registered coreset backend.

    Parameters
    ----------
    spec:
        The validated problem instance.
    backend:
        Registry name (see :func:`repro.api.available_backends`).
    **options:
        Backend-specific options (``delta_universe``, ``window``,
        ``num_machines``, ...), forwarded to the backend factory.
    """

    def __init__(self, spec: ProblemSpec, backend: str = "insertion-only",
                 **options):
        self.spec = spec
        self.info: BackendInfo = get_backend(backend)
        self.backend: CoresetBackend = self.info.create(spec, **options)
        self._options = dict(options)  # retained for save()'s manifest
        self._updates = 0
        self._wall_time = 0.0
        # one re-entrant lock serializes every backend-touching operation
        # (see the module docstring's concurrency contract)
        self._lock = threading.RLock()

    @classmethod
    def from_spec(cls, spec: ProblemSpec, backend: str = "insertion-only",
                  **options) -> "KCenterSession":
        """Construct a session (the canonical entry point)."""
        return cls(spec, backend=backend, **options)

    # -- ingest ------------------------------------------------------------

    def insert(self, point) -> None:
        """Insert a single point."""
        with self._lock:
            t0 = time.perf_counter()
            self.backend.insert(point)
            self._updates += 1
            self._wall_time += time.perf_counter() - t0

    def delete(self, point) -> None:
        """Delete a point (fully-dynamic backends only)."""
        delete = getattr(self.backend, "delete", None)
        if delete is None:
            raise UnsupportedOperationError(
                f"backend {self.info.name!r} does not support delete; use a "
                "fully-dynamic backend ('dynamic' or 'dynamic-deterministic')"
            )
        with self._lock:
            t0 = time.perf_counter()
            delete(point)
            self._updates += 1
            self._wall_time += time.perf_counter() - t0

    def extend(self, points, batch: "int | None" = None) -> None:
        """Batched ingest: the whole array goes to the backend in one
        call (the vectorized hot path).

        ``points`` may also be a :class:`~repro.store.PointSource` or a
        bare iterator/generator of ``(points, weights)`` chunks — the
        out-of-core path.  Chunks are applied one at a time under the
        session lock, so the working set is one chunk while the batch as
        a whole stays atomic with respect to concurrent callers, and the
        final state is bit-identical to one monolithic ``extend`` of the
        same stream (every backend's batch path is chunking-invariant).
        ``batch`` re-chunks a :class:`PointSource` to that many rows;
        it is ignored for dense arrays and pre-chunked iterators.
        """
        if is_chunked(points):
            with self._lock:
                t0 = time.perf_counter()
                for pts, w in iter_point_chunks(points, batch):
                    pts = np.atleast_2d(np.asarray(pts, dtype=float))
                    if not len(pts):
                        continue
                    if w is None:
                        self.backend.extend(pts)
                    else:
                        ew = getattr(self.backend, "extend_weighted", None)
                        if ew is None:
                            raise UnsupportedOperationError(
                                f"backend {self.info.name!r} does not accept "
                                "weighted chunks (no extend_weighted)"
                            )
                        ew(WeightedPointSet(pts, np.asarray(w, dtype=np.int64)))
                    self._updates += len(pts)
                self._wall_time += time.perf_counter() - t0
            return
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        with self._lock:
            t0 = time.perf_counter()
            self.backend.extend(pts)
            self._updates += len(pts)
            self._wall_time += time.perf_counter() - t0

    def delete_many(self, points) -> None:
        """Batched deletion (fully-dynamic backends only).

        Accounting is exact under failure: in the scalar fallback,
        ``updates_seen`` grows only by the deletions the backend actually
        applied; on the native ``delete_many`` path a failed batch counts
        zero, matching the built-in sketch backends' all-or-nothing batch
        contract (they validate the whole batch before mutating).
        Backends without any delete support raise a clear
        :class:`~repro.api.backends.UnsupportedOperationError` rather
        than an ``AttributeError``.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        delete_many = getattr(self.backend, "delete_many", None)
        delete = getattr(self.backend, "delete", None)
        if delete_many is None and delete is None:
            raise UnsupportedOperationError(
                f"backend {self.info.name!r} supports neither delete_many "
                "nor delete; use a fully-dynamic backend ('dynamic' or "
                "'dynamic-deterministic')"
            )
        with self._lock:
            t0 = time.perf_counter()
            applied = 0
            try:
                if delete_many is not None:
                    delete_many(pts)
                    applied = len(pts)
                else:
                    for p in pts:
                        delete(p)
                        applied += 1
            finally:
                self._updates += applied
                self._wall_time += time.perf_counter() - t0

    # -- queries -----------------------------------------------------------

    def coreset(self) -> WeightedPointSet:
        """The backend's current ``(eps,k,z)``-coreset."""
        with self._lock:
            t0 = time.perf_counter()
            out = self.backend.coreset()
            self._wall_time += time.perf_counter() - t0
        return out

    def radius(self) -> float:
        """Greedy 3-approximate radius on the current coreset."""
        return self.solve(method="greedy3").radius

    def guarantee(self) -> Guarantee:
        """The backend's composed guarantee for its current output."""
        return self.backend.guarantee()

    def solve(self, method: str = "greedy3") -> Solution:
        """Run an offline solver on the maintained coreset.

        ``method="greedy3"`` (Charikar et al.) gives a
        ``3(1+eps)``-approximation; ``method="brute"`` an exact solve on
        the coreset, i.e. a ``(1+eps)``-approximation of the original
        instance (Definition 1).
        """
        with self._lock:
            t0 = time.perf_counter()
            cs = self.backend.coreset()
            spec = self.spec
            greedy_path = None
            greedy_stats = None
            if len(cs) == 0 or cs.total_weight <= spec.z:
                centers = np.zeros((0, cs.dim if len(cs) else (spec.dim or 1)))
                radius = 0.0
            elif method == "greedy3":
                res = charikar_greedy(
                    cs, spec.k, spec.z, spec.resolved_metric,
                    dtype=spec.dtype, kernel_chunk=spec.kernel_chunk,
                    kernel_backend=spec.kernel_backend,
                    prune=spec.prune if spec.prune is not None else "auto",
                    decision_jobs=spec.decision_jobs,
                )
                centers, radius = cs.points[res.centers_idx], res.radius
                greedy_path = res.path
                greedy_stats = res.stats
            else:
                sol = solve_kcenter_outliers(
                    cs, spec.k, spec.z, spec.resolved_metric, method=method
                )
                centers, radius = sol.centers, sol.radius
            self._wall_time += time.perf_counter() - t0
            stats = dict(self.backend.stats())
            # kernel provenance: which backend the distance kernels ran on
            # and which decision path the greedy radius search took
            stats["kernel_backend"] = spec.kernel_backend or "numpy"
            if greedy_path is not None:
                stats["greedy_path"] = greedy_path
            if greedy_stats:
                # grid_builds / grid_reuses / decision_shards breakdown of
                # the grid-pruned radius search (JSON-safe ints)
                stats["greedy_stats"] = dict(greedy_stats)
            return Solution(
                centers=centers,
                radius=float(radius),
                method=method,
                backend=self.info.name,
                spec=spec,
                eps_guarantee=self.backend.guarantee().eps,
                coreset_size=len(cs),
                updates=self._updates,
                wall_time=self._wall_time,
                stats=stats,
            )

    # -- persistence -------------------------------------------------------

    def save(self, path: str, extra: "dict | None" = None) -> str:
        """Checkpoint the session to a snapshot file.

        The snapshot (see :mod:`repro.persist`) carries the backend's
        full mutable state plus the session's provenance — spec, backend
        name, construction options, ``updates_seen`` and ``wall_time`` —
        so :meth:`load` rebuilds an exact twin.  Restoring and continuing
        the stream is bit-identical to never having stopped.

        Parameters
        ----------
        path:
            Destination file (any extension; parent dirs are created).
        extra:
            Optional JSON-serializable caller payload stored under the
            manifest's ``extra`` key (the matrix checkpoints keep their
            batch cursor there).

        Raises
        ------
        UnsupportedOperationError
            When the backend does not implement the snapshot protocol.
        SnapshotError
            When an option or the metric cannot be represented in the
            portable format (callables, custom metric instances).
        """
        snap = getattr(self.backend, "snapshot", None)
        if snap is None:
            raise UnsupportedOperationError(
                f"backend {self.info.name!r} does not implement snapshot(); "
                "it cannot be saved"
            )
        try:
            get_metric(self.spec.metric_name)
        except ValueError as exc:
            raise SnapshotError(
                f"metric {self.spec.metric_name!r} is not resolvable by "
                f"name and cannot be persisted: {exc}"
            ) from exc
        options = {}
        for key, value in self._options.items():
            if isinstance(value, np.generic):
                value = value.item()  # numpy scalars are trivially portable
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                raise SnapshotError(
                    f"session option {key!r} ({type(value).__name__}) is not "
                    "JSON-serializable; sessions built with callables or "
                    "instances cannot be saved"
                ) from None
            options[key] = value
        from .. import __version__

        with self._lock:
            manifest = {
                "kind": _SNAPSHOT_KIND,
                "repro_version": __version__,
                "backend": self.info.name,
                "spec": self.spec.as_dict(),
                "options": options,
                "updates": self._updates,
                "wall_time": self._wall_time,
                "extra": extra or {},
            }
            state = snap()
        return write_snapshot(path, manifest, state)

    @classmethod
    def load(cls, path: str, backend: "str | None" = None,
             spec: "ProblemSpec | None" = None,
             mmap_dir: "str | None" = None, **options) -> "KCenterSession":
        """Rebuild a session from a :meth:`save` snapshot.

        The spec and backend are reconstructed from the manifest; the
        backend is created fresh (re-deriving any seeded randomness) and
        its mutable state restored, so continuing the stream yields
        bit-identical coresets, radii and stats to the uninterrupted run.
        ``updates_seen`` and ``wall_time`` provenance carry over.

        Parameters
        ----------
        path:
            Snapshot file written by :meth:`save`.
        backend:
            Expected backend name; a mismatch with the manifest raises
            (pass ``None`` to accept whatever was saved).
        spec:
            Expected :class:`ProblemSpec`; a mismatch raises.
        mmap_dir:
            Out-of-core restore: extract the array payload here and
            memory-map large state arrays (copy-on-write, so backends
            that mutate restored arrays stay correct while untouched
            pages never enter RAM).  The extracted
            ``<snapshot>.payload.npz`` must outlive the session; the
            caller owns its cleanup.  See
            :func:`repro.persist.read_snapshot`.
        **options:
            Overrides layered over the saved construction options.
            Only *recompute-time* knobs may change on resume
            (``executor``, ``jobs``, ``num_machines``, kernel knobs);
            geometry-defining options (``window``, ``r_min``/``r_max``,
            ``delta_universe``, sketch sizing) are part of the state's
            meaning and the backend's ``restore`` rejects a mismatch
            with :class:`SnapshotError`.

        Raises
        ------
        SnapshotError
            Unreadable file, unknown format version, kind/backend/spec
            mismatch, or state that fails the backend's validation.
        """
        manifest, state = read_snapshot(path, mmap_dir=mmap_dir,
                                        mmap_mode="c")
        if manifest.get("kind") != _SNAPSHOT_KIND:
            raise SnapshotError(
                f"{path!r} is not a KCenterSession snapshot "
                f"(kind={manifest.get('kind')!r})"
            )
        return cls.from_snapshot(manifest, state, backend=backend,
                                 spec=spec, **options)

    @classmethod
    def from_snapshot(cls, manifest: dict, state: dict,
                      backend: "str | None" = None,
                      spec: "ProblemSpec | None" = None,
                      **options) -> "KCenterSession":
        """Rebuild a session from an already-read ``(manifest, state)``
        pair (see :func:`repro.persist.read_snapshot`).

        :meth:`load` is this plus the file read; callers that inspect the
        manifest before deciding to resume (the matrix checkpoints) use
        this to avoid parsing the snapshot twice.  Same validation and
        provenance semantics as :meth:`load`.
        """
        if manifest.get("kind") != _SNAPSHOT_KIND:
            raise SnapshotError(
                f"manifest is not a KCenterSession snapshot "
                f"(kind={manifest.get('kind')!r})"
            )
        name = manifest.get("backend")
        if not isinstance(name, str):
            raise SnapshotError("snapshot manifest is missing a backend name")
        if backend is not None and backend != name:
            raise SnapshotError(
                f"snapshot holds backend {name!r}, caller expected "
                f"{backend!r}"
            )
        spec_dict = manifest.get("spec")
        if not isinstance(spec_dict, dict):
            raise SnapshotError("snapshot manifest is missing the spec dict")
        try:
            loaded_spec = ProblemSpec(**spec_dict)
        except (TypeError, ValueError) as exc:
            raise SnapshotError(
                f"snapshot spec does not reconstruct: {exc}"
            ) from exc
        if spec is not None and spec.as_dict() != loaded_spec.as_dict():
            raise SnapshotError(
                f"snapshot spec {loaded_spec.as_dict()} != caller spec "
                f"{spec.as_dict()}"
            )
        opts = dict(manifest.get("options", {}))
        opts.update(options)
        sess = cls(loaded_spec, backend=name, **opts)
        restore = getattr(sess.backend, "restore", None)
        if restore is None:
            raise SnapshotError(
                f"backend {name!r} (as currently registered) does not "
                "implement restore()"
            )
        restore(state)
        sess._updates = int(manifest.get("updates", 0))
        sess._wall_time = float(manifest.get("wall_time", 0.0))
        return sess

    # -- accounting --------------------------------------------------------

    @property
    def backend_name(self) -> str:
        """Registry name of the active backend."""
        return self.info.name

    @property
    def updates_seen(self) -> int:
        """Points ingested (inserts + deletes + batched rows)."""
        return self._updates

    @property
    def wall_time(self) -> float:
        """Accumulated seconds spent inside backend calls."""
        return self._wall_time

    def stats(self) -> dict:
        """Merged provenance: spec, backend stats, session accounting.

        Session-level keys (``backend``, ``model``, ``updates``,
        ``wall_time``) are authoritative and cannot be shadowed by a
        backend's own stats.
        """
        with self._lock:
            out = dict(self.spec.as_dict())
            out.update(self.backend.stats())
            out.update({
                "backend": self.info.name,
                "model": self.info.model,
                "updates": self._updates,
                "wall_time": self._wall_time,
            })
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KCenterSession(backend={self.info.name!r}, spec={self.spec!r}, "
            f"updates={self._updates})"
        )
