"""The common backend protocol and the built-in backend adapters.

The paper's thesis is that one object — the ``(eps, k, z)``-mini-ball-
covering coreset — underlies every computational model it studies.  This
module makes that concrete in code: every coreset algorithm in the
library (offline, insertion-only streaming, fully dynamic, sliding
window, and the three MPC algorithms plus prior-work baselines) is
wrapped in a :class:`CoresetBackend` with the same five operations

    ``insert / delete / extend / coreset() / guarantee()``

and self-registered in :mod:`repro.api.registry` under a stable name.
:class:`~repro.api.session.KCenterSession` drives any of them
interchangeably.

Batch discipline: ``extend(array)`` is the hot path.  Adapters forward to
the wrapped structure's vectorized batch entry point where one exists
(one metric-matrix / cell-id evaluation per batch) and buffer whole
arrays where the algorithm is inherently offline, so per-point Python
loops never appear on the facade's ingest path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..core.mbc import MiniBallCovering, compose_errors, mbc_construction
from ..core.points import WeightedPointSet
from ..mpc.baselines import (
    ceccarello_one_round_deterministic,
    ceccarello_one_round_randomized,
)
from ..mpc.multi_round import multi_round_coreset
from ..mpc.one_round import one_round_coreset
from ..mpc.partition import (
    partition_contiguous,
    partition_random,
    recommended_num_machines,
)
from ..mpc.result import MPCCoresetResult
from ..mpc.two_round import two_round_coreset
from ..streaming.baseline_ceccarello import CeccarelloStreamingCoreset
from ..streaming.dynamic import DynamicCoreset
from ..streaming.dynamic_deterministic import DeterministicDynamicCoreset
from ..streaming.insertion_only import InsertionOnlyCoreset
from ..streaming.sliding_window import SlidingWindowCoreset
from ..store import is_chunked, iter_point_chunks
from .registry import register_backend
from .spec import ProblemSpec

__all__ = [
    "Guarantee",
    "UnsupportedOperationError",
    "CoresetBackend",
    "OfflineMBCBackend",
    "InsertionOnlyBackend",
    "CeccarelloStreamBackend",
    "DynamicBackend",
    "DeterministicDynamicBackend",
    "SlidingWindowBackend",
    "MPCBackend",
    "TwoRoundMPCBackend",
    "OneRoundMPCBackend",
    "MultiRoundMPCBackend",
    "CPPDeterministicMPCBackend",
    "CPPRandomizedMPCBackend",
]


class UnsupportedOperationError(NotImplementedError):
    """An operation the backend's computational model does not offer
    (e.g. ``delete`` on an insertion-only stream)."""


@dataclass(frozen=True)
class Guarantee:
    """What the backend's ``coreset()`` provably is.

    Attributes
    ----------
    eps:
        The composed error: the output is an ``(eps, k, z)``-coreset of
        the ingested input (whp for randomized backends).
    model:
        Computational model the guarantee holds in.
    space:
        Asymptotic storage statement from the paper's Table 1.
    note:
        Caveats (distribution assumptions, relaxed coresets, ...).
    """

    eps: float
    model: str
    space: str = ""
    note: str = ""


@runtime_checkable
class CoresetBackend(Protocol):
    """Structural protocol every registered backend satisfies."""

    spec: ProblemSpec

    def insert(self, point) -> None:
        """Insert a single point."""

    def delete(self, point) -> None:
        """Delete a point (fully-dynamic models only)."""

    def extend(self, points) -> None:
        """Batched ingest of a whole array of points."""

    def coreset(self) -> WeightedPointSet:
        """The current ``(eps, k, z)``-coreset."""

    def guarantee(self) -> Guarantee:
        """The composed guarantee for the current output."""

    def stats(self) -> dict:
        """Backend-specific diagnostics (sizes, thresholds, sketch
        cells); may be empty.  Required: ``KCenterSession.solve`` and
        the scenario matrix read it."""


class _BackendBase:
    """Shared plumbing: spec storage and default method behaviour."""

    def __init__(self, spec: ProblemSpec):
        if not isinstance(spec, ProblemSpec):
            raise TypeError(f"spec must be a ProblemSpec, got {type(spec).__name__}")
        self.spec = spec

    def insert(self, point) -> None:
        raise NotImplementedError

    def delete(self, point) -> None:
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not support deletions; use a "
            "fully-dynamic backend ('dynamic' or 'dynamic-deterministic')"
        )

    def extend(self, points) -> None:
        if is_chunked(points):
            return self._extend_chunks(points)
        for p in np.atleast_2d(np.asarray(points, dtype=float)):
            self.insert(p)

    def _extend_chunks(self, chunks) -> None:
        """Ingest a :class:`~repro.store.PointSource` / chunk iterator by
        re-entering :meth:`extend` per chunk.  Bit-identical to one
        monolithic ``extend``: every backend's batch path is
        chunking-invariant (property-tested in
        ``tests/test_out_of_core.py``).  Weighted chunks route through
        ``extend_weighted`` where the backend has one."""
        for pts, w in iter_point_chunks(chunks):
            pts = np.atleast_2d(np.asarray(pts, dtype=float))
            if not len(pts):
                continue
            if w is None:
                self.extend(pts)
                continue
            ew = getattr(self, "extend_weighted", None)
            if ew is None:
                raise UnsupportedOperationError(
                    f"{type(self).__name__} does not accept weighted "
                    "chunks (no extend_weighted); expand the weights or "
                    "use a buffered backend"
                )
            ew(WeightedPointSet(pts, np.asarray(w, dtype=np.int64)))

    def coreset(self) -> WeightedPointSet:
        raise NotImplementedError

    def guarantee(self) -> Guarantee:
        raise NotImplementedError

    def stats(self) -> dict:
        """Backend-specific diagnostics (sizes, thresholds, sketch cells)."""
        return {}

    def snapshot(self) -> dict:
        """Placeholder: subclasses that can be checkpointed override this
        (see :mod:`repro.persist`); the base raises so
        ``supports_snapshot`` can tell the difference."""
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not implement snapshot(); this "
            "backend cannot be checkpointed"
        )

    snapshot.unsupported = True  # type: ignore[attr-defined]

    def restore(self, state: dict) -> None:
        """Placeholder counterpart of :meth:`snapshot`."""
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not implement restore(); this "
            "backend cannot be checkpointed"
        )

    restore.unsupported = True  # type: ignore[attr-defined]


class _AlgoSnapshotMixin:
    """Snapshot plumbing for adapters whose entire mutable state lives in
    the wrapped ``self.algo`` structure."""

    algo: object

    def snapshot(self) -> dict:
        """Delegate to the wrapped structure's ``snapshot()``."""
        return self.algo.snapshot()

    def restore(self, state: dict) -> None:
        """Delegate to the wrapped structure's ``restore(state)``."""
        self.algo.restore(state)


class _BufferedBackendBase(_BackendBase):
    """Shared plumbing for batch backends that buffer raw input and run
    their algorithm at ``coreset()`` time (offline MBC, the MPC round
    protocols).  Subclasses override :meth:`_invalidate` to drop their
    cached result when the buffer changes."""

    def __init__(self, spec: ProblemSpec):
        super().__init__(spec)
        self._chunks: "list[np.ndarray]" = []
        self._weights: "list[np.ndarray]" = []

    def _invalidate(self) -> None:
        """Called whenever the buffered input changes."""

    def insert(self, point) -> None:
        self.extend(np.asarray(point, dtype=float).reshape(1, -1))

    def extend(self, points) -> None:
        if is_chunked(points):
            return self._extend_chunks(points)
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if len(pts) == 0:
            return
        self._chunks.append(pts)
        self._weights.append(np.ones(len(pts), dtype=np.int64))
        self._invalidate()

    def extend_weighted(self, wps: WeightedPointSet) -> None:
        """Ingest an already-weighted point set (coreset hand-off)."""
        if len(wps) == 0:
            return
        self._chunks.append(np.asarray(wps.points, dtype=float))
        self._weights.append(np.asarray(wps.weights, dtype=np.int64))
        self._invalidate()

    def point_set(self) -> WeightedPointSet:
        """The buffered input as one weighted point set."""
        if not self._chunks:
            return WeightedPointSet.empty(self.spec.dim or 1)
        return WeightedPointSet(
            np.concatenate(self._chunks, axis=0),
            np.concatenate(self._weights),
        )

    @property
    def buffered(self) -> int:
        """Number of buffered input rows."""
        return int(sum(len(c) for c in self._chunks))

    def snapshot(self) -> dict:
        """The buffered input (chunk boundaries are not state: every
        consumer concatenates, so one chunk restores equivalently).
        Cached protocol results are recomputed on demand — deterministic
        given the spec's seed."""
        if self._chunks:
            pts = np.concatenate(self._chunks, axis=0)
            w = np.concatenate(self._weights)
        else:
            pts = np.zeros((0, self.spec.dim or 1))
            w = np.zeros(0, dtype=np.int64)
        return {"points": pts, "weights": w}

    def restore(self, state: dict) -> None:
        """Replace the buffer with a :meth:`snapshot`'s contents."""
        from ..persist import SnapshotError

        pts = np.asarray(state["points"], dtype=float)
        w = np.asarray(state["weights"], dtype=np.int64)
        if pts.ndim != 2 or w.shape != (len(pts),):
            raise SnapshotError(
                f"buffered snapshot arrays inconsistent: points {pts.shape}, "
                f"weights {w.shape}"
            )
        self._chunks = [pts] if len(pts) else []
        self._weights = [w] if len(pts) else []
        self._invalidate()


# ---------------------------------------------------------------------------
# Offline (Algorithm 1)
# ---------------------------------------------------------------------------


@register_backend(
    "offline",
    model="offline",
    algorithm="Algorithm 1, MBCConstruction (Lemma 7)",
    guarantee="(eps,k,z)-coreset of size k*(12/eps)^d + z",
)
class OfflineMBCBackend(_BufferedBackendBase):
    """Buffers the input and runs ``MBCConstruction`` at query time.

    The buffered points are the ground truth; ``last_mbc`` retains the
    full :class:`MiniBallCovering` (with its assignment) from the most
    recent ``coreset()`` call so callers can verify the covering
    properties.
    """

    def __init__(self, spec: ProblemSpec):
        super().__init__(spec)
        self.last_mbc: "MiniBallCovering | None" = None

    def _invalidate(self) -> None:
        self.last_mbc = None

    def coreset(self) -> WeightedPointSet:
        """Run ``MBCConstruction`` on the buffer (cached until it changes)."""
        if self.last_mbc is not None:  # buffer unchanged since last query
            return self.last_mbc.coreset
        P = self.point_set()
        if len(P) == 0:
            return P
        self.last_mbc = mbc_construction(
            P, self.spec.k, self.spec.z, self.spec.eps, self.spec.resolved_metric,
            dtype=self.spec.dtype, kernel_chunk=self.spec.kernel_chunk,
            kernel_backend=self.spec.kernel_backend, prune=self.spec.prune,
            decision_jobs=self.spec.decision_jobs,
        )
        return self.last_mbc.coreset

    def guarantee(self) -> Guarantee:
        """Lemma 7: an ``(eps,k,z)``-coreset of the buffered input."""
        return Guarantee(
            eps=self.spec.eps,
            model="offline",
            space="k*(12/eps)^d + z (Lemma 7)",
        )

    def stats(self) -> dict:
        """Buffered rows and the size of the last coreset."""
        return {
            "buffered": self.buffered,
            "coreset": self.last_mbc.size if self.last_mbc else None,
        }


# ---------------------------------------------------------------------------
# Insertion-only streaming (Algorithm 3) and the CPP19 baseline
# ---------------------------------------------------------------------------


class _StreamingBackendBase(_AlgoSnapshotMixin, _BackendBase):
    """Common adapter over the Algorithm-3-shaped streaming structures."""

    algo: InsertionOnlyCoreset

    def insert(self, point) -> None:
        self.algo.insert(point)

    def extend(self, points) -> None:
        # vectorized batch path: one pairwise matrix per recompression epoch
        if is_chunked(points):
            return self._extend_chunks(points)
        self.algo.extend(points)

    def coreset(self) -> WeightedPointSet:
        return self.algo.coreset()

    def stats(self) -> dict:
        return {
            "stored": self.algo.size,
            "threshold": self.algo.threshold,
            "r": self.algo.r,
            "doublings": self.algo.doublings,
        }


@register_backend(
    "insertion-only",
    model="insertion-only",
    algorithm="Algorithm 3 (Theorem 18)",
    guarantee="(eps,k,z)-coreset, O(k/eps^d + z) space (optimal)",
)
class InsertionOnlyBackend(_StreamingBackendBase):
    """The paper's space-optimal insertion-only streaming coreset."""

    def __init__(self, spec: ProblemSpec, size_cap: "int | None" = None):
        super().__init__(spec)
        self.algo = InsertionOnlyCoreset(
            spec.k, spec.z, spec.eps, spec.require_dim(),
            metric=spec.resolved_metric, size_cap=size_cap,
        )

    def guarantee(self) -> Guarantee:
        """Theorem 18: optimal ``O(k/eps^d + z)`` streaming space."""
        return Guarantee(
            eps=self.spec.eps,
            model="insertion-only",
            space="k*(16/eps)^d + z (Theorem 18)",
        )


@register_backend(
    "ceccarello-stream",
    model="insertion-only",
    algorithm="CPP19 streaming baseline (Table 1 row 6)",
    guarantee="(eps,k,z)-coreset, O((k+z)/eps^d) space",
)
class CeccarelloStreamBackend(_StreamingBackendBase):
    """Prior-work baseline whose storage pays 1/eps^d on the z term."""

    def __init__(self, spec: ProblemSpec):
        super().__init__(spec)
        self.algo = CeccarelloStreamingCoreset(
            spec.k, spec.z, spec.eps, spec.require_dim(),
            metric=spec.resolved_metric,
        )

    def guarantee(self) -> Guarantee:
        """CPP19 baseline: ``1/eps^d`` paid on the z term too."""
        return Guarantee(
            eps=self.spec.eps,
            model="insertion-only",
            space="(k+z)*(16/eps)^d (CPP19)",
        )


# ---------------------------------------------------------------------------
# Fully dynamic (Algorithm 5 and the deterministic variant)
# ---------------------------------------------------------------------------


@register_backend(
    "dynamic",
    model="fully-dynamic",
    algorithm="Algorithm 5 (Theorem 21)",
    guarantee="relaxed (eps,k,z)-coreset whp, O((k/eps^d+z) polylog) space",
    supports_delete=True,
    deterministic=False,
)
class DynamicBackend(_AlgoSnapshotMixin, _BackendBase):
    """Sketch-based fully dynamic coreset over ``[Delta]^d``.

    Options
    -------
    delta_universe:
        Universe size ``Delta`` (coordinates are integers in
        ``1..Delta``).  Required.
    failure, use_f0, s_override:
        Forwarded to :class:`DynamicCoreset`.
    """

    def __init__(
        self,
        spec: ProblemSpec,
        delta_universe: "int | None" = None,
        failure: float = 0.05,
        use_f0: bool = True,
        s_override: "int | None" = None,
    ):
        super().__init__(spec)
        if delta_universe is None:
            raise ValueError(
                "the 'dynamic' backend needs delta_universe (the integer "
                "universe size); pass it as a session option"
            )
        self.algo = DynamicCoreset(
            spec.k, spec.z, spec.eps, int(delta_universe), spec.require_dim(),
            failure=failure, rng=spec.rng(), use_f0=use_f0,
            s_override=s_override,
        )

    def insert(self, point) -> None:
        """Sketch-update one inserted point."""
        self.algo.insert(point)

    def delete(self, point) -> None:
        """Sketch-update one deleted point."""
        self.algo.delete(point)

    def extend(self, points) -> None:
        """Batched sketch updates for inserted points."""
        if is_chunked(points):
            return self._extend_chunks(points)
        self.algo.extend(points)

    def delete_many(self, points) -> None:
        """Batched sketch updates for deleted points."""
        self.algo.delete_many(points)

    def coreset(self) -> WeightedPointSet:
        """Decode the sketches into the current relaxed coreset."""
        return self.algo.coreset()

    def guarantee(self) -> Guarantee:
        """Theorem 21: relaxed coreset whp, polylog sketch cells."""
        return Guarantee(
            eps=self.spec.eps,
            model="fully-dynamic",
            space="O((k/eps^d + z) log^4(k Delta / eps delta)) (Theorem 21)",
            note="relaxed coreset; holds with high probability",
        )

    def stats(self) -> dict:
        """Sketch-cell storage and update accounting."""
        return {
            "storage_cells": self.algo.storage_cells,
            "sketch_updates": self.algo.updates_seen,
            "levels": self.algo.hier.num_levels,
        }


@register_backend(
    "dynamic-deterministic",
    model="fully-dynamic",
    algorithm="§5 deterministic variant (Vandermonde sketches)",
    guarantee="relaxed (eps,k,z)-coreset, O((k/eps^d+z) log Delta) space",
    supports_delete=True,
)
class DeterministicDynamicBackend(_AlgoSnapshotMixin, _BackendBase):
    """Deterministic fully dynamic coreset (no randomness anywhere).

    Options: ``delta_universe`` (required), ``check``, ``s_override``.
    """

    def __init__(
        self,
        spec: ProblemSpec,
        delta_universe: "int | None" = None,
        check: int = 4,
        s_override: "int | None" = None,
    ):
        super().__init__(spec)
        if delta_universe is None:
            raise ValueError(
                "the 'dynamic-deterministic' backend needs delta_universe; "
                "pass it as a session option"
            )
        self.algo = DeterministicDynamicCoreset(
            spec.k, spec.z, spec.eps, int(delta_universe), spec.require_dim(),
            check=check, s_override=s_override,
        )

    def insert(self, point) -> None:
        """Sketch-update one inserted point."""
        self.algo.insert(point)

    def delete(self, point) -> None:
        """Sketch-update one deleted point."""
        self.algo.delete(point)

    def extend(self, points) -> None:
        """Batched sketch updates for inserted points."""
        if is_chunked(points):
            return self._extend_chunks(points)
        self.algo.extend(points)

    def delete_many(self, points) -> None:
        """Batched sketch updates for deleted points."""
        self.algo.delete_many(points)

    def coreset(self) -> WeightedPointSet:
        """Decode the sketches into the current relaxed coreset."""
        return self.algo.coreset()

    def guarantee(self) -> Guarantee:
        """Deterministic relaxed coreset, ``O(... log Delta)`` elements."""
        return Guarantee(
            eps=self.spec.eps,
            model="fully-dynamic",
            space="O((k/eps^d + z) log Delta) field elements",
            note="deterministic; sparsity test is the decoder consistency check",
        )

    def stats(self) -> dict:
        """Sketch-cell storage and update accounting."""
        return {
            "storage_cells": self.algo.storage_cells,
            "sketch_updates": self.algo.updates_seen,
        }


# ---------------------------------------------------------------------------
# Sliding window (DBMZ substrate, §6)
# ---------------------------------------------------------------------------


@register_backend(
    "sliding-window",
    model="sliding-window",
    algorithm="DBMZ (ESA 2021) substrate; optimal by Theorem 30",
    guarantee="window coreset, O((kz/eps^d) log sigma) space",
)
class SlidingWindowBackend(_AlgoSnapshotMixin, _BackendBase):
    """Per-radius-guess covers of the last ``W`` arrivals.

    Options
    -------
    window:
        Window length ``W`` in arrivals.  Required.
    r_min, r_max:
        Distance-scale bounds of the guess ladder.  Required.
    ladder_ratio, capacity:
        Forwarded to :class:`SlidingWindowCoreset`.
    """

    def __init__(
        self,
        spec: ProblemSpec,
        window: "int | None" = None,
        r_min: "float | None" = None,
        r_max: "float | None" = None,
        ladder_ratio: float = 2.0,
        capacity: "int | None" = None,
    ):
        super().__init__(spec)
        if window is None or r_min is None or r_max is None:
            raise ValueError(
                "the 'sliding-window' backend needs window, r_min and r_max; "
                "pass them as session options"
            )
        self.algo = SlidingWindowCoreset(
            spec.k, spec.z, spec.eps, spec.require_dim(), int(window),
            r_min=float(r_min), r_max=float(r_max),
            metric=spec.resolved_metric, ladder_ratio=ladder_ratio,
            capacity=capacity, dtype=spec.dtype, kernel_chunk=spec.kernel_chunk,
            kernel_backend=spec.kernel_backend,
        )

    def insert(self, point) -> None:
        """Insert one arrival into every radius-guess cover."""
        self.algo.insert(point)

    def extend(self, points) -> None:
        """Batched ingest across the whole guess ladder at once."""
        if is_chunked(points):
            return self._extend_chunks(points)
        self.algo.extend(points)

    def coreset(self) -> WeightedPointSet:
        """Coreset of the current window (last ``W`` arrivals)."""
        return self.algo.coreset()

    def guarantee(self) -> Guarantee:
        """Theorem 30: optimal sliding-window space."""
        return Guarantee(
            eps=self.spec.eps,
            model="sliding-window",
            space="O((k z / eps^d) log sigma) (optimal, Theorem 30)",
            note="coreset of the current window only",
        )

    def stats(self) -> dict:
        """Ladder storage, guess count and the current clock."""
        return {
            "stored": self.algo.stored_items,
            "guesses": self.algo.num_guesses,
            "now": self.algo.now,
        }


# ---------------------------------------------------------------------------
# MPC (Algorithms 2, 6, 7 and the CPP19 baselines)
# ---------------------------------------------------------------------------


class MPCBackend(_BufferedBackendBase):
    """Shared machinery for the simulated-MPC backends.

    Points are buffered locally (the facade plays the role of the data
    source); ``coreset()`` partitions them over ``m`` machines and runs
    the round protocol, retaining the full :class:`MPCCoresetResult`
    (round/storage/communication accounting) as ``last_result``.

    Options
    -------
    num_machines:
        ``m``; ``None`` uses the paper's ``O(sqrt(n eps^d / k))``
        recommendation at query time.
    partition:
        ``"contiguous"`` (arbitrary/adversarial order), ``"random"``
        (the randomized algorithms' input model), or a callable
        ``P -> list[WeightedPointSet]`` for custom distributions.
    executor, jobs:
        How machine-local work fans out (see :mod:`repro.engine`):
        executor name or instance plus worker count.  Defaults to the
        spec's ``executor``/``jobs`` fields; ``jobs`` alone implies a
        thread pool.  Results are bit-identical under every executor.
    dtype, kernel_chunk, kernel_backend, prune, decision_jobs:
        Distance-kernel and grid-pruning knobs (:mod:`repro.kernels`,
        :func:`repro.core.greedy.charikar_greedy`) for the machine-local
        radius searches and MBC constructions; default to the spec's
        fields, session options override.
    """

    #: default partition scheme; deterministic algorithms tolerate any
    default_partition = "contiguous"

    def __init__(
        self,
        spec: ProblemSpec,
        num_machines: "int | None" = None,
        partition=None,
        executor=None,
        jobs: "int | None" = None,
        dtype=None,
        kernel_chunk: "int | None" = None,
        kernel_backend: "str | None" = None,
        prune: "str | None" = None,
        decision_jobs: "int | None" = None,
    ):
        super().__init__(spec)
        self.num_machines = num_machines
        self.partition = partition if partition is not None else self.default_partition
        self.executor = self._resolve_executor(executor, jobs)
        self.dtype = dtype if dtype is not None else spec.dtype
        self.kernel_chunk = (
            kernel_chunk if kernel_chunk is not None else spec.kernel_chunk
        )
        self.kernel_backend = (
            kernel_backend if kernel_backend is not None else spec.kernel_backend
        )
        self.prune = prune if prune is not None else spec.prune
        self.decision_jobs = (
            decision_jobs if decision_jobs is not None else spec.decision_jobs
        )
        self.last_result: "MPCCoresetResult | None" = None

    def _resolve_executor(self, executor, jobs):
        """Session options override the spec's knobs; ``None`` (no knob
        anywhere) defers to the protocol's legacy ``parallel`` flag."""
        name = executor if executor is not None else self.spec.executor
        j = jobs if jobs is not None else self.spec.jobs
        if name is None and j is None:
            return None
        from ..engine import get_executor

        return get_executor(name if name is not None else "thread", j)

    def _invalidate(self) -> None:
        self.last_result = None

    def _partition(self, P: WeightedPointSet) -> "list[WeightedPointSet]":
        if callable(self.partition):
            return self.partition(P)
        m = self.num_machines
        if m is None:
            d = self.spec.dim if self.spec.dim is not None else P.dim
            m = recommended_num_machines(
                len(P), self.spec.k, self.spec.z, self.spec.eps, d
            )
        if self.partition == "contiguous":
            return partition_contiguous(P, m)
        if self.partition == "random":
            return partition_random(P, m, self.spec.rng(salt=1))
        raise ValueError(
            f"unknown partition scheme {self.partition!r}; use 'contiguous', "
            "'random', or a callable"
        )

    def _run(self, parts: "list[WeightedPointSet]") -> MPCCoresetResult:
        raise NotImplementedError

    def coreset(self) -> WeightedPointSet:
        """Partition the buffer and run the round protocol (cached)."""
        if self.last_result is not None:  # buffer unchanged since last query
            return self.last_result.coreset
        P = self.point_set()
        if len(P) == 0:
            return P
        self.last_result = self._run(self._partition(P))
        return self.last_result.coreset

    def stats(self) -> dict:
        """Round/storage accounting of the last protocol run."""
        out = {"buffered": self.buffered}
        if self.last_result is not None:
            s = self.last_result.stats
            out.update({
                "rounds": s.rounds,
                "coordinator_peak": s.coordinator_peak,
                "worker_peak": s.worker_peak,
                "coreset": len(self.last_result.coreset),
            })
        return out


@register_backend(
    "mpc-two-round",
    model="mpc",
    algorithm="Algorithm 2 (Theorem 10)",
    guarantee="(3eps,k,z)-coreset in 2 rounds, arbitrary distribution",
)
class TwoRoundMPCBackend(MPCBackend):
    """Deterministic 2-round algorithm with outlier guessing."""

    def __init__(self, spec, num_machines=None, partition=None,
                 parallel: bool = False, final_compress: bool = True,
                 outlier_guessing: bool = True, executor=None,
                 jobs: "int | None" = None, dtype=None,
                 kernel_chunk: "int | None" = None,
                 kernel_backend: "str | None" = None,
                 prune: "str | None" = None,
                 decision_jobs: "int | None" = None):
        super().__init__(spec, num_machines, partition, executor, jobs,
                         dtype, kernel_chunk, kernel_backend, prune,
                         decision_jobs)
        self.parallel = bool(parallel)
        self.final_compress = bool(final_compress)
        self.outlier_guessing = bool(outlier_guessing)

    def _run(self, parts):
        return two_round_coreset(
            parts, self.spec.k, self.spec.z, self.spec.eps,
            metric=self.spec.resolved_metric,
            final_compress=self.final_compress,
            outlier_guessing=self.outlier_guessing,
            parallel=self.parallel,
            executor=self.executor,
            dtype=self.dtype,
            kernel_chunk=self.kernel_chunk,
            kernel_backend=self.kernel_backend,
            prune=self.prune,
            decision_jobs=self.decision_jobs,
        )

    def guarantee(self) -> Guarantee:
        """Theorem 10: deterministic 2-round ``(3eps,k,z)``-coreset."""
        eps = self.spec.eps
        return Guarantee(
            eps=compose_errors(eps, eps) if self.final_compress else eps,
            model="mpc",
            space="O(sqrt(nk/eps^d) + k/eps^d + z) per machine (Theorem 10)",
            note="deterministic; any input distribution",
        )


@register_backend(
    "mpc-one-round",
    model="mpc",
    algorithm="Algorithm 6 (Theorem 33)",
    guarantee="(3eps,k,z)-coreset whp in 1 round, random distribution",
    deterministic=False,
)
class OneRoundMPCBackend(MPCBackend):
    """Randomized 1-round algorithm (random-distribution assumption)."""

    default_partition = "random"

    def __init__(self, spec, num_machines=None, partition=None,
                 parallel: bool = False, final_compress: bool = True,
                 executor=None, jobs: "int | None" = None, dtype=None,
                 kernel_chunk: "int | None" = None,
                 kernel_backend: "str | None" = None,
                 prune: "str | None" = None,
                 decision_jobs: "int | None" = None):
        super().__init__(spec, num_machines, partition, executor, jobs,
                         dtype, kernel_chunk, kernel_backend, prune,
                         decision_jobs)
        self.parallel = bool(parallel)
        self.final_compress = bool(final_compress)

    def _run(self, parts):
        return one_round_coreset(
            parts, self.spec.k, self.spec.z, self.spec.eps,
            metric=self.spec.resolved_metric,
            final_compress=self.final_compress,
            parallel=self.parallel,
            executor=self.executor,
            dtype=self.dtype,
            kernel_chunk=self.kernel_chunk,
            kernel_backend=self.kernel_backend,
            prune=self.prune,
            decision_jobs=self.decision_jobs,
        )

    def guarantee(self) -> Guarantee:
        """Theorem 33: 1-round whp coreset under random distribution."""
        eps = self.spec.eps
        return Guarantee(
            eps=compose_errors(eps, eps) if self.final_compress else eps,
            model="mpc",
            space="O(sqrt(nk/eps^d) + k/eps^d + z) per machine (Theorem 33)",
            note="requires randomly distributed input; holds whp",
        )


@register_backend(
    "mpc-multi-round",
    model="mpc",
    algorithm="Algorithm 7 (Theorem 35)",
    guarantee="((1+eps)^R - 1, k, z)-coreset in R rounds",
)
class MultiRoundMPCBackend(MPCBackend):
    """Deterministic R-round reduction tree (rounds/storage trade-off)."""

    def __init__(self, spec, num_machines=None, partition=None,
                 rounds: int = 2, executor=None, jobs: "int | None" = None,
                 dtype=None, kernel_chunk: "int | None" = None,
                 kernel_backend: "str | None" = None,
                 prune: "str | None" = None,
                 decision_jobs: "int | None" = None):
        super().__init__(spec, num_machines, partition, executor, jobs,
                         dtype, kernel_chunk, kernel_backend, prune,
                         decision_jobs)
        if int(rounds) < 1:
            raise ValueError("rounds must be >= 1")
        self.rounds = int(rounds)

    def _run(self, parts):
        return multi_round_coreset(
            parts, self.spec.k, self.spec.z, self.spec.eps,
            rounds=self.rounds, metric=self.spec.resolved_metric,
            executor=self.executor,
            dtype=self.dtype,
            kernel_chunk=self.kernel_chunk,
            kernel_backend=self.kernel_backend,
            prune=self.prune,
            decision_jobs=self.decision_jobs,
        )

    def guarantee(self) -> Guarantee:
        """Theorem 35: ``((1+eps)^R - 1)`` error in ``R`` rounds."""
        return Guarantee(
            eps=(1.0 + self.spec.eps) ** self.rounds - 1.0,
            model="mpc",
            space="O(m^(1/R) * (k/eps^d + z)) per machine (Theorem 35)",
            note=f"R={self.rounds} rounds; deterministic",
        )


@register_backend(
    "cpp-mpc-deterministic",
    model="mpc",
    algorithm="CPP19 deterministic 1-round (Table 1 row 3)",
    guarantee="(eps,k,z)-coreset; every machine budgets the full z",
)
class CPPDeterministicMPCBackend(MPCBackend):
    """Prior-work deterministic baseline (no outlier guessing)."""

    def _run(self, parts):
        return ceccarello_one_round_deterministic(
            parts, self.spec.k, self.spec.z, self.spec.eps,
            metric=self.spec.resolved_metric, executor=self.executor,
        )

    def guarantee(self) -> Guarantee:
        """CPP19 deterministic baseline guarantee."""
        return Guarantee(
            eps=self.spec.eps,
            model="mpc",
            space="O((k+z)/eps^d) per machine (CPP19)",
            note="deterministic baseline; z budget on every machine",
        )


@register_backend(
    "cpp-mpc-randomized",
    model="mpc",
    algorithm="CPP19 randomized 1-round (Table 1 row 1)",
    guarantee="(eps,k,z)-coreset whp, random distribution",
    deterministic=False,
)
class CPPRandomizedMPCBackend(MPCBackend):
    """Prior-work randomized baseline (random-distribution budgets)."""

    default_partition = "random"

    def _run(self, parts):
        return ceccarello_one_round_randomized(
            parts, self.spec.k, self.spec.z, self.spec.eps,
            metric=self.spec.resolved_metric, executor=self.executor,
        )

    def guarantee(self) -> Guarantee:
        """CPP19 randomized baseline guarantee (whp)."""
        return Guarantee(
            eps=self.spec.eps,
            model="mpc",
            space="O((k + z/m + log n)/eps^d) per machine (CPP19)",
            note="requires randomly distributed input; holds whp",
        )
