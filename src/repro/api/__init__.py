"""`repro.api` — the unified facade over every model in the library.

One problem, five computational models, one API:

* :class:`ProblemSpec` — the validated ``(k, z, eps, metric, seed, dim)``
  instance description every backend consumes;
* the **backend registry** — ``register_backend`` / ``get_backend`` /
  ``available_backends``, under which all coreset algorithms (offline,
  insertion-only, fully dynamic, sliding window, MPC, baselines)
  self-register behind the :class:`CoresetBackend` protocol;
* :class:`KCenterSession` — the driver: batched ``extend``, model-aware
  ``insert``/``delete``, ``coreset()``, an enriched ``solve()``, and
  ``save()``/``load()`` durable checkpoints (:mod:`repro.persist`)
  whose restore-then-continue is bit-identical to an uninterrupted run.

Quickstart::

    from repro.api import ProblemSpec, KCenterSession

    spec = ProblemSpec(k=3, z=10, eps=0.5, dim=2, seed=0)
    sess = KCenterSession.from_spec(spec, backend="insertion-only")
    sess.extend(points)
    print(sess.solve())
"""

from .spec import ProblemSpec
from .registry import (
    BackendError,
    BackendInfo,
    DuplicateBackendError,
    UnknownBackendError,
    available_backends,
    backend_table,
    get_backend,
    register_backend,
    unregister_backend,
)
from .backends import (  # noqa: F401 - importing registers the builtins
    CoresetBackend,
    Guarantee,
    UnsupportedOperationError,
)
from ..persist import SnapshotError
from .session import KCenterSession, Solution

__all__ = [
    "BackendError",
    "SnapshotError",
    "BackendInfo",
    "CoresetBackend",
    "DuplicateBackendError",
    "Guarantee",
    "KCenterSession",
    "ProblemSpec",
    "Solution",
    "UnknownBackendError",
    "UnsupportedOperationError",
    "available_backends",
    "backend_table",
    "get_backend",
    "register_backend",
    "unregister_backend",
]
