"""Synthetic workload generators.

The paper's algorithms are motivated by large noisy data sets (§1): sensor
fleets, image features, health records — clustered mass plus sparse
anomalies.  These generators produce exactly that structure with full
control over ``k`` (true clusters), ``z`` (planted outliers), dimension
and spread, plus the adversarial orderings the streaming sections assume.
"""

from __future__ import annotations

import numpy as np

from ..core.points import WeightedPointSet

__all__ = [
    "ClusteredWorkload",
    "clustered_with_outliers",
    "drifting_stream",
    "integer_workload",
]


class ClusteredWorkload:
    """A generated instance: points plus planted structure.

    Attributes
    ----------
    points:
        ``(n, d)`` array; the first ``n - z`` rows are cluster points, the
        last ``z`` rows are planted outliers (before shuffling; use
        ``outlier_mask``).
    outlier_mask:
        Boolean mask of the planted outliers.
    centers:
        True cluster centres (for reference only; algorithms never see
        them).
    """

    def __init__(self, points: np.ndarray, outlier_mask: np.ndarray, centers: np.ndarray):
        self.points = points
        self.outlier_mask = outlier_mask
        self.centers = centers

    def point_set(self) -> WeightedPointSet:
        """Unit-weight :class:`WeightedPointSet` over all points."""
        return WeightedPointSet.from_points(self.points)

    def __len__(self) -> int:
        return len(self.points)


def clustered_with_outliers(
    n: int,
    k: int,
    z: int,
    d: int = 2,
    cluster_std: float = 0.5,
    center_spread: float = 20.0,
    outlier_spread: float = 100.0,
    rng: "np.random.Generator | None" = None,
    shuffle: bool = True,
) -> ClusteredWorkload:
    """Gaussian mixture of ``k`` clusters plus ``z`` uniform outliers.

    ``n`` counts all points (``n - z`` cluster points).  Outliers are
    sampled uniformly from a shell well outside the cluster region, so
    they are unambiguous at the generated scales.
    """
    rng = rng or np.random.default_rng()
    if z > n:
        raise ValueError("z cannot exceed n")
    centers = rng.uniform(-center_spread, center_spread, size=(k, d))
    n_in = n - z
    assign = rng.integers(0, k, size=n_in)
    cluster_pts = centers[assign] + rng.normal(0.0, cluster_std, size=(n_in, d))
    # outliers on a distant shell
    dirs = rng.normal(size=(z, d))
    norms = np.linalg.norm(dirs, axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    radii = rng.uniform(outlier_spread, 2 * outlier_spread, size=(z, 1))
    outliers = dirs / norms * radii
    pts = np.concatenate([cluster_pts, outliers]) if z else cluster_pts
    mask = np.zeros(n, dtype=bool)
    mask[n_in:] = True
    if shuffle:
        perm = rng.permutation(n)
        pts, mask = pts[perm], mask[perm]
    return ClusteredWorkload(pts, mask, centers)


def drifting_stream(
    n: int,
    k: int,
    z: int,
    d: int = 2,
    drift: float = 0.01,
    cluster_std: float = 0.3,
    outlier_spread: float = 50.0,
    rng: "np.random.Generator | None" = None,
) -> np.ndarray:
    """A stream whose cluster centres drift over time — the sliding-window
    and streaming scenario (recent points form tight clusters; outliers
    are injected uniformly at random times)."""
    rng = rng or np.random.default_rng()
    centers = rng.uniform(-10, 10, size=(k, d))
    velocity = rng.normal(0, drift, size=(k, d))
    out = np.empty((n, d))
    outlier_times = set(rng.choice(n, size=min(z, n), replace=False).tolist())
    for t in range(n):
        centers = centers + velocity
        if t in outlier_times:
            v = rng.normal(size=d)
            v /= max(np.linalg.norm(v), 1e-12)
            out[t] = v * rng.uniform(outlier_spread, 2 * outlier_spread)
        else:
            c = int(rng.integers(0, k))
            out[t] = centers[c] + rng.normal(0, cluster_std, size=d)
    return out


def integer_workload(
    n: int,
    k: int,
    z: int,
    delta_universe: int,
    d: int = 2,
    cluster_radius: int = 4,
    rng: "np.random.Generator | None" = None,
) -> ClusteredWorkload:
    """Clustered points on the integer grid ``[Delta]^d`` — the fully
    dynamic algorithm's input domain (§5)."""
    rng = rng or np.random.default_rng()
    if delta_universe < 4 * cluster_radius:
        raise ValueError("universe too small for the cluster radius")
    lo = 1 + cluster_radius
    hi = delta_universe - cluster_radius
    centers = rng.integers(lo, hi + 1, size=(k, d))
    n_in = n - z
    assign = rng.integers(0, k, size=n_in)
    offsets = rng.integers(-cluster_radius, cluster_radius + 1, size=(n_in, d))
    cluster_pts = np.clip(centers[assign] + offsets, 1, delta_universe)
    outliers = rng.integers(1, delta_universe + 1, size=(z, d))
    pts = np.concatenate([cluster_pts, outliers]) if z else cluster_pts
    mask = np.zeros(n, dtype=bool)
    mask[n_in:] = True
    perm = rng.permutation(n)
    return ClusteredWorkload(pts[perm].astype(np.int64), mask[perm], centers)
