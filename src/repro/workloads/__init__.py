"""Workload generators for experiments, examples and benches."""

from .graph import (
    estimate_doubling_dimension,
    graph_clustered_workload,
    grid_graph_metric,
)
from .synthetic import (
    ClusteredWorkload,
    clustered_with_outliers,
    drifting_stream,
    integer_workload,
)

__all__ = [
    "ClusteredWorkload",
    "clustered_with_outliers",
    "drifting_stream",
    "estimate_doubling_dimension",
    "graph_clustered_workload",
    "grid_graph_metric",
    "integer_workload",
]
