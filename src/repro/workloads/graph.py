"""Graph-metric workloads (general metric spaces of bounded doubling
dimension).

The paper's algorithms are stated for arbitrary metric spaces of doubling
dimension ``d`` — not just ``R^d``.  Shortest-path metrics of grid-like
graphs (road networks) are the canonical such spaces: a planar grid graph
has doubling dimension O(1).  These helpers build a networkx graph, turn
its shortest-path matrix into a
:class:`~repro.core.metrics.PrecomputedMetric`, and plant a
clusters-plus-outliers workload directly in the graph: cluster points are
nodes inside small balls around hub nodes, outliers are nodes far from
every hub.
"""

from __future__ import annotations

import numpy as np

from ..core.metrics import PrecomputedMetric
from ..core.points import WeightedPointSet

__all__ = [
    "grid_graph_metric",
    "graph_clustered_workload",
    "estimate_doubling_dimension",
]


def grid_graph_metric(
    rows: int,
    cols: int,
    perturb: float = 0.0,
    rng: "np.random.Generator | None" = None,
) -> PrecomputedMetric:
    """Shortest-path metric of an ``rows x cols`` grid graph.

    ``perturb > 0`` adds random edge weights in ``[1, 1+perturb]`` so
    distances are generic (no massive ties).  Grid graphs have constant
    doubling dimension (~2), recorded on the returned metric.
    """
    import networkx as nx

    rng = rng or np.random.default_rng()
    G = nx.grid_2d_graph(rows, cols)
    if perturb > 0:
        for u, v in G.edges:
            G.edges[u, v]["weight"] = 1.0 + float(rng.uniform(0, perturb))
        lengths = dict(nx.all_pairs_dijkstra_path_length(G))
    else:
        lengths = dict(nx.all_pairs_shortest_path_length(G))
    nodes = sorted(G.nodes)
    index = {v: i for i, v in enumerate(nodes)}
    n = len(nodes)
    D = np.zeros((n, n))
    for u, dists in lengths.items():
        for v, d in dists.items():
            D[index[u], index[v]] = float(d)
    metric = PrecomputedMetric(D, name=f"grid{rows}x{cols}", doubling=2)
    return metric


def graph_clustered_workload(
    metric: PrecomputedMetric,
    k: int,
    z: int,
    cluster_radius: float,
    rng: "np.random.Generator | None" = None,
) -> "tuple[WeightedPointSet, np.ndarray, np.ndarray]":
    """Plant ``k`` hub-ball clusters and ``z`` far outliers in a finite
    metric space.

    Hubs are chosen by farthest-point traversal (well separated); cluster
    members are every node within ``cluster_radius`` of a hub; the ``z``
    outliers are the nodes farthest from all hubs.  Returns
    ``(point_set, outlier_mask, hub_ids)`` where the point set's
    "coordinates" are single-column element ids.
    """
    rng = rng or np.random.default_rng()
    n = metric.n_elements
    D = metric.D
    if k < 1 or z < 0 or k + z > n:
        raise ValueError("need 1 <= k and k + z <= n")
    # farthest-point hubs
    hubs = [int(rng.integers(0, n))]
    dmin = D[hubs[0]].copy()
    while len(hubs) < k:
        nxt = int(np.argmax(dmin))
        hubs.append(nxt)
        dmin = np.minimum(dmin, D[nxt])
    hub_dist = D[np.asarray(hubs)].min(axis=0)
    members = np.flatnonzero(hub_dist <= cluster_radius)
    # outliers: farthest nodes from every hub, excluding cluster members
    order = np.argsort(hub_dist)[::-1]
    outliers = [int(i) for i in order if i not in set(members.tolist())][:z]
    ids = np.concatenate([members, np.asarray(outliers, dtype=np.int64)])
    mask = np.zeros(len(ids), dtype=bool)
    mask[len(members):] = True
    perm = rng.permutation(len(ids))
    pts = ids[perm].astype(float).reshape(-1, 1)
    return WeightedPointSet.from_points(pts), mask[perm], np.asarray(hubs)


def estimate_doubling_dimension(
    metric: PrecomputedMetric, trials: int = 32,
    rng: "np.random.Generator | None" = None,
) -> float:
    """Empirical doubling dimension: the maximum over sampled balls
    ``b(p, r)`` of ``log2`` of the number of ``r/2``-balls needed to cover
    it (greedy cover)."""
    rng = rng or np.random.default_rng()
    D = metric.D
    n = len(D)
    worst = 1.0
    radii = np.unique(D[D > 0])
    if len(radii) == 0:
        return 0.0
    for _ in range(trials):
        p = int(rng.integers(0, n))
        r = float(rng.choice(radii))
        ball = np.flatnonzero(D[p] <= r)
        if len(ball) <= 1:
            continue
        # greedy cover of `ball` by r/2-balls centred at its points
        uncovered = set(ball.tolist())
        count = 0
        while uncovered:
            q = next(iter(uncovered))
            cover = {int(i) for i in ball if D[q, i] <= r / 2.0}
            uncovered -= cover | {q}
            count += 1
        worst = max(worst, float(count))
    return float(np.log2(worst))
