"""Dependency-free statistics for the verification harness.

Every estimator here is deterministic under a fixed seed and safe on
degenerate input (one sample, all ties, constant values), because the
callers are CI gates: a flaky or crashing statistic would be worse than
no statistic at all.  Randomized procedures (bootstrap resampling,
sign-flip permutation) derive their generators from
:class:`numpy.random.SeedSequence` seeded with the caller's root seed
plus a *stable* digest of the caller-supplied key (scenario/backend
names hashed with SHA-256, never Python's randomized ``hash``), so the
same inputs produce the same intervals and p-values in every process —
the foundation of the matrix's ``--jobs`` byte-parity guarantee.

Provided:

* :func:`summarize` — mean, bootstrap confidence interval and quantiles
  of one sample (the replicated-cell aggregate);
* :func:`sign_test` — exact two-sided paired sign test (ties dropped);
* :func:`paired_bootstrap` — paired mean difference with a bootstrap
  CI and a sign-flip permutation p-value;
* :func:`holm` — Holm step-down multiple-comparison correction;
* :func:`paired_comparison` — the combined paired report the
  significance matrix (:mod:`repro.verify.significance`) is built from.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Summary",
    "SignTest",
    "PairedComparison",
    "stable_entropy",
    "derived_rng",
    "summarize",
    "sign_test",
    "paired_bootstrap",
    "holm",
    "paired_comparison",
]

#: quantile levels reported by :func:`summarize`, with their JSON names
QUANTILES = (
    ("min", 0.0),
    ("p25", 0.25),
    ("median", 0.5),
    ("p75", 0.75),
    ("max", 1.0),
)


def stable_entropy(*tokens) -> "list[int]":
    """Process-independent entropy words derived from ``tokens``.

    SHA-256 over the ``repr`` of each token (joined with a separator
    byte) folded into eight 32-bit words — unlike builtin ``hash``,
    identical across processes, platforms and ``PYTHONHASHSEED``
    values, so seeding a generator with it keeps randomized statistics
    reproducible wherever they run.

    Parameters
    ----------
    *tokens:
        Any reprable values identifying the consumer (metric names,
        scenario/backend pairs, ...).

    Returns
    -------
    list of int
        Eight unsigned 32-bit words.
    """
    digest = hashlib.sha256(
        b"\x1f".join(repr(t).encode() for t in tokens)
    ).digest()
    return [int.from_bytes(digest[i:i + 4], "little") for i in range(0, 32, 4)]


def derived_rng(seed: int, *tokens) -> np.random.Generator:
    """A generator depending only on ``(seed, tokens)``.

    The :class:`~numpy.random.SeedSequence` is fed the root seed plus
    :func:`stable_entropy` of the tokens, mirroring the engine's
    ``SeedSequence.spawn`` discipline: every consumer gets an
    independent, replayable stream no matter which process runs it.
    """
    return np.random.default_rng(
        np.random.SeedSequence([int(seed) & 0xFFFFFFFF, *stable_entropy(*tokens)])
    )


def _clean(values) -> np.ndarray:
    """Input sample as a finite float64 vector (raises on empty/NaN)."""
    arr = np.asarray(list(values), dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("empty sample")
    if not np.all(np.isfinite(arr)):
        raise ValueError("sample contains non-finite values")
    return arr


@dataclass(frozen=True)
class Summary:
    """Aggregate of one replicated sample.

    Attributes
    ----------
    n:
        Sample size.
    mean:
        Sample mean.
    ci_lo, ci_hi:
        Bootstrap percentile confidence interval for the mean, widened
        (if ever necessary) to contain the sample mean itself.
    confidence:
        The interval's nominal coverage (e.g. ``0.95``).
    quantiles:
        ``{"min", "p25", "median", "p75", "max"}`` of the sample.
    """

    n: int
    mean: float
    ci_lo: float
    ci_hi: float
    confidence: float
    quantiles: "dict[str, float]" = field(default_factory=dict)

    def as_dict(self) -> dict:
        """The JSON-ready form emitted by the matrix."""
        return {
            "n": int(self.n),
            "mean": float(self.mean),
            "ci_lo": float(self.ci_lo),
            "ci_hi": float(self.ci_hi),
            "confidence": float(self.confidence),
            "quantiles": {k: float(v) for k, v in self.quantiles.items()},
        }


def summarize(
    values,
    *,
    confidence: float = 0.95,
    n_boot: int = 1000,
    seed: int = 0,
    key: tuple = (),
) -> Summary:
    """Mean, bootstrap CI and quantiles of one sample.

    Parameters
    ----------
    values:
        The sample (non-empty, finite).
    confidence:
        Nominal CI coverage, in ``(0, 1)``.
    n_boot:
        Bootstrap resamples; a single-value sample skips resampling
        (its interval is the point itself).
    seed, key:
        Determinism anchors — see :func:`derived_rng`.

    Returns
    -------
    Summary
        The aggregate.  ``ci_lo <= mean <= ci_hi`` always holds: the
        percentile interval is clamped around the sample mean, so a
        downstream gate can rely on the point estimate being covered.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    arr = _clean(values)
    mean = float(arr.mean())
    if arr.size == 1 or np.all(arr == arr[0]):
        lo = hi = mean
    else:
        rng = derived_rng(seed, "summarize", *key)
        idx = rng.integers(0, arr.size, size=(int(n_boot), arr.size))
        means = arr[idx].mean(axis=1)
        alpha = (1.0 - confidence) / 2.0
        lo = float(np.quantile(means, alpha))
        hi = float(np.quantile(means, 1.0 - alpha))
        lo, hi = min(lo, mean), max(hi, mean)
    qs = {name: float(np.quantile(arr, q)) for name, q in QUANTILES}
    return Summary(n=int(arr.size), mean=mean, ci_lo=lo, ci_hi=hi,
                   confidence=float(confidence), quantiles=qs)


@dataclass(frozen=True)
class SignTest:
    """Exact two-sided paired sign test.

    Attributes
    ----------
    n_pairs:
        Pairs supplied (ties included).
    n_pos, n_neg, n_ties:
        Sign counts of the differences.
    p:
        Two-sided exact binomial p-value over the untied pairs;
        ``1.0`` when every pair is a tie (no evidence either way).
    """

    n_pairs: int
    n_pos: int
    n_neg: int
    n_ties: int
    p: float


def sign_test(diffs) -> SignTest:
    """Exact two-sided sign test on paired differences.

    Ties (zero differences) are dropped, the standard treatment; with
    *every* pair tied the test degenerates gracefully to ``p = 1.0``
    instead of dividing by zero.

    Parameters
    ----------
    diffs:
        Paired differences ``a_i - b_i``.

    Returns
    -------
    SignTest
        Counts and the exact p-value.  Swapping the labels (negating
        every difference) provably leaves ``p`` unchanged.
    """
    arr = _clean(diffs)
    n_pos = int(np.sum(arr > 0))
    n_neg = int(np.sum(arr < 0))
    n = n_pos + n_neg
    if n == 0:
        return SignTest(int(arr.size), 0, 0, int(arr.size), 1.0)
    # two-sided exact binomial(n, 1/2) tail at min(n_pos, n_neg)
    k = min(n_pos, n_neg)
    tail = sum(math.comb(n, i) for i in range(k + 1)) / 2.0 ** n
    p = min(1.0, 2.0 * tail)
    return SignTest(int(arr.size), n_pos, n_neg, int(arr.size) - n, float(p))


def paired_bootstrap(
    diffs,
    *,
    confidence: float = 0.95,
    n_boot: int = 1000,
    seed: int = 0,
    key: tuple = (),
) -> "tuple[float, float, float, float]":
    """Bootstrap mean difference with a sign-flip permutation p-value.

    Two resampling procedures over the paired differences:

    * a **percentile bootstrap** of the mean difference gives the
      confidence interval (clamped to contain the observed mean, as in
      :func:`summarize`);
    * a **sign-flip permutation** gives the p-value — under the null of
      a distribution symmetric about zero, each difference's sign is
      exchangeable, so ``p`` is the fraction of random flips whose
      ``|mean|`` reaches the observed one (with the standard ``+1``
      smoothing so ``p`` is never exactly zero).

    Parameters
    ----------
    diffs:
        Paired differences ``a_i - b_i``.
    confidence, n_boot, seed, key:
        As in :func:`summarize`.

    Returns
    -------
    tuple
        ``(mean_diff, ci_lo, ci_hi, p)``.  All-tie input returns
        ``(0.0, 0.0, 0.0, 1.0)`` — never a division by zero.
    """
    arr = _clean(diffs)
    mean = float(arr.mean())
    if np.all(arr == 0):
        return 0.0, 0.0, 0.0, 1.0
    if arr.size == 1:
        return mean, mean, mean, 1.0
    summary = summarize(arr, confidence=confidence, n_boot=n_boot,
                        seed=seed, key=("paired-ci", *key))
    rng = derived_rng(seed, "sign-flip", *key)
    flips = rng.integers(0, 2, size=(int(n_boot), arr.size)) * 2 - 1
    flipped = (flips * arr).mean(axis=1)
    p = (1.0 + float(np.sum(np.abs(flipped) >= abs(mean) - 1e-15))) \
        / (float(n_boot) + 1.0)
    return mean, summary.ci_lo, summary.ci_hi, min(1.0, p)


def holm(pvalues) -> "list[float]":
    """Holm step-down adjusted p-values.

    Sorts the raw p-values ascending, multiplies the *i*-th smallest by
    ``(m - i)``, enforces monotonicity with a running maximum, clips at
    one, and restores the input order.  Controls the family-wise error
    rate at level alpha when comparing each adjusted value against
    alpha, with no independence assumption.

    Parameters
    ----------
    pvalues:
        Raw p-values in ``[0, 1]`` (any order; empty input allowed).

    Returns
    -------
    list of float
        Adjusted p-values, in the input order.  The adjustment is
        monotone: a smaller raw p-value never receives a larger
        adjusted value than a bigger raw one.
    """
    raw = [float(p) for p in pvalues]
    if not raw:
        return []
    for p in raw:
        if not 0.0 <= p <= 1.0 or math.isnan(p):
            raise ValueError(f"p-values must be in [0, 1], got {p}")
    m = len(raw)
    order = sorted(range(m), key=lambda i: raw[i])
    adjusted = [0.0] * m
    running = 0.0
    for rank, i in enumerate(order):
        running = max(running, (m - rank) * raw[i])
        adjusted[i] = min(1.0, running)
    return adjusted


@dataclass(frozen=True)
class PairedComparison:
    """One paired backend-vs-backend comparison on one metric.

    Attributes
    ----------
    n_pairs:
        Paired observations (shared ``(scenario, seed)`` cells).
    mean_diff:
        Mean of ``a - b`` (negative means ``a`` scored lower).
    ci_lo, ci_hi:
        Bootstrap CI of the mean difference.
    sign:
        The exact :class:`SignTest` over the same pairs.
    p:
        The sign-flip permutation p-value (:func:`paired_bootstrap`).
    """

    n_pairs: int
    mean_diff: float
    ci_lo: float
    ci_hi: float
    sign: SignTest
    p: float

    def as_dict(self) -> dict:
        """The JSON-ready form emitted inside the significance matrix."""
        return {
            "n_pairs": int(self.n_pairs),
            "mean_diff": float(self.mean_diff),
            "ci_lo": float(self.ci_lo),
            "ci_hi": float(self.ci_hi),
            "sign_p": float(self.sign.p),
            "n_pos": int(self.sign.n_pos),
            "n_neg": int(self.sign.n_neg),
            "n_ties": int(self.sign.n_ties),
            "boot_p": float(self.p),
        }


def paired_comparison(
    a,
    b,
    *,
    confidence: float = 0.95,
    n_boot: int = 1000,
    seed: int = 0,
    key: tuple = (),
) -> PairedComparison:
    """Compare two paired samples: sign test + bootstrap mean difference.

    Parameters
    ----------
    a, b:
        Equal-length paired samples (``a_i`` and ``b_i`` measured under
        the same ``(scenario, seed)`` condition).
    confidence, n_boot, seed, key:
        As in :func:`summarize`.

    Returns
    -------
    PairedComparison
        The combined report; degenerate all-tie input yields
        ``mean_diff = 0`` with both p-values at ``1.0``.
    """
    av, bv = _clean(a), _clean(b)
    if av.size != bv.size:
        raise ValueError(
            f"paired samples must have equal length, got {av.size} != {bv.size}"
        )
    diffs = av - bv
    st = sign_test(diffs)
    mean, lo, hi, p = paired_bootstrap(
        diffs, confidence=confidence, n_boot=n_boot, seed=seed, key=key
    )
    return PairedComparison(n_pairs=int(diffs.size), mean_diff=mean,
                            ci_lo=lo, ci_hi=hi, sign=st, p=p)
