"""Pairwise backend significance over replicated matrix cells.

Takes the flat cell list a replicated sweep produced
(:mod:`repro.scenarios.matrix`) and answers the question the single-seed
matrix could not: *is backend A actually better than backend B, or did
one seed get lucky?*  Backends are paired on shared ``(scenario, seed)``
conditions — the same materialized stream — so the comparison is a
paired design: per pair of backends and per metric it runs the exact
sign test and the bootstrap mean-difference test
(:mod:`repro.verify.stats`), then Holm-corrects each test family (all
backend pairs of one metric) so the emitted verdicts control the
family-wise error rate.

All metrics compared here are *lower-is-better* (radius ratio, peak
storage, wall time), so a significantly negative mean difference means
the first backend wins.
"""

from __future__ import annotations

from .stats import holm, paired_comparison, summarize

__all__ = [
    "METRICS",
    "cell_metric",
    "summarize_cells",
    "significance_matrix",
    "significance_markdown",
]

#: metrics aggregated and compared, all lower-is-better
METRICS = ("radius_ratio", "peak_storage", "wall_time")


def _get(cell, name):
    """Read a field from a cell given as a dataclass or a dict."""
    if isinstance(cell, dict):
        return cell.get(name)
    return getattr(cell, name, None)


def cell_metric(cell, metric: str) -> "float | None":
    """A cell's value for ``metric``, or ``None`` when unusable.

    Only ``ok`` cells with a finite, non-``None`` value participate in
    aggregation and pairing; everything else (skipped, errored,
    unavailable, storage probes that never fired) is excluded rather
    than imputed.
    """
    if _get(cell, "status") != "ok":
        return None
    value = _get(cell, metric)
    if value is None:
        return None
    return float(value)


def summarize_cells(
    cells,
    *,
    metrics: "tuple[str, ...]" = METRICS,
    confidence: float = 0.95,
    n_boot: int = 1000,
    seed: int = 0,
) -> "list[dict]":
    """Per-``(scenario, backend, metric)`` aggregates over replicates.

    Parameters
    ----------
    cells:
        Replicated cell results (dataclasses or dicts), each carrying
        ``scenario``/``backend``/``status`` and the metric fields.
    metrics, confidence, n_boot, seed:
        Aggregation knobs; the bootstrap is seeded per group with a
        stable digest of the group key, so output is process-independent.

    Returns
    -------
    list of dict
        One row per group, in first-seen cell order:
        ``{"scenario", "backend", "metric", "n", "mean", "ci_lo",
        "ci_hi", "confidence", "quantiles"}``.
    """
    groups: "dict[tuple, list[float]]" = {}
    order: "list[tuple]" = []
    for cell in cells:
        for metric in metrics:
            value = cell_metric(cell, metric)
            if value is None:
                continue
            key = (_get(cell, "scenario"), _get(cell, "backend"), metric)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(value)
    out = []
    for key in order:
        scenario, backend, metric = key
        s = summarize(groups[key], confidence=confidence, n_boot=n_boot,
                      seed=seed, key=key)
        out.append({"scenario": scenario, "backend": backend,
                    "metric": metric, **s.as_dict()})
    return out


def _paired_values(cells, metric: str) -> "dict[str, dict[tuple, float]]":
    """Per-backend ``{(scenario, seed, replicate): value}`` maps."""
    by_backend: "dict[str, dict[tuple, float]]" = {}
    for cell in cells:
        value = cell_metric(cell, metric)
        if value is None:
            continue
        cond = (_get(cell, "scenario"), _get(cell, "seed"),
                _get(cell, "replicate"))
        by_backend.setdefault(_get(cell, "backend"), {})[cond] = value
    return by_backend


def significance_matrix(
    cells,
    backends: "list[str] | None" = None,
    *,
    metrics: "tuple[str, ...]" = METRICS,
    alpha: float = 0.05,
    confidence: float = 0.95,
    n_boot: int = 1000,
    seed: int = 0,
) -> dict:
    """Pairwise Holm-corrected backend comparisons per metric.

    Parameters
    ----------
    cells:
        Replicated cell results (dataclasses or dicts).
    backends:
        Backend order to compare in; ``None`` uses first-seen cell
        order.  Every unordered pair is compared once, as
        ``(earlier, later)``.
    metrics:
        Metric families; Holm correction is applied *within* each
        metric across all its backend pairs.
    alpha:
        Family-wise significance level the ``better`` verdicts use.
    confidence, n_boot, seed:
        Passed through to :func:`repro.verify.stats.paired_comparison`.

    Returns
    -------
    dict
        ``{"alpha", "metrics": {metric: [comparison, ...]}}`` where
        each comparison dict carries the pair names, the
        :class:`~repro.verify.stats.PairedComparison` fields, the
        Holm-adjusted p-values (``sign_p_holm``, ``boot_p_holm``) and
        ``better`` — the winning backend name when the adjusted
        bootstrap p-value clears ``alpha`` (with the sign test
        agreeing on direction), else ``None``.
    """
    if backends is None:
        backends = []
        for cell in cells:
            b = _get(cell, "backend")
            if b not in backends:
                backends.append(b)
    result: dict = {"alpha": float(alpha), "metrics": {}}
    for metric in metrics:
        by_backend = _paired_values(cells, metric)
        comparisons = []
        for i, a in enumerate(backends):
            for b in backends[i + 1:]:
                conds = sorted(
                    set(by_backend.get(a, {})) & set(by_backend.get(b, {}))
                )
                if len(conds) < 2:
                    continue  # one shared condition proves nothing
                av = [by_backend[a][c] for c in conds]
                bv = [by_backend[b][c] for c in conds]
                cmp_ = paired_comparison(
                    av, bv, confidence=confidence, n_boot=n_boot,
                    seed=seed, key=(metric, a, b),
                )
                comparisons.append({"a": a, "b": b, **cmp_.as_dict()})
        sign_adj = holm([c["sign_p"] for c in comparisons])
        boot_adj = holm([c["boot_p"] for c in comparisons])
        for c, sp, bp in zip(comparisons, sign_adj, boot_adj):
            c["sign_p_holm"] = sp
            c["boot_p_holm"] = bp
            better = None
            if bp < alpha and c["mean_diff"] != 0:
                winner_is_a = c["mean_diff"] < 0  # lower is better
                # the sign test must not point the other way
                agrees = (c["n_pos"] <= c["n_neg"]) if winner_is_a \
                    else (c["n_neg"] <= c["n_pos"])
                if agrees:
                    better = c["a"] if winner_is_a else c["b"]
            c["better"] = better
        result["metrics"][metric] = comparisons
    return result


def significance_markdown(sig: dict) -> str:
    """Render a :func:`significance_matrix` result as markdown tables.

    One table per metric: each row is a backend pair with its pair
    count, mean difference (negative favours the first backend), both
    Holm-adjusted p-values and the verdict.
    """
    lines = [f"### Pairwise significance (Holm-corrected, "
             f"alpha={sig['alpha']:g}; lower is better)", ""]
    for metric, comparisons in sig["metrics"].items():
        lines.append(f"#### {metric}")
        lines.append("")
        if not comparisons:
            lines += ["(no backend pair shares enough replicated cells)", ""]
            continue
        header = ["pair", "n", "mean diff [95% CI]", "sign p (Holm)",
                  "boot p (Holm)", "verdict"]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for c in comparisons:
            verdict = f"**{c['better']} wins**" if c["better"] else "no call"
            lines.append(
                "| " + " | ".join([
                    f"{c['a']} vs {c['b']}",
                    str(c["n_pairs"]),
                    f"{c['mean_diff']:+.4g} [{c['ci_lo']:+.4g}, "
                    f"{c['ci_hi']:+.4g}]",
                    f"{c['sign_p']:.3g} ({c['sign_p_holm']:.3g})",
                    f"{c['boot_p']:.3g} ({c['boot_p_holm']:.3g})",
                    verdict,
                ]) + " |"
            )
        lines.append("")
    return "\n".join(lines)
