"""`repro.verify` — statistical verification of cross-backend results.

The evaluation matrix (:mod:`repro.scenarios.matrix`) measures each
``(scenario, backend)`` cell; this package decides what those
measurements *mean*.  It is the correctness-tooling layer every perf
claim is gated on:

* :mod:`repro.verify.stats` — deterministic, dependency-free
  estimators: bootstrap confidence intervals and quantiles
  (:func:`summarize`), the exact paired sign test (:func:`sign_test`),
  sign-flip bootstrap mean differences (:func:`paired_bootstrap`) and
  the Holm step-down correction (:func:`holm`);
* :mod:`repro.verify.significance` — the pairwise backend significance
  matrix over replicated cells (:func:`significance_matrix`), paired on
  shared ``(scenario, seed)`` streams and Holm-corrected per metric.

Quickstart::

    from repro.scenarios import run_matrix
    from repro.verify import significance_matrix, summarize_cells

    result = run_matrix(["outlier-burst", "drifting-clusters"],
                        ["offline", "insertion-only"],
                        quick=True, replicates=5)
    rows = summarize_cells(result.cells)           # mean/CI/quantiles
    sig = significance_matrix(result.cells,        # who actually wins
                              result.backends)

CLI: ``python -m repro.experiments matrix --quick --replicates 5``.
"""

from .significance import (
    METRICS,
    cell_metric,
    significance_markdown,
    significance_matrix,
    summarize_cells,
)
from .stats import (
    PairedComparison,
    SignTest,
    Summary,
    derived_rng,
    holm,
    paired_bootstrap,
    paired_comparison,
    sign_test,
    stable_entropy,
    summarize,
)

__all__ = [
    "METRICS",
    "PairedComparison",
    "SignTest",
    "Summary",
    "cell_metric",
    "derived_rng",
    "holm",
    "paired_bootstrap",
    "paired_comparison",
    "sign_test",
    "significance_markdown",
    "significance_matrix",
    "stable_entropy",
    "summarize",
    "summarize_cells",
]
