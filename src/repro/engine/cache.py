"""On-disk result cache for experiment drivers.

Each entry is keyed by an experiment id plus a JSON-canonicalized
parameter dict; the payload (a list of
:class:`~repro.experiments.report.Row`) is pickled, and a human-readable
JSON sidecar records the key, parameters and row count so a results
directory can be audited without unpickling anything.

The point is cheap re-runs: the sharded experiment runner checks the
cache before dispatching a driver, so a crashed or interrupted sweep
re-executes only the missing experiments, and iterating on one table
never re-pays for the others.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time

__all__ = ["ResultsCache", "default_results_dir"]

#: environment override for the cache location
RESULTS_DIR_ENV = "REPRO_RESULTS_DIR"


def default_results_dir() -> str:
    """``$REPRO_RESULTS_DIR`` when set, else ``.repro-results`` in cwd."""
    return os.environ.get(RESULTS_DIR_ENV) or os.path.join(os.curdir, ".repro-results")


class ResultsCache:
    """Pickle/JSON cache of driver outputs under one directory.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first :meth:`put`); ``None``
        resolves via :func:`default_results_dir`.
    """

    def __init__(self, root: "str | None" = None):
        self.root = root if root is not None else default_results_dir()

    # -- keying ------------------------------------------------------------

    @staticmethod
    def key(experiment_id: str, params: "dict | None" = None) -> str:
        """Stable key: id plus a short hash of the canonicalized params."""
        canon = json.dumps(params or {}, sort_keys=True, default=str)
        digest = hashlib.sha256(canon.encode()).hexdigest()[:12]
        return f"{experiment_id}-{digest}"

    def _paths(self, experiment_id: str, params: "dict | None") -> "tuple[str, str]":
        key = self.key(experiment_id, params)
        base = os.path.join(self.root, key)
        return base + ".pkl", base + ".json"

    # -- access ------------------------------------------------------------

    def get(self, experiment_id: str, params: "dict | None" = None):
        """The cached payload, or ``None`` on a miss (including any
        corrupted/unreadable/stale entry — unpickling can fail dozens of
        ways (garbage bytes, renamed classes, version skew) and a miss
        just means recompute, so everything short of interrupts is a
        miss)."""
        pkl, _ = self._paths(experiment_id, params)
        try:
            with open(pkl, "rb") as f:
                return pickle.load(f)
        except Exception:
            return None

    def put(self, experiment_id: str, params: "dict | None", payload) -> str:
        """Store ``payload``; returns the pickle path.  The write is
        atomic (temp file + rename) so a concurrent shard never reads a
        half-written entry."""
        os.makedirs(self.root, exist_ok=True)
        pkl, meta = self._paths(experiment_id, params)
        tmp = pkl + f".tmp.{os.getpid()}"
        with open(tmp, "wb") as f:
            pickle.dump(payload, f)
        os.replace(tmp, pkl)
        with open(meta, "w") as f:
            json.dump(
                {
                    "experiment": experiment_id,
                    "params": params or {},
                    "rows": len(payload) if hasattr(payload, "__len__") else None,
                    "written_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
                },
                f,
                indent=2,
                default=str,
            )
        return pkl

    def __contains__(self, key_tuple) -> bool:
        experiment_id, params = key_tuple
        pkl, _ = self._paths(experiment_id, params)
        return os.path.exists(pkl)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultsCache({self.root!r})"
