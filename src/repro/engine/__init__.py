"""Parallel execution layer: executors, deterministic seeding, machine-
accounting-preserving fan-out, and the on-disk experiment result cache.

The MPC round protocols (:mod:`repro.mpc`) and the sharded experiment
runner (:mod:`repro.experiments.__main__`) both run their independent
units of work through an :class:`Executor`; serial, thread-pool and
process-pool implementations are interchangeable and bit-identical (see
:mod:`repro.engine.executor` for the determinism contract).
"""

from .cache import RESULTS_DIR_ENV, ResultsCache, default_results_dir
from .executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    derive_rngs,
    derive_seeds,
    get_executor,
    map_machines,
    shard_ranges,
)

__all__ = [
    "RESULTS_DIR_ENV",
    "Executor",
    "ProcessExecutor",
    "ResultsCache",
    "SerialExecutor",
    "ThreadExecutor",
    "default_results_dir",
    "derive_rngs",
    "derive_seeds",
    "get_executor",
    "map_machines",
    "shard_ranges",
]
