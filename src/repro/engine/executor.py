"""Pluggable parallel execution for per-machine (and per-experiment) work.

The paper's MPC model *is* parallelism — ``m`` machines with ``s``-bounded
memory computing between synchronous communication rounds — but the
simulator used to execute every machine sequentially in Python for-loops.
This module supplies the execution substrate the round protocols (and the
experiment runner) fan work out through:

* :class:`Executor` — the minimal protocol: an order-preserving ``map``.
* :class:`SerialExecutor` — the reference semantics (a list comprehension).
* :class:`ThreadExecutor` — ``concurrent.futures.ThreadPoolExecutor``;
  the heavy kernels (pairwise distances, greedy passes) release the GIL
  inside BLAS/C, so threads give real speedup with zero serialization
  cost.
* :class:`ProcessExecutor` — ``concurrent.futures.ProcessPoolExecutor``;
  true multi-core for CPU-bound pure-Python work, at the price of
  pickling tasks and results (task callables must be module-level).

Determinism is a hard requirement: parallel runs must be *bit-identical*
to serial ones.  Three mechanisms guarantee it:

1. every ``map`` preserves input order (``concurrent.futures`` map
   semantics), regardless of completion order;
2. randomized tasks draw from generators derived via
   :func:`numpy.random.SeedSequence.spawn` (:func:`derive_rngs`), so each
   task's stream depends only on ``(root seed, task index)`` — never on
   which worker ran it or when;
3. :func:`map_machines` keeps all :class:`~repro.mpc.machine.Machine`
   storage accounting in the calling process, applied in machine order
   after the fan-out returns, so peak-memory bookkeeping is identical
   under every executor (worker processes only ever see *copies* of a
   ``Machine``; charging them there would be silently lost).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

__all__ = [
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "derive_seeds",
    "derive_rngs",
    "map_machines",
    "shard_ranges",
]


def shard_ranges(n: int, shards: int) -> "list[tuple[int, int]]":
    """Deterministic contiguous ``[lo, hi)`` split of ``range(n)``.

    The canonical work division for index-ordered sharded reductions
    (the grid-pruned greedy decision fans its cell scans out this way):
    shard boundaries depend only on ``(n, shards)``, never on scheduling,
    and concatenating the ranges in list order reproduces ``range(n)``
    exactly.  Sizes differ by at most one (remainder spread over the
    leading shards); empty trailing ranges are dropped when
    ``shards > n``.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, max(n, 1))
    size, rem = divmod(n, shards)
    out, lo = [], 0
    for s in range(shards):
        hi = lo + size + (1 if s < rem else 0)
        if hi > lo:
            out.append((lo, hi))
        lo = hi
    return out


@runtime_checkable
class Executor(Protocol):
    """Structural protocol: anything with an order-preserving ``map``.

    ``map(fn, items)`` must return ``[fn(x) for x in items]`` — same
    values, same order — however the calls are scheduled.
    """

    name: str

    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item, preserving input order."""


class SerialExecutor:
    """In-process sequential execution (the reference semantics)."""

    name = "serial"

    def __init__(self, jobs: "int | None" = None):
        self.jobs = 1

    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` serially (the reference semantics)."""
        return [fn(x) for x in items]

    def close(self) -> None:
        """No resources to release; kept for interface symmetry."""

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "SerialExecutor()"


class _PoolExecutor:
    """Shared plumbing for the ``concurrent.futures``-backed executors.

    The underlying pool is created lazily on the first parallel ``map``
    and *reused* across calls — a 2-round MPC protocol maps twice per
    run, and process-pool startup (fork + interpreter warmup) is far too
    expensive to pay per map.  ``close()`` (or use as a context manager)
    tears the pool down; the next ``map`` would re-create it.
    """

    name = "pool"
    _pool_cls: type = ThreadPoolExecutor

    def __init__(self, jobs: "int | None" = None):
        if jobs is not None and int(jobs) < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs) if jobs is not None else None
        self._pool = None

    @property
    def _max_workers(self) -> int:
        return self.jobs if self.jobs is not None else (os.cpu_count() or 1)

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        if len(items) <= 1 or self._max_workers == 1:
            return [fn(x) for x in items]
        if self._pool is None:
            self._pool = self._pool_cls(max_workers=self._max_workers)
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        """Shut the worker pool down (re-created lazily if used again)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __del__(self):  # best-effort cleanup of worker processes/threads
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(jobs={self.jobs})"


class ThreadExecutor(_PoolExecutor):
    """Thread-pool execution; best when the work releases the GIL."""

    name = "thread"
    _pool_cls = ThreadPoolExecutor


class ProcessExecutor(_PoolExecutor):
    """Process-pool execution; ``fn`` and its arguments must pickle
    (module-level functions, plain-data arguments)."""

    name = "process"
    _pool_cls = ProcessPoolExecutor


_EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def get_executor(
    spec: "Executor | str | None" = None, jobs: "int | None" = None
) -> Executor:
    """Resolve an executor from a name, an instance, or ``None``.

    Accepted forms::

        get_executor()                    # SerialExecutor
        get_executor("thread")            # ThreadExecutor, jobs = cpu count
        get_executor("process", jobs=4)   # ProcessExecutor, 4 workers
        get_executor("thread:8")          # inline job count
        get_executor(my_executor)         # passthrough (jobs ignored)
    """
    if spec is None:
        return SerialExecutor()
    if isinstance(spec, str):
        name, _, inline = spec.partition(":")
        if inline:
            if jobs is not None and int(inline) != int(jobs):
                raise ValueError(
                    f"conflicting job counts: {spec!r} versus jobs={jobs}"
                )
            jobs = int(inline)
        try:
            cls = _EXECUTORS[name]
        except KeyError:
            raise ValueError(
                f"unknown executor {name!r}; available: {sorted(_EXECUTORS)}"
            ) from None
        return cls(jobs=jobs)
    if isinstance(spec, Executor):
        return spec
    raise TypeError(
        f"executor must be None, a name, or an Executor, got {type(spec).__name__}"
    )


# ---------------------------------------------------------------------------
# Deterministic per-task randomness
# ---------------------------------------------------------------------------


def derive_seeds(seed: "int | None", n: int) -> "list[np.random.SeedSequence]":
    """``n`` independent child seed sequences of ``SeedSequence(seed)``.

    Child ``i`` depends only on ``(seed, i)``, so a task's randomness is
    identical whether it runs serially, on a thread, or in another
    process — the foundation of executor parity for randomized work.
    ``seed=None`` draws fresh OS entropy for the root (children are then
    still mutually independent, just not replayable).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    root = np.random.SeedSequence(seed) if seed is not None else np.random.SeedSequence()
    return root.spawn(n)


def derive_rngs(seed: "int | None", n: int) -> "list[np.random.Generator]":
    """Per-task generators over :func:`derive_seeds`."""
    return [np.random.default_rng(s) for s in derive_seeds(seed, n)]


# ---------------------------------------------------------------------------
# Machine-accounting-preserving fan-out
# ---------------------------------------------------------------------------


def map_machines(
    executor: "Executor | str | None",
    fn: Callable,
    tasks: Sequence,
    machines: "Sequence | None" = None,
    charge: "Callable | None" = None,
) -> list:
    """Fan per-machine ``tasks`` out through ``executor``; account serially.

    ``fn(tasks[i])`` is machine ``i``'s local computation.  When
    ``machines`` and ``charge`` are given, ``charge(machines[i],
    tasks[i], results[i])`` runs in the *calling* process, in machine
    order, after all results are in — so :class:`Machine.charge` /
    ``peak_items`` bookkeeping is bit-identical under every executor
    (a worker process would otherwise mutate a pickled copy and the
    accounting would be silently dropped).
    """
    results = get_executor(executor).map(fn, tasks)
    if charge is not None:
        if machines is None:
            raise ValueError("charge requires machines")
        for mach, task, result in zip(machines, tasks, results):
            charge(mach, task, result)
    return results
