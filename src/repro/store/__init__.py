"""`repro.store` — the chunked, memory-mapped point pipeline.

Every ingestion path in the library historically assumed the whole
stream fits in RAM: scenarios materialized dense arrays, sessions took
monolithic batches, snapshot restore loaded every payload array eagerly.
This package is the out-of-core boundary that removes that assumption:

* :class:`PointSource` — the lazy reader protocol.  A source knows its
  length and dimension and yields the stream as fixed-size
  ``(points, weights)`` chunks (``weights`` is ``None`` for unit-weight
  streams) without ever materializing the whole thing.  Adapters wrap
  the common carriers: :func:`from_array` (in-RAM), :func:`from_npy_memmap`
  (an ``.npy`` file opened with ``mmap_mode="r"``), :func:`from_iterable`
  (a generator of chunks, re-chunked to fixed boundaries).
* :class:`PointStore` — the chunked on-disk writer.  Appends points
  (and optional weights) into per-chunk ``.npy`` spool files, each
  written atomically (temp + rename), and publishes the store by writing
  its manifest last — a killed writer can never leave a store that
  *opens*; either the manifest is complete and every chunk it names is
  durable, or :meth:`PointStore.open` refuses.  The reader side
  (:class:`StoreSource`) memory-maps chunks lazily.
* :func:`write_points_npy` — the single-file spool primitive: streams
  chunks into a temp ``.npy`` (header rewritten with the final shape on
  close) and renames it into place, so partial downloads or killed
  generators never publish a torn file (``repro.scenarios.datasets``
  writes its cache through this).

Chunking is *semantically invisible*: for every registered backend,
``extend`` over any chunking of a stream is bit-identical to one
monolithic ``extend`` (property-tested in ``tests/test_out_of_core.py``),
so callers choose chunk sizes purely for memory footprint.
"""

from .source import (
    DEFAULT_CHUNK_ROWS,
    ArraySource,
    IterableSource,
    MemmapSource,
    PointSource,
    as_source,
    from_array,
    from_iterable,
    from_npy_memmap,
    is_chunked,
    iter_point_chunks,
)
from .spool import PointStore, StoreError, StoreSource, write_points_npy

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "PointSource",
    "ArraySource",
    "MemmapSource",
    "IterableSource",
    "StoreSource",
    "PointStore",
    "StoreError",
    "from_array",
    "from_npy_memmap",
    "from_iterable",
    "as_source",
    "is_chunked",
    "iter_point_chunks",
    "write_points_npy",
]
