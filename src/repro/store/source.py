"""The lazy :class:`PointSource` reader protocol and its adapters.

A source is anything that can replay an ordered point stream as
fixed-size ``(points, weights)`` chunks.  Random-access sources (arrays,
memmaps, on-disk stores) additionally support cheap seeking, which is
what turns matrix checkpoint cursors into ``(chunk index, offset)``
pairs: resuming skips ``start`` chunks without reading them.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = [
    "DEFAULT_CHUNK_ROWS",
    "PointSource",
    "ArraySource",
    "MemmapSource",
    "IterableSource",
    "from_array",
    "from_npy_memmap",
    "from_iterable",
    "as_source",
    "is_chunked",
    "iter_point_chunks",
]

#: Default rows per chunk: 64k rows is ~1 MiB of float64 coordinates at
#: d=2 — large enough to keep every vectorized backend in its batched
#: regime, small enough that a chunk is working-set noise.
DEFAULT_CHUNK_ROWS = 65536


class PointSource:
    """Base class of the lazy chunked-stream protocol.

    Subclasses implement :meth:`_rows` (random access to a row range)
    plus ``__len__`` and :attr:`dim`; everything else — fixed-boundary
    chunking with seek, streamed bounds, deterministic subsampling,
    materialization — is shared.  Sources without random access
    (:class:`IterableSource`) override :meth:`chunks` instead.

    The chunk contract: ``chunks(batch)`` yields ``(points, weights)``
    pairs where chunk ``i`` holds rows ``[i*batch, (i+1)*batch)`` of the
    stream, ``points`` is a ``(b, d)`` array and ``weights`` is a
    ``(b,)`` array or ``None`` for unit-weight streams.  Chunk
    boundaries are a function of ``batch`` alone, so a checkpoint cursor
    ``(chunk index, batch)`` identifies an exact stream position.
    """

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def dim(self) -> int:
        """Ambient dimension of the stream."""
        raise NotImplementedError

    @property
    def weighted(self) -> bool:
        """Whether chunks carry an explicit weight vector."""
        return False

    def _rows(self, lo: int, hi: int) -> "tuple[np.ndarray, np.ndarray | None]":
        """Rows ``[lo, hi)`` of the stream (random access)."""
        raise NotImplementedError

    def chunks(
        self, batch: "int | None" = None, start: int = 0,
    ) -> "Iterator[tuple[np.ndarray, np.ndarray | None]]":
        """Yield the stream as fixed-size ``(points, weights)`` chunks.

        Parameters
        ----------
        batch:
            Rows per chunk (``None`` = :data:`DEFAULT_CHUNK_ROWS`).
        start:
            Chunk index to resume from: chunks ``[0, start)`` are
            *skipped without being read* (random-access sources seek).
        """
        batch = int(batch or DEFAULT_CHUNK_ROWS)
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        n = len(self)
        for lo in range(int(start) * batch, n, batch):
            yield self._rows(lo, min(lo + batch, n))

    def bounds(self, batch: "int | None" = None) -> "tuple[np.ndarray, np.ndarray]":
        """Per-coordinate ``(mins, maxs)`` of the stream, streamed in
        chunks (never materializes more than one chunk)."""
        mins = maxs = None
        for pts, _ in self.chunks(batch):
            if not len(pts):
                continue
            lo, hi = pts.min(axis=0), pts.max(axis=0)
            mins = lo if mins is None else np.minimum(mins, lo)
            maxs = hi if maxs is None else np.maximum(maxs, hi)
        if mins is None:
            d = max(self.dim, 1)
            return np.zeros(d), np.zeros(d)
        return np.asarray(mins, dtype=float), np.asarray(maxs, dtype=float)

    def sample(self, max_rows: int, batch: "int | None" = None) -> np.ndarray:
        """A deterministic bounded subsample (every ``ceil(n/max)``-th
        row), for priming reference solutions on streams too large to
        solve in full.  Depends only on ``(stream, max_rows)`` — never
        on the chunking it was read with."""
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1, got {max_rows}")
        n = len(self)
        if n <= max_rows:
            return self.materialize()[0]
        stride = -(-n // int(max_rows))  # ceil
        out = []
        for i, (pts, _) in enumerate(self.chunks(batch)):
            b = int(batch or DEFAULT_CHUNK_ROWS)
            lo = i * b
            first = (-lo) % stride
            out.append(np.asarray(pts[first::stride], dtype=float))
        return np.concatenate(out, axis=0)

    def materialize(self) -> "tuple[np.ndarray, np.ndarray | None]":
        """The whole stream as in-RAM ``(points, weights)`` arrays.

        Only for streams known to fit; the chunked consumers never call
        this.
        """
        pts, ws = [], []
        any_w = False
        for p, w in self.chunks():
            pts.append(np.asarray(p, dtype=float))
            ws.append(w)
            any_w = any_w or w is not None
        if not pts:
            return np.zeros((0, max(self.dim, 1))), None
        points = np.concatenate(pts, axis=0)
        if not any_w:
            return points, None
        weights = np.concatenate([
            np.asarray(w if w is not None else np.ones(len(p)))
            for p, w in zip(pts, ws)
        ])
        return points, weights


class ArraySource(PointSource):
    """A :class:`PointSource` over in-RAM arrays (the trivial adapter
    that makes one code path serve both worlds)."""

    def __init__(self, points, weights=None):
        pts = np.atleast_2d(np.asarray(points))
        if pts.ndim != 2:
            raise ValueError(f"points must be 2-d, got shape {pts.shape}")
        self._pts = pts
        self._w = None
        if weights is not None:
            w = np.asarray(weights)
            if w.shape != (len(pts),):
                raise ValueError(
                    f"weights shape {w.shape} != ({len(pts)},)"
                )
            self._w = w

    def __len__(self) -> int:
        return int(len(self._pts))

    @property
    def dim(self) -> int:
        return int(self._pts.shape[1])

    @property
    def weighted(self) -> bool:
        return self._w is not None

    def _rows(self, lo: int, hi: int):
        w = self._w[lo:hi] if self._w is not None else None
        return self._pts[lo:hi], w


class MemmapSource(ArraySource):
    """A :class:`PointSource` over an ``.npy`` file opened with
    ``mmap_mode="r"`` — chunks are slices of the mapping, so reading the
    stream touches only the pages each chunk needs."""

    def __init__(self, path: str, weights_path: "str | None" = None):
        pts = np.load(path, mmap_mode="r", allow_pickle=False)
        if pts.ndim != 2:
            raise ValueError(
                f"{path!r} holds a {pts.ndim}-d array; point files are (n, d)"
            )
        w = None
        if weights_path is not None:
            w = np.load(weights_path, mmap_mode="r", allow_pickle=False)
        super().__init__(pts, w)
        self.path = path


class IterableSource(PointSource):
    """A :class:`PointSource` over a chunk iterable / generator factory.

    Items may be ``(b, d)`` arrays or ``(points, weights)`` pairs; they
    are normalized and re-chunked to the requested fixed boundaries.  A
    *factory* (zero-argument callable returning a fresh iterator) makes
    the source replayable; a bare iterator is single-shot and a second
    :meth:`chunks` call raises.  ``n`` is required only when a consumer
    needs ``len`` before exhausting the stream.
    """

    def __init__(self, chunks, n: "int | None" = None,
                 dim: "int | None" = None):
        self._factory = chunks if callable(chunks) else None
        self._iter = None if callable(chunks) else iter(chunks)
        self._n = None if n is None else int(n)
        self._dim = None if dim is None else int(dim)

    def __len__(self) -> int:
        if self._n is None:
            raise TypeError(
                "IterableSource has no known length; pass n= at construction"
            )
        return self._n

    @property
    def dim(self) -> int:
        if self._dim is None:
            raise TypeError(
                "IterableSource has no known dim; pass dim= at construction"
            )
        return self._dim

    def _take(self):
        if self._factory is not None:
            return self._factory()
        it, self._iter = self._iter, None
        if it is None:
            raise RuntimeError(
                "single-shot IterableSource already consumed; construct it "
                "from a factory to make it replayable"
            )
        return it

    def chunks(self, batch: "int | None" = None, start: int = 0):
        """Re-chunk the underlying iterable to fixed ``batch`` rows.

        ``start`` chunks are skipped, but — unlike random-access
        sources — the skipped rows still stream through this process.
        """
        batch = int(batch or DEFAULT_CHUNK_ROWS)
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        buf_p: "list[np.ndarray]" = []
        buf_w: "list[np.ndarray | None]" = []
        held = 0
        emitted = 0
        seen = 0

        def _flush(rows):
            nonlocal held
            pts = np.concatenate(buf_p, axis=0) if len(buf_p) != 1 else buf_p[0]
            weighted = any(w is not None for w in buf_w)
            w = None
            if weighted:
                w = np.concatenate([
                    np.asarray(wi) if wi is not None
                    else np.ones(len(pi), dtype=np.int64)
                    for pi, wi in zip(buf_p, buf_w)
                ])
            out = (pts[:rows], None if w is None else w[:rows])
            rest_p, rest_w = pts[rows:], None if w is None else w[rows:]
            buf_p.clear()
            buf_w.clear()
            if len(rest_p):
                buf_p.append(rest_p)
                buf_w.append(rest_w)
            held = len(rest_p)
            return out

        for item in self._take():
            pts, w = _normalize_chunk(item)
            if self._dim is None:
                self._dim = int(pts.shape[1])
            seen += len(pts)
            buf_p.append(pts)
            buf_w.append(w)
            held += len(pts)
            while held >= batch:
                chunk = _flush(batch)
                if emitted >= int(start):
                    yield chunk
                emitted += 1
        if held:
            chunk = _flush(held)
            if emitted >= int(start):
                yield chunk
            emitted += 1
        if self._n is None:
            self._n = seen


def _normalize_chunk(item) -> "tuple[np.ndarray, np.ndarray | None]":
    """Normalize one iterable item into a ``(points, weights)`` pair."""
    w = None
    if isinstance(item, tuple) and len(item) == 2:
        pts, w = item
    else:
        pts = item
    pts = np.atleast_2d(np.asarray(pts))
    if pts.ndim != 2:
        raise ValueError(f"chunk must be 2-d, got shape {pts.shape}")
    if w is not None:
        w = np.asarray(w)
        if w.shape != (len(pts),):
            raise ValueError(f"chunk weights shape {w.shape} != ({len(pts)},)")
    return pts, w


def from_array(points, weights=None) -> ArraySource:
    """Wrap in-RAM arrays as a :class:`PointSource`."""
    return ArraySource(points, weights)


def from_npy_memmap(path: str, weights_path: "str | None" = None) -> MemmapSource:
    """Open an ``.npy`` file as a memory-mapped :class:`PointSource`."""
    return MemmapSource(path, weights_path)


def from_iterable(chunks, n: "int | None" = None,
                  dim: "int | None" = None) -> IterableSource:
    """Wrap an iterable (or factory) of chunks as a :class:`PointSource`."""
    return IterableSource(chunks, n=n, dim=dim)


def as_source(points, weights=None) -> PointSource:
    """Coerce any ingest carrier into a :class:`PointSource`.

    Sources pass through unchanged; bare iterators/generators become a
    (single-shot) :class:`IterableSource`; dense array-likes become an
    :class:`ArraySource`.
    """
    if isinstance(points, PointSource):
        if weights is not None:
            raise ValueError("cannot attach weights to an existing PointSource")
        return points
    if hasattr(points, "__next__"):
        if weights is not None:
            raise ValueError("pass weights inside the chunk tuples instead")
        return IterableSource(points)
    return ArraySource(np.asarray(points, dtype=float), weights)


def is_chunked(points) -> bool:
    """Whether ``points`` is a chunked carrier (a :class:`PointSource`
    or a bare iterator/generator of chunks) rather than dense array-like
    data.  Lists/tuples/arrays of coordinates are *dense* — only objects
    that cannot be handed to ``np.asarray`` as one batch count."""
    if isinstance(points, PointSource):
        return True
    return hasattr(points, "__next__")  # iterator/generator of chunks


def iter_point_chunks(
    points, batch: "int | None" = None,
) -> "Iterable[tuple[np.ndarray, np.ndarray | None]]":
    """Normalize any ingest carrier into ``(points, weights)`` chunks.

    * a :class:`PointSource` yields its own chunks (``batch`` applies);
    * a bare iterator/generator yields normalized items as-is (items are
      already the caller's chosen chunking);
    * dense array-likes yield one monolithic chunk.
    """
    if isinstance(points, PointSource):
        yield from points.chunks(batch)
    elif hasattr(points, "__next__"):
        for item in points:
            yield _normalize_chunk(item)
    else:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        yield pts, None
