"""`PointStore` — the atomic chunked on-disk point store.

Layout: a directory of per-chunk ``.npy`` spool files plus a manifest::

    <store>/
        store.json          # written LAST — publishing the store
        points-00000.npy    # rows [0, chunk_rows)
        points-00001.npy    # rows [chunk_rows, 2*chunk_rows)
        ...
        weights-00000.npy   # parallel to points-*, weighted stores only

Every chunk except the last holds exactly ``chunk_rows`` rows, so a row
range maps to chunk files by arithmetic alone.  The writer stages the
whole directory under ``<store>.tmp.<pid>`` and publishes it with one
``os.replace`` after fsyncing the manifest — a killed writer can never
leave a store that :meth:`PointStore.open` accepts.

:func:`write_points_npy` is the single-file flavour of the same
guarantee: it streams chunks into a temp ``.npy`` whose fixed-size
header is rewritten with the final shape on close, then renames it into
place.  ``repro.scenarios.datasets`` writes its download cache through
it so partial downloads never publish a torn file.
"""

from __future__ import annotations

import json
import os
import shutil

import numpy as np

from .source import DEFAULT_CHUNK_ROWS, PointSource

__all__ = ["StoreError", "PointStore", "StoreSource", "write_points_npy"]

_MANIFEST = "store.json"
_FORMAT = 1

# npy v1 header: magic(6) + version(2) + hlen(2) + header-dict text padded
# with spaces to a 64-byte-aligned total.  A 128-byte total leaves 118
# text bytes — enough for any (n, d) we can store — and being *fixed*
# lets the incremental writer rewrite the header in place on close.
_NPY_TOTAL_HEADER = 128


def _npy_header(descr: str, shape: "tuple[int, ...]") -> bytes:
    dict_text = "{'descr': %r, 'fortran_order': False, 'shape': %r, }" % (
        descr, tuple(int(s) for s in shape),
    )
    text_len = _NPY_TOTAL_HEADER - 10  # magic + version + hlen prefix
    if len(dict_text) + 1 > text_len:
        raise StoreError(f"npy header does not fit: {dict_text!r}")
    padded = dict_text.ljust(text_len - 1) + "\n"
    import struct

    return (
        b"\x93NUMPY" + bytes([1, 0]) + struct.pack("<H", text_len)
        + padded.encode("latin1")
    )


class StoreError(RuntimeError):
    """A malformed, truncated, or unpublished point store."""


class _NpySpool:
    """Incremental writer for one ``.npy`` file: placeholder header,
    appended rows, header rewritten with the final shape on close."""

    def __init__(self, path: str, dtype, ndim: int):
        self.path = path
        self.dtype = np.dtype(dtype)
        self.ndim = ndim
        self.rows = 0
        self.cols: "int | None" = None
        self._fh = open(path, "wb")
        self._fh.write(_npy_header(self.dtype.str, (0,) * ndim))

    def append(self, arr: np.ndarray) -> None:
        arr = np.ascontiguousarray(arr, dtype=self.dtype)
        if arr.ndim != self.ndim:
            raise StoreError(f"expected {self.ndim}-d rows, got {arr.ndim}-d")
        if self.ndim == 2:
            if self.cols is None:
                self.cols = int(arr.shape[1])
            elif int(arr.shape[1]) != self.cols:
                raise StoreError(
                    f"dim mismatch: store is d={self.cols}, chunk is "
                    f"d={arr.shape[1]}"
                )
        self._fh.write(arr.tobytes())
        self.rows += int(arr.shape[0])

    def close(self) -> None:
        shape = (self.rows,) if self.ndim == 1 else (self.rows, self.cols or 0)
        self._fh.seek(0)
        self._fh.write(_npy_header(self.dtype.str, shape))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()

    def abort(self) -> None:
        try:
            self._fh.close()
        finally:
            if os.path.exists(self.path):
                os.unlink(self.path)


def write_points_npy(path: str, chunks, dtype="float64") -> "tuple[int, int]":
    """Stream ``chunks`` (arrays or ``(points, weights)`` pairs — weights
    are ignored here) into ``path`` as one atomic ``.npy`` file.

    The data is appended to ``<path>.tmp.<pid>`` behind a fixed-size
    placeholder header; on success the header is rewritten with the
    final shape, the file fsynced, and renamed into place.  Returns the
    final ``(n, dim)``.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    spool = _NpySpool(tmp, dtype, ndim=2)
    try:
        for item in chunks:
            arr = item[0] if isinstance(item, tuple) else item
            arr = np.atleast_2d(np.asarray(arr))
            spool.append(arr)
        spool.close()
    except BaseException:
        spool.abort()
        raise
    os.replace(tmp, path)
    return spool.rows, int(spool.cols or 0)


class PointStore:
    """Atomic chunked writer.  Usage::

        store = PointStore.create(path, chunk_rows=65536)
        for pts, w in source.chunks():
            store.append(pts, w)
        src = store.finalize()       # publishes; returns a StoreSource

    ``append`` accumulates rows and flushes full ``chunk_rows``-sized
    spool files as they fill, so the writer's working set is one chunk
    regardless of stream length.  ``abort()`` (or a crash) leaves only
    the unpublished ``<path>.tmp.<pid>`` staging directory behind —
    :meth:`open` never sees it.
    """

    def __init__(self, path: str, tmpdir: str, chunk_rows: int, dtype,
                 weighted: bool):
        self.path = path
        self._tmpdir = tmpdir
        self.chunk_rows = int(chunk_rows)
        self.dtype = np.dtype(dtype)
        self.weighted = bool(weighted)
        self._n = 0
        self._dim: "int | None" = None
        self._chunks = 0
        self._buf_p: "list[np.ndarray]" = []
        self._buf_w: "list[np.ndarray]" = []
        self._held = 0
        self._done = False

    @classmethod
    def create(cls, path: str, *, chunk_rows: int = DEFAULT_CHUNK_ROWS,
               dtype="float64", weighted: bool = False,
               overwrite: bool = False) -> "PointStore":
        if int(chunk_rows) < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        if os.path.exists(path) and not overwrite:
            raise StoreError(f"store already exists: {path}")
        tmpdir = f"{path}.tmp.{os.getpid()}"
        if os.path.exists(tmpdir):
            shutil.rmtree(tmpdir)
        os.makedirs(tmpdir)
        return cls(path, tmpdir, chunk_rows, dtype, weighted)

    def append(self, points, weights=None) -> None:
        if self._done:
            raise StoreError("store already finalized")
        pts = np.atleast_2d(np.asarray(points, dtype=self.dtype))
        if pts.ndim != 2:
            raise StoreError(f"points must be 2-d, got shape {pts.shape}")
        if self._dim is None:
            self._dim = int(pts.shape[1])
        elif int(pts.shape[1]) != self._dim:
            raise StoreError(
                f"dim mismatch: store is d={self._dim}, chunk is "
                f"d={pts.shape[1]}"
            )
        if self.weighted:
            w = (np.ones(len(pts), dtype=np.int64) if weights is None
                 else np.asarray(weights))
            if w.shape != (len(pts),):
                raise StoreError(f"weights shape {w.shape} != ({len(pts)},)")
        elif weights is not None:
            raise StoreError(
                "weights passed to an unweighted store; create(weighted=True)"
            )
        else:
            w = None
        self._buf_p.append(pts)
        if w is not None:
            self._buf_w.append(w)
        self._held += len(pts)
        while self._held >= self.chunk_rows:
            self._flush(self.chunk_rows)

    def _flush(self, rows: int) -> None:
        pts = (self._buf_p[0] if len(self._buf_p) == 1
               else np.concatenate(self._buf_p, axis=0))
        self._buf_p = [pts[rows:]] if len(pts) > rows else []
        self._write_chunk("points", pts[:rows], ndim=2)
        if self.weighted:
            w = (self._buf_w[0] if len(self._buf_w) == 1
                 else np.concatenate(self._buf_w))
            self._buf_w = [w[rows:]] if len(w) > rows else []
            self._write_chunk("weights", w[:rows], ndim=1)
        self._held -= rows
        self._n += rows
        self._chunks += 1

    def _write_chunk(self, kind: str, arr: np.ndarray, ndim: int) -> None:
        dtype = self.dtype if kind == "points" else arr.dtype
        spool = _NpySpool(
            os.path.join(self._tmpdir, f"{kind}-{self._chunks:05d}.npy"),
            dtype, ndim=ndim,
        )
        try:
            spool.append(arr)
            spool.close()
        except BaseException:
            spool.abort()
            raise

    def finalize(self) -> "StoreSource":
        """Publish the store atomically and return a reader over it."""
        if self._done:
            raise StoreError("store already finalized")
        if self._held:
            self._flush(self._held)
        manifest = {
            "format": _FORMAT,
            "n": self._n,
            "dim": int(self._dim or 0),
            "dtype": self.dtype.str,
            "chunk_rows": self.chunk_rows,
            "chunks": self._chunks,
            "weighted": self.weighted,
        }
        mpath = os.path.join(self._tmpdir, _MANIFEST)
        with open(mpath, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        if os.path.exists(self.path):
            old = f"{self.path}.old.{os.getpid()}"
            os.replace(self.path, old)
            os.replace(self._tmpdir, self.path)
            shutil.rmtree(old)
        else:
            os.replace(self._tmpdir, self.path)
        self._done = True
        return StoreSource(self.path)

    def abort(self) -> None:
        """Discard the staged (unpublished) store."""
        self._done = True
        if os.path.exists(self._tmpdir):
            shutil.rmtree(self._tmpdir)

    def __enter__(self) -> "PointStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        elif not self._done:
            self.finalize()

    @staticmethod
    def open(path: str) -> "StoreSource":
        """Open a published store for lazy memory-mapped reading."""
        return StoreSource(path)

    @staticmethod
    def write(path: str, chunks, *, chunk_rows: int = DEFAULT_CHUNK_ROWS,
              dtype="float64", weighted: bool = False,
              overwrite: bool = False) -> "StoreSource":
        """One-shot convenience: spool ``chunks`` (arrays or
        ``(points, weights)`` pairs) into a new store and publish it."""
        store = PointStore.create(
            path, chunk_rows=chunk_rows, dtype=dtype, weighted=weighted,
            overwrite=overwrite,
        )
        try:
            for item in chunks:
                if isinstance(item, tuple) and len(item) == 2:
                    store.append(item[0], item[1] if weighted else None)
                else:
                    store.append(item)
        except BaseException:
            store.abort()
            raise
        return store.finalize()


class StoreSource(PointSource):
    """Lazy memory-mapped reader over a published :class:`PointStore`.

    Chunk files are opened with ``mmap_mode="r"`` on first touch and the
    mappings cached; reading rows touches only the pages those rows live
    on.  Aligned access (``batch == chunk_rows``, the default) returns
    memmap slices without copying.
    """

    def __init__(self, path: str):
        mpath = os.path.join(path, _MANIFEST)
        if not os.path.isfile(mpath):
            raise StoreError(f"not a published point store: {path}")
        with open(mpath, "r", encoding="utf-8") as fh:
            m = json.load(fh)
        if m.get("format") != _FORMAT:
            raise StoreError(f"unsupported store format: {m.get('format')!r}")
        self.path = path
        self.manifest = m
        self._n = int(m["n"])
        self._dim = int(m["dim"])
        self.chunk_rows = int(m["chunk_rows"])
        self.n_chunks = int(m["chunks"])
        self._weighted = bool(m.get("weighted", False))
        self._maps: "dict[tuple[str, int], np.ndarray]" = {}
        expect = -(-self._n // self.chunk_rows) if self._n else 0
        if expect != self.n_chunks:
            raise StoreError(
                f"manifest inconsistent: n={self._n} chunk_rows="
                f"{self.chunk_rows} implies {expect} chunks, manifest says "
                f"{self.n_chunks}"
            )
        for i in range(self.n_chunks):
            if not os.path.isfile(self._chunk_path("points", i)):
                raise StoreError(f"store missing chunk file points-{i:05d}.npy")

    def _chunk_path(self, kind: str, i: int) -> str:
        return os.path.join(self.path, f"{kind}-{i:05d}.npy")

    def _map(self, kind: str, i: int) -> np.ndarray:
        key = (kind, i)
        arr = self._maps.get(key)
        if arr is None:
            arr = np.load(self._chunk_path(kind, i), mmap_mode="r",
                          allow_pickle=False)
            self._maps[key] = arr
        return arr

    def __len__(self) -> int:
        return self._n

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def weighted(self) -> bool:
        return self._weighted

    def _rows(self, lo: int, hi: int):
        cr = self.chunk_rows
        parts_p, parts_w = [], []
        for ci in range(lo // cr, -(-hi // cr)):
            a, b = max(lo - ci * cr, 0), min(hi - ci * cr, cr)
            parts_p.append(self._map("points", ci)[a:b])
            if self._weighted:
                parts_w.append(self._map("weights", ci)[a:b])
        if len(parts_p) == 1:
            pts = parts_p[0]
            w = parts_w[0] if self._weighted else None
        else:
            pts = np.concatenate(parts_p, axis=0)
            w = np.concatenate(parts_w) if self._weighted else None
        return pts, w

    def chunks(self, batch: "int | None" = None, start: int = 0):
        """Chunks default to the store's native ``chunk_rows`` so aligned
        reads stay zero-copy memmap slices."""
        return super().chunks(batch or self.chunk_rows, start)
