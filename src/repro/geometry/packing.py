"""Packing arguments in doubling metrics (Lemma 6, Lemma 25).

These are the counting tools behind every size bound in the paper:

* :func:`packing_bound` — Lemma 6: a ``delta``-separated subset ``Q`` of a
  point set with ``opt_{k,z}(P) >= delta`` has
  ``|Q| <= k * ceil(4 opt / delta)^d + z``.
* :func:`grid_cell_bound` — Lemma 25 (first claim): at the grid level with
  ``2^j <= (eps/sqrt(d)) opt < 2^{j+1}``, at most
  ``k (4 sqrt(d)/eps)^d + z`` cells are non-empty.
* :func:`separated_subset` — greedy ``delta``-net extraction, used by the
  tests to *witness* the packing bounds empirically.
"""

from __future__ import annotations

from math import ceil, sqrt

import numpy as np

from ..core.metrics import Metric, get_metric

__all__ = ["packing_bound", "grid_cell_bound", "separated_subset", "doubling_cover_count"]


def packing_bound(k: int, z: int, opt: float, delta: float, d: int) -> int:
    """Lemma 6's bound ``k * ceil(4*opt/delta)^d + z`` on the size of any
    ``delta``-separated subset, for ``0 < delta <= opt``.

    ``opt == 0`` (all points coincide up to outliers) returns ``k + z``.
    """
    if delta <= 0:
        raise ValueError("delta must be positive")
    if opt <= 0:
        return k + z
    return int(k * ceil(4.0 * opt / delta) ** d + z)


def grid_cell_bound(k: int, z: int, eps: float, d: int) -> int:
    """Lemma 25's bound ``k * (4 sqrt(d)/eps)^d + z`` on the number of
    non-empty cells of the selected grid; this is also the sparsity
    parameter ``s`` of Algorithm 5's sketches."""
    if eps <= 0:
        raise ValueError("eps must be positive")
    return int(k * ceil(4.0 * sqrt(d) / eps) ** d + z)


def doubling_cover_count(radius_ratio: float, d: int) -> int:
    """Number of balls of radius ``r/ratio`` needed to cover a ball of
    radius ``r`` in a doubling space of dimension ``d``:
    ``2^(d * ceil(log2 ratio))``."""
    if radius_ratio < 1:
        raise ValueError("ratio must be >= 1")
    levels = int(np.ceil(np.log2(max(radius_ratio, 1.0))))
    return int(2 ** (d * levels))


def separated_subset(
    points: np.ndarray,
    delta: float,
    metric: "Metric | str | None" = None,
) -> np.ndarray:
    """Greedy maximal ``delta``-separated subset (a ``delta``-net).

    Returns indices into ``points``.  Every pair of selected points is at
    distance strictly greater than ``delta``, and every input point is
    within ``delta`` of some selected point (maximality).
    """
    metric = get_metric(metric)
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n = len(points)
    if n == 0:
        return np.zeros(0, dtype=int)
    chosen: list[int] = [0]
    dmin = metric.to_set(points[0], points)
    tol = 1e-12 * max(1.0, delta)
    while True:
        far = int(np.argmax(dmin))
        if dmin[far] <= delta + tol:
            break
        chosen.append(far)
        dmin = np.minimum(dmin, metric.to_set(points[far], points))
    return np.asarray(chosen, dtype=int)
