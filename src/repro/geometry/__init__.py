"""Geometric substrates: hierarchical grids over ``[Delta]^d`` (§5.1) and
packing/counting arguments in doubling metrics (Lemma 6, Lemma 25)."""

from .grid import GridHierarchy, GridLevel, PointGrid, PointGridHierarchy
from .packing import (
    doubling_cover_count,
    grid_cell_bound,
    packing_bound,
    separated_subset,
)

__all__ = [
    "GridHierarchy",
    "GridLevel",
    "PointGrid",
    "PointGridHierarchy",
    "doubling_cover_count",
    "grid_cell_bound",
    "packing_bound",
    "separated_subset",
]
