"""Hierarchical grids over the discrete space ``[Delta]^d`` (§5.1).

The fully dynamic streaming algorithm imposes grids
``G_0, G_1, ..., G_{ceil(log Delta)}`` on ``[Delta]^d = {1,...,Delta}^d``,
where cells of ``G_i`` are hypercubes of side ``2^i``.  Each non-empty cell
of a grid is identified by a single integer *cell id* so that it can be fed
to the linear sketches of :mod:`repro.sketches`.

Coordinates are the paper's 1-based integers in ``{1, ..., Delta}``;
internally they are shifted to 0-based so cell indices are simple shifts.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

import numpy as np

__all__ = ["GridLevel", "GridHierarchy"]


@dataclass(frozen=True)
class GridLevel:
    """One grid ``G_i`` with cells of side ``2^i`` over ``[Delta]^d``.

    Attributes
    ----------
    level:
        The index ``i``; cell side length is ``2**level``.
    delta:
        Universe size ``Delta`` (coordinates in ``1..Delta``).
    dim:
        Dimension ``d``.
    """

    level: int
    delta: int
    dim: int

    @property
    def side(self) -> int:
        """Cell side length ``2^i``."""
        return 1 << self.level

    @property
    def cells_per_axis(self) -> int:
        """Number of cells along each axis, ``ceil(Delta / 2^i)``."""
        return -(-self.delta // self.side)

    @property
    def num_cells(self) -> int:
        """Total number of cells (the sketch universe size for this grid)."""
        return self.cells_per_axis**self.dim

    def _check(self, pts: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(pts, dtype=np.int64))
        if pts.shape[1] != self.dim:
            raise ValueError(f"points must have dim {self.dim}, got {pts.shape[1]}")
        if pts.size and (pts.min() < 1 or pts.max() > self.delta):
            raise ValueError(f"coordinates must lie in 1..{self.delta}")
        return pts

    def cell_ids(self, pts: np.ndarray) -> np.ndarray:
        """Flattened cell id for each point (shape ``(n,)``).

        The id is the mixed-radix encoding of the per-axis cell indices;
        ids of distinct cells are distinct and lie in
        ``[0, num_cells)``.
        """
        pts = self._check(pts)
        idx = (pts - 1) >> self.level
        m = self.cells_per_axis
        out = np.zeros(len(pts), dtype=np.int64)
        for a in range(self.dim):
            out = out * m + idx[:, a]
        return out

    def cell_id(self, pt) -> int:
        """Cell id of a single point."""
        return int(self.cell_ids(np.asarray(pt, dtype=np.int64)[None, :])[0])

    def cell_center(self, cell_id: int) -> np.ndarray:
        """Geometric centre of a cell, in original (1-based, continuous)
        coordinates.

        Algorithm 5 uses cell centres as the representatives of a relaxed
        coreset; any point of the cell is within ``side * sqrt(d) / 2``
        (Euclidean) of the centre.
        """
        m = self.cells_per_axis
        idx = np.zeros(self.dim, dtype=np.int64)
        cid = int(cell_id)
        if cid < 0 or cid >= self.num_cells:
            raise ValueError(f"cell id {cell_id} out of range")
        for a in range(self.dim - 1, -1, -1):
            idx[a] = cid % m
            cid //= m
        lo = idx.astype(float) * self.side + 1.0  # smallest coordinate in cell
        return lo + (self.side - 1) / 2.0

    def cell_diameter_linf(self) -> float:
        """``L_inf`` diameter of a cell (``side - 1`` on the integer grid,
        but we use the conservative continuous value ``side``)."""
        return float(self.side)


@dataclass(frozen=True)
class GridHierarchy:
    """The full collection ``G_0 .. G_L`` with ``L = ceil(log2 Delta)``.

    Parameters
    ----------
    delta:
        Universe size ``Delta >= 2``.
    dim:
        Dimension ``d >= 1``.
    """

    delta: int
    dim: int

    def __post_init__(self):
        if self.delta < 2:
            raise ValueError("Delta must be at least 2")
        if self.dim < 1:
            raise ValueError("dim must be at least 1")

    @property
    def num_levels(self) -> int:
        """``ceil(log2 Delta) + 1`` levels (G_0 .. G_L inclusive)."""
        return int(ceil(log2(self.delta))) + 1

    def level(self, i: int) -> GridLevel:
        """The grid ``G_i``."""
        if not 0 <= i < self.num_levels:
            raise ValueError(f"level {i} out of range 0..{self.num_levels - 1}")
        return GridLevel(level=i, delta=self.delta, dim=self.dim)

    def levels(self) -> "list[GridLevel]":
        """All grids, finest (``G_0``) first."""
        return [self.level(i) for i in range(self.num_levels)]

    def finest_level_for_radius(self, r: float, eps: float) -> int:
        """The level ``j`` with ``2^j <= (eps / sqrt(d)) * r < 2^{j+1}``
        (clamped to the valid range) — the grid Lemma 25 proves has at most
        ``k (4 sqrt(d)/eps)^d + z`` non-empty cells when ``r = opt``."""
        if r <= 0:
            return 0
        target = eps * r / np.sqrt(self.dim)
        j = int(np.floor(np.log2(max(target, 1e-300))))
        return max(0, min(self.num_levels - 1, j))
