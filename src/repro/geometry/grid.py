"""Grids: the paper's hierarchical integer grids (§5.1) and a float-
coordinate bucket grid for radius-bounded candidate queries.

The fully dynamic streaming algorithm imposes grids
``G_0, G_1, ..., G_{ceil(log Delta)}`` on ``[Delta]^d = {1,...,Delta}^d``,
where cells of ``G_i`` are hypercubes of side ``2^i``.  Each non-empty cell
of a grid is identified by a single integer *cell id* so that it can be fed
to the linear sketches of :mod:`repro.sketches`.

Coordinates are the paper's 1-based integers in ``{1, ..., Delta}``;
internally they are shifted to 0-based so cell indices are simple shifts.

:class:`PointGrid` serves the radius-search and absorption hot paths
(:mod:`repro.core.greedy`, :mod:`repro.core.mbc`): it buckets float
coordinates into cells of a caller-chosen side and answers "all points
within distance ``D`` of here" with a superset drawn from the
``(2R+1)^d`` surrounding cells, entirely through sorted int64 cell codes
(no Python dicts in the per-cell loops).

:class:`PointGridHierarchy` is the persistent form the radius search
uses: a lazily materialized geometric ladder of :class:`PointGrid`
levels (side ``base_side * 2^i``) over one point set, so the
~``log(r_max/r_min)`` guesses of a search snap to shared levels instead
of re-bucketing the points per guess, and coarser levels derive their
sorted cell-code index from an already-built finer level (an argsort
over *cells*, not points).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2

import numpy as np

__all__ = ["GridLevel", "GridHierarchy", "PointGrid", "PointGridHierarchy"]


@dataclass(frozen=True)
class GridLevel:
    """One grid ``G_i`` with cells of side ``2^i`` over ``[Delta]^d``.

    Attributes
    ----------
    level:
        The index ``i``; cell side length is ``2**level``.
    delta:
        Universe size ``Delta`` (coordinates in ``1..Delta``).
    dim:
        Dimension ``d``.
    """

    level: int
    delta: int
    dim: int

    @property
    def side(self) -> int:
        """Cell side length ``2^i``."""
        return 1 << self.level

    @property
    def cells_per_axis(self) -> int:
        """Number of cells along each axis, ``ceil(Delta / 2^i)``."""
        return -(-self.delta // self.side)

    @property
    def num_cells(self) -> int:
        """Total number of cells (the sketch universe size for this grid)."""
        return self.cells_per_axis**self.dim

    def _check(self, pts: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(pts, dtype=np.int64))
        if pts.shape[1] != self.dim:
            raise ValueError(f"points must have dim {self.dim}, got {pts.shape[1]}")
        if pts.size and (pts.min() < 1 or pts.max() > self.delta):
            raise ValueError(f"coordinates must lie in 1..{self.delta}")
        return pts

    def cell_ids(self, pts: np.ndarray) -> np.ndarray:
        """Flattened cell id for each point (shape ``(n,)``).

        The id is the mixed-radix encoding of the per-axis cell indices;
        ids of distinct cells are distinct and lie in
        ``[0, num_cells)``.
        """
        pts = self._check(pts)
        idx = (pts - 1) >> self.level
        m = self.cells_per_axis
        out = np.zeros(len(pts), dtype=np.int64)
        for a in range(self.dim):
            out = out * m + idx[:, a]
        return out

    def cell_id(self, pt) -> int:
        """Cell id of a single point."""
        return int(self.cell_ids(np.asarray(pt, dtype=np.int64)[None, :])[0])

    def cell_center(self, cell_id: int) -> np.ndarray:
        """Geometric centre of a cell, in original (1-based, continuous)
        coordinates.

        Algorithm 5 uses cell centres as the representatives of a relaxed
        coreset; any point of the cell is within ``side * sqrt(d) / 2``
        (Euclidean) of the centre.
        """
        m = self.cells_per_axis
        idx = np.zeros(self.dim, dtype=np.int64)
        cid = int(cell_id)
        if cid < 0 or cid >= self.num_cells:
            raise ValueError(f"cell id {cell_id} out of range")
        for a in range(self.dim - 1, -1, -1):
            idx[a] = cid % m
            cid //= m
        lo = idx.astype(float) * self.side + 1.0  # smallest coordinate in cell
        return lo + (self.side - 1) / 2.0

    def cell_diameter_linf(self) -> float:
        """``L_inf`` diameter of a cell (``side - 1`` on the integer grid,
        but we use the conservative continuous value ``side``)."""
        return float(self.side)


@dataclass(frozen=True)
class GridHierarchy:
    """The full collection ``G_0 .. G_L`` with ``L = ceil(log2 Delta)``.

    Parameters
    ----------
    delta:
        Universe size ``Delta >= 2``.
    dim:
        Dimension ``d >= 1``.
    """

    delta: int
    dim: int

    def __post_init__(self):
        if self.delta < 2:
            raise ValueError("Delta must be at least 2")
        if self.dim < 1:
            raise ValueError("dim must be at least 1")

    @property
    def num_levels(self) -> int:
        """``ceil(log2 Delta) + 1`` levels (G_0 .. G_L inclusive)."""
        return int(ceil(log2(self.delta))) + 1

    def level(self, i: int) -> GridLevel:
        """The grid ``G_i``."""
        if not 0 <= i < self.num_levels:
            raise ValueError(f"level {i} out of range 0..{self.num_levels - 1}")
        return GridLevel(level=i, delta=self.delta, dim=self.dim)

    def levels(self) -> "list[GridLevel]":
        """All grids, finest (``G_0``) first."""
        return [self.level(i) for i in range(self.num_levels)]

    def finest_level_for_radius(self, r: float, eps: float) -> int:
        """The level ``j`` with ``2^j <= (eps / sqrt(d)) * r < 2^{j+1}``
        (clamped to the valid range) — the grid Lemma 25 proves has at most
        ``k (4 sqrt(d)/eps)^d + z`` non-empty cells when ``r = opt``."""
        if r <= 0:
            return 0
        target = eps * r / np.sqrt(self.dim)
        j = int(np.floor(np.log2(max(target, 1e-300))))
        return max(0, min(self.num_levels - 1, j))


class PointGrid:
    """A uniform bucket grid over float coordinates.

    Points are quantized to cells ``floor(p / side)`` per axis; each
    non-empty cell gets one int64 *code* (a mixed-radix encoding over the
    occupied extent, padded so a Chebyshev neighbor offset is a single
    scalar delta added to the code).  Cell codes are kept sorted, so
    neighbor lookup is a vectorized ``searchsorted`` — no per-cell Python
    dictionaries.

    Soundness (the contract the greedy/absorption loops rely on): for the
    built-in norms, ``dist(u, v) <= D`` implies per-coordinate
    ``|u_a - v_a| <= D``, so the quantized cells of ``u`` and ``v`` differ
    by at most :meth:`ring` ``(D)`` per axis.  The ``+ 5e-7`` slack in
    :meth:`ring` strictly dominates the float64 rounding of ``p / side``
    under the ``|floor(p/side)| < 2^30`` guard :meth:`build` enforces
    (relative error ``<= 2^30 * 2^-52 < 2.5e-7`` per operand), so the
    candidate superset never misses a true neighbor.  Distances are always
    re-evaluated exactly by the caller — the grid only *prunes*.

    Build with :meth:`build`, which returns ``None`` whenever the
    quantization cannot be trusted (non-finite coordinates, cells too
    small relative to the coordinate magnitude, code overflow); callers
    fall back to their dense scans in that case.
    """

    #: per-axis cell-index magnitude bound; keeps the ``p / side`` rounding
    #: error below the 5e-7 ring slack and the padded code product in int64
    _MAX_CELL_INDEX = 2.0**30

    def __init__(self, codes, order, cell_codes, cell_starts, cell_counts,
                 point_cell, radix, side, max_ring, cell_axes=None):
        self.n = len(codes)
        self.dim = len(radix)
        self.side = float(side)
        self.max_ring = int(max_ring)
        self.codes = codes
        #: point indices sorted by cell; ``order[starts[c]:starts[c]+counts[c]]``
        #: are the members of cell ``c``
        self.order = order
        self.cell_codes = cell_codes
        self.cell_starts = cell_starts
        self.cell_counts = cell_counts
        #: index into ``cell_codes`` of each point's cell
        self.point_cell = point_cell
        self._radix = radix
        #: absolute per-axis quantized indices of each non-empty cell
        #: (``(num_cells, d)`` int64) — what a coarser hierarchy level
        #: derives its own cells from via a right-shift
        self.cell_axes = cell_axes
        self._deltas: "dict[int, np.ndarray]" = {}

    @property
    def num_cells(self) -> int:
        """Number of non-empty cells."""
        return len(self.cell_codes)

    @classmethod
    def build(cls, pts: np.ndarray, side: float,
              max_ring: int = 3) -> "PointGrid | None":
        """Bucket ``pts`` (shape ``(n, d)``) into cells of ``side``.

        ``max_ring`` is the largest Chebyshev cell ring queries will ask
        for; the per-axis code radix is padded by ``2 * max_ring`` so
        every in-ring offset maps to a distinct delta code.  Returns
        ``None`` when the quantized cell indices cannot be trusted.
        """
        pts = np.atleast_2d(np.asarray(pts, dtype=np.float64))
        if side <= 0 or not np.isfinite(side):
            return None
        n, d = pts.shape
        if n == 0:
            return None
        with np.errstate(over="ignore", invalid="ignore"):
            q = np.floor(pts / side)
        if not np.isfinite(q).all() or (np.abs(q) >= cls._MAX_CELL_INDEX).any():
            return None
        qi = q.astype(np.int64)
        qmin = qi.min(axis=0)
        extents = qi.max(axis=0) - qmin + 1
        padded = extents + 2 * int(max_ring)
        if float(np.prod(padded.astype(np.float64))) >= 2.0**62:
            return None
        radix = np.ones(d, dtype=np.int64)
        for a in range(d - 2, -1, -1):
            radix[a] = radix[a + 1] * padded[a + 1]
        codes = ((qi - qmin) * radix).sum(axis=1)
        order = np.argsort(codes, kind="stable")
        sorted_codes = codes[order]
        is_start = np.empty(n, dtype=bool)
        is_start[0] = True
        np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=is_start[1:])
        starts = np.flatnonzero(is_start)
        cell_codes = sorted_codes[starts]
        counts = np.diff(np.append(starts, n))
        point_cell = np.searchsorted(cell_codes, codes)
        # absolute axis indices of each cell, read off its first member
        cell_axes = qi[order[starts]]
        return cls(codes, order, cell_codes, starts.astype(np.int64),
                   counts.astype(np.int64), point_cell, radix, side, max_ring,
                   cell_axes)

    def ring(self, dist: float) -> int:
        """Chebyshev cell-ring radius guaranteed to contain every point
        within ``dist`` (see the class docstring for the slack argument)."""
        r = int(np.floor(dist / self.side + 5e-7)) + 1
        if r > self.max_ring:
            raise ValueError(
                f"ring {r} for dist {dist!r} exceeds max_ring={self.max_ring} "
                f"(side {self.side!r}); build the grid with a larger max_ring"
            )
        return r

    def neighbor_deltas(self, R: int) -> np.ndarray:
        """Delta codes of all ``(2R+1)^d`` Chebyshev offsets (cached)."""
        deltas = self._deltas.get(R)
        if deltas is None:
            axes = np.meshgrid(*([np.arange(-R, R + 1)] * self.dim),
                               indexing="ij")
            offsets = np.stack(axes, axis=-1).reshape(-1, self.dim)
            deltas = (offsets * self._radix).sum(axis=1)
            self._deltas[R] = deltas
        return deltas

    def neighbors_of_cells(
        self, cells: np.ndarray, R: int
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Match the ring-``R`` neighborhoods of the given cells.

        Returns ``(src, nbr)`` — parallel arrays meaning "non-empty cell
        ``nbr`` (an index into ``cell_codes``) lies within Chebyshev ring
        ``R`` of ``cells[src]``", with ``src`` ascending (every cell
        neighbors at least itself).
        """
        deltas = self.neighbor_deltas(R)
        targets = self.cell_codes[cells][:, None] + deltas[None, :]
        pos = np.searchsorted(self.cell_codes, targets)
        pos_c = np.minimum(pos, self.num_cells - 1)
        valid = self.cell_codes[pos_c] == targets
        src_local, _ = np.nonzero(valid)
        return src_local, pos_c[valid]

    def points_in_cells(self, cells: np.ndarray) -> np.ndarray:
        """Concatenated member point indices of the given cells (a fully
        vectorized ragged gather; duplicated cells yield duplicates)."""
        cnt = self.cell_counts[cells]
        total = int(cnt.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64)
        out_offsets = np.concatenate(([0], np.cumsum(cnt)))[:-1]
        flat = (np.repeat(self.cell_starts[cells], cnt)
                + np.arange(total) - np.repeat(out_offsets, cnt))
        return self.order[flat]

    def query_point(self, i: int, dist: float) -> np.ndarray:
        """Candidate superset of points within ``dist`` of point ``i``."""
        _, nbr = self.neighbors_of_cells(
            np.asarray([self.point_cell[i]]), self.ring(dist))
        return self.points_in_cells(nbr)

    def query_cells_union(self, cells: np.ndarray, dist: float) -> np.ndarray:
        """Candidate superset of points within ``dist`` of any point in any
        of the given cells (each candidate exactly once)."""
        _, nbr = self.neighbors_of_cells(np.unique(cells), self.ring(dist))
        return self.points_in_cells(np.unique(nbr))


#: below this many estimated candidate pairs a pruned scan costs less
#: than quantizing the points into a fresh exact-side grid, so
#: :meth:`PointGridHierarchy.grid_for` keeps the snapped level
_REFINE_MIN_PAIRS = 2e7


class PointGridHierarchy:
    """A lazily materialized geometric ladder of :class:`PointGrid` levels.

    Level ``i`` (any integer, negative included) buckets the point set
    into cells of side ``base_side * 2**i``.  Levels are built on demand
    and memoized, so one radius search touches each distinct level once
    however many guesses snap to it; a level whose build cannot be
    trusted (see :meth:`PointGrid.build`) is memoized as ``None`` and the
    caller falls back to its dense path.

    **Derived builds.**  A coarse level never re-quantizes the points
    when a finer level already exists: the fine level's per-cell absolute
    axis indices are right-shifted (``floor(floor(x)/2^s) == floor(x/2^s)``
    exactly, for any real ``x`` and integer shift ``s >= 0`` — the nested
    floors collapse), fine cells are sorted into coarse groups (an argsort
    over *cells*, typically far fewer than points), and the fine member
    lists are gathered in coarse order.  Because the shift is applied to
    the same already-floored value the fine build computed, the derived
    coarse index of every point equals ``floor(fl(p/base_side) / 2^i)``
    — exactly the error model of a direct build at that level, so the
    :meth:`PointGrid.ring` slack argument holds verbatim and snapped
    candidate supersets stay sound at every level.

    **Snapping.**  :meth:`grid_for` maps a ball cutoff to the coarsest
    conservative level: the smallest ``side >= cutoff``, i.e. ``side in
    [cutoff, 2 * cutoff)``.  Snapping *up* keeps every ring tiny — the
    cutoff ball needs ring 1 and the Charikar decision's ``3g`` ball
    ring <= 3, exactly the rings a fresh side-equals-cutoff grid uses.
    The choice is purely a performance heuristic — soundness comes from
    :meth:`PointGrid.ring` at whatever side is returned — so results are
    bit-identical to a fresh per-guess grid (every candidate is
    re-checked exactly).

    **Exact-side fast path (``cell_budget``).**  The Charikar decision
    scans cells in two regimes: up to ``cell_budget`` source cells it
    runs one blocked distance matvec per cell, beyond that a chunked
    COO pair expansion.  Measured at n=10^5..10^6, scan cost tracks the
    candidate-pair count — so the *tightest* side (``side == cutoff``)
    wins — except when coarsening moves the scan from the COO regime
    into the blocked one, where the snapped level wins despite its up
    to ``2^d``-fold pair inflation.  With ``cell_budget`` set (the
    greedy decision passes its blocked-scan threshold),
    :meth:`grid_for` therefore serves the snapped ladder level only
    when (a) its side is within 5% of the cutoff anyway, (b) it is the
    only one of the two inside the blocked regime, or (c) the estimated
    pair count is so small the scan is trivial either way (a fresh
    build would cost more than it saves); for every other cutoff it
    serves a memoized exact-side grid.  ``cell_budget=None`` (the
    default) always serves ladder levels.

    ``max_ring`` must accommodate the expanded ``3g``-ball queries of the
    Charikar decision: with the snap-up rule keeping ``side >= cutoff``,
    a ``3 * guess`` query needs ring <= 3 (the default 4 leaves one ring
    of slack).
    """

    def __init__(self, pts: np.ndarray, base_side: float, max_ring: int = 4,
                 cell_budget: "int | None" = None):
        pts = np.atleast_2d(np.asarray(pts, dtype=np.float64))
        if base_side <= 0 or not np.isfinite(base_side):
            raise ValueError(f"base_side must be positive, got {base_side!r}")
        self.pts = pts
        self.base_side = float(base_side)
        self.max_ring = int(max_ring)
        self.cell_budget = None if cell_budget is None else int(cell_budget)
        self._extent = (pts.max(axis=0) - pts.min(axis=0)) if pts.size \
            else np.zeros(pts.shape[1])
        self._levels: "dict[int, PointGrid | None]" = {}
        self._exact: "dict[float, PointGrid | None]" = {}
        #: direct builds (full quantize + point argsort), ladder or exact
        self.direct_builds = 0
        #: derived builds (cell-shift + cell argsort off a finer level)
        self.derived_builds = 0
        #: grid_for calls served from an already-materialized grid
        self.snap_hits = 0

    def side(self, level: int) -> float:
        """Cell side of ``level`` (``base_side * 2**level``)."""
        return self.base_side * 2.0 ** level

    def level_for(self, cutoff: float) -> int:
        """The ladder level :meth:`grid_for` snaps ``cutoff`` to.

        Picks the smallest ``side >= target`` for ``target = cutoff *
        (1 + 1e-6)`` (the same slack a fresh per-guess grid applies), so
        ``side in [target, 2 * target)``: the cutoff ball is covered by
        ring 1 and the ``3 * cutoff`` ball by ring 3 at every level.
        """
        if cutoff <= 0 or not np.isfinite(cutoff):
            raise ValueError(f"cutoff must be positive, got {cutoff!r}")
        target = cutoff * (1.0 + 1e-6)
        lvl = int(np.ceil(np.log2(target / self.base_side)))
        # float log2 can be off by one step at boundaries; pin the invariant
        while self.side(lvl) < target:
            lvl += 1
        while self.side(lvl - 1) >= target:
            lvl -= 1
        return lvl

    def grid_at(self, level: int) -> "PointGrid | None":
        """The memoized grid of ``level``, building (or deriving) it on
        first use; ``None`` when that level's quantization is untrusted."""
        if level in self._levels:
            return self._levels[level]
        finer = [j for j, g in self._levels.items() if g is not None and j < level]
        if finer:
            grid = self._derive(self._levels[max(finer)], level)
            self.derived_builds += 1
        else:
            grid = PointGrid.build(self.pts, self.side(level),
                                   max_ring=self.max_ring)
            self.direct_builds += 1
        self._levels[level] = grid
        return grid

    def grid_for(self, cutoff: float) -> "PointGrid | None":
        """Snap a ball cutoff to its ladder level and return that grid
        (or the exact-side fast path when ``cell_budget`` applies —
        see the class docstring).

        Tries up to two coarser levels when the snapped one is untrusted
        (coarser cells have smaller indices, so they can pass the build
        guard where a fine level overflows); a coarser side only widens
        the candidate superset, never unsounds it.  Returns ``None`` when
        no nearby level can be built.
        """
        lvl = self.level_for(cutoff)
        snapped, snapped_hit = None, False
        for attempt in (lvl, lvl + 1, lvl + 2):
            if attempt in self._levels:
                grid = self._levels[attempt]
                if grid is not None:
                    snapped, snapped_hit = grid, True
                    break
                continue
            grid = self.grid_at(attempt)
            if grid is not None:
                snapped = grid
                break
        if snapped is None:
            return None
        refined, refined_hit = self._refine(snapped, cutoff)
        if (refined is snapped and snapped_hit) or \
                (refined is not snapped and refined_hit):
            self.snap_hits += 1
        return refined

    def _refine(self, snapped: PointGrid,
                cutoff: float) -> "tuple[PointGrid, bool]":
        """The exact-side fast path: ``(grid, served_from_memo)``.

        Scan cost tracks candidate pairs, so a side-equals-cutoff grid
        beats the snapped level except in the three cases the class
        docstring lists — side already ~exact, snapped alone in the
        blocked-matvec regime, or a trivially cheap scan.  Exact grids
        are memoized per cutoff (repeat decisions and absorption reuse
        them) and fall back to the snapped level when their quantization
        is untrusted.
        """
        if self.cell_budget is None:
            return snapped, False
        target = cutoff * (1.0 + 1e-6)
        if snapped.side <= 1.05 * target:
            return snapped, False
        est_cells = snapped.num_cells * \
            (snapped.side / target) ** snapped.dim
        if snapped.num_cells <= self.cell_budget < est_cells:
            return snapped, False
        n = len(self.pts)
        occupancy = 1.0
        for ext in self._extent:
            if ext > 0:
                occupancy *= min(1.0, 3.0 * snapped.side / float(ext))
        if float(n) * float(n) * occupancy <= _REFINE_MIN_PAIRS:
            return snapped, False
        if target in self._exact:
            grid = self._exact[target]
            if grid is not None:
                return grid, True
            return snapped, False
        grid = PointGrid.build(self.pts, target, max_ring=self.max_ring)
        self._exact[target] = grid
        if grid is None:
            return snapped, False
        self.direct_builds += 1
        return grid, False

    def _derive(self, fine: PointGrid, level: int) -> "PointGrid | None":
        """Build ``level`` from a finer materialized grid (see class doc)."""
        shift = int(round(np.log2(self.side(level) / fine.side)))
        if shift <= 0:  # pragma: no cover - callers only derive coarser
            return PointGrid.build(self.pts, self.side(level),
                                   max_ring=self.max_ring)
        # arithmetic right shift == floor division by 2^shift (negatives too)
        coarse_axes = fine.cell_axes >> shift
        qmin = coarse_axes.min(axis=0)
        extents = coarse_axes.max(axis=0) - qmin + 1
        padded = extents + 2 * self.max_ring
        if float(np.prod(padded.astype(np.float64))) >= 2.0**62:
            return None  # pragma: no cover - coarser never exceeds finer
        d = fine.dim
        radix = np.ones(d, dtype=np.int64)
        for a in range(d - 2, -1, -1):
            radix[a] = radix[a + 1] * padded[a + 1]
        # coarse code of every *fine cell*, then group fine cells by it
        fc_codes = ((coarse_axes - qmin) * radix).sum(axis=1)
        csort = np.argsort(fc_codes, kind="stable")
        sorted_fc = fc_codes[csort]
        m = len(sorted_fc)
        is_start = np.empty(m, dtype=bool)
        is_start[0] = True
        np.not_equal(sorted_fc[1:], sorted_fc[:-1], out=is_start[1:])
        gstarts = np.flatnonzero(is_start)
        cell_codes = sorted_fc[gstarts]
        counts = np.add.reduceat(fine.cell_counts[csort], gstarts)
        starts = np.concatenate(([0], np.cumsum(counts)))[:-1]
        # member points: fine cells' members concatenated in coarse order
        order = fine.points_in_cells(csort)
        codes = fc_codes[fine.point_cell]
        point_cell = np.searchsorted(cell_codes, codes)
        cell_axes = coarse_axes[csort[gstarts]]
        return PointGrid(
            codes, order, cell_codes, starts.astype(np.int64),
            counts.astype(np.int64), point_cell, radix,
            self.side(level), self.max_ring, cell_axes,
        )
