"""repro — full reproduction of *k-Center Clustering with Outliers in the
MPC and Streaming Model* (de Berg, Biabani, Monemizadeh, 2023).

Public API overview
-------------------

Facade (``repro.api``)
    The unified entry point: :class:`~repro.api.ProblemSpec` (validated
    ``k, z, eps, metric, seed, dim``), the string-keyed backend registry
    (``register_backend`` / ``get_backend`` / ``available_backends``)
    over every coreset algorithm in the library, and
    :class:`~repro.api.KCenterSession` with batched ``extend`` and an
    enriched, provenance-carrying ``solve()``.
Core (``repro.core``)
    :class:`~repro.core.WeightedPointSet`, metrics, the ``Greedy``
    3-approximation, ``MBCConstruction`` (Algorithm 1), coreset
    verification.
Kernels (``repro.kernels``)
    The shared distance-computation layer under every radius search and
    absorption loop: block kernels (bit-exact float64 / fast float32),
    chunk autotuning and reusable workspaces, with ``dtype`` /
    ``kernel_chunk`` knobs threaded through ``ProblemSpec`` and the MPC
    task tuples.
Persist (``repro.persist``)
    Durable session state: a versioned snapshot container (JSON manifest
    + npz payload) behind ``KCenterSession.save``/``load``, implemented
    by every registered backend with bit-identical restore-then-continue.
Engine (``repro.engine``)
    The parallel execution layer: interchangeable serial/thread/process
    executors with bit-identical results, deterministic per-task seed
    derivation, machine-accounting-preserving fan-out, and the on-disk
    experiment results cache.
MPC (``repro.mpc``)
    Simulated MPC cluster with storage/communication accounting; the
    deterministic 2-round (Algorithm 2), randomized 1-round (Algorithm 6)
    and R-round (Algorithm 7) coreset algorithms, plus
    Ceccarello-Pietracaprina-Pucci baselines.
Streaming (``repro.streaming``)
    Insertion-only streaming (Algorithm 3), the fully dynamic sketch-based
    algorithm (Algorithm 5), sliding-window and prior-work baselines.
Serve (``repro.serve``)
    Multi-tenant clustering-as-a-service over the session API: a
    stdlib-only threaded HTTP/JSON server with per-session locking,
    snapshot-backed LRU eviction, checkpoint-cadence crash recovery,
    Prometheus ``/metrics`` and a scenario-replay load generator.
Sketches (``repro.sketches``)
    s-sparse recovery and F0 estimation over dynamic streams.
Lower bounds (``repro.lowerbounds``)
    Executable versions of every lower-bound construction (§4.1, §4.2,
    §5.2, §6) and an adversary harness.
Workloads / experiments (``repro.workloads``, ``repro.experiments``)
    Synthetic data generators and the drivers that regenerate Table 1.
"""

from . import api, core, engine, kernels, persist
from .api import (
    KCenterSession,
    ProblemSpec,
    available_backends,
    get_backend,
    register_backend,
)
from .core import (
    WeightedPointSet,
    charikar_greedy,
    gonzalez,
    mbc_construction,
    solve_kcenter_outliers,
    solve_via_coreset,
    update_coreset,
)

__version__ = "1.10.0"

__all__ = [
    "KCenterSession",
    "ProblemSpec",
    "WeightedPointSet",
    "api",
    "available_backends",
    "charikar_greedy",
    "core",
    "engine",
    "get_backend",
    "gonzalez",
    "kernels",
    "mbc_construction",
    "persist",
    "register_backend",
    "solve_kcenter_outliers",
    "solve_via_coreset",
    "update_coreset",
    "__version__",
]
