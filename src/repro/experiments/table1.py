"""Experiment drivers regenerating Table 1 (and the figures) — see the
per-experiment index in DESIGN.md.

Each driver returns :class:`~repro.experiments.report.Row` lists; the
benchmarks print them and time the core operation.  Absolute numbers are
simulator-scale; the claims under reproduction are the *shapes*: who wins,
how storage grows in each parameter, where the lower-bound mechanisms
bite.
"""

from __future__ import annotations

import numpy as np

from ..api import KCenterSession, ProblemSpec
from ..core.greedy import charikar_greedy
from ..core.points import WeightedPointSet
from ..core.solver import continuous_opt_1d
from ..lowerbounds.adversary import (
    DroppingMaintainer,
    ExactMaintainer,
    attack_lemma12,
    attack_lemma15,
)
from ..lowerbounds.geometry_checks import claim38_check, claim39_radius, lemma41_gap
from ..lowerbounds.insertion_only import Lemma12Instance, Lemma15Instance
from ..lowerbounds.dynamic import Theorem28Instance
from ..lowerbounds.sliding_window import Theorem30Instance
from ..mpc.partition import (
    partition_adversarial_outliers,
    partition_random,
    recommended_num_machines,
)
from ..streaming.mccutchen_khuller import McCutchenKhuller
from ..workloads.synthetic import (
    clustered_with_outliers,
    drifting_stream,
    integer_workload,
)
from .report import Row

__all__ = [
    "mpc_one_round_rows",
    "mpc_two_round_rows",
    "mpc_multi_round_rows",
    "streaming_insertion_rows",
    "dynamic_rows",
    "sliding_window_rows",
    "insertion_lb_rows",
    "omega_z_lb_rows",
    "dynamic_lb_rows",
    "sliding_lb_rows",
    "geometry_rows",
    "coreset_quality_rows",
]


def _quality(full: WeightedPointSet, coreset: WeightedPointSet, k: int, z: int,
             metric=None) -> float:
    """Radius achieved by solving on the coreset, relative to solving on
    the full set (both via the 3-approximation) — the end-to-end quality
    metric of the paper's 'run an offline algorithm on the coreset'
    recipe.  Values near 1 mean the coreset loses nothing."""
    r_full = charikar_greedy(full, k, z, metric).radius
    if len(coreset) == 0:
        return float("nan")
    r_core = charikar_greedy(coreset, k, z, metric).radius
    return float(r_core / r_full) if r_full > 0 else float("nan")


# ---------------------------------------------------------------------------
# E1 / E2 / E3 — MPC rows of Table 1
# ---------------------------------------------------------------------------

def _mpc_session(
    spec: ProblemSpec, backend: str, P: WeightedPointSet, parts, **options
) -> KCenterSession:
    """Build an MPC-model session over a fixed pre-computed partition."""
    sess = KCenterSession.from_spec(
        spec, backend=backend, partition=lambda _: parts, **options
    )
    sess.backend.extend_weighted(P)
    return sess


def mpc_one_round_rows(
    n: int = 3000, k: int = 4, eps: float = 0.5, d: int = 2,
    z_values=(8, 32, 128), seed: int = 0, dtype: "str | None" = None,
) -> "list[Row]":
    """E1 — Table 1 rows 1-2: randomized 1-round, ours versus CPP19,
    under random distribution; storage versus ``z``.  ``dtype`` selects
    the distance kernel for the machine-local radius searches."""
    rows = []
    for z in z_values:
        rng = np.random.default_rng(seed)
        wl = clustered_with_outliers(n, k, z, d, rng=rng)
        P = wl.point_set()
        spec = ProblemSpec(k=k, z=z, eps=eps, dim=d, seed=seed, dtype=dtype)
        m = recommended_num_machines(n, k, z, eps, d)
        parts = partition_random(P, m, rng)
        for name, backend in (
            ("ours-1round", "mpc-one-round"), ("cpp19-rand", "cpp-mpc-randomized"),
        ):
            sess = _mpc_session(spec, backend, P, parts)
            cs = sess.coreset()
            res = sess.backend.last_result
            rows.append(Row(
                "E1", name, {"n": n, "z": z, "m": m, "eps": eps},
                {
                    "coord_peak": res.stats.coordinator_peak,
                    "worker_peak": res.stats.worker_peak,
                    "coreset": len(cs),
                    "quality": _quality(P, cs, k, z),
                },
            ))
    return rows


def mpc_two_round_rows(
    n: int = 3000, k: int = 4, eps: float = 0.5, d: int = 2,
    z_values=(8, 32, 128), m: int = 8, seed: int = 0,
    dtype: "str | None" = None,
) -> "list[Row]":
    """E2 — Table 1 rows 3-4: deterministic algorithms under an
    *adversarial* partition (all outliers on one worker).  CPP19 must
    budget ``z`` on every machine; ours guesses budgets summing to
    ``<= 2z`` (the §3 mechanism)."""
    rows = []
    for z in z_values:
        rng = np.random.default_rng(seed)
        wl = clustered_with_outliers(n, k, z, d, rng=rng)
        P = wl.point_set()
        spec = ProblemSpec(k=k, z=z, eps=eps, dim=d, seed=seed, dtype=dtype)
        parts = partition_adversarial_outliers(P, wl.outlier_mask, m, rng)
        ours = _mpc_session(spec, "mpc-two-round", P, parts)
        base = _mpc_session(spec, "cpp-mpc-deterministic", P, parts)
        ours_cs, base_cs = ours.coreset(), base.coreset()
        budget_total = sum(ours.backend.last_result.extras["outlier_budgets"])
        for name, sess, cs in (
            ("ours-2round", ours, ours_cs), ("cpp19-det", base, base_cs),
        ):
            res = sess.backend.last_result
            rows.append(Row(
                "E2", name, {"n": n, "z": z, "m": m, "eps": eps},
                {
                    "coord_peak": res.stats.coordinator_peak,
                    "worker_peak": res.stats.worker_peak,
                    "coreset": len(cs),
                    "rounds": res.stats.rounds,
                    "budget_sum": budget_total if name == "ours-2round" else m * z,
                    "quality": _quality(P, cs, k, z),
                },
            ))
    return rows


def mpc_multi_round_rows(
    n: int = 3000, k: int = 4, z: int = 32, eps: float = 0.3, d: int = 2,
    m: int = 27, rounds_values=(1, 2, 3), seed: int = 0,
    dtype: "str | None" = None,
) -> "list[Row]":
    """E3 — Table 1 row 5: the rounds/storage trade-off of Algorithm 7."""
    rng = np.random.default_rng(seed)
    wl = clustered_with_outliers(n, k, z, d, rng=rng)
    P = wl.point_set()
    spec = ProblemSpec(k=k, z=z, eps=eps, dim=d, seed=seed, dtype=dtype)
    parts = partition_random(P, m, rng)
    rows = []
    for R in rounds_values:
        sess = _mpc_session(spec, "mpc-multi-round", P, parts, rounds=R)
        cs = sess.coreset()
        res = sess.backend.last_result
        rows.append(Row(
            "E3", f"ours-R{R}", {"n": n, "z": z, "m": m, "R": R, "eps": eps},
            {
                "coord_peak": res.stats.coordinator_peak,
                "max_peak": max(res.stats.per_machine_peak),
                "coreset": len(cs),
                "eps_guarantee": res.eps_guarantee,
                "quality": _quality(P, cs, k, z),
            },
        ))
    return rows


# ---------------------------------------------------------------------------
# E4 — insertion-only streaming
# ---------------------------------------------------------------------------

def streaming_insertion_rows(
    n: int = 4000, k: int = 3, d: int = 1,
    eps_values=(1.0, 0.5, 0.25), z_values=(8, 64), seed: int = 0,
) -> "list[Row]":
    """E4 — Table 1 rows 6-8: ours versus CPP19 storage, against the
    Omega(k/eps^d + z) lower-bound value."""
    rows = []
    for eps in eps_values:
        for z in z_values:
            rng = np.random.default_rng(seed)
            stream = drifting_stream(n, k, z, d, rng=rng)
            P = WeightedPointSet.from_points(stream)
            spec = ProblemSpec(k=k, z=z, eps=eps, dim=d, seed=seed)
            lb = int(k / (eps**d) + z)
            for name, backend in (
                ("ours-stream", "insertion-only"),
                ("cpp19-stream", "ceccarello-stream"),
            ):
                sess = KCenterSession.from_spec(spec, backend=backend)
                sess.extend(stream)
                st = sess.stats()
                rows.append(Row(
                    "E4", name, {"n": n, "z": z, "eps": eps},
                    {
                        "stored": st["stored"], "threshold": st["threshold"],
                        "lower_bound": lb,
                        "quality": _quality(P, sess.coreset(), k, z),
                    },
                ))
            mk = McCutchenKhuller(k, z, eps=max(eps, 0.5))
            mk.extend(stream)
            r_full = charikar_greedy(P, k, z).radius
            rows.append(Row(
                "E4", "mk08", {"n": n, "z": z, "eps": eps},
                {
                    "stored": mk.size,
                    "quality": mk.estimate() / r_full if r_full else float("nan"),
                },
            ))
    return rows


# ---------------------------------------------------------------------------
# E6 — fully dynamic streaming
# ---------------------------------------------------------------------------

def dynamic_rows(
    k: int = 3, z: int = 6, eps: float = 1.0, d: int = 2,
    delta_values=(64, 256, 1024), n: int = 200, deletions: int = 100,
    seed: int = 0,
) -> "list[Row]":
    """E6 — Table 1 row 12: sketch storage versus ``Delta`` and coreset
    quality after a delete-heavy stream."""
    rows = []
    for delta in delta_values:
        rng = np.random.default_rng(seed)
        wl = integer_workload(n, k, z, delta, d, rng=rng)
        spec = ProblemSpec(k=k, z=z, eps=eps, dim=d, seed=seed + 1)
        sess = KCenterSession.from_spec(spec, backend="dynamic",
                                        delta_universe=delta)
        sess.extend(wl.points)
        sess.delete_many(wl.points[:deletions])
        live = WeightedPointSet.from_points(wl.points[deletions:].astype(float))
        cs = sess.coreset()
        st = sess.stats()
        rows.append(Row(
            "E6", "dynamic-sketch", {"Delta": delta, "n": n, "del": deletions},
            {
                "storage_cells": st["storage_cells"],
                "levels": st["levels"],
                "coreset": len(cs),
                "weight_ok": int(cs.total_weight == live.total_weight),
                "quality": _quality(live, cs, k, z),
            },
        ))
    return rows


# ---------------------------------------------------------------------------
# E8 — sliding window
# ---------------------------------------------------------------------------

def sliding_window_rows(
    n: int = 1500, window: int = 300, k: int = 2, d: int = 2,
    eps: float = 0.5, z_values=(2, 8), seed: int = 0,
) -> "list[Row]":
    """E8 — Table 1 rows 9-11: DBMZ-structure storage (per-guess covers
    with z+1 recency buffers) and answer quality versus offline
    recomputation on the exact window."""
    rows = []
    for z in z_values:
        rng = np.random.default_rng(seed)
        stream = drifting_stream(n, k, max(z * 3, 8), d, rng=rng)
        spec = ProblemSpec(k=k, z=z, eps=eps, dim=d, seed=seed)
        sess = KCenterSession.from_spec(spec, backend="sliding-window",
                                        window=window, r_min=0.05, r_max=200.0)
        sess.extend(stream)
        wpts = WeightedPointSet.from_points(stream[-window:])
        r_off = charikar_greedy(wpts, k, z).radius
        sol = sess.solve()
        rows.append(Row(
            "E8", "dbmz-window", {"n": n, "W": window, "z": z, "eps": eps},
            {
                "stored": sol.stats["stored"],
                "guesses": sol.stats["guesses"],
                "radius": sol.radius,
                "offline": r_off,
                "quality": sol.radius / r_off if r_off else float("nan"),
            },
        ))
    return rows


# ---------------------------------------------------------------------------
# E5 / E11 / E12 — insertion-only lower bounds (Figures 2-4)
# ---------------------------------------------------------------------------

def insertion_lb_rows(
    configs=((2, 2, 1, 1 / 8), (4, 2, 1, 1 / 16), (4, 4, 2, 1 / 16)),
) -> "list[Row]":
    """E5/E11 — the Lemma 12 mechanism: an exact maintainer pays the
    Omega(k/eps^d) storage; dropping any single cluster point is
    certifiably fatal."""
    rows = []
    for k, z, d, eps in configs:
        inst = Lemma12Instance.build(k, z, d, eps)
        exact = attack_lemma12(ExactMaintainer(d), inst)
        rows.append(Row(
            "E5", "exact-maintainer", {"k": k, "z": z, "d": d, "eps": eps},
            {
                "stored": exact.storage, "required": exact.required,
                "survived": int(exact.survived), "violated": int(exact.violated),
            },
        ))
        # attack every cluster point in turn; all must be fatal
        fatal = 0
        for p_star in inst.cluster_points:
            rep = attack_lemma12(DroppingMaintainer(d, p_star), inst)
            fatal += int(rep.violated)
        rows.append(Row(
            "E5", "drop-any-point", {"k": k, "z": z, "d": d, "eps": eps},
            {
                "attacks": len(inst.cluster_points), "fatal": fatal,
                "required": inst.required_storage,
            },
        ))
    return rows


def omega_z_lb_rows(configs=((2, 3), (3, 8), (2, 16))) -> "list[Row]":
    """E12 — the Lemma 15 Omega(z) mechanism on the line."""
    rows = []
    for k, z in configs:
        inst = Lemma15Instance(k, z)
        exact = attack_lemma15(ExactMaintainer(1), inst)
        fatal = 0
        for p in inst.prefix_points():
            rep = attack_lemma15(DroppingMaintainer(1, p), inst)
            fatal += int(rep.violated)
        rows.append(Row(
            "E12", "lemma15", {"k": k, "z": z},
            {
                "required": inst.required_storage,
                "exact_survived": int(exact.survived),
                "attacks": k + z, "fatal": fatal,
            },
        ))
    return rows


# ---------------------------------------------------------------------------
# E7 / E13 — dynamic lower bound (Figure 5)
# ---------------------------------------------------------------------------

def dynamic_lb_rows(
    k: int = 2, z: int = 2, d: int = 1, eps: float = 1 / 16,
    delta_values=(2**10, 2**12, 2**16),
) -> "list[Row]":
    """E7/E13 — Theorem 28: required storage grows as log(Delta); the
    scaled cross gadget is fatal at every scale ``m*``."""
    rows = []
    for delta in delta_values:
        inst = Theorem28Instance.build(k, z, d, eps, delta)
        fatal = 0
        attacks = 0
        for m_star in range(1, inst.g + 1):
            key = (0, m_star)
            p_star = inst.group_points[key][0]
            # continuation: opt lower bound (claim) vs coreset upper bound
            # realised by the witness centers on the surviving points +
            # gadget, minus p*
            survivors = [inst.outliers]
            for (i, m), pts in inst.group_points.items():
                if m < m_star or (i, m) == key:
                    survivors.append(pts)
            live = np.concatenate(survivors)
            live = live[~np.all(np.isclose(live, p_star), axis=1)]
            gadget = inst.cross_gadget(p_star, m_star)
            coreset = WeightedPointSet(
                np.concatenate([live, gadget]),
                np.concatenate([
                    np.ones(len(live), dtype=np.int64),
                    np.full(len(gadget), 2, dtype=np.int64),
                ]),
            )
            from ..core.radius import coverage_radius

            centers = inst.witness_centers(p_star, m_star, 0)
            ub = coverage_radius(coreset, centers, z)
            lb = inst.claim_lower_bound(m_star)
            attacks += 1
            fatal += int((1 - eps) * lb > ub + 1e-9)
        rows.append(Row(
            "E7", "theorem28", {"Delta": delta, "k": k, "z": z, "eps": eps},
            {
                "g": inst.g, "required": inst.required_storage,
                "attacks": attacks, "fatal": fatal,
            },
        ))
    return rows


# ---------------------------------------------------------------------------
# E14 — sliding-window lower bound (Figures 6-7)
# ---------------------------------------------------------------------------

def sliding_lb_rows(
    k: int = 2, z: int = 3, d: int = 1, eps: float = 1 / 24, g: int = 4,
) -> "list[Row]":
    """E14 — Theorem 30 / Claim 31: at every scale ``j* > 1`` the optimal
    radius drops by more than the ``1 - 3 eps`` tolerance exactly when the
    attacked point expires (exact continuous 1-d optima)."""
    inst = Theorem30Instance.build(k, z, d, eps, g)
    rows = []
    for j_star in range(2, g + 1):
        before, after, bound = inst.claim31_windows(0, j_star, 0)
        rb = continuous_opt_1d(before, k, z)
        ra = continuous_opt_1d(after, k, z)
        rows.append(Row(
            "E14", "theorem30", {"j_star": j_star, "z": z, "eps": eps},
            {
                "opt_before": rb, "opt_after": ra,
                "ratio": ra / rb if rb else float("nan"),
                "bound_1_minus_4eps": bound,
                "required_expirations": inst.required_expirations,
                "violates_1pm_eps": int(ra / rb < 1 - 3 * eps) if rb else 0,
            },
        ))
    return rows


# ---------------------------------------------------------------------------
# E15 — appendix geometry (Figure 8)
# ---------------------------------------------------------------------------

def geometry_rows(
    configs=((1, 1 / 8), (1, 1 / 16), (2, 1 / 16), (2, 1 / 32), (3, 1 / 24)),
) -> "list[Row]":
    """E15 — Lemma 41 / Claims 38-39 numeric sweeps."""
    rows = []
    for d, eps in configs:
        ok38, margin = claim38_check(d, eps)
        slack39, cover = claim39_radius(d, eps)
        rows.append(Row(
            "E15", "geometry", {"d": d, "eps": eps},
            {
                "lemma41_gap": lemma41_gap(d, eps),
                "claim38_ok": int(ok38), "claim38_margin": margin,
                "claim39_slack": slack39, "claim39_radius": cover,
            },
        ))
    return rows


# ---------------------------------------------------------------------------
# E9 — coreset quality across all algorithms
# ---------------------------------------------------------------------------

def coreset_quality_rows(
    n: int = 1200, k: int = 3, z: int = 12, d: int = 2, eps: float = 0.5,
    seed: int = 0,
) -> "list[Row]":
    """E9 — end-to-end quality (radius via coreset / radius via full data)
    for every upper-bound algorithm in the library."""
    rng = np.random.default_rng(seed)
    wl = clustered_with_outliers(n, k, z, d, rng=rng)
    P = wl.point_set()
    spec = ProblemSpec(k=k, z=z, eps=eps, dim=d, seed=seed)
    rows = []

    parts = partition_random(P, 8, rng)
    for name, backend, options in (
        ("mpc-2round", "mpc-two-round", {}),
        ("mpc-1round", "mpc-one-round", {}),
        ("mpc-Rround", "mpc-multi-round", {"rounds": 3}),
    ):
        sess = _mpc_session(spec, backend, P, parts, **options)
        cs = sess.coreset()
        rows.append(Row("E9", name, {"eps": eps},
                        {"coreset": len(cs),
                         "quality": _quality(P, cs, k, z)}))
    sess = KCenterSession.from_spec(spec, backend="insertion-only")
    sess.extend(wl.points)
    cs = sess.coreset()
    rows.append(Row("E9", "stream-insertion", {"eps": eps},
                    {"coreset": len(cs), "quality": _quality(P, cs, k, z)}))
    return rows
