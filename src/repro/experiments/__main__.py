"""Sharded experiment runner: run Table-1 drivers, in parallel, cached.

The ~12 experiment drivers are mutually independent, so the runner
shards them across a :class:`~repro.engine.ProcessExecutor` (``--jobs``)
and caches every driver's ``Row`` list in a results directory keyed by
experiment id + driver parameters — a re-run after a crash or a ^C only
pays for the experiments that never finished.

Usage::

    python -m repro.experiments                    # all experiments (minutes)
    python -m repro.experiments E2 E14             # a subset by id
    python -m repro.experiments --quick --jobs 4   # reduced params, 4 shards
    python -m repro.experiments --list             # ids and titles
    python -m repro.experiments --force E2         # ignore cached rows
    python -m repro.experiments --no-cache E2      # don't read or write cache

The ``matrix`` subcommand runs the cross-backend scenario evaluation
matrix (:mod:`repro.scenarios.matrix`) through the same caching and
``--quick`` machinery::

    python -m repro.experiments matrix --quick
    python -m repro.experiments matrix --scenarios drift,adversarial \\
        --backends insertion-only,mpc-two-round --jobs 4
    python -m repro.experiments matrix --quick --replicates 5
    python -m repro.experiments matrix --list

``matrix --replicates N`` runs every cell ``N`` times on
``SeedSequence.spawn``-derived stream seeds and reports mean/CI/quantile
aggregates plus a Holm-corrected pairwise backend significance matrix
(:mod:`repro.verify`) instead of single-seed point estimates.

With ``matrix --checkpoint-dir DIR`` every in-flight cell also saves a
durable session snapshot (:mod:`repro.persist`) after each stream batch,
so a killed sweep rerun with the same directory resumes *mid-stream* —
bit-identical to an uninterrupted run — instead of replaying whole cells.

The cache lives in ``--results-dir`` (default: ``$REPRO_RESULTS_DIR`` or
``./.repro-results``); each entry is a pickle of the rows plus a JSON
sidecar with the key and parameters.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from dataclasses import dataclass, field

from ..engine import ResultsCache, default_results_dir, get_executor
from . import table1
from .report import Row, format_table


@dataclass(frozen=True)
class Experiment:
    """One runnable experiment: a driver in :mod:`repro.experiments.table1`
    plus its full-run and quick-run keyword arguments."""

    eid: str
    title: str
    driver: str  # function name in table1 (kept as a name so shards pickle)
    full: dict = field(default_factory=dict)
    quick: dict = field(default_factory=dict)

    def kwargs(self, quick: bool) -> dict:
        return dict(self.quick if quick else self.full)

    def run(self, quick: bool = False, **overrides) -> "list[Row]":
        """Invoke the driver; ``overrides`` layer on top of the
        experiment's own kwargs (the ``--dtype`` injection path)."""
        return getattr(table1, self.driver)(**{**self.kwargs(quick), **overrides})


#: experiment id -> definition (insertion order is the display order)
EXPERIMENTS: "dict[str, Experiment]" = {
    e.eid: e
    for e in [
        Experiment("E1", "randomized 1-round MPC (Table 1 rows 1-2)",
                   "mpc_one_round_rows",
                   quick={"n": 800, "z_values": (8, 32)}),
        Experiment("E2", "deterministic MPC, adversarial outliers (rows 3-4)",
                   "mpc_two_round_rows",
                   quick={"n": 800, "z_values": (8, 32)}),
        Experiment("E3", "R-round trade-off (row 5)",
                   "mpc_multi_round_rows",
                   quick={"n": 800, "m": 8, "rounds_values": (1, 2)}),
        Experiment("E4", "insertion-only streaming (rows 6-8)",
                   "streaming_insertion_rows",
                   quick={"n": 1000, "eps_values": (1.0,), "z_values": (8, 64)}),
        Experiment("E5", "insertion-only lower bound (Figures 2-3)",
                   "insertion_lb_rows"),
        Experiment("E6", "fully dynamic streaming (row 12)",
                   "dynamic_rows",
                   quick={"delta_values": (64, 256), "n": 120, "deletions": 60}),
        Experiment("E7", "dynamic lower bound (Figure 5)",
                   "dynamic_lb_rows"),
        Experiment("E8", "sliding window (rows 9-11)",
                   "sliding_window_rows",
                   quick={"n": 800, "window": 200}),
        Experiment("E9", "coreset quality, all algorithms",
                   "coreset_quality_rows",
                   quick={"n": 500}),
        Experiment("E12", "Omega(z) lower bound (Figure 4)",
                   "omega_z_lb_rows"),
        Experiment("E14", "sliding-window lower bound (Figures 6-7)",
                   "sliding_lb_rows"),
        Experiment("E15", "appendix geometry (Figure 8)",
                   "geometry_rows"),
    ]
}


def run_experiment(
    eid: str,
    quick: bool = False,
    cache: "ResultsCache | None" = None,
    force: bool = False,
    dtype: "str | None" = None,
) -> "list[Row]":
    """Run one experiment (through the cache when one is given).

    ``dtype`` selects the distance kernel (:mod:`repro.kernels`) for the
    drivers that accept it (the greedy-heavy MPC sweeps); it is part of
    the cache key, so float32 and float64 rows never mix.
    """
    exp = EXPERIMENTS[eid]
    overrides = {}
    if dtype is not None:
        driver_params = inspect.signature(getattr(table1, exp.driver)).parameters
        if "dtype" in driver_params:
            overrides["dtype"] = dtype
    params = {
        "driver": exp.driver,
        "kwargs": {**exp.kwargs(quick), **overrides},
        "quick": bool(quick),
    }
    if cache is not None and not force:
        rows = cache.get(eid, params)
        if rows is not None:
            return rows
    rows = exp.run(quick, **overrides)
    if cache is not None:
        cache.put(eid, params, rows)
    return rows


def _shard(task: tuple) -> "tuple[str, list[Row]]":
    """One unit of `--jobs` fan-out (module-level so process pools can
    pickle it); returns ``(eid, rows)``."""
    eid, quick, cache_root, force, dtype = task
    cache = ResultsCache(cache_root) if cache_root else None
    return eid, run_experiment(
        eid, quick=quick, cache=cache, force=force, dtype=dtype
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the Table-1 experiment drivers and print the tables.",
    )
    parser.add_argument("ids", nargs="*", metavar="ID",
                        help="experiment ids to run (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced parameters (seconds instead of minutes)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="shard independent experiments over N processes")
    parser.add_argument("--list", action="store_true", dest="list_ids",
                        help="list experiment ids and titles, then exit")
    parser.add_argument("--results-dir", default=None, metavar="DIR",
                        help="row cache location (default: $REPRO_RESULTS_DIR "
                             "or ./.repro-results)")
    parser.add_argument("--no-cache", action="store_true",
                        help="run without reading or writing cached rows")
    parser.add_argument("--force", action="store_true",
                        help="recompute even when cached rows exist")
    parser.add_argument("--dtype", choices=("float32", "float64"), default=None,
                        help="distance-kernel precision for the drivers that "
                             "accept it (default: float64)")
    return parser


def main(argv: "list[str]") -> int:
    if argv and argv[0] == "matrix":
        from ..scenarios.matrix import matrix_main

        return matrix_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list_ids:
        for exp in EXPERIMENTS.values():
            print(f"{exp.eid:<4} {exp.title}")
        return 0
    if args.jobs < 1:
        print("--jobs must be >= 1")
        return 2
    targets = args.ids or list(EXPERIMENTS)
    unknown = [eid for eid in targets if eid not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment {', '.join(unknown)}; "
              f"known: {', '.join(EXPERIMENTS)}")
        return 2

    cache_root = None if args.no_cache else (args.results_dir or default_results_dir())
    tasks = [(eid, args.quick, cache_root, args.force, args.dtype)
             for eid in targets]
    executor = get_executor("process" if args.jobs > 1 else None, jobs=args.jobs)
    for eid, rows in executor.map(_shard, tasks):
        print(format_table(rows, f"{eid}: {EXPERIMENTS[eid].title}"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
