"""Run every experiment driver and print the tables.

Usage::

    python -m repro.experiments            # all experiments (minutes)
    python -m repro.experiments E2 E14     # a subset by id
    python -m repro.experiments --quick    # reduced parameters
"""

from __future__ import annotations

import sys

from . import table1
from .report import format_table

#: experiment id -> (title, full-run callable, quick-run callable)
EXPERIMENTS = {
    "E1": ("randomized 1-round MPC (Table 1 rows 1-2)",
           lambda: table1.mpc_one_round_rows(),
           lambda: table1.mpc_one_round_rows(n=800, z_values=(8, 32))),
    "E2": ("deterministic MPC, adversarial outliers (rows 3-4)",
           lambda: table1.mpc_two_round_rows(),
           lambda: table1.mpc_two_round_rows(n=800, z_values=(8, 32))),
    "E3": ("R-round trade-off (row 5)",
           lambda: table1.mpc_multi_round_rows(),
           lambda: table1.mpc_multi_round_rows(n=800, m=8, rounds_values=(1, 2))),
    "E4": ("insertion-only streaming (rows 6-8)",
           lambda: table1.streaming_insertion_rows(),
           lambda: table1.streaming_insertion_rows(n=1000, eps_values=(1.0,), z_values=(8, 64))),
    "E5": ("insertion-only lower bound (Figures 2-3)",
           table1.insertion_lb_rows, table1.insertion_lb_rows),
    "E6": ("fully dynamic streaming (row 12)",
           lambda: table1.dynamic_rows(),
           lambda: table1.dynamic_rows(delta_values=(64, 256), n=120, deletions=60)),
    "E7": ("dynamic lower bound (Figure 5)",
           table1.dynamic_lb_rows, table1.dynamic_lb_rows),
    "E8": ("sliding window (rows 9-11)",
           lambda: table1.sliding_window_rows(),
           lambda: table1.sliding_window_rows(n=800, window=200)),
    "E9": ("coreset quality, all algorithms",
           lambda: table1.coreset_quality_rows(),
           lambda: table1.coreset_quality_rows(n=500)),
    "E12": ("Omega(z) lower bound (Figure 4)",
            table1.omega_z_lb_rows, table1.omega_z_lb_rows),
    "E14": ("sliding-window lower bound (Figures 6-7)",
            table1.sliding_lb_rows, table1.sliding_lb_rows),
    "E15": ("appendix geometry (Figure 8)",
            table1.geometry_rows, table1.geometry_rows),
}


def main(argv: "list[str]") -> int:
    quick = "--quick" in argv
    ids = [a for a in argv if not a.startswith("-")]
    targets = ids or list(EXPERIMENTS)
    for eid in targets:
        if eid not in EXPERIMENTS:
            print(f"unknown experiment {eid}; known: {', '.join(EXPERIMENTS)}")
            return 2
        title, full, fast = EXPERIMENTS[eid]
        rows = (fast if quick else full)()
        print(format_table(rows, f"{eid}: {title}"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
