"""Experiment drivers (Table 1 rows, figure mechanisms) and reporting."""

from .report import Row, format_table
from .table1 import (
    coreset_quality_rows,
    dynamic_lb_rows,
    dynamic_rows,
    geometry_rows,
    insertion_lb_rows,
    mpc_multi_round_rows,
    mpc_one_round_rows,
    mpc_two_round_rows,
    omega_z_lb_rows,
    sliding_lb_rows,
    sliding_window_rows,
    streaming_insertion_rows,
)

__all__ = [
    "Row",
    "coreset_quality_rows",
    "dynamic_lb_rows",
    "dynamic_rows",
    "format_table",
    "geometry_rows",
    "insertion_lb_rows",
    "mpc_multi_round_rows",
    "mpc_one_round_rows",
    "mpc_two_round_rows",
    "omega_z_lb_rows",
    "sliding_lb_rows",
    "sliding_window_rows",
    "streaming_insertion_rows",
]
