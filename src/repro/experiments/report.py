"""Row containers and text rendering for experiment outputs.

Every experiment driver returns a list of :class:`Row`; the benches print
them with :func:`format_table`, which is also what EXPERIMENTS.md quotes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Row", "format_table"]


@dataclass
class Row:
    """One measured row of an experiment.

    Attributes
    ----------
    experiment:
        Experiment id from DESIGN.md (e.g. ``"E2"``).
    algorithm:
        Which algorithm/baseline produced the row.
    params:
        The swept parameters (``{"z": 64, ...}``).
    metrics:
        Measured quantities (storage, sizes, ratios).
    """

    experiment: str
    algorithm: str
    params: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v != v:  # nan
            return "nan"
        if abs(v) >= 1000 or (abs(v) < 0.01 and v != 0):
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)


def format_table(rows: "list[Row]", title: str = "") -> str:
    """Render rows as an aligned text table (one line per row)."""
    if not rows:
        return f"== {title} ==\n(no rows)\n"
    param_keys: list[str] = []
    metric_keys: list[str] = []
    for r in rows:
        for k in r.params:
            if k not in param_keys:
                param_keys.append(k)
        for k in r.metrics:
            if k not in metric_keys:
                metric_keys.append(k)
    headers = ["exp", "algorithm"] + param_keys + metric_keys
    table = [headers]
    for r in rows:
        table.append(
            [r.experiment, r.algorithm]
            + [_fmt(r.params.get(k, "")) for k in param_keys]
            + [_fmt(r.metrics.get(k, "")) for k in metric_keys]
        )
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    for i, row in enumerate(table):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines) + "\n"
