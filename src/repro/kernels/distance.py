"""The shared distance-computation layer.

Every algorithm in the library bottoms out in one operation: a block of
a distance matrix between two point arrays under one of the built-in
norms.  This module is the single implementation of that operation, so
the radius-search stack (:mod:`repro.core.greedy`), the absorption loops
(:mod:`repro.core.mbc`) and the :class:`~repro.core.metrics.Metric`
subclasses all share one kernel with one set of knobs:

* ``dtype`` — ``"float64"`` (default) computes through SciPy's ``cdist``
  and is the bit-exact reference path every parity test pins; with
  ``"float32"`` the Euclidean kernel switches to the cached-squared-norm
  GEMM formulation ``d(a,b)^2 = |a|^2 + |b|^2 - 2 a.b`` (squared norms —
  the reductions — are accumulated in float64 and rounded once; the
  cross-term runs as a float32 BLAS GEMM), and the L1/Linf kernels to
  float32 broadcast reductions.  Roughly half the memory traffic and a
  documented ~1e-6 relative error (see ``tests/test_kernels.py``).
* ``kernel_chunk`` — rows per block for the chunked consumers; ``None``
  autotunes so a block stays inside a fixed working-set budget
  (:func:`auto_chunk`).

A :class:`Workspace` is an ephemeral per-call scratch holder: reusable
output buffers keyed by tag (so a binary search over radius guesses
allocates its mask/gain matrices once, not per guess) and cached squared
norms keyed by array identity (so the GEMM kernel never recomputes
``|P|^2`` across guesses).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "KERNEL_DTYPES",
    "KERNEL_BACKENDS",
    "resolve_dtype",
    "resolve_backend",
    "numba_available",
    "auto_chunk",
    "sqnorms",
    "Workspace",
    "pairwise_kernel",
    "pair_distances",
]

#: Working-set budget (bytes) a chunked distance block should stay under.
#: 32 MiB keeps a block plus its boolean mask comfortably inside typical
#: L3 caches while amortizing per-call overhead.
DEFAULT_BLOCK_BYTES = 32 * 2**20

#: dtypes the kernel layer accepts (``None`` resolves to float64).
KERNEL_DTYPES = ("float32", "float64")

#: kernel backends the layer accepts (``None`` resolves to numpy).
#: ``"numba"`` dispatches the float64 kernels and the greedy gain-update
#: loops to :mod:`repro.kernels.numba_backend` (an optional extra;
#: requesting it without numba installed raises at first kernel use).
KERNEL_BACKENDS = ("numpy", "numba")

#: metric name -> scipy cdist metric for the float64 exact path
_CDIST_NAMES = {
    "euclidean": "euclidean",
    "chebyshev": "chebyshev",
    "manhattan": "cityblock",
}


def resolve_dtype(dtype) -> np.dtype:
    """Normalize a ``dtype`` knob (``None`` / name / ``np.dtype``) to
    ``np.float32`` or ``np.float64``, rejecting anything else."""
    if dtype is None:
        return np.dtype(np.float64)
    dt = np.dtype(dtype)
    if dt.name not in KERNEL_DTYPES:
        raise ValueError(
            f"kernel dtype must be one of {KERNEL_DTYPES}, got {dtype!r}"
        )
    return dt


def resolve_backend(backend) -> str:
    """Normalize a ``kernel_backend`` knob (``None`` / name) to one of
    :data:`KERNEL_BACKENDS`, rejecting anything else.  Availability of the
    numba extra is checked at first kernel use, not here, so specs naming
    it can be built/validated/persisted anywhere."""
    if backend is None:
        return "numpy"
    bk = str(backend).lower()
    if bk not in KERNEL_BACKENDS:
        raise ValueError(
            f"kernel backend must be one of {KERNEL_BACKENDS}, got {backend!r}"
        )
    return bk


def numba_available() -> bool:
    """Whether the optional numba extra is importable (the ``"numba"``
    backend works)."""
    from . import numba_backend

    return numba_backend.HAVE_NUMBA


def auto_chunk(
    n_cols: int,
    dim: int = 1,
    dtype=None,
    budget_bytes: "int | None" = None,
) -> int:
    """Rows per distance block so ``rows x n_cols`` stays inside the
    working-set budget.

    ``dim`` accounts for the broadcast intermediates of the L1/Linf
    float32 kernels (``rows x n_cols x dim``); the cdist path passes the
    default.  Clamped to ``[64, 8192]`` so tiny inputs still batch and
    huge ones still amortize call overhead.
    """
    itemsize = resolve_dtype(dtype).itemsize
    budget = DEFAULT_BLOCK_BYTES if budget_bytes is None else int(budget_bytes)
    per_row = max(1, int(n_cols) * itemsize * max(1, int(dim)))
    return int(np.clip(budget // per_row, 64, 8192))


def sqnorms(x: np.ndarray) -> np.ndarray:
    """Row-wise squared Euclidean norms, accumulated in float64."""
    x = np.asarray(x, dtype=np.float64)
    return np.einsum("ij,ij->i", x, x)


class Workspace:
    """Per-call scratch: reusable buffers plus a squared-norm cache.

    Intended lifetime is one outer call (e.g. one ``charikar_greedy``):
    the norm cache keys on array identity and keeps a strong reference,
    so it must not outlive the arrays it describes.
    """

    def __init__(self):
        self._buffers: "dict[tuple, np.ndarray]" = {}
        self._norms: "dict[int, tuple[np.ndarray, np.ndarray]]" = {}
        self._subsets: "dict[tuple, tuple]" = {}

    def buffer(self, tag: str, shape: tuple, dtype) -> np.ndarray:
        """A reusable C-contiguous buffer of at least ``shape`` elements,
        returned as a view of exactly ``shape``.  Contents are garbage."""
        dt = np.dtype(dtype)
        size = int(np.prod(shape))
        key = (tag, dt.str)
        buf = self._buffers.get(key)
        if buf is None or buf.size < size:
            buf = np.empty(size, dtype=dt)
            self._buffers[key] = buf
        return buf[:size].reshape(shape)

    #: norm-cache entry cap; one outer call only ever repeats a handful of
    #: distinct operands (the full point set, the matrix), so anything
    #: beyond this is churn from per-block slices that would never hit
    _NORM_CACHE_MAX = 32

    def sqnorms(self, x: np.ndarray) -> np.ndarray:
        """Cached :func:`sqnorms` keyed on the identity of ``x``.

        Worth it only for operands that recur across blocks/guesses;
        fresh slice views get fresh ids and would grow the cache without
        ever hitting, so the cache is bounded and reset on overflow.
        """
        cached = self._norms.get(id(x))
        if cached is not None and cached[0] is x:
            return cached[1]
        n = sqnorms(x)
        if len(self._norms) >= self._NORM_CACHE_MAX:
            self._norms.clear()
        self._norms[id(x)] = (x, n)
        return n

    def take(self, base: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """``base[idx]`` with its squared norms *gathered*, not re-reduced.

        The norm cache keys on array identity, so every ``base[idx]`` a
        radius-guess scan materializes is a fresh array the cache has
        never seen — each guess used to pay a full re-reduction for the
        same subsets.  This gathers the rows' norms from the cached
        full-array reduction (``norm of row i`` is ``norm of row i``, so
        the gathered values are bit-identical) and seeds them in the norm
        cache under the subset's identity, so a following
        :func:`pairwise_kernel` call on the subset hits.  Repeated takes
        of the same ``(base, idx)`` are memoized by ``(id(base),
        hash(idx bytes))`` and return the *same* subset array.
        """
        idx = np.asarray(idx)
        key = (id(base), idx.size, hash(idx.tobytes()))
        cached = self._subsets.get(key)
        if cached is not None and cached[0] is base:
            return cached[1]
        full = self.sqnorms(base)
        sub = base[idx]
        if len(self._subsets) >= self._NORM_CACHE_MAX:
            self._subsets.clear()
        if len(self._norms) >= self._NORM_CACHE_MAX:
            self._norms.clear()
        self._norms[id(sub)] = (sub, full[idx])
        self._subsets[key] = (base, sub)
        return sub


def _as_points(x: np.ndarray, dtype) -> np.ndarray:
    x = np.atleast_2d(np.asarray(x, dtype=dtype))
    return x


def _euclidean_f32(
    a: np.ndarray, b: np.ndarray, workspace: "Workspace | None"
) -> np.ndarray:
    ws = workspace
    # a is typically a fresh per-block slice (new identity every call):
    # caching it would only churn the workspace, so compute it directly;
    # b is the operand that recurs across blocks and guesses.
    na = sqnorms(a).astype(np.float32)
    nb = (ws.sqnorms(b) if ws is not None else sqnorms(b)).astype(np.float32)
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    D = a32 @ b32.T  # float32 GEMM: the only O(n m d) term
    D *= -2.0
    D += na[:, None]
    D += nb[None, :]
    np.maximum(D, 0.0, out=D)  # the formulation can go slightly negative
    np.sqrt(D, out=D)
    return D


def _broadcast_f32(a: np.ndarray, b: np.ndarray, reduce: str) -> np.ndarray:
    a32 = np.asarray(a, dtype=np.float32)
    b32 = np.asarray(b, dtype=np.float32)
    out = np.empty((len(a32), len(b32)), dtype=np.float32)
    rows = auto_chunk(len(b32), dim=a32.shape[1], dtype=np.float32)
    for i0 in range(0, len(a32), rows):
        diff = np.abs(a32[i0 : i0 + rows, None, :] - b32[None, :, :])
        if reduce == "max":
            np.max(diff, axis=-1, out=out[i0 : i0 + rows])
        else:
            np.sum(diff, axis=-1, out=out[i0 : i0 + rows])
    return out


def pairwise_kernel(
    kind: str,
    a: np.ndarray,
    b: np.ndarray,
    dtype=None,
    workspace: "Workspace | None" = None,
    backend=None,
) -> np.ndarray:
    """Distance matrix of shape ``(len(a), len(b))`` under metric ``kind``.

    ``kind`` is one of ``"euclidean"``, ``"chebyshev"``, ``"manhattan"``.
    The float64 path is SciPy's ``cdist`` — bit-identical to the
    pre-kernels implementation, which the parity suite relies on.  The
    float32 path trades ~1e-6 relative accuracy for roughly half the
    memory traffic (and a BLAS GEMM formulation for Euclidean).

    ``backend="numba"`` dispatches the float64 path to the compiled
    (parallel, cdist-bit-exact) kernels of
    :mod:`repro.kernels.numba_backend`; the float32 fast kernels are
    BLAS-bound already and stay on the numpy implementations.
    """
    if kind not in _CDIST_NAMES:
        raise ValueError(
            f"unknown kernel {kind!r}; known: {sorted(_CDIST_NAMES)}"
        )
    dt = resolve_dtype(dtype)
    bk = resolve_backend(backend)
    a = _as_points(a, np.float64)
    b = _as_points(b, np.float64)
    if a.size == 0 or b.size == 0:
        return np.zeros((len(a), len(b)), dtype=dt)
    if dt == np.float64:
        if bk == "numba":
            from . import numba_backend

            return numba_backend.pairwise(kind, a, b)
        return cdist(a, b, metric=_CDIST_NAMES[kind])
    if kind == "euclidean":
        return _euclidean_f32(a, b, workspace)
    return _broadcast_f32(a, b, "max" if kind == "chebyshev" else "sum")


def pair_distances(
    kind: str,
    pts: np.ndarray,
    rows: np.ndarray,
    cols: np.ndarray,
    backend=None,
) -> np.ndarray:
    """Element-wise float64 distances ``dist(pts[rows[t]], pts[cols[t]])``.

    The sparse companion of :func:`pairwise_kernel`, used by the
    grid-pruned candidate scans that only need the (point, candidate)
    pairs a spatial index produced.  Bit-identical to the corresponding
    ``cdist`` entries: the accumulation runs per coordinate in index
    order with every intermediate rounded, exactly like cdist's inner
    loop (pinned by ``tests/test_kernels.py``).
    """
    if kind not in _CDIST_NAMES:
        raise ValueError(
            f"unknown kernel {kind!r}; known: {sorted(_CDIST_NAMES)}"
        )
    bk = resolve_backend(backend)
    pts = _as_points(pts, np.float64)
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    if bk == "numba":
        from . import numba_backend

        return numba_backend.pair_distances(kind, pts, rows, cols)
    d = pts.shape[1]
    if kind == "euclidean":
        diff = pts[rows, 0] - pts[cols, 0]
        out = diff * diff
        for c in range(1, d):
            diff = pts[rows, c] - pts[cols, c]
            out += diff * diff
        np.sqrt(out, out=out)
        return out
    reduce_max = kind == "chebyshev"
    out = np.abs(pts[rows, 0] - pts[cols, 0])
    for c in range(1, d):
        diff = np.abs(pts[rows, c] - pts[cols, c])
        if reduce_max:
            np.maximum(out, diff, out=out)
        else:
            out += diff
    return out
