"""Shared distance kernels (see :mod:`repro.kernels.distance`).

One block-kernel implementation under every metric, radius search and
absorption loop in the library, with two knobs — ``dtype`` (float64 =
bit-exact reference, float32 = GEMM/broadcast fast path) and
``kernel_chunk`` (rows per block; ``None`` autotunes) — threaded through
:class:`repro.api.ProblemSpec` and the MPC task tuples.
"""

from .distance import (
    DEFAULT_BLOCK_BYTES,
    KERNEL_DTYPES,
    Workspace,
    auto_chunk,
    pairwise_kernel,
    resolve_dtype,
    sqnorms,
)

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "KERNEL_DTYPES",
    "Workspace",
    "auto_chunk",
    "pairwise_kernel",
    "resolve_dtype",
    "sqnorms",
]
