"""Shared distance kernels (see :mod:`repro.kernels.distance`).

One block-kernel implementation under every metric, radius search and
absorption loop in the library, with three knobs — ``dtype`` (float64 =
bit-exact reference, float32 = GEMM/broadcast fast path),
``kernel_chunk`` (rows per block; ``None`` autotunes) and
``kernel_backend`` (``"numpy"`` default, ``"numba"`` optional compiled
extra; see :mod:`repro.kernels.numba_backend`) — threaded through
:class:`repro.api.ProblemSpec` and the MPC task tuples.
"""

from .distance import (
    DEFAULT_BLOCK_BYTES,
    KERNEL_BACKENDS,
    KERNEL_DTYPES,
    Workspace,
    auto_chunk,
    numba_available,
    pair_distances,
    pairwise_kernel,
    resolve_backend,
    resolve_dtype,
    sqnorms,
)

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "KERNEL_BACKENDS",
    "KERNEL_DTYPES",
    "Workspace",
    "auto_chunk",
    "numba_available",
    "pair_distances",
    "pairwise_kernel",
    "resolve_backend",
    "resolve_dtype",
    "sqnorms",
]
