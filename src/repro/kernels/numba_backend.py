"""Optional numba-compiled distance kernels (the ``"numba"`` backend).

Import-guarded: ``numba`` is an optional extra (``pip install
repro[accel]``), so this module must import cleanly without it —
:data:`HAVE_NUMBA` tells the dispatcher whether the compiled kernels
exist, and :func:`require` raises the actionable error otherwise.

Bit-exactness contract: the float64 kernels reproduce SciPy's ``cdist``
bit for bit.  ``cdist`` accumulates each row pair sequentially over
coordinates, rounding after every operation; the loops below do exactly
the same, and compile **without** ``fastmath`` so LLVM cannot reassociate
or contract the arithmetic.  The gain-update kernels only ever sum
*integer-valued* float64 weights, where any summation order gives the
same bits.  ``tests/test_numba_backend.py`` pins both properties when
numba is installed; the CI ``accel`` leg runs the full parity suite.

Only the float64 path is compiled here — the float32 kernels (a BLAS
GEMM formulation) already spend their time inside BLAS, so the numpy
implementation is used for float32 regardless of the backend knob.
"""

from __future__ import annotations

import numpy as np

__all__ = ["HAVE_NUMBA", "require", "pairwise", "pair_distances",
           "gain_seed", "gain_subtract", "gain_pairs"]

try:  # pragma: no cover - exercised only on the CI accel leg
    from numba import njit, prange

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default environment
    njit = prange = None
    HAVE_NUMBA = False


def require() -> None:
    """Raise with an install hint when numba is missing."""
    if not HAVE_NUMBA:
        raise RuntimeError(
            "kernel backend 'numba' requested but numba is not installed; "
            "install the optional extra (pip install 'repro[accel]') or use "
            "kernel_backend='numpy'"
        )


if HAVE_NUMBA:  # pragma: no cover - exercised only on the CI accel leg

    @njit(parallel=True, cache=True)
    def _pairwise_euclidean(a, b, out):
        n, d = a.shape
        m = b.shape[0]
        for i in prange(n):
            for j in range(m):
                s = 0.0
                for c in range(d):
                    diff = a[i, c] - b[j, c]
                    s += diff * diff
                out[i, j] = np.sqrt(s)

    @njit(parallel=True, cache=True)
    def _pairwise_chebyshev(a, b, out):
        n, d = a.shape
        m = b.shape[0]
        for i in prange(n):
            for j in range(m):
                s = 0.0
                for c in range(d):
                    diff = abs(a[i, c] - b[j, c])
                    if diff > s:
                        s = diff
                out[i, j] = s

    @njit(parallel=True, cache=True)
    def _pairwise_manhattan(a, b, out):
        n, d = a.shape
        m = b.shape[0]
        for i in prange(n):
            for j in range(m):
                s = 0.0
                for c in range(d):
                    s += abs(a[i, c] - b[j, c])
                out[i, j] = s

    @njit(parallel=True, cache=True)
    def _pair_distances_impl(pts, rows, cols, kind, out):
        d = pts.shape[1]
        for t in prange(len(rows)):
            i, j = rows[t], cols[t]
            s = 0.0
            if kind == 0:  # euclidean
                for c in range(d):
                    diff = pts[i, c] - pts[j, c]
                    s += diff * diff
                s = np.sqrt(s)
            elif kind == 1:  # chebyshev
                for c in range(d):
                    diff = abs(pts[i, c] - pts[j, c])
                    if diff > s:
                        s = diff
            else:  # manhattan
                for c in range(d):
                    s += abs(pts[i, c] - pts[j, c])
            out[t] = s

    @njit(cache=True, nogil=True)
    def _gain_pairs_impl(pts, rows, cols, w, cutoff, sign, kind, gain):
        # fused pair-distance + threshold + weight scatter over the
        # precomputed cell-slice pairs of the grid-pruned decision: no
        # dist/sel temporaries, and per-pair distances accumulate over
        # coordinates in index order — bit-identical to cdist entries.
        # Serial on purpose (gain[i] += w would race under prange);
        # nogil=True lets the engine-level thread shards run these
        # concurrently, each on its own gain accumulator.
        d = pts.shape[1]
        for t in range(len(rows)):
            i, j = rows[t], cols[t]
            s = 0.0
            if kind == 0:  # euclidean
                for c in range(d):
                    diff = pts[i, c] - pts[j, c]
                    s += diff * diff
                s = np.sqrt(s)
            elif kind == 1:  # chebyshev
                for c in range(d):
                    diff = abs(pts[i, c] - pts[j, c])
                    if diff > s:
                        s = diff
            else:  # manhattan
                for c in range(d):
                    s += abs(pts[i, c] - pts[j, c])
            if s <= cutoff:
                gain[i] += sign * w[j]

    @njit(parallel=True, cache=True)
    def _gain_seed_impl(D, w, cutoff, out):
        n, m = D.shape
        for i in prange(n):
            s = 0.0
            for j in range(m):
                if D[i, j] <= cutoff:
                    s += w[j]
            out[i] = s

    @njit(parallel=True, cache=True)
    def _gain_subtract_impl(D, gain, idx, w, cutoff):
        n = D.shape[0]
        for i in prange(n):
            s = 0.0
            for t in range(len(idx)):
                j = idx[t]
                if D[i, j] <= cutoff:
                    s += w[j]
            gain[i] -= s


_PAIR_KINDS = {"euclidean": 0, "chebyshev": 1, "manhattan": 2}


def pairwise(kind: str, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Float64 distance matrix under metric ``kind`` (cdist-bit-exact)."""
    require()
    a = np.ascontiguousarray(a, dtype=np.float64)
    b = np.ascontiguousarray(b, dtype=np.float64)
    out = np.empty((len(a), len(b)), dtype=np.float64)
    if kind == "euclidean":
        _pairwise_euclidean(a, b, out)
    elif kind == "chebyshev":
        _pairwise_chebyshev(a, b, out)
    elif kind == "manhattan":
        _pairwise_manhattan(a, b, out)
    else:
        raise ValueError(f"unknown kernel {kind!r}")
    return out


def pair_distances(kind: str, pts: np.ndarray, rows: np.ndarray,
                   cols: np.ndarray) -> np.ndarray:
    """Element-wise distances ``dist(pts[rows[t]], pts[cols[t]])``."""
    require()
    pts = np.ascontiguousarray(pts, dtype=np.float64)
    out = np.empty(len(rows), dtype=np.float64)
    _pair_distances_impl(pts, np.ascontiguousarray(rows, dtype=np.int64),
                         np.ascontiguousarray(cols, dtype=np.int64),
                         _PAIR_KINDS[kind], out)
    return out


def gain_pairs(kind: str, pts: np.ndarray, rows: np.ndarray,
               cols: np.ndarray, w: np.ndarray, cutoff: float,
               sign: float, gain: np.ndarray) -> None:
    """In-place ``gain[rows[t]] += sign * w[cols[t]]`` for every pair with
    ``dist(pts[rows[t]], pts[cols[t]]) <= cutoff``.

    The compiled form of the grid-pruned COO accumulation: it takes the
    precomputed cell-slice pairs (``rows``/``cols``) directly, skipping
    the ``pair_distances`` + mask + ``bincount`` temporaries of the numpy
    path.  Exact for integer-valued float64 weights in any order, so
    results are bit-identical to the numpy path.
    """
    require()
    _gain_pairs_impl(np.ascontiguousarray(pts, dtype=np.float64),
                     np.ascontiguousarray(rows, dtype=np.int64),
                     np.ascontiguousarray(cols, dtype=np.int64),
                     np.ascontiguousarray(w, dtype=np.float64),
                     float(cutoff), float(sign), _PAIR_KINDS[kind], gain)


def gain_seed(D: np.ndarray, w: np.ndarray, cutoff: float) -> np.ndarray:
    """``out[i] = sum(w[j] for j with D[i, j] <= cutoff)`` without
    materializing the boolean/membership matrices the numpy path needs."""
    require()
    out = np.empty(len(D), dtype=np.float64)
    _gain_seed_impl(np.ascontiguousarray(D, dtype=np.float64),
                    np.ascontiguousarray(w, dtype=np.float64),
                    float(cutoff), out)
    return out


def gain_subtract(D: np.ndarray, gain: np.ndarray, idx: np.ndarray,
                  w: np.ndarray, cutoff: float) -> None:
    """In-place ``gain[i] -= sum(w[j] for j in idx with D[i,j] <= cutoff)``."""
    require()
    _gain_subtract_impl(np.ascontiguousarray(D, dtype=np.float64), gain,
                        np.ascontiguousarray(idx, dtype=np.int64),
                        np.ascontiguousarray(w, dtype=np.float64),
                        float(cutoff))
