"""s-sparse recovery sketch (the paper's Lemma 20 substrate).

Algorithm 5 maintains, for every grid ``G_i``, a sketch from which *all*
non-empty cells (with exact counts) can be recovered whenever at most ``s``
cells are non-empty (Lemma 22).  We implement the standard peeling
construction: ``R`` rows of ``B = c*s`` one-sparse cells each, with row-
private pairwise-independent hash functions.  Decoding repeatedly finds a
cell that is 1-sparse, outputs its item, and subtracts it from every row —
an invertible-Bloom-lookup-table style peel that succeeds with probability
``1 - delta`` when ``||F||_0 <= s`` and otherwise *detects* failure
(non-zero residue after peeling stalls).

This is a space-for-simplicity substitution for Barkay-Porat-Shalem
(documented in DESIGN.md §2): the interface and guarantee used by the
paper — "recover everything exactly when sparsity <= s, else fail
detectably" — are identical.
"""

from __future__ import annotations

from math import ceil, log2

import numpy as np

from .hashing import MERSENNE_P, KWiseHash
from .onesparse import OneSparseCell

__all__ = ["SparseRecoveryResult", "SSparseRecovery"]


class SparseRecoveryResult:
    """Outcome of :meth:`SSparseRecovery.decode`.

    Attributes
    ----------
    success:
        True when peeling terminated with every cell zero — the returned
        items are then the *complete* frequency vector (whp).
    items:
        ``{key: frequency}`` of recovered items (complete iff ``success``).
    """

    __slots__ = ("success", "items")

    def __init__(self, success: bool, items: "dict[int, int]"):
        self.success = success
        self.items = items

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SparseRecoveryResult(success={self.success}, n={len(self.items)})"


class SSparseRecovery:
    """Peeling-based s-sparse recovery over universe ``[universe]``.

    Parameters
    ----------
    s:
        Target sparsity: decoding is guaranteed (whp) whenever at most
        ``s`` keys have non-zero frequency.
    universe:
        Key range (keys are ``0 .. universe-1``).
    delta:
        Failure probability knob; sets the number of rows to
        ``max(3, ceil(log2(s/delta)) )`` capped at 12.
    bucket_factor:
        Buckets per row = ``ceil(bucket_factor * s)``; 2.0 gives peeling
        success whp for random hashing.
    rng:
        Source of hash randomness (pass a seeded generator for
        reproducibility).

    Notes
    -----
    Space is ``O(s * log(s/delta))`` cells of ``O(log U)`` bits, matching
    the ``O(s log(s/delta) log^2 U)`` bound of Lemma 20 up to the encoding
    of a cell.  :attr:`storage_cells` exposes the cell count for the
    storage accounting used in the experiments.
    """

    def __init__(
        self,
        s: int,
        universe: int,
        delta: float = 0.01,
        bucket_factor: float = 2.0,
        rng: "np.random.Generator | None" = None,
    ):
        if s < 1:
            raise ValueError("s must be >= 1")
        if universe < 1:
            raise ValueError("universe must be >= 1")
        rng = rng or np.random.default_rng()
        self.s = int(s)
        self.universe = int(universe)
        self.rows = max(3, min(12, int(ceil(log2(max(s, 2) / max(delta, 1e-12))))))
        self.buckets = int(ceil(bucket_factor * s))
        self._hashes = [KWiseHash(self.buckets, k=2, rng=rng) for _ in range(self.rows)]
        zeta = int(rng.integers(2, MERSENNE_P - 1))
        self._cells = [
            [OneSparseCell(zeta) for _ in range(self.buckets)] for _ in range(self.rows)
        ]
        self._updates = 0

    # -- stream interface -------------------------------------------------

    def update(self, key: int, delta: int) -> None:
        """Apply ``F[key] += delta`` (use ``delta=+1`` for insert, ``-1``
        for delete; arbitrary integers allowed)."""
        key = int(key)
        if not 0 <= key < self.universe:
            raise ValueError(f"key {key} outside universe [0, {self.universe})")
        if delta == 0:
            return
        self._updates += 1
        for r in range(self.rows):
            b = self._hashes[r].hash_int(key)
            self._cells[r][b].update(key, delta)

    def update_many(self, keys, deltas) -> None:
        """Batch form of :meth:`update`."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        deltas = np.broadcast_to(np.atleast_1d(np.asarray(deltas, dtype=np.int64)), keys.shape)
        for k, dlt in zip(keys.tolist(), deltas.tolist()):
            self.update(k, dlt)

    # -- accounting --------------------------------------------------------

    @property
    def storage_cells(self) -> int:
        """Number of one-sparse cells held (the sketch's storage in
        ``O(log U)``-bit words, the unit Table 1 counts)."""
        return self.rows * self.buckets

    @property
    def is_empty(self) -> bool:
        """True when every cell is zero (the summarised vector is zero)."""
        return all(c.is_zero for row in self._cells for c in row)

    # -- persistence --------------------------------------------------------

    def params_digest(self) -> str:
        """Fingerprint of the sketch's immutable randomness/geometry.

        Covers ``(s, universe, rows, buckets)``, every row hash and the
        shared fingerprint point ``zeta``.  Snapshots embed it so
        :meth:`restore` can detect a seed/parameter mismatch instead of
        silently mixing cell state with foreign hash functions.
        """
        import hashlib

        h = hashlib.sha256()
        h.update(f"{self.s}:{self.universe}:{self.rows}:{self.buckets}".encode())
        for hh in self._hashes:
            h.update(hh.digest().encode())
        h.update(str(self._cells[0][0].zeta).encode())
        return h.hexdigest()[:16]

    def snapshot(self) -> dict:
        """Mutable state: the (w, ws, fp) triple of every cell.

        The hash functions and ``zeta`` are *not* serialized — they are
        re-derived from the owning structure's seed on reconstruction and
        cross-checked via :meth:`params_digest`.
        """
        w = [[c.w for c in row] for row in self._cells]
        ws = [[c.ws for c in row] for row in self._cells]
        fp = [[c.fp for c in row] for row in self._cells]
        for name, rows in (("w", w), ("ws", ws), ("fp", fp)):
            for row in rows:
                for v in row:
                    if not -(2**63) <= v < 2**63:
                        from ..persist import SnapshotError

                        raise SnapshotError(
                            f"sketch cell field {name!r} value {v} exceeds "
                            "int64; this sketch state cannot be snapshotted"
                        )
        return {
            "digest": self.params_digest(),
            "updates": int(self._updates),
            "w": np.array(w, dtype=np.int64),
            "ws": np.array(ws, dtype=np.int64),
            "fp": np.array(fp, dtype=np.int64),
        }

    def restore(self, state: dict) -> None:
        """Apply a :meth:`snapshot` tree (validates the params digest)."""
        from ..persist import SnapshotError

        if str(state.get("digest")) != self.params_digest():
            raise SnapshotError(
                "sparse-recovery snapshot was taken under different sketch "
                "randomness/parameters (seed or options mismatch)"
            )
        shape = (self.rows, self.buckets)
        w = np.asarray(state["w"], dtype=np.int64)
        ws = np.asarray(state["ws"], dtype=np.int64)
        fp = np.asarray(state["fp"], dtype=np.int64)
        if w.shape != shape or ws.shape != shape or fp.shape != shape:
            raise SnapshotError(
                f"sparse-recovery snapshot shape {w.shape} != sketch {shape}"
            )
        for r, row in enumerate(self._cells):
            for b, cell in enumerate(row):
                cell.w = int(w[r, b])
                cell.ws = int(ws[r, b])
                cell.fp = int(fp[r, b])
        self._updates = int(state.get("updates", 0))

    # -- decoding -----------------------------------------------------------

    def decode(self, max_items: "int | None" = None) -> SparseRecoveryResult:
        """Attempt full recovery by peeling.

        Returns a :class:`SparseRecoveryResult`; ``success`` is True iff
        peeling zeroed out every cell, in which case ``items`` is exactly
        the set of keys with non-zero frequency (whp).  Decoding is
        non-destructive (peels a copy).
        """
        cap = self.buckets * self.rows if max_items is None else int(max_items)
        # copy cell state (ints are immutable; shallow-copy cell fields)
        work = [
            [self._clone_cell(c) for c in row] for row in self._cells
        ]
        items: dict[int, int] = {}
        progress = True
        while progress and len(items) <= cap:
            progress = False
            for r in range(self.rows):
                for b in range(self.buckets):
                    cell = work[r][b]
                    if cell.is_zero:
                        continue
                    dec = cell.decode()
                    if dec is None:
                        continue
                    key, w = dec
                    if key >= self.universe:
                        continue  # corrupted decode; treat as collision
                    items[key] = items.get(key, 0) + w
                    for rr in range(self.rows):
                        bb = self._hashes[rr].hash_int(key)
                        work[rr][bb].subtract_item(key, w)
                    progress = True
        success = all(c.is_zero for row in work for c in row)
        if not success:
            # partial recovery: report what we got but flag failure
            return SparseRecoveryResult(False, items)
        # drop zero-frequency artifacts (insert-then-delete leaves none, but
        # peeling order can transiently create them)
        items = {k: v for k, v in items.items() if v != 0}
        return SparseRecoveryResult(True, items)

    @staticmethod
    def _clone_cell(c: OneSparseCell) -> OneSparseCell:
        out = OneSparseCell(c.zeta)
        out.w, out.ws, out.fp = c.w, c.ws, c.fp
        return out
