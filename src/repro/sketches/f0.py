"""F0 (distinct elements) estimation over dynamic streams (Lemma 19).

Algorithm 5 uses an ``||F||_0``-estimator per grid to find the finest grid
with at most ``s`` non-empty cells.  The paper cites Kane-Nelson-Woodruff;
we implement the classical *level sampling* linear sketch, which supports
insertions and deletions:

* level ``l`` samples keys whose hash has ``l`` trailing zero bits
  (rate ``2^-l``),
* each level keeps a small :class:`~repro.sketches.sparse_recovery.SSparseRecovery`
  of capacity ``c``,
* the estimate is ``n_l * 2^l`` for the smallest level ``l`` whose sketch
  decodes with ``n_l <= c`` items.  Level 0 decoding succeeds iff the true
  ``F0 <= c``, in which case the answer is *exact* — precisely the
  " <= s non-empty cells?" query Algorithm 5 needs.

Accuracy: with ``c = O(1/eps^2)`` the estimate is ``(1 +- eps) F0`` with
constant probability per query, amplified by ``log(1/delta)`` independent
repetitions (median).  This matches Lemma 19's contract; the space is
``O((1/eps^2) log U log(1/delta))`` words (see DESIGN.md §2 for the
polylog-factor comparison with KNW).
"""

from __future__ import annotations

from math import ceil, log2

import numpy as np

from .hashing import KWiseHash
from .sparse_recovery import SSparseRecovery

__all__ = ["F0Estimator"]


class _F0Instance:
    """One independent level-sampling estimator (combined by median)."""

    def __init__(self, universe: int, capacity: int, rng: np.random.Generator):
        self.universe = int(universe)
        self.capacity = int(capacity)
        self.levels = int(ceil(log2(max(universe, 2)))) + 1
        self._level_hash = KWiseHash(1 << 62, k=2, rng=rng)
        self._sketches = [
            SSparseRecovery(capacity, universe, delta=0.05, rng=rng)
            for _ in range(self.levels)
        ]

    def _key_level(self, key: int) -> int:
        """Number of trailing zero bits of the key's hash (capped)."""
        h = self._level_hash.hash_int(key)
        if h == 0:
            return self.levels - 1
        tz = (h & -h).bit_length() - 1
        return min(tz, self.levels - 1)

    def update(self, key: int, delta: int) -> None:
        lvl = self._key_level(key)
        # key participates in levels 0..lvl
        for l in range(lvl + 1):
            self._sketches[l].update(key, delta)

    def estimate(self) -> float:
        for l, sk in enumerate(self._sketches):
            res = sk.decode(max_items=self.capacity + 1)
            if res.success and len(res.items) <= self.capacity:
                return float(len(res.items) * (1 << l))
        return float("inf")  # every level overflowed (astronomically unlikely)

    def snapshot(self) -> dict:
        """Per-level sketch states plus the level-hash fingerprint."""
        return {
            "level_digest": self._level_hash.digest(),
            "sketches": {str(l): sk.snapshot()
                         for l, sk in enumerate(self._sketches)},
        }

    def restore(self, state: dict) -> None:
        """Apply a :meth:`snapshot` tree (validates hash fingerprints)."""
        from ..persist import SnapshotError

        if str(state.get("level_digest")) != self._level_hash.digest():
            raise SnapshotError(
                "F0 level-hash mismatch: snapshot was taken under different "
                "sketch randomness (seed or options mismatch)"
            )
        sketches = state["sketches"]
        if len(sketches) != len(self._sketches):
            raise SnapshotError(
                f"F0 snapshot has {len(sketches)} levels, estimator has "
                f"{len(self._sketches)}"
            )
        for l, sk in enumerate(self._sketches):
            sk.restore(sketches[str(l)])

    @property
    def storage_cells(self) -> int:
        return sum(sk.storage_cells for sk in self._sketches)


class F0Estimator:
    """``(1 +- eps)``-approximate distinct-count over a +/-1 stream.

    Parameters
    ----------
    universe:
        Keys are ``0 .. universe-1``.
    eps:
        Relative accuracy target (capacity per level is
        ``ceil(12/eps^2)``, capped below at 8).
    repetitions:
        Independent instances combined by median (amplifies success
        probability; 3 by default).
    rng:
        Seeded generator for reproducibility.
    """

    def __init__(
        self,
        universe: int,
        eps: float = 0.5,
        repetitions: int = 3,
        rng: "np.random.Generator | None" = None,
    ):
        if eps <= 0 or eps > 1:
            raise ValueError("eps must be in (0, 1]")
        rng = rng or np.random.default_rng()
        capacity = max(8, int(ceil(12.0 / (eps * eps))))
        self.universe = int(universe)
        self.eps = float(eps)
        self._instances = [
            _F0Instance(universe, capacity, rng) for _ in range(max(1, repetitions))
        ]

    def update(self, key: int, delta: int) -> None:
        """Apply ``F[key] += delta``."""
        key = int(key)
        if not 0 <= key < self.universe:
            raise ValueError(f"key {key} outside universe [0, {self.universe})")
        if delta == 0:
            return
        for inst in self._instances:
            inst.update(key, delta)

    def estimate(self) -> float:
        """Median-of-instances ``(1 +- eps)`` estimate of ``||F||_0``."""
        return float(np.median([inst.estimate() for inst in self._instances]))

    def snapshot(self) -> dict:
        """Mutable state of every independent instance."""
        return {"instances": {str(i): inst.snapshot()
                              for i, inst in enumerate(self._instances)}}

    def restore(self, state: dict) -> None:
        """Apply a :meth:`snapshot` tree across the instances."""
        from ..persist import SnapshotError

        instances = state["instances"]
        if len(instances) != len(self._instances):
            raise SnapshotError(
                f"F0 snapshot has {len(instances)} instances, estimator has "
                f"{len(self._instances)}"
            )
        for i, inst in enumerate(self._instances):
            inst.restore(instances[str(i)])

    def at_most(self, s: int) -> bool:
        """Decide (whp) whether at most ``s`` keys are non-zero, allowing
        the estimator's relative slack on the high side."""
        return self.estimate() <= (1.0 + self.eps) * s

    @property
    def storage_cells(self) -> int:
        """Total cells held (for storage accounting)."""
        return sum(inst.storage_cells for inst in self._instances)
