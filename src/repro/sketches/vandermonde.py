"""Deterministic s-sparse recovery via Vandermonde measurements.

§5 of the paper observes that its dynamic streaming algorithm is
randomized *only* through the F0-estimator and the s-sample recovery
sketch, and that the latter "can be made deterministic by using the
Vandermonde matrix [10, 9, 38, 36] ... using linear programming techniques
to retrieve the non-empty cells with their exact number of points".  This
module implements that discussion concretely:

The sketch stores the ``2s`` power sums (syndromes)

    ``y_t = sum_i F[i] * alpha(i)^t   (mod p)``,  ``t = 0 .. 2s-1``

with ``alpha(i) = i + 1`` over the prime field ``p = 2^31 - 1``.  This is
a Vandermonde measurement matrix, and any s-sparse non-negative frequency
vector is *uniquely determined* by it.  Decoding is Prony's method over
GF(p):

1. Berlekamp-Massey finds the minimal linear recurrence of the syndrome
   sequence — its connection polynomial is the error locator
   ``Lambda(x) = prod_j (1 - alpha(i_j) x)``;
2. a vectorized Chien search over the universe finds the roots, i.e. the
   support keys;
3. a transposed-Vandermonde solve recovers the exact frequencies.

Everything is exact field arithmetic — no failure probability when
``||F||_0 <= s``.  The one caveat is the paper's own: *detecting*
``||F||_0 > s`` deterministically is open; we follow the paper's
discussion and add ``check`` extra syndromes that any (s+check)-sparse
overload fails to satisfy, which makes silent mis-decoding impossible for
all inputs with support at most ``s + check`` and practically detects
heavier overloads too (the recurrence fails to validate).

Cost trade-off versus the randomized sketch: updates are ``O(s)`` field
operations (vs ``O(log(s/delta))``) and decoding scans the universe once
(vectorized; fine for the grid universes of Algorithm 5 at moderate
``Delta^d``, and exactly the regime the paper's discussion targets).
"""

from __future__ import annotations

import numpy as np

__all__ = ["PRIME_31", "berlekamp_massey", "VandermondeSketch"]

#: The Mersenne prime 2^31 - 1: products of two residues fit in uint64,
#: so the Chien search vectorizes over the whole universe.
PRIME_31 = (1 << 31) - 1


def berlekamp_massey(seq: "list[int]", p: int = PRIME_31) -> "list[int]":
    """Minimal LFSR (connection polynomial) of ``seq`` over GF(p).

    Returns coefficients ``[1, c_1, ..., c_L]`` such that
    ``s_n + c_1 s_{n-1} + ... + c_L s_{n-L} = 0 (mod p)`` for all valid
    ``n``.  Standard Berlekamp-Massey; ``O(len(seq)^2)`` field ops.
    """
    C = [1]
    B = [1]
    L, m, b = 0, 1, 1
    for n in range(len(seq)):
        # compute discrepancy
        d = seq[n] % p
        for i in range(1, L + 1):
            d = (d + C[i] * seq[n - i]) % p
        if d == 0:
            m += 1
            continue
        coef = d * pow(b, p - 2, p) % p
        if 2 * L <= n:
            T = C[:]
            # C(x) -= coef * x^m * B(x)
            C = C + [0] * (len(B) + m - len(C)) if len(B) + m > len(C) else C
            for i, bc in enumerate(B):
                C[i + m] = (C[i + m] - coef * bc) % p
            L = n + 1 - L
            B = T
            b = d
            m = 1
        else:
            C = C + [0] * (len(B) + m - len(C)) if len(B) + m > len(C) else C
            for i, bc in enumerate(B):
                C[i + m] = (C[i + m] - coef * bc) % p
            m += 1
    return [c % p for c in C[: L + 1]]


class VandermondeSketch:
    """Deterministic s-sparse recovery over universe ``[universe]``.

    Parameters
    ----------
    s:
        Sparsity: decoding is exact whenever at most ``s`` keys have
        non-zero frequency.
    universe:
        Keys are ``0 .. universe-1``; must satisfy
        ``universe + 1 < 2^31 - 1``.
    check:
        Extra verification syndromes (see module docstring).

    Notes
    -----
    Strict-turnstile only (non-negative true frequencies below ``p``), as
    in the paper's setting.
    """

    def __init__(self, s: int, universe: int, check: int = 4):
        if s < 1:
            raise ValueError("s must be >= 1")
        if universe < 1 or universe + 1 >= PRIME_31:
            raise ValueError(f"universe must be in [1, {PRIME_31 - 2})")
        self.s = int(s)
        self.universe = int(universe)
        self.check = int(check)
        self.num_syndromes = 2 * self.s + self.check
        self._y = np.zeros(self.num_syndromes, dtype=np.uint64)

    # -- stream interface -------------------------------------------------

    def update(self, key: int, delta: int) -> None:
        """Apply ``F[key] += delta`` (delta may be negative; represented
        as a field element)."""
        key = int(key)
        if not 0 <= key < self.universe:
            raise ValueError(f"key {key} outside universe [0, {self.universe})")
        if delta == 0:
            return
        p = PRIME_31
        alpha = key + 1
        d = delta % p
        # y_t += d * alpha^t, computed incrementally
        power = 1
        y = self._y
        for t in range(self.num_syndromes):
            y[t] = np.uint64((int(y[t]) + d * power) % p)
            power = power * alpha % p

    @property
    def storage_cells(self) -> int:
        """Field elements held (``2s + check``)."""
        return self.num_syndromes

    def snapshot(self) -> dict:
        """The full mutable state: the syndrome vector (deterministic
        sketch — there is no randomness to fingerprint)."""
        return {"s": self.s, "universe": self.universe, "check": self.check,
                "y": self._y.copy()}

    def restore(self, state: dict) -> None:
        """Apply a :meth:`snapshot` tree (validates the geometry)."""
        from ..persist import SnapshotError

        if (int(state.get("s", -1)) != self.s
                or int(state.get("universe", -1)) != self.universe
                or int(state.get("check", -1)) != self.check):
            raise SnapshotError(
                "Vandermonde snapshot was taken with different (s, universe, "
                "check) parameters"
            )
        y = np.asarray(state["y"], dtype=np.uint64)
        if y.shape != self._y.shape:
            raise SnapshotError(
                f"Vandermonde snapshot has {y.shape[0]} syndromes, sketch "
                f"holds {self._y.shape[0]}"
            )
        self._y = y.copy()

    @property
    def is_empty(self) -> bool:
        """All syndromes zero (true zero vector, exactly)."""
        return not self._y.any()

    # -- decoding -----------------------------------------------------------

    def _chien_search(self, locator: "list[int]") -> np.ndarray:
        """Roots of the locator polynomial among the inverses of the
        universe's alpha values, via one vectorized Horner pass."""
        p = np.uint64(PRIME_31)
        alphas = np.arange(1, self.universe + 1, dtype=np.uint64)
        # Lambda(x) = c_0 + c_1 x + ... + c_L x^L has roots at alpha^{-1};
        # the reversed polynomial R(a) = a^L * Lambda(1/a) =
        # c_0 a^L + c_1 a^{L-1} + ... + c_L vanishes at alpha itself —
        # Horner over the coefficients in their given (c_0-first) order.
        acc = np.full(self.universe, np.uint64(locator[0] % PRIME_31), dtype=np.uint64)
        for c in locator[1:]:
            acc = (acc * alphas) % p
            acc = (acc + np.uint64(c % PRIME_31)) % p
        return np.flatnonzero(acc == 0)

    def decode(self):
        """Recover ``{key: frequency}``; returns a
        :class:`~repro.sketches.sparse_recovery.SparseRecoveryResult`-
        compatible object with ``success=False`` when the syndromes are
        inconsistent with any ``<= s``-sparse non-negative vector."""
        from .sparse_recovery import SparseRecoveryResult

        p = PRIME_31
        y = [int(v) for v in self._y]
        if not any(y):
            return SparseRecoveryResult(True, {})
        locator = berlekamp_massey(y, p)
        degree = len(locator) - 1
        if degree == 0 or degree > self.s:
            return SparseRecoveryResult(False, {})
        # verify the recurrence explains every syndrome (including checks)
        for n in range(degree, self.num_syndromes):
            acc = 0
            for i in range(degree + 1):
                acc = (acc + locator[i] * y[n - i]) % p
            if acc != 0:
                return SparseRecoveryResult(False, {})
        keys = self._chien_search(locator)
        if len(keys) != degree:
            return SparseRecoveryResult(False, {})
        # transposed Vandermonde solve for the frequencies:
        # sum_j w_j alpha_j^t = y_t for t = 0..degree-1
        alphas = [int(k) + 1 for k in keys]
        A = [[pow(a, t, p) for a in alphas] for t in range(degree)]
        w = _solve_mod(A, y[:degree], p)
        if w is None:
            return SparseRecoveryResult(False, {})
        items = {}
        for k, wk in zip(keys, w):
            if wk == 0:
                continue
            # interpret as a (possibly large) count; strict turnstile means
            # genuine counts are small positives
            items[int(k)] = int(wk)
        return SparseRecoveryResult(True, items)


def _solve_mod(A: "list[list[int]]", b: "list[int]", p: int) -> "list[int] | None":
    """Gaussian elimination over GF(p) for a small dense system."""
    n = len(b)
    M = [row[:] + [b[i]] for i, row in enumerate(A)]
    for col in range(n):
        piv = next((r for r in range(col, n) if M[r][col] % p != 0), None)
        if piv is None:
            return None
        M[col], M[piv] = M[piv], M[col]
        inv = pow(M[col][col], p - 2, p)
        M[col] = [v * inv % p for v in M[col]]
        for r in range(n):
            if r != col and M[r][col] % p:
                f = M[r][col]
                M[r] = [(vr - f * vc) % p for vr, vc in zip(M[r], M[col])]
    return [M[i][n] % p for i in range(n)]
