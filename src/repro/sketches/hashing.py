"""k-wise independent hashing over a prime field.

The sparse-recovery sketch (Lemma 20) and the F0 estimator (Lemma 19) both
need hash functions with bounded independence.  We use polynomial hashing
over the Mersenne prime ``p = 2^61 - 1``: a random degree-``(k-1)``
polynomial evaluated at the key is k-wise independent.  Evaluation is
vectorized over NumPy arrays using Python-int arithmetic per coefficient
step (object dtype) to avoid overflow, which is fast enough for the sketch
sizes the paper needs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MERSENNE_P", "KWiseHash"]

#: The Mersenne prime 2^61 - 1 used as the field size.
MERSENNE_P = (1 << 61) - 1


class KWiseHash:
    """A k-wise independent hash ``h : [U] -> [m]``.

    Parameters
    ----------
    m:
        Range size (outputs are in ``0..m-1``).
    k:
        Independence (degree of the random polynomial); ``k >= 2``.
    rng:
        NumPy random generator supplying the coefficients.

    Notes
    -----
    Outputs are ``(poly(x) mod p) mod m``; the modular bias is at most
    ``m / p``, negligible for ``m << 2^61``.
    """

    def __init__(self, m: int, k: int = 2, rng: "np.random.Generator | None" = None):
        if m <= 0:
            raise ValueError("range m must be positive")
        if k < 1:
            raise ValueError("independence k must be >= 1")
        rng = rng or np.random.default_rng()
        self.m = int(m)
        self.k = int(k)
        # leading coefficient non-zero to keep full degree
        coeffs = [int(rng.integers(1, MERSENNE_P))]
        coeffs += [int(rng.integers(0, MERSENNE_P)) for _ in range(k - 1)]
        self.coeffs = coeffs

    def __call__(self, keys) -> np.ndarray:
        """Hash an integer array (or scalar), returning ``int64`` values in
        ``0..m-1``."""
        scalar = np.isscalar(keys)
        arr = np.atleast_1d(np.asarray(keys, dtype=object))
        acc = np.zeros(arr.shape, dtype=object)
        for c in self.coeffs:
            acc = (acc * arr + c) % MERSENNE_P
        out = (acc % self.m).astype(np.int64)
        return int(out[0]) if scalar else out

    def hash_int(self, key: int) -> int:
        """Hash a single Python int (no array overhead)."""
        acc = 0
        key = int(key)
        for c in self.coeffs:
            acc = (acc * key + c) % MERSENNE_P
        return int(acc % self.m)

    def digest(self) -> str:
        """Short stable fingerprint of (range, independence, coefficients).

        Snapshots store this so a restore can verify the reconstructed
        hash function is the one the state was accumulated under (the
        coefficients themselves are re-derived from the spec's seed, not
        serialized).
        """
        import hashlib

        payload = f"{self.m}:{self.k}:" + ",".join(map(str, self.coeffs))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]
