"""Linear-sketch substrates for the fully dynamic streaming algorithm
(§5.1): k-wise hashing, 1-sparse cells, s-sparse recovery (Lemma 20) and
F0 estimation (Lemma 19)."""

from .f0 import F0Estimator
from .hashing import MERSENNE_P, KWiseHash
from .onesparse import OneSparseCell
from .sparse_recovery import SparseRecoveryResult, SSparseRecovery
from .vandermonde import PRIME_31, VandermondeSketch, berlekamp_massey

__all__ = [
    "F0Estimator",
    "KWiseHash",
    "MERSENNE_P",
    "OneSparseCell",
    "PRIME_31",
    "SSparseRecovery",
    "SparseRecoveryResult",
    "VandermondeSketch",
    "berlekamp_massey",
]
