"""1-sparse recovery cells.

The basic building block of the s-sparse recovery sketch: a constant-size
summary of a frequency vector restricted to one bucket, able to

* detect that the bucket is empty,
* detect (whp) that the bucket holds exactly one distinct key and recover
  that key with its exact frequency, and
* otherwise report "collision".

We store ``(w, ws, fp)`` where ``w = sum_i F[i]``,
``ws = sum_i F[i] * i`` and ``fp = sum_i F[i] * zeta^i  (mod p)`` for a
random evaluation point ``zeta``.  If exactly one key ``a`` is present,
``ws / w == a`` and ``fp == w * zeta^a``; a collision passes this test with
probability at most ``U / p`` over the choice of ``zeta`` (Schwartz-Zippel).
"""

from __future__ import annotations

from .hashing import MERSENNE_P

__all__ = ["OneSparseCell"]


class OneSparseCell:
    """A single 1-sparse recovery cell (supports +/- integer updates).

    Parameters
    ----------
    zeta:
        Fingerprint evaluation point, shared by all cells of one sketch
        row so decodes are consistent.
    """

    __slots__ = ("w", "ws", "fp", "zeta")

    def __init__(self, zeta: int):
        self.w = 0  # total frequency in the bucket
        self.ws = 0  # frequency-weighted key sum
        self.fp = 0  # fingerprint sum mod p
        self.zeta = int(zeta)

    def update(self, key: int, delta: int) -> None:
        """Apply ``F[key] += delta``."""
        key = int(key)
        delta = int(delta)
        self.w += delta
        self.ws += delta * key
        self.fp = (self.fp + delta * pow(self.zeta, key, MERSENNE_P)) % MERSENNE_P

    def subtract_item(self, key: int, weight: int) -> None:
        """Remove a decoded item (used by the peeling decoder)."""
        self.update(key, -weight)

    @property
    def is_zero(self) -> bool:
        """True when the cell summarises the all-zero vector (exactly, for
        the ``w``/``ws`` part; whp for the fingerprint)."""
        return self.w == 0 and self.ws == 0 and self.fp == 0

    def decode(self) -> "tuple[int, int] | None":
        """Return ``(key, frequency)`` if the cell is (whp) 1-sparse with a
        positive frequency, else ``None``.

        Strict-turnstile streams (the paper's setting, §5.1) guarantee
        true frequencies are non-negative, so ``w <= 0`` cells are never
        singletons.
        """
        if self.w <= 0:
            return None
        if self.ws % self.w != 0:
            return None
        key = self.ws // self.w
        if key < 0:
            return None
        if self.fp != (self.w * pow(self.zeta, key, MERSENNE_P)) % MERSENNE_P:
            return None
        return int(key), int(self.w)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OneSparseCell(w={self.w}, ws={self.ws})"
