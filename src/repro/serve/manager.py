"""Multi-tenant session manager: named sessions, LRU eviction, recovery.

The manager owns every :class:`~repro.api.KCenterSession` the server
hosts and provides the three guarantees the service layer is about:

**Serialized concurrent access.** Each named session carries one
re-entrant lock; every operation (extend/delete/solve/save) runs under
it, so concurrent requests against one tenant serialize safely while
requests against different tenants proceed in parallel.  The manager
never holds two session locks at once (eviction skips busy victims with
a non-blocking acquire), so there is no lock-ordering deadlock.

**Snapshot-backed eviction.** At most ``max_resident`` sessions stay
materialized.  When the cap is exceeded the least-recently-used idle
session is ``save()``d to the spool directory
(``<spool>/<name>.snap``, the :mod:`repro.persist` container) and its
in-memory state dropped; the next touch transparently restores it —
callers never observe the difference (restore-then-continue is
bit-identical by the persist contract).

**Crash recovery.** Sessions checkpoint to the spool on a per-session
update cadence (``checkpoint_every`` points, server default overridable
per session) and on graceful shutdown.  :meth:`recover` scans the spool
at startup and re-registers every snapshot as an evicted session, so a
``kill -9`` loses at most the updates since each session's last
checkpoint.  Corrupt or hostile spool files (see the hardened
:func:`repro.persist.read_snapshot`) are skipped and reported, never
fatal.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from ..api import KCenterSession, ProblemSpec, SnapshotError
from ..api.backends import UnsupportedOperationError
from ..persist import read_manifest
from .metrics import MetricsRegistry
from .wire import SESSION_NAME_RE, WireError, solution_to_wire

__all__ = ["SessionManager"]

#: Spool filename suffix for session snapshots.
SPOOL_SUFFIX = ".snap"

#: Manifest ``extra`` key carrying the service-level session options.
_SERVE_EXTRA_KEY = "serve"


class _Entry:
    """One named session slot (resident or spooled)."""

    __slots__ = (
        "name", "lock", "session", "backend", "dirty", "checkpoint_every",
        "reference_radius", "last_used", "updates_hint", "deleted",
        "has_spool",
    )

    def __init__(self, name: str, backend: str):
        self.name = name
        self.lock = threading.RLock()
        self.session: "KCenterSession | None" = None
        self.backend = backend
        self.dirty = 0                 # updates since the last spool write
        self.checkpoint_every: "int | None" = None
        self.reference_radius: "float | None" = None
        self.last_used = 0
        self.updates_hint = 0          # listing data while evicted
        self.deleted = False
        self.has_spool = False


class SessionManager:
    """Named-session lifecycle, eviction and recovery (see module doc).

    Parameters
    ----------
    spool_dir:
        Directory for session snapshots (created if missing).  This is
        the unit of durability: point a restarted server at the same
        spool and :meth:`recover` brings every tenant back.
    max_resident:
        Resident-session cap; beyond it, LRU sessions are evicted to the
        spool.
    checkpoint_every:
        Default per-session checkpoint cadence in points (``None``
        disables periodic checkpoints; explicit ``save`` and eviction
        still write).
    registry:
        The :class:`~repro.serve.metrics.MetricsRegistry` to record
        lifecycle metrics into (a private one is created when omitted).
    """

    def __init__(self, spool_dir: str, *, max_resident: int = 64,
                 checkpoint_every: "int | None" = 4096,
                 registry: "MetricsRegistry | None" = None):
        if int(max_resident) < 1:
            raise ValueError(f"max_resident must be >= 1, got {max_resident}")
        self.spool_dir = str(spool_dir)
        os.makedirs(self.spool_dir, exist_ok=True)
        self.max_resident = int(max_resident)
        self.checkpoint_every = (
            int(checkpoint_every) if checkpoint_every else None
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self._entries: "dict[str, _Entry]" = {}
        self._lock = threading.Lock()
        self._clock = 0
        self._closed = False
        reg = self.registry
        self._m_resident = reg.gauge(
            "repro_serve_sessions_resident",
            "Sessions currently materialized in memory.")
        self._m_evicted = reg.gauge(
            "repro_serve_sessions_evicted",
            "Sessions currently spooled out (snapshot-backed).")
        self._m_evictions = reg.counter(
            "repro_serve_evictions_total",
            "LRU evictions of resident sessions to the spool.")
        self._m_restores = reg.counter(
            "repro_serve_restores_total",
            "Transparent restores of spooled sessions on touch.")
        self._m_checkpoints = reg.counter(
            "repro_serve_checkpoints_total",
            "Session snapshots written to the spool (cadence + explicit).")
        self._m_recovered = reg.counter(
            "repro_serve_recovered_sessions_total",
            "Sessions re-registered from the spool at startup.")
        self._m_coreset = reg.gauge(
            "repro_serve_coreset_size",
            "Coreset size at the session's last solve.", ("session",))
        self._m_radius = reg.gauge(
            "repro_serve_solve_radius",
            "Radius of the session's last solve.", ("session",))
        self._m_ratio = reg.gauge(
            "repro_serve_radius_ratio",
            "Last solve radius over the session's reference radius.",
            ("session",))
        self._update_gauges()

    # -- bookkeeping -------------------------------------------------------

    def _spool_path(self, name: str) -> str:
        return os.path.join(self.spool_dir, name + SPOOL_SUFFIX)

    def _update_gauges(self) -> None:
        with self._lock:
            resident = sum(1 for e in self._entries.values()
                           if e.session is not None)
            total = len(self._entries)
        self._m_resident.set(resident)
        self._m_evicted.set(total - resident)

    def _touch(self, name: str) -> _Entry:
        """Look up an entry and bump its LRU stamp (404 when absent)."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise WireError(404, "unknown-session",
                                f"no session named {name!r}")
            self._clock += 1
            entry.last_used = self._clock
            return entry

    def _ensure_resident(self, entry: _Entry) -> KCenterSession:
        """Restore a spooled session (caller holds ``entry.lock``)."""
        if entry.deleted:
            raise WireError(404, "unknown-session",
                            f"no session named {entry.name!r}")
        if entry.session is not None:
            return entry.session
        path = self._spool_path(entry.name)
        try:
            sess = KCenterSession.load(path)
        except SnapshotError as exc:
            raise WireError(
                500, "restore-failed",
                f"session {entry.name!r} cannot be restored from the "
                f"spool: {exc}",
            ) from exc
        entry.session = sess
        entry.backend = sess.backend_name
        entry.dirty = 0
        entry.updates_hint = sess.updates_seen
        self._m_restores.inc()
        return sess

    def _spool(self, entry: _Entry) -> str:
        """Write the entry's snapshot (caller holds ``entry.lock``)."""
        extra = {_SERVE_EXTRA_KEY: {
            "name": entry.name,
            "checkpoint_every": entry.checkpoint_every,
            "reference_radius": entry.reference_radius,
        }}
        path = entry.session.save(self._spool_path(entry.name), extra=extra)
        entry.dirty = 0
        entry.has_spool = True
        self._m_checkpoints.inc()
        return path

    def _after_mutation(self, entry: _Entry, applied: int) -> bool:
        """Cadence bookkeeping after a mutating op (holds ``entry.lock``).

        Returns whether a periodic checkpoint was written.
        """
        entry.dirty += int(applied)
        entry.updates_hint = entry.session.updates_seen
        cadence = entry.checkpoint_every
        if cadence is not None and entry.dirty >= cadence:
            self._spool(entry)
            return True
        return False

    def _evict_over_capacity(self) -> None:
        """Evict LRU idle sessions until the resident cap holds.

        Runs with no entry lock held; victims are locked with a
        non-blocking acquire so a busy session is never stalled on and
        two entry locks are never held together (deadlock-free).
        """
        while True:
            with self._lock:
                resident = [e for e in self._entries.values()
                            if e.session is not None]
                if len(resident) <= self.max_resident:
                    return
                resident.sort(key=lambda e: e.last_used)
                candidates = resident[: len(resident) - self.max_resident + 4]
            evicted_one = False
            for entry in candidates:
                if not entry.lock.acquire(blocking=False):
                    continue  # busy: skip, never block
                try:
                    if entry.session is None or entry.deleted:
                        continue
                    if entry.dirty > 0 or not entry.has_spool:
                        self._spool(entry)
                    entry.session = None
                    self._m_evictions.inc()
                    evicted_one = True
                    break
                finally:
                    entry.lock.release()
            self._update_gauges()
            if not evicted_one:
                return  # everything over-cap is busy right now

    # -- lifecycle ---------------------------------------------------------

    def recover(self) -> "tuple[list[str], list[str]]":
        """Re-register every spooled session found in the spool directory.

        Sessions come back *evicted* (state stays on disk until first
        touch), so startup cost is one manifest read per tenant, not a
        full restore.

        Returns
        -------
        tuple
            ``(recovered_names, skipped_messages)`` — unreadable or
            foreign files are skipped with a reason, never fatal.
        """
        recovered, skipped = [], []
        for fname in sorted(os.listdir(self.spool_dir)):
            if not fname.endswith(SPOOL_SUFFIX):
                continue
            name = fname[: -len(SPOOL_SUFFIX)]
            if not SESSION_NAME_RE.match(name):
                skipped.append(f"{fname}: unsafe session name")
                continue
            path = os.path.join(self.spool_dir, fname)
            try:
                manifest = read_manifest(path)
            except SnapshotError as exc:
                skipped.append(f"{fname}: {exc}")
                continue
            if manifest.get("kind") != "kcenter-session":
                skipped.append(f"{fname}: not a session snapshot")
                continue
            entry = _Entry(name, str(manifest.get("backend", "?")))
            entry.has_spool = True
            entry.updates_hint = int(manifest.get("updates", 0))
            serve_extra = (manifest.get("extra") or {}).get(
                _SERVE_EXTRA_KEY) or {}
            ce = serve_extra.get("checkpoint_every", self.checkpoint_every)
            entry.checkpoint_every = int(ce) if ce else None
            rr = serve_extra.get("reference_radius")
            entry.reference_radius = float(rr) if rr else None
            with self._lock:
                if name in self._entries:
                    continue
                self._entries[name] = entry
            recovered.append(name)
            self._m_recovered.inc()
        self._update_gauges()
        return recovered, skipped

    def create(self, name: str, spec: ProblemSpec, backend: str,
               options: "dict | None" = None,
               checkpoint_every: "int | None" = None,
               reference_radius: "float | None" = None) -> dict:
        """Create a new named session (409 when the name is taken)."""
        entry = _Entry(name, backend)
        entry.checkpoint_every = (
            int(checkpoint_every) if checkpoint_every
            else self.checkpoint_every
        )
        entry.reference_radius = reference_radius
        with entry.lock:
            with self._lock:
                if self._closed:
                    raise WireError(503, "shutting-down",
                                    "server is shutting down")
                if name in self._entries:
                    raise WireError(409, "session-exists",
                                    f"session {name!r} already exists")
                self._entries[name] = entry
                self._clock += 1
                entry.last_used = self._clock
            try:
                entry.session = KCenterSession.from_spec(
                    spec, backend=backend, **(options or {})
                )
            except Exception as exc:
                with self._lock:
                    self._entries.pop(name, None)
                raise WireError(
                    400, "bad-session",
                    f"cannot construct backend {backend!r}: {exc}",
                ) from exc
            info = self._info_locked(entry)
        self._evict_over_capacity()
        self._update_gauges()
        return info

    def drop(self, name: str) -> None:
        """Delete a session: in-memory state, spool file, and gauges."""
        with self._lock:
            entry = self._entries.pop(name, None)
        if entry is None:
            raise WireError(404, "unknown-session",
                            f"no session named {name!r}")
        with entry.lock:
            entry.deleted = True
            entry.session = None
            path = self._spool_path(name)
            if os.path.exists(path):
                os.remove(path)
        for fam in (self._m_coreset, self._m_radius, self._m_ratio):
            fam.remove(session=name)
        self._update_gauges()

    # -- operations --------------------------------------------------------

    def extend(self, name: str, points: np.ndarray) -> dict:
        """Batched ingest into a named session."""
        entry = self._touch(name)
        with entry.lock:
            sess = self._ensure_resident(entry)
            try:
                sess.extend(points)
            except Exception as exc:
                raise WireError(422, "extend-failed",
                                f"extend rejected: {exc}") from exc
            checkpointed = self._after_mutation(entry, len(points))
            out = {"session": name, "backend": entry.backend,
                   "applied": int(len(points)),
                   "updates": sess.updates_seen,
                   "checkpointed": checkpointed}
        self._evict_over_capacity()
        return out

    def delete_points(self, name: str, points: np.ndarray) -> dict:
        """Batched deletion from a named session (dynamic backends)."""
        entry = self._touch(name)
        with entry.lock:
            sess = self._ensure_resident(entry)
            before = sess.updates_seen
            try:
                sess.delete_many(points)
            except UnsupportedOperationError as exc:
                raise WireError(409, "delete-unsupported", str(exc)) from exc
            except Exception as exc:
                raise WireError(422, "delete-failed",
                                f"delete rejected: {exc}") from exc
            finally:
                applied = sess.updates_seen - before
                checkpointed = (self._after_mutation(entry, applied)
                                if applied else False)
            out = {"session": name, "backend": entry.backend,
                   "applied": int(applied),
                   "updates": sess.updates_seen,
                   "checkpointed": checkpointed}
        self._evict_over_capacity()
        return out

    def solve(self, name: str, method: str = "greedy3") -> dict:
        """Solve on the session's coreset; refreshes the quality gauges."""
        entry = self._touch(name)
        with entry.lock:
            sess = self._ensure_resident(entry)
            try:
                sol = sess.solve(method=method)
            except Exception as exc:
                raise WireError(422, "solve-failed",
                                f"solve rejected: {exc}") from exc
            doc = solution_to_wire(sol)
            if entry.reference_radius:
                doc["radius_ratio"] = sol.radius / entry.reference_radius
                self._m_ratio.labels(session=name).set(doc["radius_ratio"])
            self._m_coreset.labels(session=name).set(sol.coreset_size)
            self._m_radius.labels(session=name).set(sol.radius)
        self._evict_over_capacity()
        return doc

    def save(self, name: str) -> dict:
        """Explicitly checkpoint a session to the spool."""
        entry = self._touch(name)
        with entry.lock:
            sess = self._ensure_resident(entry)
            path = self._spool(entry)
            return {"session": name, "backend": entry.backend,
                    "path": path, "updates": sess.updates_seen}

    def info(self, name: str) -> dict:
        """One session's listing record."""
        entry = self._touch(name)
        with entry.lock:
            if entry.deleted:
                raise WireError(404, "unknown-session",
                                f"no session named {name!r}")
            return self._info_locked(entry)

    def _info_locked(self, entry: _Entry) -> dict:
        resident = entry.session is not None
        return {
            "name": entry.name,
            "backend": entry.backend,
            "resident": resident,
            "updates": (entry.session.updates_seen if resident
                        else entry.updates_hint),
            "dirty": entry.dirty,
            "checkpoint_every": entry.checkpoint_every,
            "reference_radius": entry.reference_radius,
            "spooled": entry.has_spool,
        }

    def list_sessions(self) -> "list[dict]":
        """Listing records for every session, sorted by name."""
        with self._lock:
            entries = [self._entries[n] for n in sorted(self._entries)]
        out = []
        for entry in entries:
            with entry.lock:
                if not entry.deleted:
                    out.append(self._info_locked(entry))
        return out

    # -- shutdown ----------------------------------------------------------

    def checkpoint_all(self) -> int:
        """Spool every resident session with unspooled updates.

        The graceful-shutdown path; returns the number of snapshots
        written.
        """
        with self._lock:
            entries = list(self._entries.values())
        written = 0
        for entry in entries:
            with entry.lock:
                if entry.deleted or entry.session is None:
                    continue
                if entry.dirty > 0 or not entry.has_spool:
                    self._spool(entry)
                    written += 1
        return written

    def close(self) -> int:
        """Stop accepting creates, checkpoint everything, drop residents."""
        with self._lock:
            self._closed = True
        written = self.checkpoint_all()
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            with entry.lock:
                entry.session = None
        self._update_gauges()
        return written

    # -- introspection -----------------------------------------------------

    def resident_count(self) -> int:
        """Number of materialized sessions."""
        with self._lock:
            return sum(1 for e in self._entries.values()
                       if e.session is not None)

    def session_count(self) -> int:
        """Total number of registered sessions (resident + spooled)."""
        with self._lock:
            return len(self._entries)
