"""The threaded HTTP/JSON session server.

`repro.serve`'s front door: a stdlib ``ThreadingHTTPServer`` (one
thread per connection, HTTP/1.1 keep-alive) exposing the session
manager over a REST-ish surface:

====== =============================== =======================================
Method Path                            Meaning
====== =============================== =======================================
PUT    ``/sessions/{name}``            create from ``{"spec", "backend",
                                       "options", "checkpoint_every",
                                       "reference_radius"}``
GET    ``/sessions``                   list sessions (resident + spooled)
GET    ``/sessions/{name}``            one session's info record
DELETE ``/sessions/{name}``            drop session + spool file
POST   ``/sessions/{name}/extend``     batched ingest (JSON points or the
                                       binary ``application/octet-stream``
                                       fast path)
POST   ``/sessions/{name}/delete``     batched deletion (dynamic backends)
GET    ``/sessions/{name}/solve``      offline solve on the coreset
                                       (``?method=greedy3``)
POST   ``/sessions/{name}/save``       explicit checkpoint to the spool
GET    ``/metrics``                    Prometheus text exposition
GET    ``/healthz``                    liveness (200 once the process is up)
GET    ``/readyz``                     readiness (503 while starting up or
                                       shutting down)
====== =============================== =======================================

Errors are ``{"error": {"code", "message"}}`` with the status from the
:class:`~repro.serve.wire.WireError` taxonomy.  Observability: every
request lands in ``repro_serve_http_requests_total``; session
operations also record per-backend latency histograms
(``repro_serve_request_seconds``) and throughput counters
(``repro_serve_points_total``, ``repro_serve_solves_total``) alongside
the manager's lifecycle metrics (see :mod:`repro.serve.manager`).
"""

from __future__ import annotations

import itertools
import json
import os
import re
import shutil
import signal
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from .manager import SessionManager
from .metrics import DEFAULT_BUCKETS, MetricsRegistry
from .wire import (
    MAX_BODY_BYTES,
    SPOOL_BODY_BYTES,
    WireError,
    decode_points,
    error_body,
    parse_create_payload,
    parse_json_body,
    spool_binary_points,
    validate_session_name,
)

__all__ = ["ServeConfig", "ReproServer", "main"]


@dataclass
class ServeConfig:
    """Server construction knobs (CLI flags map 1:1 onto these).

    Parameters
    ----------
    host:
        Bind address.
    port:
        Bind port; ``0`` asks the OS for an ephemeral port (read it back
        from :attr:`ReproServer.port` or the ready file).
    spool_dir:
        Session snapshot directory — the durability unit shared across
        restarts.  ``None`` creates a temporary one (no durability
        across processes).
    max_resident:
        Resident-session cap for the LRU eviction policy.
    checkpoint_every:
        Default per-session checkpoint cadence in points (``None``
        disables periodic checkpoints).
    ready_file:
        Path for the JSON ready file (``{"host", "port", "pid", "url"}``)
        written once the server is serving — how a parent process finds
        an ephemeral port.  ``None`` writes ``<spool_dir>/server.json``.
    """

    host: str = "127.0.0.1"
    port: int = 8137
    spool_dir: "str | None" = None
    max_resident: int = 64
    checkpoint_every: "int | None" = 4096
    ready_file: "str | None" = None
    _resolved_spool: str = field(default="", repr=False)

    def __post_init__(self):
        if self.spool_dir is None:
            self.spool_dir = tempfile.mkdtemp(prefix="repro-serve-spool-")
        self._resolved_spool = str(self.spool_dir)
        if self.ready_file is None:
            self.ready_file = os.path.join(self.spool_dir, "server.json")


class _HTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying a reference to the application."""

    daemon_threads = True
    app: "ReproServer"


_ROUTES = (
    ("GET", re.compile(r"^/healthz$"), "healthz"),
    ("GET", re.compile(r"^/readyz$"), "readyz"),
    ("GET", re.compile(r"^/metrics$"), "metrics"),
    ("GET", re.compile(r"^/sessions$"), "list"),
    ("PUT", re.compile(r"^/sessions/(?P<name>[^/]+)$"), "create"),
    ("GET", re.compile(r"^/sessions/(?P<name>[^/]+)$"), "info"),
    ("DELETE", re.compile(r"^/sessions/(?P<name>[^/]+)$"), "drop"),
    ("POST", re.compile(r"^/sessions/(?P<name>[^/]+)/extend$"), "extend"),
    ("POST", re.compile(r"^/sessions/(?P<name>[^/]+)/delete$"), "delete"),
    ("GET", re.compile(r"^/sessions/(?P<name>[^/]+)/solve$"), "solve"),
    ("POST", re.compile(r"^/sessions/(?P<name>[^/]+)/save$"), "save"),
)

#: Per-process ids for concurrently spooled extend bodies (one
#: handler thread per connection under ThreadingHTTPServer).
_SPOOL_IDS = itertools.count()

#: Route templates for the request counter's ``route`` label.
_TEMPLATES = {
    "healthz": "/healthz", "readyz": "/readyz", "metrics": "/metrics",
    "list": "/sessions", "create": "/sessions/{name}",
    "info": "/sessions/{name}", "drop": "/sessions/{name}",
    "extend": "/sessions/{name}/extend", "delete": "/sessions/{name}/delete",
    "solve": "/sessions/{name}/solve", "save": "/sessions/{name}/save",
}


class _Handler(BaseHTTPRequestHandler):
    """Routes one HTTP request into the session manager."""

    protocol_version = "HTTP/1.1"
    server: _HTTPServer

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Suppress per-request stderr logging (metrics cover it)."""

    def _send(self, status: int, body: bytes,
              content_type: str = "application/json") -> None:
        self._drain_body()  # keep-alive safety: never leave body bytes unread
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, doc) -> None:
        self._send(status, json.dumps(doc).encode())

    def _read_body(self) -> bytes:
        self._body_read = True
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # too big to drain; drop the conn
            raise WireError(413, "body-too-large",
                            f"request body exceeds {MAX_BODY_BYTES} bytes")
        return self.rfile.read(length) if length else b""

    def _drain_body(self) -> None:
        """Discard an unread request body so keep-alive framing survives.

        A handler that errors out before touching the body (bad session
        name, unknown route, ...) would otherwise leave the payload in
        the socket, where it corrupts the next request on the
        connection.
        """
        if getattr(self, "_body_read", False):
            return
        self._body_read = True
        length = int(self.headers.get("Content-Length") or 0)
        if 0 < length <= MAX_BODY_BYTES:
            self.rfile.read(length)
        elif length > MAX_BODY_BYTES:
            self.close_connection = True

    def _dispatch(self, method: str) -> None:
        app = self.server.app
        self._body_read = False  # per-request state (keep-alive reuse)
        split = urlsplit(self.path)
        op, match = None, None
        for m, pattern, name in _ROUTES:
            found = pattern.match(split.path)
            if found:
                match = found
                if m == method:
                    op = name
                    break
        status = 500
        t0 = time.perf_counter()
        try:
            if op is None:
                if match is not None:
                    raise WireError(405, "method-not-allowed",
                                    f"{method} is not valid for "
                                    f"{split.path!r}")
                raise WireError(404, "unknown-route",
                                f"no route for {split.path!r}")
            handler = getattr(self, "_op_" + op)
            kwargs = match.groupdict() if match is not None else {}
            status = handler(query=parse_qs(split.query), **kwargs)
        except WireError as exc:
            status = exc.status
            self._send(exc.status, error_body(exc.code, exc.message))
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            return  # client went away mid-response; nothing to send
        except Exception as exc:  # pragma: no cover - defensive 500
            status = 500
            self._send(500, error_body("internal",
                                       f"{type(exc).__name__}: {exc}"))
        finally:
            app.observe_request(method, _TEMPLATES.get(op or "", "*"),
                                status, op, time.perf_counter() - t0)

    def do_GET(self):
        """Dispatch a GET request."""
        self._dispatch("GET")

    def do_PUT(self):
        """Dispatch a PUT request."""
        self._dispatch("PUT")

    def do_POST(self):
        """Dispatch a POST request."""
        self._dispatch("POST")

    def do_DELETE(self):
        """Dispatch a DELETE request."""
        self._dispatch("DELETE")

    # -- probe / observability routes --------------------------------------

    def _op_healthz(self, query) -> int:
        self._send(200, b"ok\n", content_type="text/plain")
        return 200

    def _op_readyz(self, query) -> int:
        app = self.server.app
        if app.ready:
            self._send(200, b"ready\n", content_type="text/plain")
            return 200
        self._send(503, b"not ready\n", content_type="text/plain")
        return 503

    def _op_metrics(self, query) -> int:
        body = self.server.app.render_metrics().encode()
        self._send(200, body,
                   content_type="text/plain; version=0.0.4; charset=utf-8")
        return 200

    # -- session routes ----------------------------------------------------

    def _op_list(self, query) -> int:
        app = self.server.app
        self._send_json(200, {"sessions": app.manager.list_sessions()})
        return 200

    def _op_create(self, query, name: str) -> int:
        app = self.server.app
        name = validate_session_name(name)
        doc = parse_json_body(self._read_body())
        spec, backend, options, serve_opts = parse_create_payload(doc)
        info = app.manager.create(
            name, spec, backend, options,
            checkpoint_every=serve_opts.get("checkpoint_every"),
            reference_radius=serve_opts.get("reference_radius"),
        )
        app.observe_op("create", backend)
        self._send_json(201, info)
        return 201

    def _op_info(self, query, name: str) -> int:
        app = self.server.app
        self._send_json(200, app.manager.info(validate_session_name(name)))
        return 200

    def _op_drop(self, query, name: str) -> int:
        app = self.server.app
        app.manager.drop(validate_session_name(name))
        self._send_json(200, {"deleted": name})
        return 200

    def _timed_op(self, op: str, name: str, fn) -> dict:
        """Run one manager op under the per-backend latency histogram."""
        app = self.server.app
        t0 = time.perf_counter()
        out = fn()
        backend = out.get("backend") or app.manager.info(name)["backend"]
        app.observe_op(op, backend, seconds=time.perf_counter() - t0,
                       points=out.get("applied", 0),
                       kernel=out.get("kernel_backend"))
        return out

    def _op_extend(self, query, name: str) -> int:
        app = self.server.app
        name = validate_session_name(name)
        ctype = (self.headers.get("Content-Type") or "")
        length = int(self.headers.get("Content-Length") or 0)
        if (ctype.split(";")[0].strip() == "application/octet-stream"
                and length >= SPOOL_BODY_BYTES):
            return self._extend_spooled(name, length)
        pts = decode_points(
            self._read_body(), ctype, self.headers.get("X-Repro-Shape"),
        )
        out = self._timed_op("extend", name,
                             lambda: app.manager.extend(name, pts))
        self._send_json(200, out)
        return 200

    def _extend_spooled(self, name: str, length: int) -> int:
        """Oversized binary extends stream through a disk spool.

        Bodies at or above :data:`~repro.serve.wire.SPOOL_BODY_BYTES`
        never materialize on the heap: they are read in row-aligned
        slices into an atomic :class:`~repro.store.PointStore` under the
        spool directory and handed to the manager as a memory-mapped
        :class:`~repro.store.StoreSource` (the session's chunked extend
        path ingests it chunk by chunk).  The body caps are unchanged —
        this only moves where the bytes sit while they are validated.
        """
        app = self.server.app
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # too big to drain; drop the conn
            self._body_read = True
            raise WireError(413, "body-too-large",
                            f"request body exceeds {MAX_BODY_BYTES} bytes")
        # spool_binary_points either consumes the body fully (success or
        # validation error) or the connection is already dead, so framing
        # is safe to mark handled up front.
        self._body_read = True
        path = os.path.join(
            app.config.spool_dir,
            f".extend-{os.getpid()}-{next(_SPOOL_IDS)}.store")
        try:
            src = spool_binary_points(
                self.rfile, length, self.headers.get("X-Repro-Shape"), path)
            out = self._timed_op("extend", name,
                                 lambda: app.manager.extend(name, src))
        finally:
            shutil.rmtree(path, ignore_errors=True)
        self._send_json(200, out)
        return 200

    def _op_delete(self, query, name: str) -> int:
        app = self.server.app
        name = validate_session_name(name)
        pts = decode_points(
            self._read_body(), self.headers.get("Content-Type", ""),
            self.headers.get("X-Repro-Shape"),
        )
        out = self._timed_op("delete", name,
                             lambda: app.manager.delete_points(name, pts))
        self._send_json(200, out)
        return 200

    def _op_solve(self, query, name: str) -> int:
        app = self.server.app
        name = validate_session_name(name)
        method = (query.get("method") or ["greedy3"])[0]
        out = self._timed_op(
            "solve", name, lambda: app.manager.solve(name, method=method))
        app.counter_solves.labels(backend=out["backend"]).inc()
        if out.get("greedy_stats"):
            app.observe_greedy(out["backend"], out["greedy_stats"])
        self._send_json(200, out)
        return 200

    def _op_save(self, query, name: str) -> int:
        app = self.server.app
        name = validate_session_name(name)
        out = self._timed_op("save", name, lambda: app.manager.save(name))
        self._send_json(200, out)
        return 200


class ReproServer:
    """The embeddable server object: manager + metrics + HTTP front end.

    Lifecycle::

        server = ReproServer(ServeConfig(port=0))
        server.start()              # recover spool, bind, serve in a thread
        ...                         # talk to http://host:{server.port}
        server.stop()               # drain, checkpoint every session

    ``start()``/``stop()`` are what the tests and the README embed;
    :func:`main` wraps them with signal handling for the CLI.
    """

    def __init__(self, config: "ServeConfig | None" = None):
        self.config = config or ServeConfig()
        self.registry = MetricsRegistry()
        self.manager = SessionManager(
            self.config.spool_dir,
            max_resident=self.config.max_resident,
            checkpoint_every=self.config.checkpoint_every,
            registry=self.registry,
        )
        self._httpd: "_HTTPServer | None" = None
        self._thread: "threading.Thread | None" = None
        self._ready = threading.Event()
        self._started = threading.Event()
        self.recovered: "list[str]" = []
        self.skipped: "list[str]" = []
        reg = self.registry
        self.counter_requests = reg.counter(
            "repro_serve_http_requests_total",
            "HTTP requests by method, route template and status code.",
            ("method", "route", "code"))
        self.counter_points = reg.counter(
            "repro_serve_points_total",
            "Point updates applied, by operation and backend.",
            ("op", "backend"))
        self.counter_solves = reg.counter(
            "repro_serve_solves_total",
            "Solve calls served, by backend.", ("backend",))
        self.hist_latency = reg.histogram(
            "repro_serve_request_seconds",
            "Session-operation latency by operation and backend.",
            ("op", "backend"), buckets=DEFAULT_BUCKETS)
        self.hist_solve = reg.histogram(
            "repro_serve_solve_seconds",
            "Solve latency by coreset backend and distance-kernel backend.",
            ("backend", "kernel"), buckets=DEFAULT_BUCKETS)
        self.counter_grid_levels = reg.counter(
            "repro_serve_greedy_grid_levels_total",
            "Grid ladder levels touched by pruned radius searches, by how "
            "they were obtained (direct build / derived from a finer level "
            "/ reused across guesses).",
            ("backend", "kind"))
        self.counter_sharded_scans = reg.counter(
            "repro_serve_greedy_sharded_scans_total",
            "Pruned-decision cell scans that fanned out across decision "
            "threads.", ("backend",))
        self.gauge_up = reg.gauge(
            "repro_serve_ready",
            "1 when the server is accepting traffic, else 0.")
        self.gauge_up.set(0)

    # -- metrics hooks -----------------------------------------------------

    def observe_request(self, method: str, route: str, status: int,
                        op: "str | None", seconds: float) -> None:
        """Record one finished HTTP request."""
        self.counter_requests.labels(
            method=method, route=route, code=str(status)).inc()

    def observe_op(self, op: str, backend: str, seconds: "float | None" = None,
                   points: int = 0, kernel: "str | None" = None) -> None:
        """Record one session operation (latency + point throughput;
        solves additionally land in the per-kernel-backend histogram)."""
        if seconds is not None:
            self.hist_latency.labels(op=op, backend=backend).observe(seconds)
            if kernel is not None:
                self.hist_solve.labels(backend=backend,
                                       kernel=kernel).observe(seconds)
        if points:
            self.counter_points.labels(op=op, backend=backend).inc(points)

    def observe_greedy(self, backend: str, greedy_stats: dict) -> None:
        """Record a pruned radius search's geometry/sharding breakdown."""
        for kind, key in (("direct", "grid_builds"),
                          ("derived", "grid_derived"),
                          ("reused", "grid_reuses")):
            v = int(greedy_stats.get(key, 0) or 0)
            if v:
                self.counter_grid_levels.labels(
                    backend=backend, kind=kind).inc(v)
        v = int(greedy_stats.get("sharded_scans", 0) or 0)
        if v:
            self.counter_sharded_scans.labels(backend=backend).inc(v)

    def render_metrics(self) -> str:
        """The current scrape body."""
        return self.registry.render()

    # -- lifecycle ---------------------------------------------------------

    @property
    def ready(self) -> bool:
        """Whether ``/readyz`` should succeed right now."""
        return self._ready.is_set()

    @property
    def port(self) -> int:
        """The bound port (only meaningful after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("server is not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "ReproServer":
        """Recover the spool, bind, and serve in a daemon thread."""
        if self._httpd is not None:
            raise RuntimeError("server already started")
        self.recovered, self.skipped = self.manager.recover()
        self._httpd = _HTTPServer(
            (self.config.host, self.config.port), _Handler)
        self._httpd.app = self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.05},
            name="repro-serve", daemon=True)
        self._thread.start()
        self._write_ready_file()
        self._ready.set()
        self._started.set()
        self.gauge_up.set(1)
        return self

    def _write_ready_file(self) -> None:
        doc = {"host": self.config.host, "port": self.port,
               "pid": os.getpid(), "url": self.url,
               "recovered": self.recovered}
        tmp = f"{self.config.ready_file}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(doc, fh)
        os.replace(tmp, self.config.ready_file)

    def stop(self) -> None:
        """Graceful shutdown: unready, drain, checkpoint every session."""
        self._ready.clear()
        self.gauge_up.set(0)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.manager.close()

    def __enter__(self) -> "ReproServer":
        """Context-manager start."""
        return self.start()

    def __exit__(self, *exc) -> None:
        """Context-manager stop."""
        self.stop()


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point: ``python -m repro.serve``.

    Serves until SIGTERM/SIGINT, then shuts down gracefully
    (checkpointing every session to the spool).  A SIGKILL instead
    exercises the recovery path: restart with the same ``--spool-dir``
    and every session comes back as of its last checkpoint.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve k-center sessions over HTTP/JSON "
                    "(multi-tenant, snapshot-backed).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8137,
                        help="bind port (0 = ephemeral; read the ready file)")
    parser.add_argument("--spool-dir", default=None,
                        help="session snapshot directory (the durability "
                             "unit; default: a fresh temp dir)")
    parser.add_argument("--max-resident", type=int, default=64,
                        help="LRU cap on in-memory sessions")
    parser.add_argument("--checkpoint-every", type=int, default=4096,
                        help="per-session checkpoint cadence in points "
                             "(0 disables periodic checkpoints)")
    parser.add_argument("--ready-file", default=None,
                        help="where to write the JSON ready file "
                             "(default: <spool-dir>/server.json)")
    args = parser.parse_args(argv)

    config = ServeConfig(
        host=args.host, port=args.port, spool_dir=args.spool_dir,
        max_resident=args.max_resident,
        checkpoint_every=args.checkpoint_every or None,
        ready_file=args.ready_file,
    )
    server = ReproServer(config)
    stop = threading.Event()

    def _handle(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _handle)
    signal.signal(signal.SIGINT, _handle)
    server.start()
    if server.recovered:
        print(f"recovered {len(server.recovered)} session(s) from "
              f"{config.spool_dir}: {', '.join(server.recovered)}")
    for msg in server.skipped:
        print(f"skipped spool file: {msg}", file=sys.stderr)
    print(f"serving on {server.url} (spool: {config.spool_dir})",
          flush=True)
    try:
        while not stop.is_set():
            stop.wait(0.2)
    finally:
        print("shutting down: checkpointing sessions...", flush=True)
        server.stop()
    return 0
