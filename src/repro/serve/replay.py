"""Traffic replay: drive a session server with a registered scenario.

The load-generation half of `repro.serve` — replays any
:mod:`repro.scenarios` workload over N concurrent named sessions and
reports sustained aggregate throughput, doubling as the serve benchmark
(``benchmarks/run_all.py``) and the CI smoke::

    python -m repro.serve.replay --scenario clustered-baseline --quick \
        --sessions 32 --json replay.json            # self-hosted server
    python -m repro.serve.replay --url http://127.0.0.1:8137 ...  # external

Each worker thread owns one keep-alive ``http.client`` connection and a
disjoint slice of the sessions: it creates them (backend options adapted
per scenario, exactly like the evaluation matrix), streams the
scenario's points in ``--batch``-sized extends (binary wire by default —
raw float64 + shape header — the path that pushes >50k updates/s through
a text protocol), then solves and deletes them.  The report carries
aggregate points/s plus per-operation latency percentiles; with
``--min-throughput`` the exit status enforces a floor, which is how CI
pins the serving regression.
"""

from __future__ import annotations

import http.client
import json
import sys
import threading
import time
from urllib.parse import urlsplit

import numpy as np

from ..api.registry import get_backend
from ..scenarios import get_scenario

__all__ = ["ReplayError", "replay", "main"]


class ReplayError(RuntimeError):
    """A replay request failed (non-2xx status from the server)."""


class _Client:
    """One keep-alive JSON/binary HTTP connection."""

    def __init__(self, url: str, timeout: float = 60.0):
        parts = urlsplit(url)
        if parts.scheme != "http" or not parts.hostname:
            raise ReplayError(f"replay needs an http:// URL, got {url!r}")
        self._conn = http.client.HTTPConnection(
            parts.hostname, parts.port or 80, timeout=timeout)

    def request(self, method: str, path: str, body: "bytes | None" = None,
                headers: "dict | None" = None) -> dict:
        """One request; raises :class:`ReplayError` on non-2xx."""
        hdrs = {"Content-Type": "application/json"}
        if headers:
            hdrs.update(headers)
        self._conn.request(method, path, body=body, headers=hdrs)
        resp = self._conn.getresponse()
        payload = resp.read()
        if not 200 <= resp.status < 300:
            raise ReplayError(
                f"{method} {path} -> {resp.status}: {payload[:300]!r}")
        return json.loads(payload) if payload else {}

    def request_json(self, method: str, path: str, doc) -> dict:
        """One JSON-body request."""
        return self.request(method, path, body=json.dumps(doc).encode())

    def extend_binary(self, name: str, pts: np.ndarray) -> dict:
        """The binary ingest fast path."""
        data = np.ascontiguousarray(pts, dtype="<f8")
        return self.request(
            "POST", f"/sessions/{name}/extend", body=data.tobytes(),
            headers={"Content-Type": "application/octet-stream",
                     "X-Repro-Shape": f"{data.shape[0]},{data.shape[1]}"})

    def close(self) -> None:
        """Close the connection."""
        self._conn.close()


def _rebatch(points: np.ndarray, batch: int) -> "list[np.ndarray]":
    """Split the scenario stream into fixed-size extend payloads."""
    return [points[i:i + batch] for i in range(0, len(points), batch)]


def _percentiles(samples: "list[float]") -> dict:
    if not samples:
        return {"count": 0}
    arr = np.asarray(samples)
    return {
        "count": int(arr.size),
        "mean_s": float(arr.mean()),
        "p50_s": float(np.percentile(arr, 50)),
        "p95_s": float(np.percentile(arr, 95)),
        "p99_s": float(np.percentile(arr, 99)),
        "max_s": float(arr.max()),
    }


def replay(url: "str | None" = None, scenario: str = "clustered-baseline",
           quick: bool = True, seed: int = 0, sessions: int = 32,
           threads: "int | None" = None, backend: str = "insertion-only",
           batch: int = 2048, passes: int = 1, json_wire: bool = False,
           solve: bool = True, keep_sessions: bool = False,
           reference: bool = True) -> dict:
    """Replay one scenario over concurrent sessions; return the report.

    Parameters
    ----------
    url:
        Base URL of a running server; ``None`` self-hosts an in-process
        :class:`~repro.serve.server.ReproServer` on an ephemeral port
        (what the benchmark does).
    scenario:
        Registered scenario name (see
        :func:`repro.scenarios.available_scenarios`).
    quick, seed:
        Scenario materialization knobs.
    sessions:
        Number of concurrent named sessions to stream into.
    threads:
        Worker threads (default: ``min(sessions, 8)``); sessions are
        partitioned across workers, one keep-alive connection each.
    backend:
        Backend registry name for every session.
    batch:
        Points per extend request.
    passes:
        Times the scenario stream is replayed into each session.
    json_wire:
        Use the JSON point schema instead of the binary fast path.
    solve:
        Solve every session after streaming (adds solve latency stats
        and populates the server's quality gauges).
    keep_sessions:
        Leave the sessions on the server (CI's recovery smoke streams,
        keeps, kills, and restarts).
    reference:
        Send the scenario's reference radius at create time so the
        server exports ``repro_serve_radius_ratio``.

    Returns
    -------
    dict
        The machine-readable report (throughput, latency percentiles).
    """
    inst = get_scenario(scenario).make(quick=quick, seed=seed)
    info = get_backend(backend)
    options = inst.session_options(info)
    spec_doc = inst.spec.as_dict()
    ref_radius = inst.reference() if reference else None

    own_server = None
    if url is None:
        from .server import ReproServer, ServeConfig

        own_server = ReproServer(ServeConfig(port=0)).start()
        url = own_server.url

    threads = int(threads) if threads else min(int(sessions), 8)
    batches = _rebatch(np.asarray(inst.points, dtype=float), int(batch))
    names = [f"replay-{scenario}-{i:04d}" for i in range(int(sessions))]
    per_worker = [names[i::threads] for i in range(threads)]
    extend_lat: "list[float]" = []
    solve_lat: "list[float]" = []
    errors: "list[BaseException]" = []
    lat_lock = threading.Lock()
    start_barrier = threading.Barrier(threads + 1)
    done_barrier = threading.Barrier(threads + 1)

    def worker(mine: "list[str]") -> None:
        client = None
        try:
            client = _Client(url)
            create_doc = {"spec": spec_doc, "backend": backend,
                          "options": options}
            if ref_radius is not None:
                create_doc["reference_radius"] = ref_radius
            for name in mine:
                client.request_json("PUT", f"/sessions/{name}", create_doc)
            my_extend, my_solve = [], []
            start_barrier.wait()
            for _ in range(int(passes)):
                for chunk in batches:
                    payload = {"points": chunk.tolist()} if json_wire else None
                    for name in mine:
                        t0 = time.perf_counter()
                        if json_wire:
                            client.request_json(
                                "POST", f"/sessions/{name}/extend", payload)
                        else:
                            client.extend_binary(name, chunk)
                        my_extend.append(time.perf_counter() - t0)
            done_barrier.wait()
            if solve:
                for name in mine:
                    t0 = time.perf_counter()
                    client.request("GET", f"/sessions/{name}/solve")
                    my_solve.append(time.perf_counter() - t0)
            if not keep_sessions:
                for name in mine:
                    client.request("DELETE", f"/sessions/{name}")
            with lat_lock:
                extend_lat.extend(my_extend)
                solve_lat.extend(my_solve)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors.append(exc)
            try:  # release the barriers so the run fails fast, not hangs
                start_barrier.abort()
                done_barrier.abort()
            except Exception:
                pass
        finally:
            if client is not None:
                client.close()

    pool = [threading.Thread(target=worker, args=(mine,), daemon=True)
            for mine in per_worker]
    stream_wall = 0.0
    try:
        for t in pool:
            t.start()
        try:
            start_barrier.wait()  # everyone created; measure pure streaming
            t_stream0 = time.perf_counter()
            done_barrier.wait()
            stream_wall = time.perf_counter() - t_stream0
        except threading.BrokenBarrierError:
            pass  # a worker failed; surfaced via `errors` below
        for t in pool:
            t.join()
    finally:
        if own_server is not None:
            own_server.stop()
    if errors:
        raise ReplayError(f"replay worker failed: {errors[0]!r}") from errors[0]

    points_per_pass = sum(len(b) for b in batches)
    total_points = points_per_pass * int(passes) * int(sessions)
    return {
        "suite": "serve-replay",
        "scenario": scenario,
        "backend": backend,
        "quick": bool(quick),
        "seed": int(seed),
        "sessions": int(sessions),
        "threads": threads,
        "batch": int(batch),
        "passes": int(passes),
        "wire": "json" if json_wire else "binary",
        "self_hosted": own_server is not None,
        "total_points": int(total_points),
        "stream_wall_s": float(stream_wall),
        "points_per_s": float(total_points / max(stream_wall, 1e-9)),
        "latency": {
            "extend": _percentiles(extend_lat),
            "solve": _percentiles(solve_lat),
        },
    }


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point: ``python -m repro.serve.replay``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.replay",
        description="Replay a registered scenario over N concurrent "
                    "sessions and report sustained throughput.",
    )
    parser.add_argument("--url", default=None,
                        help="target server base URL (default: self-host an "
                             "in-process server on an ephemeral port)")
    parser.add_argument("--scenario", default="clustered-baseline")
    parser.add_argument("--quick", action="store_true",
                        help="materialize the scenario at smoke size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sessions", type=int, default=32)
    parser.add_argument("--threads", type=int, default=None)
    parser.add_argument("--backend", default="insertion-only")
    parser.add_argument("--batch", type=int, default=2048)
    parser.add_argument("--passes", type=int, default=1)
    parser.add_argument("--json-wire", action="store_true",
                        help="use the JSON point schema instead of the "
                             "binary fast path")
    parser.add_argument("--no-solve", action="store_true")
    parser.add_argument("--keep-sessions", action="store_true",
                        help="leave the sessions on the server (recovery "
                             "smokes)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the report document to PATH")
    parser.add_argument("--min-throughput", type=float, default=None,
                        help="exit 1 when aggregate points/s falls below "
                             "this floor")
    args = parser.parse_args(argv)

    report = replay(
        url=args.url, scenario=args.scenario, quick=args.quick,
        seed=args.seed, sessions=args.sessions, threads=args.threads,
        backend=args.backend, batch=args.batch, passes=args.passes,
        json_wire=args.json_wire, solve=not args.no_solve,
        keep_sessions=args.keep_sessions,
    )
    print(f"{report['scenario']} x{report['sessions']} sessions "
          f"({report['backend']}, {report['wire']} wire): "
          f"{report['total_points']} points in "
          f"{report['stream_wall_s']:.2f}s = "
          f"{report['points_per_s']:,.0f} points/s")
    ext = report["latency"]["extend"]
    if ext.get("count"):
        print(f"extend latency p50={ext['p50_s'] * 1e3:.2f}ms "
              f"p95={ext['p95_s'] * 1e3:.2f}ms "
              f"p99={ext['p99_s'] * 1e3:.2f}ms")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2)
        print(f"wrote {args.json}")
    if (args.min_throughput is not None
            and report["points_per_s"] < args.min_throughput):
        print(f"FAIL: {report['points_per_s']:,.0f} points/s is below the "
              f"--min-throughput floor {args.min_throughput:,.0f}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
