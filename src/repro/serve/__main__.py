"""``python -m repro.serve`` — run the session server until signalled."""

import sys

from .server import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
