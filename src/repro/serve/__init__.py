"""`repro.serve` — multi-tenant clustering-as-a-service.

The service layer over the library stack (ROADMAP item 1): everything a
long-lived deployment needs to host many concurrent named
:class:`~repro.api.KCenterSession` tenants behind one HTTP/JSON surface,
built entirely on the stdlib (no new runtime dependencies):

* :mod:`~repro.serve.server` — the threaded HTTP front end
  (:class:`ReproServer` / :class:`ServeConfig`, ``python -m
  repro.serve``): REST-ish session routes, ``/metrics`` in Prometheus
  text format, ``/healthz``/``/readyz`` probes;
* :mod:`~repro.serve.manager` — :class:`SessionManager`: per-session
  locks, LRU **snapshot-backed eviction** (cold sessions spool to disk
  via :mod:`repro.persist` and restore transparently on touch),
  periodic checkpoint cadence, and **crash recovery** — a restarted
  server re-registers every spooled session, so ``kill -9`` loses at
  most the window since the last checkpoint;
* :mod:`~repro.serve.metrics` — the dependency-free Prometheus
  registry (counters, gauges, latency histograms);
* :mod:`~repro.serve.wire` — wire schemas, validation and the error
  taxonomy shared by server, client and tests;
* :mod:`~repro.serve.replay` — the load-generation client (``python -m
  repro.serve.replay``): replays any registered
  :mod:`repro.scenarios` workload over N concurrent sessions and
  reports sustained throughput (the serve benchmark and CI smoke).

Quickstart::

    from repro.serve import ReproServer, ServeConfig

    server = ReproServer(ServeConfig(port=0, spool_dir="spool")).start()
    # ... PUT /sessions/{name}, POST .../extend, GET .../solve ...
    server.stop()        # checkpoints every session to the spool

Endpoint reference, wire schemas, eviction/recovery semantics and the
metrics catalogue: ``docs/serving.md``.
"""

from .manager import SessionManager
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .server import ReproServer, ServeConfig
from .wire import WireError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ReplayError",
    "ReproServer",
    "ServeConfig",
    "SessionManager",
    "WireError",
    "replay",
]


def __getattr__(name: str):
    """Lazy access to the replay client.

    ``repro.serve.replay`` is importable as ``python -m`` — importing it
    eagerly here would shadow the runpy execution of the same module
    (the stdlib's "found in sys.modules" warning), so the symbols are
    resolved on first attribute access instead.
    """
    if name in ("replay", "ReplayError"):
        from . import replay as _replay

        return _replay.replay if name == "replay" else _replay.ReplayError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
