"""A dependency-free Prometheus metrics registry.

The session server exposes its observability surface in the Prometheus
text exposition format (``GET /metrics``) without taking a client
library dependency: this module implements the three metric kinds the
server needs — :class:`Counter`, :class:`Gauge` and :class:`Histogram`
(cumulative buckets, ``_sum``/``_count`` series) — plus a
:class:`MetricsRegistry` that renders them under the text-format
grammar (``# HELP``/``# TYPE`` headers, escaped label values, ``+Inf``
bucket, stable sort order).

Everything is thread-safe: one registry-wide lock guards family
creation, one lock per family guards its children, and each observation
is a single locked float update — cheap enough to sit on the request
hot path of a threaded server.

Usage::

    reg = MetricsRegistry()
    reqs = reg.counter("requests_total", "HTTP requests.", ("route",))
    reqs.labels(route="/solve").inc()
    lat = reg.histogram("latency_seconds", "Latency.", ("backend",))
    lat.labels(backend="insertion-only").observe(0.0042)
    text = reg.render()          # scrape body
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default latency buckets (seconds): sub-millisecond to tens of seconds,
#: tuned for "one batched extend over loopback HTTP".
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _format_value(value: float) -> str:
    """Render a sample value under the text-format number grammar."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):  # pragma: no cover - never emitted by us
        return "NaN"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format rules."""
    return (str(value).replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _render_labels(names: "tuple[str, ...]", values: "tuple[str, ...]",
                   extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    """Render one ``{name="value",...}`` block ('' when label-free)."""
    pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    pairs += [f'{n}="{_escape_label(v)}"' for n, v in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Family:
    """Shared machinery: a named metric family with labelled children."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: "tuple[str, ...]"):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict = {}
        self._lock = threading.Lock()

    def labels(self, **labels) -> "object":
        """The child series for one concrete label-value assignment.

        Children are created on first touch and persist until
        :meth:`remove`; passing a label set that does not match the
        family's ``labelnames`` raises ``ValueError``.
        """
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
        return child

    def remove(self, **labels) -> None:
        """Drop one child series (a deleted session's gauges)."""
        key = tuple(str(labels[n]) for n in self.labelnames)
        with self._lock:
            self._children.pop(key, None)

    def _make_child(self):
        raise NotImplementedError  # pragma: no cover - abstract

    def _sorted_children(self):
        with self._lock:
            return sorted(self._children.items())

    def render(self) -> "list[str]":
        """The family's exposition lines (HELP/TYPE header + samples)."""
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key, child in self._sorted_children():
            lines.extend(child.render_samples(self, key))
        return lines


class _Value:
    """One locked float cell (counter/gauge child)."""

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def get(self) -> float:
        """The current sample value."""
        with self._lock:
            return self._value

    def render_samples(self, family: _Family, key) -> "list[str]":
        """This child's sample line."""
        labels = _render_labels(family.labelnames, key)
        return [f"{family.name}{labels} {_format_value(self.get())}"]


class _CounterValue(_Value):
    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount


class _GaugeValue(_Value):
    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount


class _HistogramValue:
    """One histogram child: cumulative bucket counts + sum + count."""

    def __init__(self, buckets: "tuple[float, ...]"):
        self._buckets = buckets
        self._counts = [0] * (len(buckets) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._sum += value
            for i, bound in enumerate(self._buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._counts[-1] += 1

    def render_samples(self, family: "_Family", key) -> "list[str]":
        with self._lock:
            counts, total = list(self._counts), self._sum
        lines, cumulative = [], 0
        bounds = [*(_format_value(b) for b in family.buckets), "+Inf"]
        for count, bound in zip(counts, bounds):
            cumulative += count
            labels = _render_labels(family.labelnames, key,
                                    extra=(("le", bound),))
            lines.append(f"{family.name}_bucket{labels} {cumulative}")
        labels = _render_labels(family.labelnames, key)
        lines.append(f"{family.name}_sum{labels} {_format_value(total)}")
        lines.append(f"{family.name}_count{labels} {cumulative}")
        return lines


class Counter(_Family):
    """A monotonically increasing counter family."""

    kind = "counter"

    def _make_child(self):
        return _CounterValue()

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-free series (label-free families only)."""
        self.labels().inc(amount)

    def value(self, **labels) -> float:
        """Current value of one child (test/introspection helper)."""
        return self.labels(**labels).get()


class Gauge(_Family):
    """A settable gauge family."""

    kind = "gauge"

    def _make_child(self):
        return _GaugeValue()

    def set(self, value: float) -> None:
        """Set the label-free series (label-free families only)."""
        self.labels().set(value)

    def value(self, **labels) -> float:
        """Current value of one child (test/introspection helper)."""
        return self.labels(**labels).get()


class Histogram(_Family):
    """A cumulative-bucket histogram family."""

    kind = "histogram"

    def __init__(self, name, help, labelnames, buckets=DEFAULT_BUCKETS):
        super().__init__(name, help, labelnames)
        bts = tuple(sorted(float(b) for b in buckets))
        if not bts or any(b2 <= b1 for b1, b2 in zip(bts, bts[1:])):
            raise ValueError(f"invalid histogram buckets {buckets!r}")
        if math.isinf(bts[-1]):  # +Inf is implicit
            bts = bts[:-1]
        self.buckets = bts

    def _make_child(self):
        return _HistogramValue(self.buckets)

    def observe(self, value: float) -> None:
        """Observe into the label-free series (label-free families only)."""
        self.labels().observe(value)


class MetricsRegistry:
    """A named collection of metric families with one text renderer.

    Families are created idempotently: asking twice for the same name
    returns the same family object, and asking with a conflicting kind
    or label set raises ``ValueError`` — the server's handler threads
    can therefore grab families lazily without coordination.
    """

    def __init__(self):
        self._families: "dict[str, _Family]" = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name, help, labelnames, **kwargs):
        if not name or not name[0].isalpha():
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = cls(name, help, tuple(labelnames), **kwargs)
                self._families[name] = fam
                return fam
        if not isinstance(fam, cls) or fam.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind} with "
                f"labels {fam.labelnames}"
            )
        return fam

    def counter(self, name: str, help: str,
                labelnames: "tuple[str, ...]" = ()) -> Counter:
        """Get or create a :class:`Counter` family."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str,
              labelnames: "tuple[str, ...]" = ()) -> Gauge:
        """Get or create a :class:`Gauge` family."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str,
                  labelnames: "tuple[str, ...]" = (),
                  buckets: "tuple[float, ...]" = DEFAULT_BUCKETS) -> Histogram:
        """Get or create a :class:`Histogram` family."""
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def render(self) -> str:
        """The full scrape body (text exposition format, sorted by name)."""
        with self._lock:
            families = [self._families[n] for n in sorted(self._families)]
        lines: "list[str]" = []
        for fam in families:
            lines.extend(fam.render())
        return "\n".join(lines) + "\n"
