"""Wire schemas and validation for the session server.

Everything that crosses the HTTP boundary is defined here, so the
handler (:mod:`repro.serve.server`), the replay client
(:mod:`repro.serve.replay`) and the tests share one vocabulary:

* :class:`WireError` — the error taxonomy; every validation failure maps
  to an HTTP status plus a machine-readable ``code``, rendered as
  ``{"error": {"code", "message"}}``;
* **session names** — path components matched against a conservative
  ``[A-Za-z0-9][A-Za-z0-9._-]*`` charset (also what makes a name safe to
  use as a spool filename);
* **point payloads** — either JSON ``{"points": [[...], ...]}`` or the
  binary fast path (``Content-Type: application/octet-stream``, raw
  C-order float64 with an ``X-Repro-Shape: n,d`` header) the replay
  driver uses to push >50k updates/s through a text protocol;
* **create payloads** — ``{"spec": {...}, "backend": name,
  "options": {...}}`` validated into a :class:`~repro.api.ProblemSpec`;
* **solution rendering** — :func:`solution_to_wire`.
"""

from __future__ import annotations

import json
import re

import numpy as np

from ..api import ProblemSpec
from ..api.registry import UnknownBackendError, get_backend
from ..store import PointStore

__all__ = [
    "MAX_BODY_BYTES",
    "MAX_BATCH_POINTS",
    "SPOOL_BODY_BYTES",
    "SESSION_NAME_RE",
    "WireError",
    "validate_session_name",
    "parse_json_body",
    "decode_points",
    "parse_binary_shape",
    "spool_binary_points",
    "parse_create_payload",
    "solution_to_wire",
    "error_body",
]

#: Hard cap on a request body (64 MiB — a 4M-point float64 2-d batch).
MAX_BODY_BYTES = 64 << 20

#: Hard cap on points per batched extend/delete request.
MAX_BATCH_POINTS = 1 << 20

#: Binary extend bodies at or above this size are spooled to disk
#: (:func:`spool_binary_points`) instead of buffered on the heap.
SPOOL_BODY_BYTES = 8 << 20

#: Accepted session names — also guarantees a safe spool filename.
SESSION_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


class WireError(Exception):
    """A request that cannot be served, with its HTTP mapping.

    Parameters
    ----------
    status:
        HTTP status code for the response.
    code:
        Stable machine-readable error identifier
        (``"bad-json"``, ``"unknown-session"``, ...).
    message:
        Human-readable detail, returned in the JSON error body.
    """

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = int(status)
        self.code = str(code)
        self.message = str(message)


def error_body(code: str, message: str) -> bytes:
    """The canonical JSON error body."""
    return json.dumps({"error": {"code": code, "message": message}}).encode()


def validate_session_name(name: str) -> str:
    """Validate a session name from a request path.

    The charset is what makes ``<spool>/<name>.snap`` safe: no path
    separators, no leading dot, bounded length.
    """
    if not SESSION_NAME_RE.match(name or ""):
        raise WireError(
            400, "bad-session-name",
            f"session name {name!r} must match {SESSION_NAME_RE.pattern}",
        )
    return name


def parse_json_body(body: bytes) -> dict:
    """Decode a request body as one JSON object."""
    if len(body) > MAX_BODY_BYTES:
        raise WireError(413, "body-too-large",
                        f"request body exceeds {MAX_BODY_BYTES} bytes")
    try:
        doc = json.loads(body.decode() or "{}")
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireError(400, "bad-json", f"body is not JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise WireError(400, "bad-json", "body must be a JSON object")
    return doc


def parse_binary_shape(shape_header: "str | None") -> "tuple[int, int]":
    """Validate an ``X-Repro-Shape: n,d`` header into ``(n, d)``."""
    if not shape_header:
        raise WireError(400, "bad-shape",
                        "binary point payloads need an X-Repro-Shape header "
                        "of the form 'n,d'")
    try:
        n, d = (int(x) for x in shape_header.split(","))
    except ValueError as exc:
        raise WireError(400, "bad-shape",
                        f"malformed X-Repro-Shape {shape_header!r}") from exc
    if n < 0 or d < 1:
        raise WireError(400, "bad-shape",
                        f"invalid X-Repro-Shape {shape_header!r}")
    return n, d


def _decode_binary_points(body: bytes, shape_header: "str | None") -> np.ndarray:
    """The binary ingest fast path: raw C-order float64 + shape header."""
    n, d = parse_binary_shape(shape_header)
    expected = n * d * 8
    if len(body) != expected:
        raise WireError(
            400, "bad-shape",
            f"binary payload is {len(body)} bytes, shape ({n},{d}) "
            f"needs {expected}",
        )
    return np.frombuffer(body, dtype="<f8").reshape(n, d).copy()


def _drain_exact(rfile, remaining: int) -> None:
    """Consume ``remaining`` body bytes (best effort) to keep the
    connection's request framing intact after a validation failure."""
    while remaining > 0:
        skip = rfile.read(min(1 << 20, remaining))
        if not skip:
            return
        remaining -= len(skip)


def _read_exact(rfile, want: int) -> bytes:
    """Read exactly ``want`` bytes, looping over short reads."""
    parts, got = [], 0
    while got < want:
        data = rfile.read(want - got)
        if not data:
            raise WireError(400, "bad-points",
                            f"connection closed mid-body ({got}/{want} "
                            "bytes of this slice)")
        parts.append(data)
        got += len(data)
    return parts[0] if len(parts) == 1 else b"".join(parts)


def spool_binary_points(rfile, length: int, shape_header: "str | None",
                        store_path: str):
    """Stream an oversized binary extend body to disk, never the heap.

    Reads exactly ``length`` bytes of raw C-order little-endian float64
    from ``rfile`` in row-aligned ~4 MiB slices, validates each slice
    (finiteness — the same check :func:`decode_points` applies), and
    appends it to an atomic :class:`~repro.store.PointStore` at
    ``store_path``.  Returns the published
    :class:`~repro.store.StoreSource`, whose ``len()`` is the row count
    — a drop-in carrier for the manager's ``extend``.  The caller owns
    deleting the store directory after the extend is applied.

    Error contract: whenever this raises :class:`WireError`, the body
    has been fully consumed (drained) so HTTP keep-alive framing stays
    intact — unless the connection itself died mid-body, in which case
    there is no framing left to protect.  On any failure the staged
    store is discarded (a killed request never leaves a store that
    opens).
    """
    try:
        n, d = parse_binary_shape(shape_header)
        expected = n * d * 8
        if length != expected:
            raise WireError(
                400, "bad-shape",
                f"binary payload is {length} bytes, shape ({n},{d}) "
                f"needs {expected}",
            )
        if n > MAX_BATCH_POINTS:
            raise WireError(413, "batch-too-large",
                            f"batch of {n} exceeds {MAX_BATCH_POINTS} "
                            "points; split the extend")
    except WireError:
        _drain_exact(rfile, length)
        raise
    row = d * 8
    chunk_rows = max(1, (4 << 20) // row)
    store = PointStore.create(store_path, chunk_rows=chunk_rows,
                              overwrite=True)
    remaining = expected
    try:
        while remaining:
            want = min(chunk_rows * row, remaining)
            buf = _read_exact(rfile, want)
            remaining -= want
            pts = np.frombuffer(buf, dtype="<f8").reshape(-1, d)
            if not np.isfinite(pts).all():
                _drain_exact(rfile, remaining)
                raise WireError(400, "bad-points",
                                "points must be finite (no NaN/Inf)")
            store.append(pts)
        return store.finalize()
    except BaseException:
        store.abort()
        raise


def decode_points(body: bytes, content_type: str,
                  shape_header: "str | None" = None) -> np.ndarray:
    """Decode an extend/delete payload into an ``(n, d)`` float array.

    Parameters
    ----------
    body:
        Raw request body.
    content_type:
        The request's ``Content-Type``; ``application/octet-stream``
        selects the binary fast path, everything else is parsed as the
        JSON ``{"points": [[...], ...]}`` schema.
    shape_header:
        The ``X-Repro-Shape`` header value (binary path only).
    """
    if len(body) > MAX_BODY_BYTES:
        raise WireError(413, "body-too-large",
                        f"request body exceeds {MAX_BODY_BYTES} bytes")
    if (content_type or "").split(";")[0].strip() == "application/octet-stream":
        pts = _decode_binary_points(body, shape_header)
    else:
        doc = parse_json_body(body)
        raw = doc.get("points")
        if raw is None:
            raise WireError(400, "missing-points",
                            'body must carry a "points" array')
        try:
            pts = np.asarray(raw, dtype=float)
        except (TypeError, ValueError) as exc:
            raise WireError(400, "bad-points",
                            f"points are not numeric: {exc}") from exc
        if pts.ndim == 1 and pts.size:
            pts = pts.reshape(1, -1)
    if pts.ndim != 2:
        raise WireError(400, "bad-points",
                        f"points must be a 2-d array, got shape {pts.shape}")
    if len(pts) > MAX_BATCH_POINTS:
        raise WireError(413, "batch-too-large",
                        f"batch of {len(pts)} exceeds {MAX_BATCH_POINTS} "
                        "points; split the extend")
    if not np.isfinite(pts).all():
        raise WireError(400, "bad-points",
                        "points must be finite (no NaN/Inf)")
    return pts


def parse_create_payload(doc: dict) -> "tuple[ProblemSpec, str, dict, dict]":
    """Validate a ``PUT /sessions/{name}`` body.

    Returns
    -------
    tuple
        ``(spec, backend_name, options, serve_options)`` where
        ``serve_options`` carries the service-level knobs
        (``checkpoint_every``, ``reference_radius``) that are not
        forwarded to the backend factory.
    """
    spec_doc = doc.get("spec")
    if not isinstance(spec_doc, dict):
        raise WireError(400, "missing-spec",
                        'body must carry a "spec" object (k, z, eps, ...)')
    try:
        spec = ProblemSpec(**spec_doc)
    except (TypeError, ValueError) as exc:
        raise WireError(400, "bad-spec",
                        f"spec does not validate: {exc}") from exc
    backend = doc.get("backend", "insertion-only")
    if not isinstance(backend, str):
        raise WireError(400, "bad-backend",
                        f"backend must be a registry name, got {backend!r}")
    try:
        get_backend(backend)
    except UnknownBackendError as exc:
        raise WireError(400, "unknown-backend", str(exc)) from exc
    options = doc.get("options", {})
    if not isinstance(options, dict):
        raise WireError(400, "bad-options", "options must be an object")
    serve_options = {}
    if "checkpoint_every" in doc:
        ce = doc["checkpoint_every"]
        if not isinstance(ce, int) or isinstance(ce, bool) or ce < 1:
            raise WireError(400, "bad-checkpoint-every",
                            f"checkpoint_every must be a positive integer, "
                            f"got {ce!r}")
        serve_options["checkpoint_every"] = ce
    if "reference_radius" in doc:
        rr = doc["reference_radius"]
        if not isinstance(rr, (int, float)) or isinstance(rr, bool) or rr <= 0:
            raise WireError(400, "bad-reference-radius",
                            f"reference_radius must be a positive number, "
                            f"got {rr!r}")
        serve_options["reference_radius"] = float(rr)
    return spec, backend, options, serve_options


def solution_to_wire(sol) -> dict:
    """Render a :class:`~repro.api.Solution` as a JSON-safe dict."""
    out = {
        "radius": float(sol.radius),
        "centers": np.asarray(sol.centers, dtype=float).tolist(),
        "method": sol.method,
        "backend": sol.backend,
        "eps_guarantee": float(sol.eps_guarantee),
        "coreset_size": int(sol.coreset_size),
        "updates": int(sol.updates),
        "wall_time": float(sol.wall_time),
    }
    # kernel provenance (which distance-kernel backend ran the solve, and
    # the greedy decision path taken) when the session recorded it
    if "kernel_backend" in sol.stats:
        out["kernel_backend"] = sol.stats["kernel_backend"]
    if "greedy_path" in sol.stats:
        out["greedy_path"] = sol.stats["greedy_path"]
    if "greedy_stats" in sol.stats:
        # grid_builds / grid_reuses / decision_shards breakdown of the
        # grid-pruned radius search (already JSON-safe ints)
        out["greedy_stats"] = dict(sol.stats["greedy_stats"])
    return out
