"""Distributing the input over MPC machines.

The paper distinguishes three regimes:

* *arbitrary (possibly adversarial)* distribution — the setting of the
  deterministic 2-round and R-round algorithms;
* *random* distribution — the assumption under which the 1-round
  randomized algorithm (and Ceccarello et al.'s) works;
* the adversarial worst case that breaks naive outlier budgeting: all
  outliers crowded onto few machines (:func:`partition_adversarial_outliers`),
  used by experiment E2.
"""

from __future__ import annotations

import numpy as np

from ..core.points import WeightedPointSet

__all__ = [
    "partition_contiguous",
    "partition_random",
    "partition_adversarial_outliers",
    "recommended_num_machines",
]


def partition_contiguous(wps: WeightedPointSet, m: int) -> "list[WeightedPointSet]":
    """Split into ``m`` (almost) equal contiguous chunks — an *arbitrary*
    distribution in the paper's sense (the input order is adversarial)."""
    if m < 1:
        raise ValueError("m must be >= 1")
    idx = np.array_split(np.arange(len(wps)), m)
    return [wps.subset(ix) for ix in idx]


def partition_random(
    wps: WeightedPointSet, m: int, rng: "np.random.Generator | None" = None
) -> "list[WeightedPointSet]":
    """Assign each point to a uniformly random machine (the randomized
    1-round algorithms' input model)."""
    if m < 1:
        raise ValueError("m must be >= 1")
    rng = rng or np.random.default_rng()
    assign = rng.integers(0, m, size=len(wps))
    return [wps.subset(assign == i) for i in range(m)]


def partition_adversarial_outliers(
    wps: WeightedPointSet,
    outlier_mask: np.ndarray,
    m: int,
    rng: "np.random.Generator | None" = None,
) -> "list[WeightedPointSet]":
    """Adversarial split: *all* outliers go to machine 1 (a worker), the
    inliers are spread evenly over all machines.

    This is the distribution that makes per-machine outlier counts
    maximally uneven — the regime motivating the paper's outlier-guessing
    mechanism (§3).
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    rng = rng or np.random.default_rng(0)
    outlier_mask = np.asarray(outlier_mask, dtype=bool)
    if outlier_mask.shape != (len(wps),):
        raise ValueError("outlier mask length mismatch")
    inlier_idx = np.flatnonzero(~outlier_mask)
    outlier_idx = np.flatnonzero(outlier_mask)
    parts_idx = [list(ix) for ix in np.array_split(inlier_idx, m)]
    victim = 1 % m
    parts_idx[victim] = parts_idx[victim] + list(outlier_idx)
    return [wps.subset(np.asarray(sorted(ix), dtype=int)) for ix in parts_idx]


def recommended_num_machines(n: int, k: int, z: int, eps: float, d: int) -> int:
    """The paper's machine count ``m = O(sqrt(n * eps^d / k))`` (Theorem
    10), clamped to at least 2 so a worker exists."""
    if n <= 0:
        return 2
    m = int(np.sqrt(n * (eps**d) / max(k, 1)))
    return max(2, m)
