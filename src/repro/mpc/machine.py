"""A simulated MPC machine with storage accounting.

The MPC model's resource of interest is the peak number of *items* (points,
vector entries, coreset rows) a machine holds at any moment; Table 1 is a
table of such peaks.  :class:`Machine` tracks the running and peak item
counts; algorithms call :meth:`charge`/:meth:`release` around the
structures they materialize, and the cluster charges inboxes automatically
on delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Machine"]


@dataclass
class Machine:
    """One machine of the simulated cluster.

    Attributes
    ----------
    mid:
        Machine index (0-based; index 0 is the coordinator by convention).
    is_coordinator:
        Whether this machine is the designated coordinator (the paper
        allows it more storage than the workers).
    inbox:
        Messages delivered at the last communication round, as
        ``(src, payload)`` pairs.
    current_items / peak_items:
        Running and peak storage in items.
    """

    mid: int
    is_coordinator: bool = False
    inbox: list = field(default_factory=list)
    current_items: int = 0
    peak_items: int = 0

    def charge(self, items: int) -> None:
        """Account for ``items`` additional stored items."""
        if items < 0:
            raise ValueError("use release() to free storage")
        self.current_items += int(items)
        self.peak_items = max(self.peak_items, self.current_items)

    def release(self, items: int) -> None:
        """Free previously charged storage."""
        items = int(items)
        if items < 0 or items > self.current_items:
            raise ValueError("release exceeds current storage")
        self.current_items -= items

    def reset_inbox(self) -> None:
        """Drop delivered messages (storage for them must be released by
        the algorithm when it discards the payloads)."""
        self.inbox = []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        role = "coordinator" if self.is_coordinator else "worker"
        return f"Machine({self.mid}, {role}, peak={self.peak_items})"
