"""Massively Parallel Computing algorithms (§3, §7) on a simulated
synchronous cluster with storage and communication accounting."""

from .baselines import (
    ceccarello_one_round_deterministic,
    ceccarello_one_round_randomized,
    cpp_local_coreset,
)
from .cluster import MPCStats, SimulatedMPC, parallel_map, resolve_executor
from .machine import Machine
from .multi_round import multi_round_coreset
from .one_round import one_round_coreset, random_outlier_budget
from .partition import (
    partition_adversarial_outliers,
    partition_contiguous,
    partition_random,
    recommended_num_machines,
)
from .result import MPCCoresetResult
from .two_round import compute_rhat, outlier_vector_length, two_round_coreset

__all__ = [
    "MPCCoresetResult",
    "MPCStats",
    "Machine",
    "SimulatedMPC",
    "ceccarello_one_round_deterministic",
    "ceccarello_one_round_randomized",
    "compute_rhat",
    "cpp_local_coreset",
    "multi_round_coreset",
    "one_round_coreset",
    "outlier_vector_length",
    "parallel_map",
    "partition_adversarial_outliers",
    "partition_contiguous",
    "partition_random",
    "random_outlier_budget",
    "recommended_num_machines",
    "resolve_executor",
    "two_round_coreset",
]
