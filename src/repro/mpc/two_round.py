"""Algorithm 2 — the deterministic 2-round MPC coreset (§3, Theorem 10).

The input may be distributed *arbitrarily* (even adversarially) over the
machines, so no machine knows how many of the global ``z`` outliers it
holds.  The paper's outlier-guessing mechanism works in two rounds:

Round 1
    Each machine ``M_i`` computes, for ``j = 0..ceil(log2(z+1))``, the
    ``Greedy`` radius ``V_i[j]`` for the k-center problem with ``2^j - 1``
    outliers on its local data, and broadcasts the vector ``V_i``.

Round 2
    From the shared vectors every machine deterministically derives
    ``rhat = min { r : sum_l (2^{min{j : V_l[j] <= r}} - 1) <= 2z }``,
    a certified lower-bound proxy (``rhat <= 3 opt``, Lemma 8).  Machine
    ``M_i`` then guesses its outlier budget ``2^{jhat_i} - 1`` with
    ``jhat_i = min{j : V_i[j] <= rhat}`` — the budgets sum to at most
    ``2z`` — builds the local mini-ball covering
    ``MBCConstruction(P_i, k, 2^{jhat_i}-1, eps)`` and ships it to the
    coordinator, who unions the pieces (an ``(eps,k,z)``-MBC of ``P`` by
    Lemma 9) and re-compresses once more (Lemma 5), for a final
    ``(3 eps, k, z)``-coreset.

Set ``outlier_guessing=False`` for the ablation (experiment E16): each
machine then budgets the full ``z`` locally, which inflates worker output
and coordinator storage by ``Theta(m z)`` — exactly the term the
mechanism exists to remove.
"""

from __future__ import annotations

from math import ceil, log2

import numpy as np

from ..core.mbc import compose_errors, mbc_construction
from ..core.metrics import get_metric
from ..core.points import WeightedPointSet
from ..engine import map_machines
from .cluster import SimulatedMPC, resolve_executor
from .result import MPCCoresetResult
from .tasks import mbc_task, radius_vector_task

__all__ = ["outlier_vector_length", "compute_rhat", "two_round_coreset"]


def outlier_vector_length(z: int) -> int:
    """Length of the radius vector ``V_i``: ``ceil(log2(z+1)) + 1``."""
    if z < 0:
        raise ValueError("z must be non-negative")
    return int(ceil(log2(z + 1))) + 1 if z > 0 else 1


def compute_rhat(vectors: "list[np.ndarray]", z: int) -> "tuple[float, list[int]]":
    """Round-2 shared computation: ``rhat`` and the per-machine guesses.

    Parameters
    ----------
    vectors:
        The broadcast vectors ``V_1..V_m`` (each of length
        :func:`outlier_vector_length`).
    z:
        Global outlier budget.

    Returns ``(rhat, jhats)`` where ``jhats[i] = min{j : V_i[j] <= rhat}``.
    Raises if no candidate radius is feasible (impossible per Lemma 8 when
    the vectors come from ``Greedy``; kept as a guard for misuse).
    """
    vecs = [np.asarray(v, dtype=float) for v in vectors]
    candidates = np.unique(np.concatenate(vecs))

    def budget_sum(r: float) -> float:
        total = 0.0
        for v in vecs:
            ok = np.flatnonzero(v <= r + 1e-12 * max(1.0, r))
            if len(ok) == 0:
                return float("inf")
            total += 2.0 ** int(ok[0]) - 1.0
        return total

    # budget_sum is non-increasing in r, so the first feasible candidate in
    # ascending order is the minimum.
    rhat = None
    for r in candidates:
        if budget_sum(float(r)) <= 2.0 * z:
            rhat = float(r)
            break
    if rhat is None:
        raise RuntimeError("no feasible rhat; vectors are inconsistent with Lemma 8")
    jhats = []
    for v in vecs:
        ok = np.flatnonzero(v <= rhat + 1e-12 * max(1.0, rhat))
        jhats.append(int(ok[0]))
    return rhat, jhats


def two_round_coreset(
    parts: "list[WeightedPointSet]",
    k: int,
    z: int,
    eps: float,
    metric=None,
    final_compress: bool = True,
    outlier_guessing: bool = True,
    cluster: "SimulatedMPC | None" = None,
    parallel: bool = False,
    executor=None,
    dtype=None,
    kernel_chunk: "int | None" = None,
    kernel_backend: "str | None" = None,
    prune: "str | None" = None,
    decision_jobs: "int | None" = None,
) -> MPCCoresetResult:
    """Run Algorithm 2 on pre-partitioned input.

    Parameters
    ----------
    parts:
        Per-machine point sets ``P_1..P_m`` (``parts[0]`` lives on the
        coordinator, which also acts as a worker for its own data).
    final_compress:
        Re-compress the union at the coordinator (Theorem 10; ablation
        E17 turns this off, keeping the union's ``eps`` but a larger
        coreset).
    outlier_guessing:
        The paper's mechanism (True) versus naive local budget ``z``
        (False) — ablation E16.  The naive variant needs one round only.
    parallel:
        Legacy spelling of ``executor="thread"``.
    executor:
        How the machine-local computations run: an executor name
        (``"serial"``, ``"thread"``, ``"process"``), a
        :class:`~repro.engine.Executor` instance, or ``None`` (serial).
        Results are bit-identical under every executor.
    dtype, kernel_chunk, kernel_backend, prune, decision_jobs:
        Distance-kernel and grid-pruning knobs (:mod:`repro.kernels`,
        :func:`repro.core.greedy.charikar_greedy`), shipped inside the
        task tuples so process workers honor them too.

    Returns the coordinator's coreset with ``eps_guarantee = 3*eps`` when
    re-compressed, ``eps`` otherwise.
    """
    metric = get_metric(metric)
    m = len(parts)
    if m < 1:
        raise ValueError("need at least one machine")
    cluster = cluster or SimulatedMPC(m)
    if cluster.m != m:
        raise ValueError("cluster size does not match number of parts")
    machines = cluster.machines
    exec_ = resolve_executor(executor, parallel)
    for i, part in enumerate(parts):
        machines[i].charge(len(part))  # local input

    veclen = outlier_vector_length(z)
    rhat = float("nan")
    jhats: "list[int]" = [0] * m

    if outlier_guessing:
        # ---- Round 1: local radius vectors, broadcast -------------------
        vectors = map_machines(
            exec_,
            radius_vector_task,
            [(part, k, veclen, metric, dtype, kernel_chunk, kernel_backend,
              prune, decision_jobs)
             for part in parts],
            machines=machines,
            charge=lambda mach, task, vec: mach.charge(veclen),  # own vector
        )
        for i, v in enumerate(vectors):
            cluster.broadcast(i, v, items=veclen)
        cluster.end_round()

        # ---- Round 2: shared rhat, local MBC with guessed budget --------
        # Every machine runs the same deterministic computation on the same
        # m vectors; we run it once and charge everyone for holding them.
        rhat, jhats = compute_rhat(vectors, z)

        mbcs = map_machines(
            exec_,
            mbc_task,
            [
                (part, k, (1 << jhat) - 1, eps, metric, float(vec[jhat]),
                 dtype, kernel_chunk, kernel_backend, prune, decision_jobs)
                for part, jhat, vec in zip(parts, jhats, vectors)
            ],
            machines=machines,
            charge=lambda mach, task, mbc: mach.charge(mbc.size),
        )
        for i, mbc in enumerate(mbcs):
            cluster.send(i, 0, mbc.coreset, items=mbc.size)
        cluster.end_round()
        budgets = [(1 << j) - 1 for j in jhats]
    else:
        # ---- Naive ablation: one round, local budget z everywhere -------
        mbcs = map_machines(
            exec_,
            mbc_task,
            [(part, k, z, eps, metric, None, dtype, kernel_chunk,
              kernel_backend, prune, decision_jobs)
             for part in parts],
            machines=machines,
            charge=lambda mach, task, mbc: mach.charge(mbc.size),
        )
        for i, mbc in enumerate(mbcs):
            cluster.send(i, 0, mbc.coreset, items=mbc.size)
        cluster.end_round()
        budgets = [z] * m

    # ---- Coordinator: union (Lemma 9) + optional re-compression ----------
    received = [payload for _, payload in machines[0].inbox]
    union = WeightedPointSet.concat([s for s in received if len(s)]) if any(
        len(s) for s in received
    ) else WeightedPointSet.empty(parts[0].dim)
    if final_compress and len(union):
        final_mbc = mbc_construction(
            union, k, z, eps, metric, dtype=dtype, kernel_chunk=kernel_chunk,
            kernel_backend=kernel_backend, prune=prune,
            decision_jobs=decision_jobs,
        )
        coreset = final_mbc.coreset
        machines[0].charge(final_mbc.size)
        eps_out = compose_errors(eps, eps)  # <= 3*eps for eps <= 1
    else:
        coreset = union
        eps_out = eps
    return MPCCoresetResult(
        coreset=coreset,
        eps_guarantee=eps_out,
        stats=cluster.stats(),
        extras={
            "rhat": rhat,
            "jhats": jhats,
            "outlier_budgets": budgets,
            "union_size": len(union),
        },
    )
