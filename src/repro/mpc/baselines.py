"""Prior-work MPC baselines: Ceccarello, Pietracaprina and Pucci (VLDB'19).

CPP19 compute a composable local coreset per machine in *one* round: run a
farthest-point (Gonzalez) traversal with ``k + z_i`` centers on the local
data, then refine every cluster at granularity ``eps * r`` — yielding
``O((k + z_i) / eps^d)`` representatives per machine.  The two variants
differ only in the local outlier budget ``z_i``:

* deterministic (arbitrary distribution): ``z_i = z`` on every machine —
  the ``sqrt(n) z / eps^d`` storage term of Table 1 row 3;
* randomized (random distribution):   ``z_i = min(6z/m + 3 log n, z)`` —
  Table 1 row 1.

The reproduction gives the baseline the benefit of our tighter absorption
constant; the *shape* difference against the paper's algorithms — the
multiplicative ``1/eps^d`` on the outlier term, and the full ``z`` per
machine in the deterministic case — is inherent to the approach and is
what experiments E1/E2 measure.
"""

from __future__ import annotations

from ..core.greedy import gonzalez
from ..core.mbc import update_coreset
from ..core.metrics import get_metric
from ..core.points import WeightedPointSet
from ..engine import map_machines
from .cluster import SimulatedMPC, resolve_executor
from .one_round import random_outlier_budget
from .result import MPCCoresetResult
from .tasks import cpp_local_task

__all__ = [
    "cpp_local_coreset",
    "ceccarello_one_round_deterministic",
    "ceccarello_one_round_randomized",
]


def cpp_local_coreset(
    part: WeightedPointSet, k: int, z_local: int, eps: float, metric=None
) -> WeightedPointSet:
    """CPP19's per-machine coreset.

    Gonzalez with ``k + z_local`` centers gives radius
    ``r <= 2 opt_{k+z_local,0}(P_i) <= 2 opt_{k,z_local}(P_i)``; greedy
    absorption at ``eps * r / 2`` then places every local point within
    ``eps * opt`` of a representative.  Size ``O((k+z_local)/eps^d)``.
    """
    metric = get_metric(metric)
    if len(part) == 0:
        return part
    res = gonzalez(part, k + z_local, metric)
    if res.radius == 0.0:
        # k + z_local centers cover everything exactly: keep the distinct
        # points (absorption at radius 0)
        return update_coreset(part, 0.0, metric).coreset
    delta = eps * res.radius / 2.0
    return update_coreset(part, delta, metric).coreset


def _run_one_round(
    parts: "list[WeightedPointSet]",
    k: int,
    z: int,
    eps: float,
    budgets: "list[int]",
    metric,
    cluster: "SimulatedMPC | None",
    executor=None,
) -> MPCCoresetResult:
    m = len(parts)
    cluster = cluster or SimulatedMPC(m)
    if cluster.m != m:
        raise ValueError("cluster size does not match number of parts")
    machines = cluster.machines
    locals_ = map_machines(
        resolve_executor(executor),
        cpp_local_task,
        [(part, k, budgets[i], eps, metric) for i, part in enumerate(parts)],
        machines=machines,
        charge=lambda mach, task, local: (
            mach.charge(len(task[0])), mach.charge(len(local))
        ),
    )
    for i, local in enumerate(locals_):
        cluster.send(i, 0, local, items=len(local))
    cluster.end_round()
    received = [payload for _, payload in machines[0].inbox]
    union = (
        WeightedPointSet.concat([s for s in received if len(s)])
        if any(len(s) for s in received)
        else WeightedPointSet.empty(parts[0].dim)
    )
    return MPCCoresetResult(
        coreset=union,
        eps_guarantee=eps,
        stats=cluster.stats(),
        extras={"budgets": budgets, "union_size": len(union)},
    )


def ceccarello_one_round_deterministic(
    parts: "list[WeightedPointSet]",
    k: int,
    z: int,
    eps: float,
    metric=None,
    cluster: "SimulatedMPC | None" = None,
    executor=None,
) -> MPCCoresetResult:
    """CPP19 deterministic 1-round baseline (Table 1 row 3): every machine
    must budget the full ``z`` because the distribution is arbitrary."""
    metric = get_metric(metric)
    return _run_one_round(
        parts, k, z, eps, [z] * len(parts), metric, cluster, executor=executor
    )


def ceccarello_one_round_randomized(
    parts: "list[WeightedPointSet]",
    k: int,
    z: int,
    eps: float,
    metric=None,
    cluster: "SimulatedMPC | None" = None,
    executor=None,
) -> MPCCoresetResult:
    """CPP19 randomized 1-round baseline (Table 1 row 1): per-machine
    budget ``min(6z/m + 3 log n, z)`` under random distribution."""
    metric = get_metric(metric)
    m = len(parts)
    n = sum(len(p) for p in parts)
    zp = random_outlier_budget(n, m, z)
    return _run_one_round(
        parts, k, z, eps, [zp] * m, metric, cluster, executor=executor
    )
