"""Module-level machine-local computations for the round protocols.

These are the units of work the protocols fan out through a
:class:`repro.engine.Executor`.  They live at module scope (not as
closures inside the protocol functions) so a ``ProcessExecutor`` can
pickle them; each takes a single plain-data tuple for the same reason.
All are pure functions of their inputs — no shared state, no
:class:`~repro.mpc.machine.Machine` mutation (accounting happens in the
calling process, see :func:`repro.engine.map_machines`).
"""

from __future__ import annotations

import numpy as np

from ..core.greedy import charikar_greedy
from ..core.mbc import MiniBallCovering, mbc_construction

__all__ = ["mbc_task", "radius_vector_task", "cpp_local_task"]


def mbc_task(args) -> MiniBallCovering:
    """``(part, k, z_local, eps, metric, radius[, dtype, kernel_chunk,
    kernel_backend, prune, decision_jobs])`` →
    ``MBCConstruction(part, k, z_local, eps)`` (Lemma 7).

    The trailing distance-kernel / grid-pruning knobs (see
    :mod:`repro.kernels`, :func:`repro.core.greedy.charikar_greedy`) are
    optional so pre-kernels 6-tuples (and pre-pruning 9-tuples) keep
    working; they ride inside the task tuple because a
    ``ProcessExecutor`` worker only sees the tuple.
    """
    part, k, z_local, eps, metric, radius = args[:6]
    dtype, kernel_chunk = args[6:8] if len(args) > 6 else (None, None)
    kernel_backend = args[8] if len(args) > 8 else None
    prune = args[9] if len(args) > 9 else None
    decision_jobs = args[10] if len(args) > 10 else None
    return mbc_construction(
        part, k, z_local, eps, metric, radius=radius,
        dtype=dtype, kernel_chunk=kernel_chunk, kernel_backend=kernel_backend,
        prune=prune, decision_jobs=decision_jobs,
    )


def radius_vector_task(args) -> np.ndarray:
    """``(part, k, veclen, metric[, dtype, kernel_chunk, kernel_backend,
    prune, decision_jobs])`` → the round-1 vector ``V_i`` of Algorithm 2:
    ``V_i[j] = Greedy(part, k, 2^j - 1)`` radius."""
    part, k, veclen, metric = args[:4]
    dtype, kernel_chunk = args[4:6] if len(args) > 4 else (None, None)
    kernel_backend = args[6] if len(args) > 6 else None
    prune = args[7] if len(args) > 7 else None
    decision_jobs = args[8] if len(args) > 8 else None
    v = np.zeros(veclen)
    for j in range(veclen):
        zj = (1 << j) - 1
        v[j] = charikar_greedy(
            part, k, zj, metric, dtype=dtype, kernel_chunk=kernel_chunk,
            kernel_backend=kernel_backend,
            prune=prune if prune is not None else "auto",
            decision_jobs=decision_jobs,
        ).radius
    return v


def cpp_local_task(args):
    """``(part, k, z_local, eps, metric)`` → CPP19's per-machine coreset
    (deferred import: baselines imports this module)."""
    from .baselines import cpp_local_coreset

    part, k, z_local, eps, metric = args
    return cpp_local_coreset(part, k, z_local, eps, metric)
