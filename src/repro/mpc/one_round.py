"""Algorithm 6 — the randomized 1-round MPC coreset (§7.1, Theorem 33).

The algorithm itself is deterministic; the randomness is the assumption
that the input is distributed uniformly at random over the machines, so
each machine holds at most ``z' = min(6z/m + 3 log n, z)`` outliers with
high probability (Lemma 32).  Each machine builds
``MBCConstruction(P_i, k, z', eps)`` and ships it to the coordinator in a
single round; the coordinator unions (Lemma 4) and re-compresses
(Lemma 5) into a ``(3 eps, k, z)``-coreset.
"""

from __future__ import annotations

from math import ceil, log2

from ..core.mbc import compose_errors, mbc_construction
from ..core.metrics import get_metric
from ..core.points import WeightedPointSet
from ..engine import map_machines
from .cluster import SimulatedMPC, resolve_executor
from .result import MPCCoresetResult
from .tasks import mbc_task

__all__ = ["random_outlier_budget", "one_round_coreset"]


def random_outlier_budget(n: int, m: int, z: int) -> int:
    """Lemma 32's whp bound ``min(6z/m + 3 log n, z)`` on per-machine
    outliers under random distribution (log base 2; the constant inside a
    log does not affect the guarantee)."""
    if m < 1:
        raise ValueError("m must be >= 1")
    if z == 0:
        return 0
    whp = ceil(6.0 * z / m + 3.0 * log2(max(n, 2)))
    return int(min(whp, z))


def one_round_coreset(
    parts: "list[WeightedPointSet]",
    k: int,
    z: int,
    eps: float,
    metric=None,
    final_compress: bool = True,
    cluster: "SimulatedMPC | None" = None,
    parallel: bool = False,
    executor=None,
    dtype=None,
    kernel_chunk: "int | None" = None,
    kernel_backend: "str | None" = None,
    prune: "str | None" = None,
    decision_jobs: "int | None" = None,
) -> MPCCoresetResult:
    """Run Algorithm 6 on randomly partitioned input.

    The caller is responsible for the random-distribution assumption
    (use :func:`repro.mpc.partition.partition_random`); with an
    adversarial partition the output can silently miss outliers — that
    failure mode is demonstrated by experiment E2.

    ``executor`` selects how the machine-local MBC constructions run
    (name, :class:`~repro.engine.Executor`, or ``None`` for serial);
    results are bit-identical under every executor.  ``parallel=True``
    is the legacy spelling of ``executor="thread"``.  ``dtype`` /
    ``kernel_chunk`` / ``kernel_backend`` / ``prune`` / ``decision_jobs``
    select the distance kernel and grid pruning (:mod:`repro.kernels`,
    :func:`repro.core.greedy.charikar_greedy`) for the machine-local and
    coordinator MBC constructions.
    """
    metric = get_metric(metric)
    m = len(parts)
    if m < 1:
        raise ValueError("need at least one machine")
    cluster = cluster or SimulatedMPC(m)
    if cluster.m != m:
        raise ValueError("cluster size does not match number of parts")
    machines = cluster.machines
    n = sum(len(p) for p in parts)
    zprime = random_outlier_budget(n, m, z)

    mbcs = map_machines(
        resolve_executor(executor, parallel),
        mbc_task,
        [(part, k, zprime, eps, metric, None, dtype, kernel_chunk,
          kernel_backend, prune, decision_jobs)
         for part in parts],
        machines=machines,
        charge=lambda mach, task, mbc: (mach.charge(len(task[0])), mach.charge(mbc.size)),
    )
    for i, mbc in enumerate(mbcs):
        cluster.send(i, 0, mbc.coreset, items=mbc.size)
    cluster.end_round()

    received = [payload for _, payload in machines[0].inbox]
    union = (
        WeightedPointSet.concat([s for s in received if len(s)])
        if any(len(s) for s in received)
        else WeightedPointSet.empty(parts[0].dim)
    )
    if final_compress and len(union):
        final_mbc = mbc_construction(
            union, k, z, eps, metric, dtype=dtype, kernel_chunk=kernel_chunk,
            kernel_backend=kernel_backend, prune=prune,
            decision_jobs=decision_jobs,
        )
        coreset = final_mbc.coreset
        machines[0].charge(final_mbc.size)
        eps_out = compose_errors(eps, eps)
    else:
        coreset = union
        eps_out = eps
    return MPCCoresetResult(
        coreset=coreset,
        eps_guarantee=eps_out,
        stats=cluster.stats(),
        extras={"zprime": zprime, "union_size": len(union)},
    )
