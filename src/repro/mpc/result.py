"""Common result type for the MPC coreset algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.points import WeightedPointSet
from .cluster import MPCStats

__all__ = ["MPCCoresetResult"]


@dataclass(frozen=True)
class MPCCoresetResult:
    """Output of an MPC coreset computation.

    Attributes
    ----------
    coreset:
        The final weighted coreset held by the coordinator.
    eps_guarantee:
        The error parameter the output provably satisfies as an
        ``(eps,k,z)``-coreset of the full input (e.g. ``3*eps`` for
        Algorithm 2 per Theorem 10, ``(1+eps)^R - 1`` for Algorithm 7 per
        Theorem 35).
    stats:
        Rounds / storage / communication accounting.
    extras:
        Algorithm-specific diagnostics (e.g. Algorithm 2's ``rhat`` and
        per-machine outlier guesses ``2^jhat - 1``).
    """

    coreset: WeightedPointSet
    eps_guarantee: float
    stats: MPCStats
    extras: dict = field(default_factory=dict)
