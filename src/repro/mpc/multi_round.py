"""Algorithm 7 — the deterministic R-round MPC coreset (§7.2, Theorem 35).

A rounds-versus-storage trade-off: machines form a ``beta``-ary reduction
tree with ``beta = ceil(m^{1/R})``.  In every round each active machine
compresses the union of what it received into an ``(eps,k,z)``-mini-ball
covering and forwards it up the tree; after ``R`` rounds the coordinator
holds a ``((1+eps)^R - 1, k, z)``-coreset (error composes by Lemma 5,
unions are safe by Lemma 4).
"""

from __future__ import annotations

from math import ceil

from ..core.metrics import get_metric
from ..core.points import WeightedPointSet
from ..engine import map_machines
from .cluster import SimulatedMPC, resolve_executor
from .result import MPCCoresetResult
from .tasks import mbc_task

__all__ = ["multi_round_coreset"]


def multi_round_coreset(
    parts: "list[WeightedPointSet]",
    k: int,
    z: int,
    eps: float,
    rounds: int,
    metric=None,
    cluster: "SimulatedMPC | None" = None,
    parallel: bool = False,
    executor=None,
    dtype=None,
    kernel_chunk: "int | None" = None,
    kernel_backend: "str | None" = None,
    prune: "str | None" = None,
    decision_jobs: "int | None" = None,
) -> MPCCoresetResult:
    """Run Algorithm 7 with ``R = rounds`` communication rounds.

    ``parts[i]`` is machine ``i``'s initial data (machine 0 is the paper's
    ``M_1``, the coordinator).  ``eps_guarantee = (1+eps)^rounds - 1``.
    The per-round machine-local MBC constructions fan out through
    ``executor`` (bit-identical results under every executor);
    ``parallel=True`` is the legacy spelling of ``executor="thread"``.
    ``dtype`` / ``kernel_chunk`` / ``kernel_backend`` / ``prune`` /
    ``decision_jobs`` select the distance kernel and grid pruning
    (:mod:`repro.kernels`, :func:`repro.core.greedy.charikar_greedy`) for
    every per-round MBC construction.
    """
    metric = get_metric(metric)
    m = len(parts)
    if m < 1:
        raise ValueError("need at least one machine")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    cluster = cluster or SimulatedMPC(m)
    if cluster.m != m:
        raise ValueError("cluster size does not match number of parts")
    machines = cluster.machines
    exec_ = resolve_executor(executor, parallel)
    beta = max(2, int(ceil(m ** (1.0 / rounds))))
    dim = parts[0].dim

    # Q[i] holds machine i's current working set.
    Q: "list[WeightedPointSet]" = []
    for i, part in enumerate(parts):
        machines[i].charge(len(part))
        Q.append(part)

    active = m
    for _t in range(rounds):
        next_active = int(ceil(active / beta))
        self_deliveries: "list[tuple[int, WeightedPointSet]]" = []
        mbcs = map_machines(
            exec_,
            mbc_task,
            [(Q[i], k, z, eps, metric, None, dtype, kernel_chunk,
              kernel_backend, prune, decision_jobs)
             for i in range(active)],
            machines=machines[:active],
            charge=lambda mach, task, mbc: mach.charge(mbc.size),
        )
        for i, mbc in enumerate(mbcs):
            dest = i // beta  # paper's ceil(i/beta) in 1-based indexing
            if dest == i:
                # self-delivery: no network traffic, but the storage stays;
                # appended after end_round() so reset_inbox cannot drop it
                self_deliveries.append((i, mbc.coreset))
            else:
                cluster.send(i, dest, mbc.coreset, items=mbc.size)
        cluster.end_round()
        for i, payload in self_deliveries:
            machines[i].inbox.append((i, payload))
        newQ: "list[WeightedPointSet]" = []
        for i in range(next_active):
            payloads = [p for _, p in machines[i].inbox if len(p)]
            newQ.append(
                WeightedPointSet.concat(payloads)
                if payloads
                else WeightedPointSet.empty(dim)
            )
        Q = newQ
        active = next_active
    assert active == 1, "reduction tree must end at the coordinator"

    coreset = Q[0]
    eps_out = (1.0 + eps) ** rounds - 1.0
    return MPCCoresetResult(
        coreset=coreset,
        eps_guarantee=eps_out,
        stats=cluster.stats(),
        extras={"beta": beta},
    )
