"""Simulated synchronous MPC cluster (the paper's computation model, §1).

Computation proceeds in synchronous rounds: every machine performs an
arbitrary local computation, then sends messages; messages are delivered
at the start of the next round.  The simulator executes machines
sequentially (the algorithms are deterministic given their inputs, so
this is semantically identical to parallel execution) and accounts

* the number of *communication rounds* used,
* per-message and total communication volume in items, and
* per-machine peak storage (via :class:`~repro.mpc.machine.Machine`).

The message-passing API mirrors mpi4py idioms (``send`` / ``broadcast``
with explicit payloads), but every send declares its size in items so the
accounting matches the unit of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import Executor, get_executor
from .machine import Machine

__all__ = ["MPCStats", "SimulatedMPC", "parallel_map", "resolve_executor"]


def resolve_executor(executor, parallel: bool = False) -> Executor:
    """Resolve the protocols' ``(executor, parallel)`` knob pair.

    ``executor`` wins when given (name, ``Executor`` instance, or
    ``None``); the legacy ``parallel=True`` flag means a thread pool.
    """
    if executor is not None:
        return get_executor(executor)
    return get_executor("thread" if parallel else None)


def parallel_map(fn, items, parallel: bool = False, max_workers: "int | None" = None):
    """Order-preserving map over per-machine work items.

    Legacy shim kept for API stability; new code should go through
    :mod:`repro.engine` directly.  ``parallel=True`` maps on a
    :class:`~repro.engine.ThreadExecutor` — the heavy kernels (pairwise
    distances, greedy passes) spend their time in BLAS/C code that
    releases the GIL, so threads give real speedup while keeping results
    deterministic (ordering is preserved and the algorithms share no
    mutable state across machines).
    """
    executor = get_executor("thread" if parallel else None, jobs=max_workers)
    return executor.map(fn, items)


@dataclass(frozen=True)
class MPCStats:
    """Resource usage of a finished MPC computation.

    Attributes
    ----------
    rounds:
        Number of communication rounds (the paper's measure: computation
        happens between communication rounds and is not counted).
    coordinator_peak:
        Peak storage (items) of the coordinator machine.
    worker_peak:
        Maximum peak storage over the worker machines.
    per_machine_peak:
        Peak storage of every machine, indexed by machine id.
    total_communication:
        Total items sent over the network across all rounds.
    """

    rounds: int
    coordinator_peak: int
    worker_peak: int
    per_machine_peak: "tuple[int, ...]"
    total_communication: int


class SimulatedMPC:
    """A cluster of ``m`` machines; machine 0 is the coordinator.

    Usage pattern (one round)::

        for mach in cluster.machines:
            ...local computation...
            cluster.send(mach.mid, dst, payload, items=n)
        cluster.end_round()          # delivers messages, counts the round
        for mach in cluster.machines:
            for src, payload in mach.inbox: ...

    Delivered payloads are automatically charged to the recipient's
    storage; the recipient must :meth:`Machine.release` them when it
    discards them.
    """

    def __init__(self, num_machines: int):
        if num_machines < 1:
            raise ValueError("need at least one machine")
        self.machines = [Machine(i, is_coordinator=(i == 0)) for i in range(num_machines)]
        self._pending: "list[tuple[int, int, object, int]]" = []
        self._rounds = 0
        self._communication = 0

    # -- topology ----------------------------------------------------------

    @property
    def m(self) -> int:
        """Number of machines."""
        return len(self.machines)

    @property
    def coordinator(self) -> Machine:
        """The designated coordinator machine (id 0)."""
        return self.machines[0]

    @property
    def workers(self) -> "list[Machine]":
        """All non-coordinator machines."""
        return self.machines[1:]

    # -- messaging -----------------------------------------------------------

    def send(self, src: int, dst: int, payload, items: int) -> None:
        """Queue a message for delivery at the next :meth:`end_round`.

        ``items`` is the message size in the storage unit (points / vector
        entries); it is added to the communication total and charged to
        the recipient on delivery.
        """
        if not (0 <= src < self.m and 0 <= dst < self.m):
            raise ValueError("machine id out of range")
        if items < 0:
            raise ValueError("items must be non-negative")
        self._pending.append((src, dst, payload, int(items)))

    def broadcast(self, src: int, payload, items: int) -> None:
        """Send ``payload`` to every *other* machine."""
        for dst in range(self.m):
            if dst != src:
                self.send(src, dst, payload, items)

    def end_round(self) -> None:
        """Deliver all queued messages and count one communication round."""
        for mach in self.machines:
            mach.reset_inbox()
        for src, dst, payload, items in self._pending:
            mach = self.machines[dst]
            mach.inbox.append((src, payload))
            mach.charge(items)
            self._communication += items
        self._pending = []
        self._rounds += 1

    # -- accounting -----------------------------------------------------------

    def stats(self) -> MPCStats:
        """Snapshot of resource usage so far."""
        peaks = tuple(m.peak_items for m in self.machines)
        worker_peak = max((m.peak_items for m in self.workers), default=0)
        return MPCStats(
            rounds=self._rounds,
            coordinator_peak=self.coordinator.peak_items,
            worker_peak=worker_peak,
            per_machine_peak=peaks,
            total_communication=self._communication,
        )
