"""The on-disk snapshot container: one zip with a JSON manifest and an npz payload.

A snapshot file is a plain zip archive holding exactly two members:

``manifest.json``
    Human-readable provenance — format version, library version, backend
    name, the full :meth:`~repro.api.ProblemSpec.as_dict` of the spec,
    session options, update/wall-time accounting, and the JSON-typed part
    of the backend state (``state`` subtree).  Auditable with nothing but
    ``unzip -p snapshot manifest.json``.
``payload.npz``
    Every array-typed leaf of the backend state, stored under its
    ``/``-joined path in the state tree (standard ``np.savez`` container;
    loaded with ``allow_pickle=False``, so a snapshot can never execute
    code on load).

Backend ``snapshot()`` methods return one nested dict of string keys whose
leaves are either JSON-serializable scalars/lists or ``np.ndarray``s;
:func:`write_snapshot` splits that tree across the two members and
:func:`read_snapshot` reassembles it bit for bit.  Writes are atomic
(temp file + rename), so a crash mid-checkpoint never leaves a truncated
snapshot behind.

Versioning policy: ``format`` is bumped whenever the container layout or
any backend's state tree changes incompatibly; readers reject snapshots
whose version they do not know with a :class:`SnapshotError` instead of
guessing (see ``docs/persistence.md``).

Reading is hardened for network exposure (the ``repro.serve`` session
server restores snapshots it did not write): member names carrying path
separators or ``..`` components are rejected before anything is
extracted (zip-slip), and the total decompressed payload is capped —
``max_bytes`` argument, ``REPRO_SNAPSHOT_MAX_BYTES`` environment
override, 1 GiB default — with the cap enforced on the *actual* bytes
streamed out, not the (forgeable) size fields in the zip directory.
"""

from __future__ import annotations

import io
import json
import os
import zipfile

import numpy as np

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "DEFAULT_MAX_DECOMPRESSED_BYTES",
    "DEFAULT_MMAP_THRESHOLD",
    "MANIFEST_MEMBER",
    "PAYLOAD_MEMBER",
    "SnapshotError",
    "write_snapshot",
    "read_snapshot",
    "read_manifest",
]

#: Current container/state format version (see module docstring).
SNAPSHOT_FORMAT_VERSION = 1

#: Zip member holding the JSON manifest.
MANIFEST_MEMBER = "manifest.json"

#: Zip member holding the npz array payload.
PAYLOAD_MEMBER = "payload.npz"

#: Default cap on the total decompressed size of a snapshot's members.
#: Override per call (``max_bytes``) or process-wide with the
#: ``REPRO_SNAPSHOT_MAX_BYTES`` environment variable.
DEFAULT_MAX_DECOMPRESSED_BYTES = 1 << 30

#: Arrays at or above this many bytes are memory-mapped instead of read
#: into RAM when :func:`read_snapshot` is given an ``mmap_dir``.
DEFAULT_MMAP_THRESHOLD = 1 << 20

_MAX_BYTES_ENV = "REPRO_SNAPSHOT_MAX_BYTES"

_SEP = "/"


class SnapshotError(RuntimeError):
    """A snapshot cannot be written, read, or applied.

    Raised for unreadable/corrupted files, unknown format versions,
    backend/spec mismatches at load time, and state trees that do not
    fit the container (non-string keys, unserializable leaves).
    """


def _split_state(state: dict, prefix: str, json_tree: dict, arrays: dict) -> None:
    """Recursively split ``state`` into JSON leaves and npz arrays."""
    for key, value in state.items():
        if not isinstance(key, str) or not key:
            raise SnapshotError(
                f"state keys must be non-empty strings, got {key!r}"
            )
        if _SEP in key:
            raise SnapshotError(f"state key {key!r} must not contain {_SEP!r}")
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            sub: dict = {}
            json_tree[key] = sub
            _split_state(value, path + _SEP, sub, arrays)
        elif isinstance(value, np.ndarray):
            if value.dtype.hasobject:
                # np.savez would pickle it and allow_pickle=False on read
                # would then reject the file forever — fail at write time
                raise SnapshotError(
                    f"state leaf {path!r} is an object-dtype array; only "
                    "plain numeric/bool/bytes dtypes are portable"
                )
            arrays[path] = value
        elif isinstance(value, np.generic):
            json_tree[key] = value.item()
        elif isinstance(value, (bool, int, float, str)) or value is None:
            json_tree[key] = value
        elif isinstance(value, (list, tuple)):
            json_tree[key] = list(value)
        else:
            raise SnapshotError(
                f"state leaf {path!r} has unsupported type "
                f"{type(value).__name__}; use arrays, scalars, strings, "
                "lists or nested dicts"
            )


def _merge_state(json_tree: dict, arrays: "dict[str, np.ndarray]") -> dict:
    """Reassemble the state tree from its JSON part and the npz arrays."""
    state = json.loads(json.dumps(json_tree))  # deep copy, JSON types only
    for path, arr in arrays.items():
        parts = path.split(_SEP)
        node = state
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if not isinstance(node, dict):
                raise SnapshotError(
                    f"array path {path!r} collides with a JSON leaf"
                )
        node[parts[-1]] = arr
    return state


def write_snapshot(path: str, manifest: dict, state: dict) -> str:
    """Write a snapshot file atomically.

    Parameters
    ----------
    path:
        Destination file (parent directories are created).
    manifest:
        JSON-serializable provenance record; ``format`` and the split
        ``state``/``arrays`` fields are filled in here.
    state:
        The backend state tree (nested dicts of arrays / JSON leaves).

    Returns
    -------
    str
        ``path``, for chaining.
    """
    json_tree: dict = {}
    arrays: "dict[str, np.ndarray]" = {}
    _split_state(state, "", json_tree, arrays)
    doc = dict(manifest)
    doc.setdefault("format", SNAPSHOT_FORMAT_VERSION)
    doc["state"] = json_tree
    doc["arrays"] = sorted(arrays)
    try:
        manifest_bytes = json.dumps(doc, indent=2, sort_keys=True).encode()
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"manifest is not JSON-serializable: {exc}") from exc
    payload = io.BytesIO()
    np.savez(payload, **arrays)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with zipfile.ZipFile(tmp, "w", zipfile.ZIP_DEFLATED) as zf:
            zf.writestr(MANIFEST_MEMBER, manifest_bytes)
            zf.writestr(PAYLOAD_MEMBER, payload.getvalue())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - crash-path cleanup
            os.remove(tmp)
    return path


def _resolve_max_bytes(max_bytes: "int | None") -> int:
    """The effective decompressed-size budget for one snapshot read."""
    if max_bytes is None:
        env = os.environ.get(_MAX_BYTES_ENV)
        max_bytes = int(env) if env else DEFAULT_MAX_DECOMPRESSED_BYTES
    if int(max_bytes) < 1:
        raise SnapshotError(f"max_bytes must be >= 1, got {max_bytes!r}")
    return int(max_bytes)


def _check_member_names(path: str, zf: zipfile.ZipFile) -> None:
    """Reject zip-slip member names before anything is extracted.

    A snapshot only ever holds top-level members, so any name carrying a
    path separator (``/`` or ``\\``), a ``..`` component, or an absolute
    prefix is hostile, not merely malformed.
    """
    for name in zf.namelist():
        if ("/" in name or "\\" in name or ".." in name
                or name.startswith(("/", "~")) or ":" in name):
            raise SnapshotError(
                f"snapshot {path!r} member name {name!r} contains a path "
                "separator or traversal component; refusing to read it"
            )


def _read_member(path: str, zf: zipfile.ZipFile, member: str,
                 budget: int) -> bytes:
    """Read one member, enforcing ``budget`` on the streamed-out bytes.

    The zip directory's ``file_size`` field is attacker-controlled, so
    the cap is applied to what decompression actually produces (one
    chunk of slack past the budget, then fail).
    """
    chunks, remaining = [], budget
    try:
        with zf.open(member) as fh:
            while True:
                chunk = fh.read(min(1 << 20, remaining + 1))
                if not chunk:
                    break
                remaining -= len(chunk)
                if remaining < 0:
                    raise SnapshotError(
                        f"snapshot {path!r} member {member!r} decompresses "
                        f"past the {budget}-byte budget; pass a larger "
                        f"max_bytes (or set ${_MAX_BYTES_ENV}) if this "
                        "snapshot is trusted"
                    )
                chunks.append(chunk)
    except (OSError, zipfile.BadZipFile) as exc:  # truncated/corrupt member
        raise SnapshotError(
            f"cannot read snapshot {path!r} member {member!r}: {exc}"
        ) from exc
    return b"".join(chunks)


def _open_validated(path: str, max_bytes: "int | None"):
    """Open ``path`` as a zip, run the name checks, resolve the budget."""
    budget = _resolve_max_bytes(max_bytes)
    try:
        zf = zipfile.ZipFile(path, "r")
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from exc
    try:
        _check_member_names(path, zf)
    except SnapshotError:
        zf.close()
        raise
    return zf, budget


def _parse_manifest(path: str, raw: bytes) -> dict:
    """Decode and version-check a manifest member."""
    try:
        manifest = json.loads(raw.decode())
    except (UnicodeDecodeError, ValueError) as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise SnapshotError(f"snapshot {path!r} manifest is not a JSON object")
    fmt = manifest.get("format")
    if fmt != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path!r} has format version {fmt!r}; this library "
            f"reads version {SNAPSHOT_FORMAT_VERSION}"
        )
    return manifest


def read_manifest(path: str, max_bytes: "int | None" = None) -> dict:
    """Read only the JSON manifest of a snapshot file.

    The cheap half of :func:`read_snapshot` — the array payload is never
    decompressed — used by spool scans (``repro.serve``) that need each
    snapshot's provenance (kind, backend, spec, update count) without
    paying for its state.  Same validation and hardening as
    :func:`read_snapshot`.

    Parameters
    ----------
    path:
        Snapshot file written by :func:`write_snapshot`.
    max_bytes:
        Decompressed-size budget for the manifest member (defaults to
        ``REPRO_SNAPSHOT_MAX_BYTES`` or 1 GiB).

    Raises
    ------
    SnapshotError
        Missing/corrupted file, hostile member names, over-budget
        manifest, or unknown ``format`` version.
    """
    zf, budget = _open_validated(path, max_bytes)
    with zf:
        try:
            raw = _read_member(path, zf, MANIFEST_MEMBER, budget)
        except KeyError as exc:
            raise SnapshotError(
                f"cannot read snapshot {path!r}: {exc}"
            ) from exc
    return _parse_manifest(path, raw)


def _extract_member(path: str, zf: zipfile.ZipFile, member: str,
                    budget: int, dest: str) -> None:
    """Stream one member to ``dest`` atomically, enforcing ``budget`` on
    the decompressed bytes (the file-backed sibling of
    :func:`_read_member` — holds one 1 MiB chunk in RAM, not the whole
    payload)."""
    tmp = f"{dest}.tmp.{os.getpid()}"
    remaining = budget
    try:
        with zf.open(member) as src, open(tmp, "wb") as out:
            while True:
                chunk = src.read(min(1 << 20, remaining + 1))
                if not chunk:
                    break
                remaining -= len(chunk)
                if remaining < 0:
                    raise SnapshotError(
                        f"snapshot {path!r} member {member!r} decompresses "
                        f"past the {budget}-byte budget; pass a larger "
                        f"max_bytes (or set ${_MAX_BYTES_ENV}) if this "
                        "snapshot is trusted"
                    )
                out.write(chunk)
        os.replace(tmp, dest)
    except (OSError, zipfile.BadZipFile) as exc:
        raise SnapshotError(
            f"cannot read snapshot {path!r} member {member!r}: {exc}"
        ) from exc
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


def _memmap_npz_member(payload_path: str, zi: "zipfile.ZipInfo",
                       mode: str) -> "np.ndarray | None":
    """Memory-map one STORED ``.npy`` member in place inside an npz file.

    ``np.savez`` stores members uncompressed, so the member's bytes *are*
    a complete ``.npy`` file at a computable offset: local zip header
    (whose filename/extra lengths may differ from the central directory's
    — it must be re-read, not inferred) followed by the npy header,
    followed by raw array data this maps directly.  Returns ``None``
    when the member cannot be mapped (unexpected layout, exotic npy
    version) — the caller then falls back to an in-RAM read.
    """
    try:
        with open(payload_path, "rb") as fh:
            fh.seek(zi.header_offset)
            local = fh.read(30)
            if len(local) != 30 or local[:4] != b"PK\x03\x04":
                return None
            fn_len = int.from_bytes(local[26:28], "little")
            extra_len = int.from_bytes(local[28:30], "little")
            fh.seek(zi.header_offset + 30 + fn_len + extra_len)
            version = np.lib.format.read_magic(fh)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
            else:
                return None
            if dtype.hasobject:
                return None
            offset = fh.tell()
        return np.memmap(payload_path, dtype=dtype, mode=mode,
                         offset=offset, shape=shape,
                         order="F" if fortran else "C")
    except (OSError, ValueError):
        return None


def _load_payload_mapped(path: str, payload_path: str, threshold: int,
                         mode: str) -> "dict[str, np.ndarray]":
    """Load an extracted ``payload.npz``, memory-mapping large members.

    STORED members of at least ``threshold`` bytes are mapped in place;
    everything else (small arrays, deflated members, unmappable layouts)
    is read into RAM through the normal validated ``np.load`` path.
    """
    arrays: "dict[str, np.ndarray]" = {}
    try:
        with zipfile.ZipFile(payload_path) as zf:
            infos = zf.infolist()
        with np.load(payload_path, allow_pickle=False) as npz:
            for zi in infos:
                name = zi.filename
                key = name[:-4] if name.endswith(".npy") else name
                arr = None
                if (zi.compress_type == zipfile.ZIP_STORED
                        and zi.file_size >= threshold):
                    arr = _memmap_npz_member(payload_path, zi, mode)
                arrays[key] = arr if arr is not None else npz[key]
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotError(
            f"cannot read snapshot payload of {path!r}: {exc}"
        ) from exc
    return arrays


def read_snapshot(path: str,
                  max_bytes: "int | None" = None,
                  mmap_dir: "str | None" = None,
                  mmap_threshold: int = DEFAULT_MMAP_THRESHOLD,
                  mmap_mode: str = "r") -> "tuple[dict, dict]":
    """Read a snapshot file back into ``(manifest, state)``.

    Parameters
    ----------
    path:
        Snapshot file written by :func:`write_snapshot`.
    max_bytes:
        Cap on the *total* decompressed size of the snapshot's members,
        enforced on the bytes actually streamed out (a zip bomb fails
        here, not in the allocator).  ``None`` resolves the
        ``REPRO_SNAPSHOT_MAX_BYTES`` environment variable, defaulting to
        1 GiB.
    mmap_dir:
        Out-of-core restore: when set, the array payload is streamed to
        ``<mmap_dir>/<basename>.payload.npz`` (same budget enforcement,
        one 1 MiB chunk in RAM at a time) and large uncompressed arrays
        are **memory-mapped** from that file instead of loaded — restore
        RAM stays O(small arrays) no matter how big the state is.  The
        extracted file must outlive the returned arrays; the caller owns
        its cleanup.  ``None`` (the default) is the classic fully
        in-RAM read.
    mmap_threshold:
        Minimum member size in bytes to map rather than load (default
        1 MiB); smaller/deflated/unmappable members are read into RAM.
    mmap_mode:
        ``numpy.memmap`` mode for mapped arrays: ``"r"`` (read-only
        pages, the default) or ``"c"`` (copy-on-write — for state a
        backend mutates in place; written pages are copied lazily, the
        file is never modified).

    Raises
    ------
    SnapshotError
        When the file is missing/corrupted, carries an unknown
        ``format`` version, holds member names with path separators or
        ``..`` components (zip-slip), or decompresses past the budget.
    """
    if mmap_mode not in ("r", "c"):
        raise SnapshotError(
            f"mmap_mode must be 'r' or 'c', got {mmap_mode!r}"
        )
    zf, budget = _open_validated(path, max_bytes)
    payload_path = None
    with zf:
        try:
            raw_manifest = _read_member(path, zf, MANIFEST_MEMBER, budget)
            if mmap_dir is None:
                payload = _read_member(
                    path, zf, PAYLOAD_MEMBER, budget - len(raw_manifest)
                )
            else:
                os.makedirs(mmap_dir, exist_ok=True)
                payload_path = os.path.join(
                    mmap_dir, f"{os.path.basename(path)}.payload.npz"
                )
                _extract_member(
                    path, zf, PAYLOAD_MEMBER, budget - len(raw_manifest),
                    payload_path,
                )
        except KeyError as exc:
            raise SnapshotError(
                f"cannot read snapshot {path!r}: {exc}"
            ) from exc
    manifest = _parse_manifest(path, raw_manifest)
    if payload_path is not None:
        arrays = _load_payload_mapped(
            path, payload_path, int(mmap_threshold), mmap_mode
        )
    else:
        try:
            with np.load(io.BytesIO(payload), allow_pickle=False) as npz:
                arrays = {name: npz[name] for name in npz.files}
        except Exception as exc:
            raise SnapshotError(
                f"cannot read snapshot payload of {path!r}: {exc}"
            ) from exc
    state = _merge_state(manifest.get("state", {}), arrays)
    return manifest, state
