"""The on-disk snapshot container: one zip with a JSON manifest and an npz payload.

A snapshot file is a plain zip archive holding exactly two members:

``manifest.json``
    Human-readable provenance — format version, library version, backend
    name, the full :meth:`~repro.api.ProblemSpec.as_dict` of the spec,
    session options, update/wall-time accounting, and the JSON-typed part
    of the backend state (``state`` subtree).  Auditable with nothing but
    ``unzip -p snapshot manifest.json``.
``payload.npz``
    Every array-typed leaf of the backend state, stored under its
    ``/``-joined path in the state tree (standard ``np.savez`` container;
    loaded with ``allow_pickle=False``, so a snapshot can never execute
    code on load).

Backend ``snapshot()`` methods return one nested dict of string keys whose
leaves are either JSON-serializable scalars/lists or ``np.ndarray``s;
:func:`write_snapshot` splits that tree across the two members and
:func:`read_snapshot` reassembles it bit for bit.  Writes are atomic
(temp file + rename), so a crash mid-checkpoint never leaves a truncated
snapshot behind.

Versioning policy: ``format`` is bumped whenever the container layout or
any backend's state tree changes incompatibly; readers reject snapshots
whose version they do not know with a :class:`SnapshotError` instead of
guessing (see ``docs/persistence.md``).
"""

from __future__ import annotations

import io
import json
import os
import zipfile

import numpy as np

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "MANIFEST_MEMBER",
    "PAYLOAD_MEMBER",
    "SnapshotError",
    "write_snapshot",
    "read_snapshot",
]

#: Current container/state format version (see module docstring).
SNAPSHOT_FORMAT_VERSION = 1

#: Zip member holding the JSON manifest.
MANIFEST_MEMBER = "manifest.json"

#: Zip member holding the npz array payload.
PAYLOAD_MEMBER = "payload.npz"

_SEP = "/"


class SnapshotError(RuntimeError):
    """A snapshot cannot be written, read, or applied.

    Raised for unreadable/corrupted files, unknown format versions,
    backend/spec mismatches at load time, and state trees that do not
    fit the container (non-string keys, unserializable leaves).
    """


def _split_state(state: dict, prefix: str, json_tree: dict, arrays: dict) -> None:
    """Recursively split ``state`` into JSON leaves and npz arrays."""
    for key, value in state.items():
        if not isinstance(key, str) or not key:
            raise SnapshotError(
                f"state keys must be non-empty strings, got {key!r}"
            )
        if _SEP in key:
            raise SnapshotError(f"state key {key!r} must not contain {_SEP!r}")
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            sub: dict = {}
            json_tree[key] = sub
            _split_state(value, path + _SEP, sub, arrays)
        elif isinstance(value, np.ndarray):
            if value.dtype.hasobject:
                # np.savez would pickle it and allow_pickle=False on read
                # would then reject the file forever — fail at write time
                raise SnapshotError(
                    f"state leaf {path!r} is an object-dtype array; only "
                    "plain numeric/bool/bytes dtypes are portable"
                )
            arrays[path] = value
        elif isinstance(value, np.generic):
            json_tree[key] = value.item()
        elif isinstance(value, (bool, int, float, str)) or value is None:
            json_tree[key] = value
        elif isinstance(value, (list, tuple)):
            json_tree[key] = list(value)
        else:
            raise SnapshotError(
                f"state leaf {path!r} has unsupported type "
                f"{type(value).__name__}; use arrays, scalars, strings, "
                "lists or nested dicts"
            )


def _merge_state(json_tree: dict, arrays: "dict[str, np.ndarray]") -> dict:
    """Reassemble the state tree from its JSON part and the npz arrays."""
    state = json.loads(json.dumps(json_tree))  # deep copy, JSON types only
    for path, arr in arrays.items():
        parts = path.split(_SEP)
        node = state
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if not isinstance(node, dict):
                raise SnapshotError(
                    f"array path {path!r} collides with a JSON leaf"
                )
        node[parts[-1]] = arr
    return state


def write_snapshot(path: str, manifest: dict, state: dict) -> str:
    """Write a snapshot file atomically.

    Parameters
    ----------
    path:
        Destination file (parent directories are created).
    manifest:
        JSON-serializable provenance record; ``format`` and the split
        ``state``/``arrays`` fields are filled in here.
    state:
        The backend state tree (nested dicts of arrays / JSON leaves).

    Returns
    -------
    str
        ``path``, for chaining.
    """
    json_tree: dict = {}
    arrays: "dict[str, np.ndarray]" = {}
    _split_state(state, "", json_tree, arrays)
    doc = dict(manifest)
    doc.setdefault("format", SNAPSHOT_FORMAT_VERSION)
    doc["state"] = json_tree
    doc["arrays"] = sorted(arrays)
    try:
        manifest_bytes = json.dumps(doc, indent=2, sort_keys=True).encode()
    except (TypeError, ValueError) as exc:
        raise SnapshotError(f"manifest is not JSON-serializable: {exc}") from exc
    payload = io.BytesIO()
    np.savez(payload, **arrays)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with zipfile.ZipFile(tmp, "w", zipfile.ZIP_DEFLATED) as zf:
            zf.writestr(MANIFEST_MEMBER, manifest_bytes)
            zf.writestr(PAYLOAD_MEMBER, payload.getvalue())
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):  # pragma: no cover - crash-path cleanup
            os.remove(tmp)
    return path


def read_snapshot(path: str) -> "tuple[dict, dict]":
    """Read a snapshot file back into ``(manifest, state)``.

    Raises
    ------
    SnapshotError
        When the file is missing/corrupted or carries an unknown
        ``format`` version.
    """
    try:
        with zipfile.ZipFile(path, "r") as zf:
            manifest = json.loads(zf.read(MANIFEST_MEMBER).decode())
            payload = zf.read(PAYLOAD_MEMBER)
    except (OSError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        raise SnapshotError(f"cannot read snapshot {path!r}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise SnapshotError(f"snapshot {path!r} manifest is not a JSON object")
    fmt = manifest.get("format")
    if fmt != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot {path!r} has format version {fmt!r}; this library "
            f"reads version {SNAPSHOT_FORMAT_VERSION}"
        )
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as npz:
            arrays = {name: npz[name] for name in npz.files}
    except Exception as exc:
        raise SnapshotError(
            f"cannot read snapshot payload of {path!r}: {exc}"
        ) from exc
    state = _merge_state(manifest.get("state", {}), arrays)
    return manifest, state
