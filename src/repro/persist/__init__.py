"""``repro.persist`` — durable session state for every backend.

The ROADMAP's production framing needs sessions that survive process
death: a streaming service must not replay an unbounded stream after a
crash, and a killed evaluation sweep should resume mid-stream rather
than at whole-cell granularity.  This package provides the two halves:

* the **snapshot protocol** — every registered backend implements
  ``snapshot() -> dict`` / ``restore(state)`` over a nested dict of
  arrays and JSON scalars (:class:`Snapshottable`), with restore-then-
  continue guaranteed bit-identical to the uninterrupted run (enforced
  by ``tests/test_persist.py`` for all registered backends);
* the **container format** (:mod:`repro.persist.format`) — a versioned
  single-file zip holding a human-readable ``manifest.json`` (spec,
  backend name, format version, update count) plus a ``payload.npz``
  of the array state.

The user-facing surface is :meth:`repro.api.KCenterSession.save` /
:meth:`~repro.api.KCenterSession.load`; the scenario matrix builds its
per-cell checkpoints (``--checkpoint-dir``) on the same primitives.
See ``docs/persistence.md`` for the format and versioning policy.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .format import (
    DEFAULT_MAX_DECOMPRESSED_BYTES,
    DEFAULT_MMAP_THRESHOLD,
    MANIFEST_MEMBER,
    PAYLOAD_MEMBER,
    SNAPSHOT_FORMAT_VERSION,
    SnapshotError,
    read_manifest,
    read_snapshot,
    write_snapshot,
)

__all__ = [
    "SNAPSHOT_FORMAT_VERSION",
    "DEFAULT_MAX_DECOMPRESSED_BYTES",
    "DEFAULT_MMAP_THRESHOLD",
    "MANIFEST_MEMBER",
    "PAYLOAD_MEMBER",
    "SnapshotError",
    "Snapshottable",
    "read_manifest",
    "read_snapshot",
    "write_snapshot",
    "supports_snapshot",
]


@runtime_checkable
class Snapshottable(Protocol):
    """Structural protocol for checkpointable structures.

    ``snapshot()`` returns one nested dict of string keys whose leaves
    are ``np.ndarray``s or JSON-serializable scalars/lists — everything
    needed so that ``restore(state)`` on a freshly constructed twin
    (same spec/options, hence same derived randomness) continues the
    stream bit-identically to the uninterrupted original.
    """

    def snapshot(self) -> dict:
        """Capture the full mutable state as a portable tree."""
        ...  # pragma: no cover - protocol

    def restore(self, state: dict) -> None:
        """Apply a previously captured state tree to this instance."""
        ...  # pragma: no cover - protocol


def supports_snapshot(backend) -> bool:
    """Whether a backend instance or class implements the snapshot protocol.

    Base-class placeholder methods that merely raise are marked with an
    ``unsupported`` attribute and do not count.
    """
    snap = getattr(backend, "snapshot", None)
    rest = getattr(backend, "restore", None)
    if not callable(snap) or not callable(rest):
        return False
    return not (getattr(snap, "unsupported", False)
                or getattr(rest, "unsupported", False))
