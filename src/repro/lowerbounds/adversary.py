"""Adversary harness: executable lower bounds.

A lower bound cannot be "run" directly, so we make its *mechanism*
executable: the adversary feeds a maintainer the paper's prefix, inspects
the maintainer's coreset for a dropped point, plays the corresponding
continuation, and measures whether the coreset now provably violates the
``(1 +- eps)`` guarantee (using the constructions' certified radius
claims, evaluated numerically on the actual coreset).

A *maintainer* is any object with ``insert(point)`` and
``coreset() -> WeightedPointSet``;
:class:`ExactMaintainer` (stores everything — the only way to survive, per
the bounds) and any capacity-limited streaming structure (e.g.
:class:`~repro.streaming.insertion_only.InsertionOnlyCoreset` with a small
``size_cap``) plug in directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.points import WeightedPointSet
from ..core.radius import coverage_radius
from ..core.solver import brute_force_opt
from .insertion_only import Lemma12Instance, Lemma15Instance

__all__ = [
    "ExactMaintainer",
    "DroppingMaintainer",
    "AdversaryReport",
    "find_dropped_point",
    "attack_lemma12",
    "attack_lemma15",
]


class ExactMaintainer:
    """Stores every inserted point verbatim (the Omega-storage survivor)."""

    def __init__(self, dim: int):
        self._pts: "list[np.ndarray]" = []
        self.dim = dim

    def insert(self, p) -> None:
        self._pts.append(np.asarray(p, dtype=float).reshape(-1))

    @property
    def size(self) -> int:
        return len(self._pts)

    def coreset(self) -> WeightedPointSet:
        if not self._pts:
            return WeightedPointSet.empty(self.dim)
        return WeightedPointSet.from_points(np.asarray(self._pts)).merged()


class DroppingMaintainer:
    """Failure-injection maintainer: behaves like :class:`ExactMaintainer`
    except that it silently discards points matching ``drop`` (coordinates,
    rounded).  Models any algorithm whose storage budget forces it to
    forget a specific point — the hypothesis of every proof-by-
    contradiction in §4-§6."""

    def __init__(self, dim: int, drop, decimals: int = 9):
        self._inner = ExactMaintainer(dim)
        drop = np.atleast_2d(np.asarray(drop, dtype=float))
        self._drop = {tuple(np.round(p, decimals)) for p in drop}
        self._decimals = decimals
        self.dropped_count = 0

    def insert(self, p) -> None:
        key = tuple(np.round(np.asarray(p, dtype=float).reshape(-1), self._decimals))
        if key in self._drop:
            self.dropped_count += 1
            return
        self._inner.insert(p)

    @property
    def size(self) -> int:
        return self._inner.size

    def coreset(self) -> WeightedPointSet:
        return self._inner.coreset()


@dataclass(frozen=True)
class AdversaryReport:
    """Outcome of an adversary run.

    Attributes
    ----------
    survived:
        True when the maintainer stored every required point (no attack
        possible) — it then necessarily paid the Omega storage.
    storage:
        The maintainer's coreset size at attack time.
    required:
        The construction's required storage (the Omega(.) quantity).
    dropped:
        The attacked point ``p*`` (None when survived).
    opt_full_lb:
        Certified lower bound on ``opt_{k,z}`` of the true point set after
        the continuation.
    opt_coreset_ub:
        Certified upper bound on ``opt_{k,z}`` of the maintainer's coreset
        after the continuation (numerically evaluated witness centers).
    violated:
        True iff ``(1-eps) * opt_full_lb > opt_coreset_ub`` — the coreset
        provably fails Definition 1.
    """

    survived: bool
    storage: int
    required: int
    dropped: "np.ndarray | None"
    opt_full_lb: float
    opt_coreset_ub: float
    violated: bool
    details: str = ""


def find_dropped_point(
    coreset: WeightedPointSet, required: np.ndarray, decimals: int = 9
) -> "np.ndarray | None":
    """First point of ``required`` whose coordinates do not appear in the
    coreset (the "not explicitly stored" ``p*`` of the proofs)."""
    stored = {tuple(np.round(p, decimals)) for p in coreset.points}
    for q in np.atleast_2d(required):
        if tuple(np.round(q, decimals)) not in stored:
            return np.asarray(q, dtype=float)
    return None


def attack_lemma12(maintainer, inst: Lemma12Instance) -> AdversaryReport:
    """Run the §4.1 adversary against ``maintainer``.

    Inserts ``P(t)``; if some cluster point is missing from the coreset,
    plays the cross gadget (two copies of each point, as in the paper) and
    measures the violation: the true optimum is at least ``(h+r)/2``
    (Claim 13) while the coreset admits a ``k``-center solution of radius
    at most ``r`` via the witness centers (Claim 14), and
    ``r < (1-eps)(h+r)/2`` (Lemma 41).
    """
    for p in inst.prefix_points():
        maintainer.insert(p)
    cs = maintainer.coreset()
    p_star = find_dropped_point(cs, inst.cluster_points)
    if p_star is None:
        return AdversaryReport(
            survived=True, storage=len(cs), required=inst.required_storage,
            dropped=None, opt_full_lb=float("nan"), opt_coreset_ub=float("nan"),
            violated=False,
            details="maintainer stored all cluster points (paid the Omega bound)",
        )
    gadget = inst.cross_gadget(p_star)
    for q in gadget:
        maintainer.insert(q)
        maintainer.insert(q)  # weight 2, as two coincident copies
    cs2 = maintainer.coreset()
    centers = inst.witness_centers(p_star)
    # the coreset's optimum is at most the radius these k centers achieve
    opt_cs_ub = coverage_radius(cs2, centers, inst.z)
    opt_full_lb = inst.claim13_lower_bound()
    violated = (1.0 - inst.eps) * opt_full_lb > opt_cs_ub + 1e-9
    return AdversaryReport(
        survived=False, storage=len(cs), required=inst.required_storage,
        dropped=p_star, opt_full_lb=opt_full_lb, opt_coreset_ub=float(opt_cs_ub),
        violated=violated,
        details=(
            f"claim14 bound r={inst.claim14_upper_bound():.6g}, witness-centre "
            f"radius {opt_cs_ub:.6g}, (1-eps)*lb={(1-inst.eps)*opt_full_lb:.6g}"
        ),
    )


def attack_lemma15(maintainer, inst: Lemma15Instance) -> AdversaryReport:
    """Run the §4.2 (Omega(z), weight-restricted) adversary.

    After the continuation point arrives, the true optimum is exactly
    ``1/2`` while a coreset missing any ``p_i`` admits radius 0 (the proof
    of Lemma 15; numerically realized with the exact solver when the
    coreset is small, else via its own best ``k`` centers with outliers).
    """
    for p in inst.prefix_points():
        maintainer.insert(p)
    cs = maintainer.coreset()
    p_star = find_dropped_point(cs, inst.prefix_points())
    if p_star is None:
        return AdversaryReport(
            survived=True, storage=len(cs), required=inst.required_storage,
            dropped=None, opt_full_lb=float("nan"), opt_coreset_ub=float("nan"),
            violated=False,
            details="maintainer stored all k+z points (paid the Omega bound)",
        )
    maintainer.insert(inst.continuation_point())
    cs2 = maintainer.coreset()
    if len(cs2) <= 16:
        opt_cs_ub = brute_force_opt(cs2, inst.k, inst.z, max_points=16).radius
    else:
        # more stored points than k+z is impossible here (the maintainer
        # dropped p_star and the stream has k+z+1 points), but guard anyway
        opt_cs_ub = brute_force_opt(cs2, inst.k, inst.z, max_points=len(cs2)).radius
    opt_full = inst.opt_after_continuation()
    # The paper's claim is opt(P*) == 0 exactly while opt(P) == 1/2.
    violated = opt_cs_ub <= 1e-9 < opt_full
    return AdversaryReport(
        survived=False, storage=len(cs), required=inst.required_storage,
        dropped=p_star, opt_full_lb=opt_full, opt_coreset_ub=float(opt_cs_ub),
        violated=violated,
        details=f"coreset optimum {opt_cs_ub:.6g} vs true optimum {opt_full}",
    )
