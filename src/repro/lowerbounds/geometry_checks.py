"""Numeric verification of the appendix geometry (Lemmas 37-41, Figure 8).

The lower-bound proofs rest on a handful of concrete geometric
inequalities.  These helpers evaluate each one exactly so the test-suite
(and experiment E15) can sweep them over the admissible parameter ranges:

* :func:`lemma41_gap` — ``r < (1-eps)(r+h)/2`` for
  ``lambda = 1/(4 d eps)``, ``h = d(lambda+2)/2``,
  ``r = sqrt(h^2 - 2h + d)``;
* :func:`claim38_check` — the ``2d`` balls of radius ``r`` centred at
  ``p* +- h e_j`` cover the cluster grid minus ``p*`` together with the
  cross gadget;
* :func:`claim39_radius` — ``opt(P(t')) = (h+r)/2`` is achieved by the
  shifted centre ``c'`` (Figure 8's red ball).
"""

from __future__ import annotations

from itertools import product

import numpy as np

from .insertion_only import lemma12_parameters

__all__ = ["lemma41_gap", "claim38_check", "claim39_radius"]


def lemma41_gap(d: int, eps: float) -> float:
    """The (positive, per Lemma 41) slack ``(1-eps)(r+h)/2 - r``."""
    _, h, r = lemma12_parameters(d, eps)
    return (1.0 - eps) * (r + h) / 2.0 - r


def claim38_check(d: int, eps: float) -> "tuple[bool, float]":
    """Verify Claim 38 exhaustively on one cluster: every grid point
    ``q != p*`` and every gadget point is within ``r`` of its designated
    cross centre.  Returns ``(ok, worst_margin)`` with
    ``worst_margin = r - max distance`` (non-negative iff ok).

    ``p*`` is taken as the grid's lexicographic middle, the worst case for
    the covering (any choice must work; tests sweep others).
    """
    lam, h, r = lemma12_parameters(d, eps)
    grid = np.array(list(product(range(lam + 1), repeat=d)), dtype=float)
    p_star = np.full(d, lam // 2, dtype=float)
    centers = []
    for j in range(d):
        for sign in (+1.0, -1.0):
            c = p_star.copy()
            c[j] += sign * h
            centers.append(c)
    centers = np.asarray(centers)
    worst = -np.inf
    for q in grid:
        if np.allclose(q, p_star):
            continue
        dists = np.linalg.norm(centers - q, axis=1)
        worst = max(worst, float(dists.min()))
    # gadget points p* +- (h+r) e_j are at distance exactly r from their centre
    worst = max(worst, r)
    return worst <= r + 1e-9, float(r - worst)


def claim39_radius(d: int, eps: float) -> "tuple[float, float]":
    """Claim 39: the ball ``b(c', (h+r)/2)`` with
    ``c' = p* - ((h+r)/2) e_1`` contains both ``p*`` and everything the
    ball ``b(c^-_1, r)`` contained.

    Returns ``(containment_slack, cover_radius)`` where
    ``containment_slack = (h+r)/2 - (r + dist(c', c^-_1)) >= 0`` certifies
    ``b(c^-_1, r) subset b(c', (h+r)/2)`` via the triangle inequality, and
    ``cover_radius = (h+r)/2``.
    """
    _, h, r = lemma12_parameters(d, eps)
    dist_centres = abs((h + r) / 2.0 - h)  # |c'_1 - c^-_1| along axis 1
    slack = (h + r) / 2.0 - (r + dist_centres)
    return float(slack), (h + r) / 2.0
