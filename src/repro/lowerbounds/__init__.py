"""Executable lower bounds: the paper's constructions (§4.1, §4.2, §5.2,
§6) as instance generators, the appendix geometry as numeric checks, and
an adversary harness that certifies violations against any maintainer."""

from .adversary import (
    AdversaryReport,
    DroppingMaintainer,
    ExactMaintainer,
    attack_lemma12,
    attack_lemma15,
    find_dropped_point,
)
from .dynamic import Theorem28Instance
from .geometry_checks import claim38_check, claim39_radius, lemma41_gap
from .insertion_only import Lemma12Instance, Lemma15Instance, lemma12_parameters
from .sliding_window import Theorem30Instance, theorem30_parameters

__all__ = [
    "AdversaryReport",
    "DroppingMaintainer",
    "ExactMaintainer",
    "Lemma12Instance",
    "Lemma15Instance",
    "Theorem28Instance",
    "Theorem30Instance",
    "attack_lemma12",
    "attack_lemma15",
    "claim38_check",
    "claim39_radius",
    "find_dropped_point",
    "lemma12_parameters",
    "lemma41_gap",
    "theorem30_parameters",
]
