"""The sliding-window lower-bound construction (§6, Theorem 30, Figures 6-7).

The paper's final result: any deterministic ``(1+-eps)``-approximation in
the sliding-window model (in the expiration-time lower-bound framework of
De Berg-Monemizadeh-Zhong) must store Omega((kz/eps^d) log sigma)
expiration times — matching the DBMZ algorithm and answering their open
question negatively.

Construction (under ``L_inf``): ``k-2d+1`` clusters, each of ``g =
(1/2)log sigma - 1`` scales; scale ``j`` holds ``s = lambda^d -
((lambda+1)/2)^d`` subgroups of ``z+1`` points each (``lambda = 1/(8
eps)`` odd); subgroups sit in the odd cells of a ``(2 lambda - 1)^d`` grid
of side ``2^j zeta`` (``zeta = floor(z^{1/d})``) minus the recursive
octant.  Claim 31's mechanism: if the expiration time of a stored point
``p*`` is forgotten, the adversary inserts the ``2d`` flanking sets
``P+-_alpha`` (each ``z+1`` points at distance ``2^{j*} zeta (2 lambda)``)
and re-inserts the rest of ``p*``'s subgroup; the optimal radius then
drops by a factor ``(2 lambda - 1)/(2 lambda) = 1 - 4 eps`` exactly when
``p*`` expires, so an algorithm that cannot react at that instant errs by
more than ``1 +- eps``.

:meth:`Theorem30Instance.claim31_windows` returns the two window contents
(just before / just after the expiration) so the drop can be verified with
an exact offline solver — experiment E14.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from math import floor

import numpy as np

from ..core.metrics import ChebyshevMetric
from ..core.points import WeightedPointSet

__all__ = ["theorem30_parameters", "Theorem30Instance"]


def theorem30_parameters(d: int, eps: float, z: int) -> "tuple[int, int, int]":
    """Constants ``(lambda, s, zeta)``: ``lambda = 1/(8 eps)`` odd integer,
    ``s = lambda^d - ((lambda+1)/2)^d`` subgroups per scale,
    ``zeta = floor(z^(1/d))``."""
    if not 0 < eps <= 1.0 / 24.0:
        raise ValueError("Theorem 30 requires 0 < eps <= 1/24")
    lam = 1.0 / (8.0 * eps)
    if abs(lam - round(lam)) > 1e-9 or int(round(lam)) % 2 == 0:
        raise ValueError(f"lambda = 1/(8 eps) = {lam} must be an odd integer")
    lam = int(round(lam))
    s = lam**d - ((lam + 1) // 2) ** d
    zeta = max(1, int(floor(z ** (1.0 / d) + 1e-9)))
    return lam, s, zeta


def _odd_cells_minus_octant(lam: int, d: int) -> "list[tuple[int, ...]]":
    """Odd cells of the ``(2 lambda - 1)^d`` grid, excluding the
    lexicographically smallest octant ``{pi : all pi_i <= lambda}`` —
    the set ``Gamma_j`` of the paper (``|Gamma_j| = s``)."""
    cells = []
    for pi in product(range(1, 2 * lam, 2), repeat=d):
        if all(c <= lam for c in pi):
            continue
        cells.append(pi)
    return cells


@dataclass(frozen=True)
class Theorem30Instance:
    """The Figures 6-7 construction.

    ``subgroup_points[(i, j, l)]`` holds the ``z+1`` points of subgroup
    ``G^{j,l}_i`` (cluster ``i`` in ``0..k-2d``, scale ``j`` in ``1..g``,
    subgroup ``l`` in ``0..s-1``).  Distances are ``L_inf``.
    """

    k: int
    z: int
    d: int
    eps: float
    g: int
    lam: int
    s: int
    zeta: int
    subgroup_points: dict

    @staticmethod
    def build(k: int, z: int, d: int, eps: float, g: int) -> "Theorem30Instance":
        """Construct with ``g`` scales (``g = (1/2) log sigma - 1`` in the
        paper; pass it directly)."""
        if k < 2 * d:
            raise ValueError("Theorem 30 requires k >= 2d")
        lam, s, zeta = theorem30_parameters(d, eps, z)
        cells = _odd_cells_minus_octant(lam, d)
        assert len(cells) == s, (len(cells), s)
        # z+1 lexicographically smallest points of the (zeta+1)^d grid
        grid_pts = sorted(product(range(zeta + 1), repeat=d))[: z + 1]
        cluster_gap = 4.0 * (2**g) * zeta * (2 * lam)
        subgroups: dict = {}
        for i in range(k - 2 * d + 1):
            origin = np.zeros(d)
            origin[0] = i * cluster_gap
            for j in range(1, g + 1):
                cell_side = float(2**j) * zeta
                for l, cell in enumerate(cells):
                    cell_lo = origin + (np.asarray(cell, dtype=float) - 1.0) * cell_side
                    pts = cell_lo + np.asarray(grid_pts, dtype=float) * float(2**j)
                    subgroups[(i, j, l)] = pts
        return Theorem30Instance(
            k=k, z=z, d=d, eps=eps, g=g, lam=lam, s=s, zeta=zeta,
            subgroup_points=subgroups,
        )

    # -- views ---------------------------------------------------------------

    @property
    def num_clusters(self) -> int:
        return self.k - 2 * self.d + 1

    @property
    def required_expirations(self) -> int:
        """Claim 31's count: one stored expiration per point of every
        subgroup with ``j > 1 or l > 0`` — Omega(k z g / eps^d) =
        Omega((kz/eps^d) log sigma)."""
        per_cluster = (self.g * self.s - 1) * (self.z + 1)
        return self.num_clusters * per_cluster

    def arrival_order(self) -> "list[np.ndarray]":
        """The paper's arrival order: subgroup ``G^{j,l}_i`` precedes
        ``G^{j',l'}_{i'}`` iff ``j > j'``, or (``j == j'`` and ``l > l'``),
        or (``j == j'``, ``l == l'`` and ``i > i'``)."""
        keys = sorted(
            self.subgroup_points,
            key=lambda key: (-key[1], -key[2], -key[0]),
        )
        out: "list[np.ndarray]" = []
        for key in keys:
            out.extend(self.subgroup_points[key])
        return out

    # -- Claim 31 ----------------------------------------------------------------

    def flank_sets(self, i_star: int, j_star: int, l_star: int) -> np.ndarray:
        """The ``2d`` flanking sets ``P+-_alpha`` of Claim 31: for each
        axis ``alpha``, ``z+1`` points at ``L_inf`` distance
        ``2^{j*} zeta (2 lambda)`` from the attacked subgroup, spread along
        the other axes across the subgroup's extent."""
        G = self.subgroup_points[(i_star, j_star, l_star)]
        xmin, xmax = G.min(axis=0), G.max(axis=0)
        offset = float(2**j_star) * self.zeta * (2 * self.lam)
        pts = []
        for alpha in range(self.d):
            for sign in (+1.0, -1.0):
                for iota in range(self.z + 1):
                    q = np.empty(self.d)
                    for beta in range(self.d):
                        if beta == alpha:
                            q[beta] = (xmax if sign > 0 else xmin)[beta] + sign * offset
                        else:
                            span = xmax[beta] - xmin[beta]
                            q[beta] = xmin[beta] + (
                                iota * span / self.z if self.z > 0 else 0.0
                            )
                    pts.append(q)
        return np.asarray(pts)

    def claim31_windows(
        self, i_star: int, j_star: int, l_star: int, p_star_idx: int = 0
    ) -> "tuple[WeightedPointSet, WeightedPointSet, float]":
        """Window contents just before / just after ``p*`` expires, plus
        the guaranteed ratio bound ``1 - 4 eps``.

        Both windows contain: the live remainder of every cluster (at
        least ``z+1`` points from scales ``< j*`` or subgroups ``< l*``),
        the attacked subgroup (minus ``p*`` in the *after* window), and
        the ``2d`` flanking sets.  Per Claim 31,
        ``opt(after) / opt(before) <= (2 lambda - 1)/(2 lambda)``.
        """
        key = (i_star, j_star, l_star)
        if key not in self.subgroup_points:
            raise KeyError(f"no subgroup {key}")
        if j_star == 1 and l_star == 0:
            raise ValueError("Claim 31 requires j* > 1 or l* > 0")
        G = self.subgroup_points[key]
        if not 0 <= p_star_idx < len(G):
            raise ValueError("p_star_idx out of range")
        flanks = self.flank_sets(i_star, j_star, l_star)

        # live remainder per cluster: the not-yet-expired older content —
        # per the arrival order, everything arriving *after* G^{j*,l*},
        # i.e. scales j < j* and same-scale subgroups l < l*.
        rest = []
        for (i, j, l), pts in self.subgroup_points.items():
            if j < j_star or (j == j_star and l < l_star):
                rest.append(pts)
        rest_arr = np.concatenate(rest) if rest else np.zeros((0, self.d))

        before = np.concatenate([rest_arr, G, flanks])
        after = np.concatenate(
            [rest_arr, np.delete(G, p_star_idx, axis=0), flanks]
        )
        ratio_bound = (2.0 * self.lam - 1.0) / (2.0 * self.lam)
        return (
            WeightedPointSet.from_points(before),
            WeightedPointSet.from_points(after),
            ratio_bound,
        )

    @staticmethod
    def metric() -> ChebyshevMetric:
        """The construction's metric (``L_inf``)."""
        return ChebyshevMetric()
