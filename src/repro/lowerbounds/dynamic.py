"""The fully dynamic lower-bound construction (§5.2, Theorem 28, Figure 5).

Each of the ``k-2d+1`` clusters now consists of ``g = (1/2) log Delta - 2``
*groups* ``G^1_i .. G^g_i``: group ``m`` is the Lemma-12 grid scaled by
``2^m`` with its lexicographically smallest octant removed; the omitted
octant recursively hosts the smaller groups.  Every non-outlier point must
be stored (Claim 29), giving Omega((k/eps^d) log Delta); adding Lemma 15's
Omega(z) yields the paper's Omega((k/eps^d) log Delta + z).

The adversary's continuation at scale ``m*``: delete every group at scale
``>= m*`` except the attacked point's own scale-``m*`` content, then play
the Lemma-12 cross gadget scaled by ``2^{m*}``; the radius claims scale
accordingly (``opt >= 2^{m*}(h+r)/2`` versus coreset ``<= 2^{m*} r``).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from math import log2

import numpy as np

from ..core.points import WeightedPointSet
from .insertion_only import lemma12_parameters

__all__ = ["Theorem28Instance"]


def _group_offsets(lam: int, d: int) -> np.ndarray:
    """Grid offsets of one group: ``{0..lam}^d`` minus the lexicographically
    smallest octant ``{0..lam/2}^d`` (``lam/2`` must be an integer)."""
    if lam % 2 != 0:
        raise ValueError("Theorem 28 requires lambda/2 integral (even lambda)")
    half = lam // 2
    offs = [
        x for x in product(range(lam + 1), repeat=d) if not all(xi <= half for xi in x)
    ]
    return np.asarray(offs, dtype=float)


@dataclass(frozen=True)
class Theorem28Instance:
    """The Figure 5 construction.

    Attributes
    ----------
    group_points:
        ``group_points[(i, m)]`` is the array of points of group ``G^m_i``
        (cluster ``i`` in ``0..k-2d``, scale ``m`` in ``1..g``).
    outliers:
        The ``z`` outliers.
    g:
        Number of scales per cluster, ``(1/2) log2(Delta) - 2`` .
    """

    k: int
    z: int
    d: int
    eps: float
    delta_universe: int
    g: int
    lam: int
    h: float
    r: float
    group_points: dict
    outliers: np.ndarray

    @staticmethod
    def build(k: int, z: int, d: int, eps: float, delta_universe: int) -> "Theorem28Instance":
        """Construct the instance (requires ``k >= 2d`` and even
        ``lambda``)."""
        if k < 2 * d:
            raise ValueError("Theorem 28 requires k >= 2d")
        lam, h, r = lemma12_parameters(d, eps)
        g = max(1, int(0.5 * log2(delta_universe)) - 2)
        offs = _group_offsets(lam, d)
        spacing = float(2 ** (g + 2)) * (h + r)
        groups: dict = {}
        num_clusters = k - 2 * d + 1
        for i in range(num_clusters):
            origin = np.zeros(d)
            origin[0] = i * (spacing + lam * 2**g)
            for m in range(1, g + 1):
                pts = offs * float(2**m)
                pts = pts + origin
                groups[(i, m)] = pts
        outliers = np.zeros((z, d))
        for j in range(z):
            outliers[j, 0] = -spacing * (j + 1)
        return Theorem28Instance(
            k=k, z=z, d=d, eps=eps, delta_universe=delta_universe,
            g=g, lam=lam, h=h, r=r, group_points=groups, outliers=outliers,
        )

    # -- views ---------------------------------------------------------------

    @property
    def num_clusters(self) -> int:
        return self.k - 2 * self.d + 1

    @property
    def points_per_group(self) -> int:
        """``(lambda+1)^d - (lambda/2+1)^d = Omega(1/eps^d)``."""
        return (self.lam + 1) ** self.d - (self.lam // 2 + 1) ** self.d

    @property
    def required_storage(self) -> int:
        """Claim 29's quantity: every non-outlier point must be stored —
        ``Omega((k/eps^d) log Delta)`` of them."""
        return self.num_clusters * self.g * self.points_per_group

    def all_points(self) -> np.ndarray:
        """``P(t)``: all groups plus the outliers."""
        parts = [self.outliers]
        for key in sorted(self.group_points):
            parts.append(self.group_points[key])
        return np.concatenate(parts)

    def prefix_set(self) -> WeightedPointSet:
        return WeightedPointSet.from_points(self.all_points())

    def insert_events(self) -> "list[tuple[np.ndarray, int]]":
        """The insertion phase of the dynamic stream."""
        return [(p, +1) for p in self.all_points()]

    # -- the adversarial continuation ---------------------------------------

    def deletion_events(self, m_star: int, keep: "tuple[int, int] | None" = None):
        """Delete every group at scale ``>= m_star`` (optionally keeping
        one ``(cluster, scale)`` group — the attacked point's own group in
        Claim 29's continuation)."""
        events = []
        for (i, m), pts in sorted(self.group_points.items()):
            if m >= m_star and (keep is None or (i, m) != keep):
                events.extend((p, -1) for p in pts)
        return events

    def cross_gadget(self, p_star: np.ndarray, m_star: int) -> np.ndarray:
        """The ``2d`` points ``p* +- 2^{m*}(h+r) e_j``, each weight 2."""
        p_star = np.asarray(p_star, dtype=float).reshape(-1)
        scale = float(2**m_star)
        pts = []
        for j in range(self.d):
            for sign in (+1.0, -1.0):
                q = p_star.copy()
                q[j] += sign * scale * (self.h + self.r)
                pts.append(q)
        return np.asarray(pts)

    def claim_lower_bound(self, m_star: int) -> float:
        """``opt_{k,z}(P(t')) >= 2^{m*} (h+r)/2``."""
        return float(2**m_star) * (self.h + self.r) / 2.0

    def claim_upper_bound(self, m_star: int) -> float:
        """Coreset optimum ``<= 2^{m*} r`` when ``p*`` is missing."""
        return float(2**m_star) * self.r

    def witness_centers(self, p_star: np.ndarray, m_star: int, i_star: int) -> np.ndarray:
        """The ``k`` centers realizing the upper-bound claim at scale
        ``m*``: the scaled cross centers around ``p*`` plus one center per
        other cluster."""
        p_star = np.asarray(p_star, dtype=float).reshape(-1)
        scale = float(2**m_star)
        centers = []
        for j in range(self.d):
            for sign in (+1.0, -1.0):
                c = p_star.copy()
                c[j] += sign * scale * self.h
                centers.append(c)
        for i in range(self.num_clusters):
            if i == i_star:
                continue
            if m_star <= 1:
                continue  # other clusters were fully deleted; no center needed
            # centre of the surviving (scales < m_star) nest of cluster i,
            # whose bounding box is that of its largest surviving group
            lo = self.group_points[(i, m_star - 1)].min(axis=0)
            hi = self.group_points[(i, m_star - 1)].max(axis=0)
            centers.append((lo + hi) / 2.0)
        return np.asarray(centers)
