"""The insertion-only lower-bound constructions (§4.1, §4.2, Figures 2-4).

Two instances:

* :class:`Lemma12Instance` — the Omega(k/eps^d) construction: ``k-2d+1``
  integer-grid clusters of ``(lambda+1)^d`` points each
  (``lambda = 1/(4 d eps)``) plus ``z`` far-away outliers.  If a coreset
  fails to store any cluster point ``p*``, the adversary inserts the
  cross gadget ``P+ / P-`` around ``p*`` (Figure 2(ii)); Claims 13/14 then
  force the coreset to underestimate the optimal radius by more than the
  allowed ``(1-eps)`` factor.
* :class:`Lemma15Instance` — the Omega(z) construction: ``k+z`` unit-
  spaced collinear points; dropping any of them lets the coreset report
  radius 0 after one more arrival while the true optimum is 1/2.

Both expose exactly the paper's coordinates so the adversary harness
(:mod:`repro.lowerbounds.adversary`) can certify violations numerically.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from math import sqrt

import numpy as np

from ..core.points import WeightedPointSet

__all__ = ["lemma12_parameters", "Lemma12Instance", "Lemma15Instance"]


def lemma12_parameters(d: int, eps: float) -> "tuple[int, float, float]":
    """The construction constants ``(lambda, h, r)``.

    ``lambda = 1/(4 d eps)`` must be a positive integer (the paper's
    "without loss of generality"); ``h = d(lambda+2)/2``;
    ``r = sqrt(h^2 - 2h + d)``.
    """
    if d < 1:
        raise ValueError("d must be >= 1")
    if not 0 < eps <= 1.0 / (8 * d):
        raise ValueError(f"Lemma 12 requires 0 < eps <= 1/(8d) = {1.0/(8*d):.6g}")
    lam = 1.0 / (4.0 * d * eps)
    if abs(lam - round(lam)) > 1e-9:
        raise ValueError(f"lambda = 1/(4 d eps) = {lam} must be an integer")
    lam = int(round(lam))
    h = d * (lam + 2) / 2.0
    r = sqrt(h * h - 2.0 * h + d)
    return lam, h, r


@dataclass(frozen=True)
class Lemma12Instance:
    """The Figure 2 construction for given ``(k, z, d, eps)``.

    Attributes
    ----------
    cluster_points:
        Array of all cluster points, ordered cluster by cluster.
    cluster_index:
        For each cluster point, which cluster ``C_i`` it belongs to.
    outliers:
        The ``z`` outlier points ``o_1..o_z``.
    lam, h, r:
        Construction constants (see :func:`lemma12_parameters`).
    """

    k: int
    z: int
    d: int
    eps: float
    cluster_points: np.ndarray
    cluster_index: np.ndarray
    outliers: np.ndarray
    lam: int
    h: float
    r: float

    @staticmethod
    def build(k: int, z: int, d: int, eps: float) -> "Lemma12Instance":
        """Construct the instance (requires ``k >= 2d``)."""
        if k < 2 * d:
            raise ValueError("Lemma 12 requires k >= 2d")
        lam, h, r = lemma12_parameters(d, eps)
        num_clusters = k - 2 * d + 1
        base = np.array(list(product(range(lam + 1), repeat=d)), dtype=float)
        shift = lam + 4.0 * (h + r)
        clusters = []
        index = []
        for i in range(num_clusters):
            c = base.copy()
            c[:, 0] += i * shift
            clusters.append(c)
            index.extend([i] * len(base))
        outliers = np.zeros((z, d))
        for i in range(z):
            outliers[i, 0] = -4.0 * (h + r) * (i + 1)
        return Lemma12Instance(
            k=k, z=z, d=d, eps=eps,
            cluster_points=np.concatenate(clusters) if clusters else np.zeros((0, d)),
            cluster_index=np.asarray(index, dtype=int),
            outliers=outliers,
            lam=lam, h=h, r=r,
        )

    # -- stream views ------------------------------------------------------

    def prefix_points(self) -> np.ndarray:
        """``P(t)``: outliers first, then the clusters (any fixed order
        works; the lower bound is order-independent)."""
        return np.concatenate([self.outliers, self.cluster_points])

    def prefix_set(self) -> WeightedPointSet:
        """``P(t)`` as a weighted point set."""
        return WeightedPointSet.from_points(self.prefix_points())

    @property
    def points_per_cluster(self) -> int:
        """``(lambda+1)^d = Omega(1/eps^d)``."""
        return (self.lam + 1) ** self.d

    @property
    def required_storage(self) -> int:
        """The Omega(k/eps^d) quantity: every cluster point must be
        stored."""
        return len(self.cluster_points)

    # -- the adversarial continuation ---------------------------------------

    def cross_gadget(self, p_star: np.ndarray) -> np.ndarray:
        """``P+ and P-``: the ``2d`` points ``p* +- (h+r) e_j``
        (Figure 2(ii)); each is inserted with weight 2 (two copies)."""
        p_star = np.asarray(p_star, dtype=float).reshape(-1)
        if p_star.shape != (self.d,):
            raise ValueError("p_star has wrong dimension")
        pts = []
        for j in range(self.d):
            for sign in (+1.0, -1.0):
                q = p_star.copy()
                q[j] += sign * (self.h + self.r)
                pts.append(q)
        return np.asarray(pts)

    def claim13_lower_bound(self) -> float:
        """Claim 13: ``opt_{k,z}(P(t')) >= (h+r)/2``."""
        return (self.h + self.r) / 2.0

    def claim14_upper_bound(self) -> float:
        """Claim 14 / Lemma 37: ``opt_{k,z}(P*(t')) <= r`` when ``p*`` is
        missing from the coreset."""
        return self.r

    def witness_centers(self, p_star: np.ndarray) -> np.ndarray:
        """The ``k`` centers realizing Claim 14: ``c+-_j = p* +- h e_j``
        (2d of them) plus one arbitrary point per cluster other than
        ``p*``'s (``k - 2d`` of them)."""
        p_star = np.asarray(p_star, dtype=float).reshape(-1)
        centers = []
        for j in range(self.d):
            for sign in (+1.0, -1.0):
                c = p_star.copy()
                c[j] += sign * self.h
                centers.append(c)
        # identify p*'s cluster by the x-shift
        shift = self.lam + 4.0 * (self.h + self.r)
        i_star = int(round(p_star[0] // shift)) if shift > 0 else 0
        i_star = max(0, min(self.k - 2 * self.d, i_star))
        for i in range(self.k - 2 * self.d + 1):
            if i == i_star:
                continue
            # cluster centre: middle of the grid
            c = np.full(self.d, self.lam / 2.0)
            c[0] += i * shift
            centers.append(c)
        return np.asarray(centers)


@dataclass(frozen=True)
class Lemma15Instance:
    """The Omega(z) line construction (Figure 4): points ``p_i = i`` for
    ``i = 1..k+z`` in ``R^1``, continuation ``p_{k+z+1} = k+z+1``."""

    k: int
    z: int

    def prefix_points(self) -> np.ndarray:
        """``P(t)``: the first ``k+z`` unit-spaced points."""
        return np.arange(1, self.k + self.z + 1, dtype=float).reshape(-1, 1)

    def prefix_set(self) -> WeightedPointSet:
        return WeightedPointSet.from_points(self.prefix_points())

    def continuation_point(self) -> np.ndarray:
        """``p_{k+z+1}``."""
        return np.array([float(self.k + self.z + 1)])

    def opt_after_continuation(self) -> float:
        """``opt_{k,z}(P(t+1)) = 1/2`` (k+z+1 unit-spaced points, k
        centers, z outliers: some ball must contain two points)."""
        return 0.5

    @property
    def required_storage(self) -> int:
        """Every one of the ``k+z`` points must be stored."""
        return self.k + self.z
