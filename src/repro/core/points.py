"""Weighted point sets.

The paper's weighted k-center problem assigns each point a positive
integer weight; the total *weight* (not count) of outliers must be at most
``z``.  :class:`WeightedPointSet` is the container every algorithm in this
library consumes and produces.

Design notes (per the HPC guides): points live in a single contiguous
``(n, d)`` float64 array and weights in an ``(n,)`` int64 array, so all
distance work is vectorized and no per-point Python objects exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["WeightedPointSet"]


@dataclass(frozen=True)
class WeightedPointSet:
    """An immutable weighted point set in ``R^d``.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    weights:
        Integer array of shape ``(n,)`` with strictly positive entries.
        If omitted, unit weights are used.
    """

    points: np.ndarray
    weights: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        pts = np.asarray(self.points, dtype=float)
        if pts.ndim == 1:
            pts = pts.reshape(-1, 1)
        if pts.ndim != 2:
            raise ValueError(f"points must be 2-d, got shape {pts.shape}")
        object.__setattr__(self, "points", pts)
        if self.weights is None:
            w = np.ones(len(pts), dtype=np.int64)
        else:
            w = np.asarray(self.weights, dtype=np.int64)
        if w.shape != (len(pts),):
            raise ValueError(
                f"weights shape {w.shape} does not match {len(pts)} points"
            )
        if len(w) and w.min() <= 0:
            raise ValueError("weights must be strictly positive integers")
        object.__setattr__(self, "weights", w)
        self.points.setflags(write=False)
        self.weights.setflags(write=False)

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def from_points(points: np.ndarray) -> "WeightedPointSet":
        """Unit-weight point set."""
        return WeightedPointSet(np.asarray(points, dtype=float))

    @staticmethod
    def empty(dim: int) -> "WeightedPointSet":
        """The empty point set in ``R^dim``."""
        return WeightedPointSet(np.zeros((0, dim)), np.zeros(0, dtype=np.int64))

    @staticmethod
    def concat(sets: "list[WeightedPointSet]") -> "WeightedPointSet":
        """Disjoint union (weights are kept per-row; duplicate coordinates
        are *not* merged — use :meth:`merged` for that)."""
        sets = [s for s in sets if len(s)]
        if not sets:
            raise ValueError("cannot concat zero non-empty sets; use empty(dim)")
        dim = sets[0].dim
        for s in sets:
            if s.dim != dim:
                raise ValueError("dimension mismatch in concat")
        return WeightedPointSet(
            np.concatenate([s.points for s in sets], axis=0),
            np.concatenate([s.weights for s in sets]),
        )

    # -- basic accessors -------------------------------------------------------

    @property
    def dim(self) -> int:
        """Ambient dimension ``d``."""
        return self.points.shape[1]

    def __len__(self) -> int:
        return len(self.points)

    @property
    def total_weight(self) -> int:
        """Sum of all point weights (``w(P)`` in the paper)."""
        return int(self.weights.sum())

    # -- derived sets ----------------------------------------------------------

    def subset(self, index) -> "WeightedPointSet":
        """Sub-point-set selected by a boolean mask or integer index array."""
        index = np.asarray(index)
        return WeightedPointSet(self.points[index], self.weights[index])

    def with_weights(self, weights: np.ndarray) -> "WeightedPointSet":
        """Same coordinates, different weights."""
        return WeightedPointSet(self.points.copy(), weights)

    def merged(self, decimals: int = 12) -> "WeightedPointSet":
        """Merge coincident points (up to rounding) by summing weights.

        Useful when re-inserting points in adversarial streams; the paper
        notes that a weight-2 point is equivalent to two coincident unit
        points.
        """
        if len(self) == 0:
            return self
        key = np.round(self.points, decimals)
        uniq, inverse = np.unique(key, axis=0, return_inverse=True)
        w = np.zeros(len(uniq), dtype=np.int64)
        np.add.at(w, inverse, self.weights)
        # keep one original representative coordinate per group
        first = np.full(len(uniq), -1, dtype=np.int64)
        for i, g in enumerate(inverse):
            if first[g] < 0:
                first[g] = i
        return WeightedPointSet(self.points[first], w)

    # -- persistence -------------------------------------------------------

    def save(self, path) -> None:
        """Serialize to a compressed ``.npz`` file (coreset hand-off
        between processes/machines, experiment artifacts)."""
        np.savez_compressed(path, points=self.points, weights=self.weights)

    @staticmethod
    def load(path) -> "WeightedPointSet":
        """Load a point set previously written by :meth:`save`."""
        with np.load(path) as data:
            return WeightedPointSet(data["points"], data["weights"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WeightedPointSet(n={len(self)}, dim={self.dim}, "
            f"total_weight={self.total_weight})"
        )
