"""Coverage-radius evaluation.

Given candidate centers, these utilities compute the smallest radius that
covers all but (weight) ``z`` of a weighted point set — the objective value
of the k-center problem with outliers — plus related helpers used by both
the solvers and the coreset verifiers.
"""

from __future__ import annotations

import numpy as np

from .metrics import Metric, get_metric
from .points import WeightedPointSet

__all__ = [
    "nearest_center_distances",
    "coverage_radius",
    "uncovered_weight",
    "min_pairwise_distance",
]


def nearest_center_distances(
    wps: WeightedPointSet, centers: np.ndarray, metric: "Metric | str | None" = None
) -> np.ndarray:
    """Distance from each point of ``wps`` to its nearest center.

    ``centers`` is an array of shape ``(k, d)``.  Returns shape ``(n,)``.
    """
    metric = get_metric(metric)
    centers = np.atleast_2d(np.asarray(centers, dtype=float))
    if len(wps) == 0:
        return np.zeros(0)
    if len(centers) == 0:
        return np.full(len(wps), np.inf)
    return metric.pairwise(wps.points, centers).min(axis=1)


def coverage_radius(
    wps: WeightedPointSet,
    centers: np.ndarray,
    z: int,
    metric: "Metric | str | None" = None,
) -> float:
    """Smallest ``r`` such that the weight of points farther than ``r``
    from every center is at most ``z``.

    This is the objective value achieved by ``centers`` for the k-center
    problem with ``z`` (weighted) outliers.  Returns ``0.0`` when the total
    weight is at most ``z`` (everything may be declared an outlier) and
    ``inf`` when there are no centers but uncovered weight exceeds ``z``.
    """
    if wps.total_weight <= z:
        return 0.0
    d = nearest_center_distances(wps, centers, metric)
    if np.isinf(d).any():
        return float("inf")
    order = np.argsort(d)[::-1]  # farthest first
    cum = np.cumsum(wps.weights[order])
    # The farthest points of total weight <= z may be dropped; the radius is
    # the distance of the first point whose cumulative weight exceeds z.
    idx = int(np.searchsorted(cum, z, side="right"))
    # cum[idx] > z is guaranteed because total weight > z.
    return float(d[order[idx]])


def uncovered_weight(
    wps: WeightedPointSet,
    centers: np.ndarray,
    r: float,
    metric: "Metric | str | None" = None,
) -> float:
    """Exact total weight of points strictly farther than ``r`` from every
    center (with a tiny relative tolerance so that points *on* a ball
    boundary count as covered).

    Returns the weight as an exact float: the pre-1.5 code truncated via
    ``int(...)``, so a fractional uncovered weight of ``z + 0.9`` passed a
    ``<= z`` budget test — the same bug class the greedy feasibility test
    had before PR 3.  Callers comparing against a budget ``z`` should use
    a tolerance compare (``weight <= z + 1e-9 * max(1, z)``), which is
    identical to the old behaviour on integer weights (any violation is
    at least 1) and correct on fractional ones.
    """
    if len(wps) == 0:
        return 0.0
    d = nearest_center_distances(wps, centers, metric)
    tol = 1e-9 * max(1.0, abs(r))
    return float(np.asarray(wps.weights, dtype=float)[d > r + tol].sum())


def min_pairwise_distance(
    points: np.ndarray, metric: "Metric | str | None" = None
) -> float:
    """Minimum distance between two distinct points of ``points``.

    Used by Algorithm 3 (line 6) to initialize the radius estimate.  Raises
    if fewer than two points are given.  Coincident points yield ``0.0``.
    """
    metric = get_metric(metric)
    points = np.atleast_2d(np.asarray(points, dtype=float))
    n = len(points)
    if n < 2:
        raise ValueError("need at least two points")
    best = np.inf
    # chunked to keep memory bounded on large inputs
    chunk = 1024
    for i0 in range(0, n, chunk):
        a = points[i0 : i0 + chunk]
        dm = metric.pairwise(a, points)
        # mask the diagonal of the global matrix
        for r in range(len(a)):
            dm[r, i0 + r] = np.inf
        best = min(best, float(dm.min()))
    return best
