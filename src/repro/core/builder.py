"""Composable coreset pipelines with automatic error accounting.

The MPC algorithms are all instances of two operations on mini-ball
coverings: *merge* (disjoint union — Lemma 4) and *reduce* (re-compress
with ``MBCConstruction`` — Lemma 5, composing errors as
``eps + gamma + eps*gamma``).  :class:`CoresetBuilder` packages them as a
first-class API so applications can assemble their own merge-reduce trees
(hierarchical aggregation, partial aggregation at the edge, ...) while the
library tracks the accumulated error guarantee.

Example — a manual two-level tree::

    leaves = [CoresetBuilder.from_points(P_i, k, z_i).reduce(eps) for ...]
    root = CoresetBuilder.merge_all(leaves).reduce(eps)
    root.eps          # composed guarantee, e.g. 3*eps for two levels
    root.coreset      # the weighted coreset

The budget discipline of Lemma 4 (per-piece outlier budgets ``z_i`` with
``opt_{k,z_i}(P_i) <= opt_{k,z}(P)``) is the caller's responsibility, as
in the paper; the MPC algorithms show the two standard ways to satisfy it
(outlier guessing, and whp random-distribution budgets).
"""

from __future__ import annotations

from dataclasses import dataclass

from .mbc import compose_errors, mbc_construction
from .metrics import get_metric
from .points import WeightedPointSet

__all__ = ["CoresetBuilder"]


@dataclass(frozen=True)
class CoresetBuilder:
    """An immutable coreset-pipeline node.

    Attributes
    ----------
    coreset:
        The current weighted point set.
    k, z:
        Problem parameters the guarantees refer to.
    eps:
        Accumulated error: the node is an ``(eps, k, z)``-mini-ball
        covering of the union of the original inputs (0 for raw leaves).
    """

    coreset: WeightedPointSet
    k: int
    z: int
    eps: float = 0.0
    metric: object = None

    @staticmethod
    def from_points(
        wps: WeightedPointSet, k: int, z: int, metric=None
    ) -> "CoresetBuilder":
        """A leaf node: the raw points are a ``(0,k,z)``-MBC of themselves."""
        return CoresetBuilder(wps, int(k), int(z), 0.0, get_metric(metric))

    def reduce(self, eps: float, z_budget: "int | None" = None) -> "CoresetBuilder":
        """Apply ``MBCConstruction`` (Lemma 5): the result is an
        ``(eps + self.eps + eps*self.eps, k, z)``-MBC of the original
        input.  ``z_budget`` overrides the outlier budget of the local
        construction (Algorithm 2 passes its guessed ``2^j - 1``)."""
        zb = self.z if z_budget is None else int(z_budget)
        mbc = mbc_construction(self.coreset, self.k, zb, eps, self.metric)
        return CoresetBuilder(
            mbc.coreset, self.k, self.z, compose_errors(self.eps, eps), self.metric
        )

    def merge(self, other: "CoresetBuilder") -> "CoresetBuilder":
        """Disjoint union (Lemma 4): error is the max of the pieces."""
        if (self.k, self.z) != (other.k, other.z):
            raise ValueError("cannot merge builders with different (k, z)")
        if len(self.coreset) == 0:
            union = other.coreset
        elif len(other.coreset) == 0:
            union = self.coreset
        else:
            union = WeightedPointSet.concat([self.coreset, other.coreset])
        return CoresetBuilder(
            union, self.k, self.z, max(self.eps, other.eps), self.metric
        )

    @staticmethod
    def merge_all(nodes: "list[CoresetBuilder]") -> "CoresetBuilder":
        """Fold :meth:`merge` over a list."""
        if not nodes:
            raise ValueError("merge_all needs at least one node")
        acc = nodes[0]
        for node in nodes[1:]:
            acc = acc.merge(node)
        return acc

    @property
    def size(self) -> int:
        """Current coreset size."""
        return len(self.coreset)

    @property
    def total_weight(self) -> int:
        """Preserved input weight."""
        return self.coreset.total_weight
