"""Extracting clusters and outliers from a solution.

The solvers return centers and a radius; applications usually want the
induced partition: which points belong to which ball, and which are the
outliers.  :func:`extract_clusters` computes the canonical assignment
(nearest center, with the weight-heaviest far points declared outliers up
to the budget ``z`` — exactly the rule :func:`repro.core.coverage_radius`
prices).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import Metric, get_metric
from .points import WeightedPointSet

__all__ = ["ClusterAssignment", "extract_clusters"]


@dataclass(frozen=True)
class ClusterAssignment:
    """A clustering of a weighted point set.

    Attributes
    ----------
    labels:
        For each point, the index of its center, or ``-1`` for outliers.
    outlier_mask:
        Boolean mask of the declared outliers.
    radius:
        Maximum distance of a non-outlier point to its center.
    outlier_weight:
        Total weight declared outlier (at most the requested ``z``).
    """

    labels: np.ndarray
    outlier_mask: np.ndarray
    radius: float
    outlier_weight: int

    def cluster_indices(self, j: int) -> np.ndarray:
        """Indices of the points assigned to center ``j``."""
        return np.flatnonzero(self.labels == j)


def extract_clusters(
    wps: WeightedPointSet,
    centers: np.ndarray,
    z: int,
    metric: "Metric | str | None" = None,
) -> ClusterAssignment:
    """Assign points to nearest centers, declaring the farthest points
    (up to weight ``z``) outliers.

    Ties on equal distance are broken toward keeping points covered, so
    the reported radius equals
    :func:`repro.core.coverage_radius` of the same centers.
    """
    metric = get_metric(metric)
    n = len(wps)
    centers = np.atleast_2d(np.asarray(centers, dtype=float))
    if n == 0:
        return ClusterAssignment(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=bool), 0.0, 0
        )
    if len(centers) == 0:
        return ClusterAssignment(
            np.full(n, -1, dtype=np.int64), np.ones(n, dtype=bool), 0.0,
            wps.total_weight,
        )
    D = metric.pairwise(wps.points, centers)
    nearest = D.argmin(axis=1).astype(np.int64)
    dmin = D.min(axis=1)
    # drop the farthest points while the budget allows (heaviest-distance
    # first; a partial weight at the cut distance stays covered)
    order = np.argsort(dmin)[::-1]
    outlier = np.zeros(n, dtype=bool)
    spent = 0
    for idx in order:
        w = int(wps.weights[idx])
        if spent + w > z:
            break
        outlier[idx] = True
        spent += w
    labels = nearest.copy()
    labels[outlier] = -1
    covered = ~outlier
    radius = float(dmin[covered].max()) if covered.any() else 0.0
    return ClusterAssignment(labels, outlier, radius, spent)
