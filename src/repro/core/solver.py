"""Solvers for k-center with outliers.

Three tiers:

* :func:`brute_force_opt` — exact optimum over center sets drawn from the
  input points (the discrete k-center problem).  Exponential; used by the
  test-suite and the experiment harness to *certify* coreset guarantees on
  small instances.
* :func:`solve_kcenter_outliers` — practical solver: Charikar et al.
  3-approximation (or brute force on request).
* :func:`solve_via_coreset` — the paper's intended usage pattern: build a
  coreset with any of the library's algorithms, then run an offline solver
  on the coreset.  Running the exact solver on the coreset yields a
  ``(1+eps)``-approximation; running the 3-approximation yields a
  ``3(1+eps)``-approximation (Table 1 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from .greedy import charikar_greedy
from .metrics import Metric, get_metric
from .points import WeightedPointSet
from .radius import coverage_radius

__all__ = [
    "Solution",
    "brute_force_opt",
    "continuous_opt_1d",
    "solve_kcenter_outliers",
    "solve_via_coreset",
]


@dataclass(frozen=True)
class Solution:
    """A k-center-with-outliers solution.

    Attributes
    ----------
    centers:
        ``(k', d)`` array of ball centers (``k' <= k``).
    radius:
        Radius such that all but weight ``z`` of the input lies within
        ``radius`` of the centers.
    method:
        ``"brute"`` (exact discrete optimum) or ``"greedy3"``.
    """

    centers: np.ndarray
    radius: float
    method: str


def brute_force_opt(
    wps: WeightedPointSet,
    k: int,
    z: int,
    metric: "Metric | str | None" = None,
    max_points: int = 16,
) -> Solution:
    """Exact discrete optimum by exhaustive search over center subsets.

    Centers are restricted to input points (standard for general metric
    spaces, where arbitrary centers are not meaningful).  Guarded by
    ``max_points`` because the cost is ``C(n, k)`` coverage evaluations.
    """
    metric = get_metric(metric)
    n = len(wps)
    if n > max_points:
        raise ValueError(
            f"brute force limited to {max_points} points, got {n}; "
            "raise max_points explicitly if you really mean it"
        )
    if n == 0 or wps.total_weight <= z:
        return Solution(np.zeros((0, wps.dim)), 0.0, "brute")
    k = min(k, n)
    # Deduplicate coordinates: coincident points never help as extra centers.
    uniq = np.unique(wps.points, axis=0)
    best_r, best_c = float("inf"), None
    for combo in combinations(range(len(uniq)), min(k, len(uniq))):
        centers = uniq[list(combo)]
        r = coverage_radius(wps, centers, z, metric)
        if r < best_r:
            best_r, best_c = r, centers
    return Solution(best_c, float(best_r), "brute")


def continuous_opt_1d(wps: WeightedPointSet, k: int, z: int) -> float:
    """Exact k-center with outliers on the line with *arbitrary* (not
    input-restricted) centers.

    The lower-bound proofs (§4, §6) reason about the continuous optimum;
    on the line it is computable exactly: the answer is half the length of
    the longest interval among ``k`` intervals covering all but weight
    ``z``.  Decision for radius ``r`` by dynamic programming over the
    sorted points (start an interval or declare outliers), binary-searched
    over the ``O(n^2)`` candidate radii ``(x_j - x_i)/2``.
    """
    if wps.dim != 1:
        raise ValueError("continuous_opt_1d requires 1-d input")
    n = len(wps)
    if n == 0 or wps.total_weight <= z:
        return 0.0
    order = np.argsort(wps.points[:, 0])
    xs = wps.points[order, 0]
    ws = wps.weights[order].astype(np.int64)

    def feasible(r: float) -> bool:
        """Cover all but weight <= z with k intervals of length 2r."""
        span = 2.0 * r + 1e-12 * max(1.0, r)
        # min_out[i][b]: min outlier weight for suffix i.. with b intervals
        # available; iterate b outermost to keep memory O(n)
        INF = float("inf")
        nxt = np.searchsorted(xs, xs + span, side="right")
        prev = np.empty(n + 1)
        # b = 0: all suffix points are outliers
        suffix_w = np.concatenate([np.cumsum(ws[::-1])[::-1], [0]])
        prev[:] = suffix_w
        for _b in range(1, k + 1):
            cur = np.empty(n + 1)
            cur[n] = 0.0
            for i in range(n - 1, -1, -1):
                # point i outlier, or open an interval at x_i
                cur[i] = min(cur[i + 1] + ws[i], prev[nxt[i]])
            prev = cur
        return prev[0] <= z

    # candidate radii: half of pairwise gaps (0 included)
    diffs = np.unique(xs[None, :] - xs[:, None])
    cands = np.unique(np.abs(diffs)) / 2.0
    lo, hi = 0, len(cands) - 1
    best = cands[hi]
    if not feasible(float(cands[hi])):  # pragma: no cover - cannot happen
        raise RuntimeError("max candidate infeasible")
    while lo <= hi:
        mid = (lo + hi) // 2
        if feasible(float(cands[mid])):
            best = cands[mid]
            hi = mid - 1
        else:
            lo = mid + 1
    return float(best)


def solve_kcenter_outliers(
    wps: WeightedPointSet,
    k: int,
    z: int,
    metric: "Metric | str | None" = None,
    method: str = "greedy3",
    prune: "str | None" = None,
    decision_jobs: "int | None" = None,
) -> Solution:
    """Solve k-center with outliers on a (typically small) point set.

    ``method="greedy3"`` runs Charikar et al. (3-approximation);
    ``method="brute"`` runs the exact discrete optimum.  ``prune`` /
    ``decision_jobs`` forward to :func:`repro.core.greedy.charikar_greedy`
    (greedy3 only; brute solves are candidate enumerations).
    """
    metric = get_metric(metric)
    if method == "brute":
        return brute_force_opt(wps, k, z, metric, max_points=len(wps))
    if method != "greedy3":
        raise ValueError(f"unknown method {method!r}")
    res = charikar_greedy(
        wps, k, z, metric,
        prune=prune if prune is not None else "auto",
        decision_jobs=decision_jobs,
    )
    return Solution(wps.points[res.centers_idx], res.radius, "greedy3")


def solve_via_coreset(
    coreset: WeightedPointSet,
    k: int,
    z: int,
    metric: "Metric | str | None" = None,
    method: str = "greedy3",
) -> Solution:
    """Run an offline solver on a coreset (the paper's end-to-end recipe).

    By Definition 1, the radius returned on an ``(eps,k,z)``-coreset is a
    ``(1 +- eps)``-approximation of ``opt_{k,z}`` of the original set when
    ``method="brute"``, and a ``3(1+eps)``-approximation when
    ``method="greedy3"``.
    """
    return solve_kcenter_outliers(coreset, k, z, metric, method=method)
