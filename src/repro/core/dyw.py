"""Ding-Yu-Wang style randomized greedy (the paper's reference [21]).

The paper's dynamic application (§5) runs "a greedy algorithm, say the one
in [21]" on the maintained coreset after every update.  Ding, Yu and Wang
(ESA 2019) show that an extremely simple strategy — repeatedly pick a
random uncovered point and cover a ball around it — yields a bi-criteria
guarantee: radius ``2 * opt`` while declaring at most ``(1+delta) z``
outliers, with success probability controlled by the number of trials.

Implementation: for a radius guess ``g`` (binary-searched over pairwise
candidates), run ``k`` rounds; each round samples a point proportionally
to weight among the uncovered points (a random uncovered point is an
inlier with probability ``>= 1 - z/w(U)``, and an inlier sample's
``2g``-ball covers its whole optimal cluster), covers ``B(q, 2g)``, and
removes it.  The guess is feasible when uncovered weight drops to
``(1+delta) z``.  Multiple trials per guess amplify the success
probability.  The output radius is certified by re-evaluating coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import Metric, get_metric
from .points import WeightedPointSet
from .radius import coverage_radius

__all__ = ["DYWResult", "dyw_greedy"]


@dataclass(frozen=True)
class DYWResult:
    """Output of :func:`dyw_greedy`.

    Attributes
    ----------
    centers_idx:
        Indices of the chosen centers (``<= k``).
    radius:
        Radius at which all but ``outlier_weight`` weight is covered.
    outlier_weight:
        Uncovered weight at ``radius`` — at most ``(1+delta) z`` when the
        search succeeded.
    guess:
        The accepted radius guess (``radius <= 2 * guess``).
    """

    centers_idx: np.ndarray
    radius: float
    outlier_weight: int
    guess: float


def _dyw_decision(
    wps: WeightedPointSet,
    k: int,
    budget: float,
    guess: float,
    metric: Metric,
    rng: np.random.Generator,
    trials: int,
) -> "tuple[bool, list[int]]":
    """Try ``trials`` random greedy runs at radius ``guess``; succeed if
    any leaves uncovered weight at most ``budget``."""
    n = len(wps)
    pts, w = wps.points, wps.weights.astype(float)
    tol = 1e-9 * max(1.0, guess)
    best: "tuple[float, list[int]] | None" = None
    for _ in range(trials):
        uncovered = np.ones(n, dtype=bool)
        centers: "list[int]" = []
        for _ in range(k):
            wu = w * uncovered
            total = wu.sum()
            if total <= budget:
                break
            q = int(rng.choice(n, p=wu / total))
            centers.append(q)
            uncovered &= metric.to_set(pts[q], pts) > 2.0 * guess + tol
        left = float((w * uncovered).sum())
        if best is None or left < best[0]:
            best = (left, centers)
        if left <= budget:
            return True, centers
    return False, best[1] if best else []


def dyw_greedy(
    wps: WeightedPointSet,
    k: int,
    z: int,
    delta: float = 0.5,
    metric: "Metric | str | None" = None,
    rng: "np.random.Generator | None" = None,
    trials: int = 8,
) -> DYWResult:
    """Bi-criteria ``(2 * opt, (1+delta) z)`` randomized greedy.

    Binary-searches the smallest pairwise-distance guess whose randomized
    decision succeeds; the returned radius is the *achieved* coverage
    radius at outlier budget ``(1+delta) z`` (re-evaluated, so the output
    is always a valid certificate regardless of sampling luck).
    """
    metric = get_metric(metric)
    rng = rng or np.random.default_rng()
    n = len(wps)
    budget = (1.0 + delta) * z
    if n == 0 or wps.total_weight <= budget or k >= n:
        idx = np.arange(min(k, n), dtype=int)
        return DYWResult(idx, 0.0, 0, 0.0)
    if k <= 0:
        raise ValueError("k must be positive")

    D = metric.pairwise(wps.points, wps.points)
    cand = np.unique(D)
    cand = cand[cand >= 0]
    lo, hi = 0, len(cand) - 1
    accepted: "tuple[float, list[int]] | None" = None
    while lo <= hi:
        mid = (lo + hi) // 2
        ok, centers = _dyw_decision(
            wps, k, budget, float(cand[mid]), metric, rng, trials
        )
        if ok:
            accepted = (float(cand[mid]), centers)
            hi = mid - 1
        else:
            lo = mid + 1
    if accepted is None:
        # the diameter guess always succeeds with one center covering all
        g = float(cand[-1])
        ok, centers = _dyw_decision(wps, k, budget, g, metric, rng, max(trials, 16))
        accepted = (g, centers if centers else [0])
    guess, centers = accepted
    centers_idx = np.asarray(centers if centers else [0], dtype=int)
    int_budget = int(np.floor(budget))
    radius = coverage_radius(wps, wps.points[centers_idx], int_budget, metric)
    # uncovered weight at the reported radius
    from .radius import uncovered_weight

    out_w = uncovered_weight(wps, wps.points[centers_idx], radius, metric)
    # weights are integral here, but round (not truncate) so a float sum
    # a hair above an integer cannot under-report the outlier count
    return DYWResult(centers_idx, float(radius), int(round(out_w)), guess)
