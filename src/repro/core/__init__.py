"""Core machinery: weighted points, metrics, offline solvers, and the
paper's mini-ball-covering coreset construction (§2)."""

from .assignment import ClusterAssignment, extract_clusters
from .builder import CoresetBuilder
from .coreset import (
    CoresetCheck,
    opt_bounds,
    verify_covering_property,
    verify_expansion_property,
    verify_mbc,
    verify_sandwich,
    verify_weight_property,
)
from .dyw import DYWResult, dyw_greedy
from .greedy import GreedyResult, charikar_greedy, gonzalez
from .mbc import (
    MiniBallCovering,
    compose_errors,
    mbc_construction,
    mbc_size_bound,
    update_coreset,
)
from .metrics import (
    CallableMetric,
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    Metric,
    PrecomputedMetric,
    get_metric,
)
from .points import WeightedPointSet
from .radius import (
    coverage_radius,
    min_pairwise_distance,
    nearest_center_distances,
    uncovered_weight,
)
from .solver import (
    Solution,
    brute_force_opt,
    continuous_opt_1d,
    solve_kcenter_outliers,
    solve_via_coreset,
)

__all__ = [
    "CallableMetric",
    "ChebyshevMetric",
    "ClusterAssignment",
    "CoresetBuilder",
    "CoresetCheck",
    "DYWResult",
    "EuclideanMetric",
    "GreedyResult",
    "ManhattanMetric",
    "Metric",
    "MiniBallCovering",
    "PrecomputedMetric",
    "Solution",
    "WeightedPointSet",
    "brute_force_opt",
    "charikar_greedy",
    "compose_errors",
    "continuous_opt_1d",
    "coverage_radius",
    "dyw_greedy",
    "extract_clusters",
    "get_metric",
    "gonzalez",
    "mbc_construction",
    "mbc_size_bound",
    "min_pairwise_distance",
    "nearest_center_distances",
    "opt_bounds",
    "solve_kcenter_outliers",
    "solve_via_coreset",
    "uncovered_weight",
    "update_coreset",
    "verify_covering_property",
    "verify_expansion_property",
    "verify_mbc",
    "verify_sandwich",
    "verify_weight_property",
]
