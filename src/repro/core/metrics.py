"""Metric-space abstraction.

The paper works in an arbitrary metric space ``(X, dist)`` of doubling
dimension ``d``.  All algorithms in this library only touch the metric
through two vectorized operations:

* :meth:`Metric.pairwise` — the full distance matrix between two point
  arrays, and
* :meth:`Metric.to_set` — distances from a single point to a point array.

Concrete subclasses are provided for the norms the paper uses:
Euclidean (:class:`EuclideanMetric`), Chebyshev / ``L_inf``
(:class:`ChebyshevMetric`, used by the sliding-window lower bound in §6),
and Manhattan (:class:`ManhattanMetric`).  ``R^d`` under any of these has
doubling dimension ``Theta(d)``.

A :class:`CallableMetric` adapter wraps an arbitrary
``dist(p, q) -> float`` for genuinely non-Euclidean doubling spaces; it is
slower (Python loop) and intended for tests and small instances.
"""

from __future__ import annotations

import numpy as np

from ..kernels import pairwise_kernel

__all__ = [
    "Metric",
    "EuclideanMetric",
    "ChebyshevMetric",
    "ManhattanMetric",
    "CallableMetric",
    "PrecomputedMetric",
    "get_metric",
]


class Metric:
    """Abstract metric.  Subclasses must implement :meth:`pairwise`.

    Attributes
    ----------
    name:
        Short identifier (``"euclidean"``, ``"chebyshev"``, ...).
    """

    name: str = "abstract"

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Distance matrix of shape ``(len(a), len(b))``.

        Parameters
        ----------
        a, b:
            Arrays of shape ``(n, d)`` and ``(m, d)``.
        """
        raise NotImplementedError

    def pairwise_block(
        self, a: np.ndarray, b: np.ndarray, dtype=None, workspace=None,
        backend=None,
    ) -> np.ndarray:
        """Distance block in the requested kernel ``dtype``.

        ``dtype=None``/``"float64"`` is the exact reference path
        (identical to :meth:`pairwise`); ``"float32"`` may use a faster,
        lower-precision kernel where one exists.  ``workspace`` is an
        optional :class:`repro.kernels.Workspace` for norm/buffer reuse
        across blocks of one outer computation; ``backend`` selects the
        kernel backend (``"numpy"`` default, ``"numba"`` optional extra)
        where the metric has a dedicated kernel.  The base implementation
        computes exactly and casts, so arbitrary metrics stay correct
        (and ignore ``backend``).
        """
        from ..kernels import resolve_dtype

        D = self.pairwise(a, b)
        dt = resolve_dtype(dtype)
        return D if D.dtype == dt else D.astype(dt)

    def to_set(self, q: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Distances from a single point ``q`` (shape ``(d,)``) to each row
        of ``b`` (shape ``(m, d)``), returned as shape ``(m,)``."""
        q = np.asarray(q, dtype=float)
        if b.size == 0:
            return np.zeros(0)
        return self.pairwise(q[None, :], np.asarray(b, dtype=float))[0]

    def distance(self, p: np.ndarray, q: np.ndarray) -> float:
        """Distance between two single points."""
        return float(self.to_set(np.asarray(p), np.asarray(q, dtype=float)[None, :])[0])

    def doubling_dimension(self, d: int) -> int:
        """Doubling dimension of ``R^d`` under this metric.

        For the norms implemented here the doubling dimension is
        ``Theta(d)``; we return ``d`` itself, which is the convention the
        paper uses (``R^d`` under ``L_inf`` has doubling dimension exactly
        ``d``, see §6).
        """
        return int(d)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class _KernelMetric(Metric):
    """A norm with a dedicated entry in :mod:`repro.kernels`.

    ``pairwise`` routes through the kernel layer's float64 path (SciPy
    ``cdist`` — bit-identical to the pre-kernels implementation);
    ``pairwise_block`` additionally honors ``dtype``/``workspace`` so the
    radius-search stack can opt into the float32 fast kernels.
    """

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return pairwise_kernel(self.name, a, b)

    def pairwise_block(
        self, a: np.ndarray, b: np.ndarray, dtype=None, workspace=None,
        backend=None,
    ) -> np.ndarray:
        return pairwise_kernel(self.name, a, b, dtype=dtype,
                               workspace=workspace, backend=backend)


class EuclideanMetric(_KernelMetric):
    """The ``L_2`` norm on ``R^d``."""

    name = "euclidean"


class ChebyshevMetric(_KernelMetric):
    """The ``L_inf`` norm on ``R^d``.

    Used by the sliding-window lower bound (§6), where the paper notes that
    the doubling dimension of ``R^d`` under ``L_inf`` is exactly ``d``.
    """

    name = "chebyshev"


class ManhattanMetric(_KernelMetric):
    """The ``L_1`` norm on ``R^d``."""

    name = "manhattan"


class CallableMetric(Metric):
    """Adapter wrapping a scalar ``dist(p, q)`` callable.

    Parameters
    ----------
    fn:
        A symmetric, non-negative callable satisfying the triangle
        inequality.
    name:
        Identifier used in reprs and reports.
    doubling:
        Optional override for :meth:`doubling_dimension` (a constant,
        independent of the ambient coordinate count).
    """

    def __init__(self, fn, name: str = "callable", doubling: int | None = None):
        self._fn = fn
        self.name = name
        self._doubling = doubling

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(np.asarray(a, dtype=float))
        b = np.atleast_2d(np.asarray(b, dtype=float))
        out = np.zeros((len(a), len(b)))
        for i in range(len(a)):
            for j in range(len(b)):
                out[i, j] = self._fn(a[i], b[j])
        return out

    def doubling_dimension(self, d: int) -> int:
        if self._doubling is not None:
            return int(self._doubling)
        return super().doubling_dimension(d)


class PrecomputedMetric(Metric):
    """A finite metric space given by a distance matrix.

    This is how the paper's *general* metric spaces of bounded doubling
    dimension (§1) are exercised: "points" are single-coordinate arrays
    holding integer element ids ``0..n-1``, and distances are looked up in
    the (symmetric, non-negative, triangle-inequality-satisfying) matrix
    ``D`` — fully vectorized, unlike :class:`CallableMetric`.

    Parameters
    ----------
    D:
        ``(n, n)`` distance matrix.
    name:
        Identifier for reprs and reports.
    doubling:
        Optional doubling dimension of the space (used by size-bound
        helpers; measure it with
        :func:`repro.workloads.graph.estimate_doubling_dimension` for
        graph metrics).
    validate:
        Check symmetry, zero diagonal and non-negativity up front.
    """

    def __init__(self, D: np.ndarray, name: str = "precomputed",
                 doubling: "int | None" = None, validate: bool = True):
        D = np.asarray(D, dtype=float)
        if D.ndim != 2 or D.shape[0] != D.shape[1]:
            raise ValueError("D must be a square matrix")
        if validate:
            if (D < 0).any():
                raise ValueError("distances must be non-negative")
            if not np.allclose(D, D.T):
                raise ValueError("distance matrix must be symmetric")
            if not np.allclose(np.diag(D), 0.0):
                raise ValueError("diagonal must be zero")
        self.D = D
        self.name = name
        self._doubling = doubling

    @property
    def n_elements(self) -> int:
        """Number of points in the finite space."""
        return len(self.D)

    def _ids(self, a: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(np.asarray(a))
        if a.shape[1] != 1:
            raise ValueError(
                "PrecomputedMetric points are single-column element ids"
            )
        ids = a[:, 0].astype(np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= len(self.D)):
            raise ValueError("element id out of range")
        return ids

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ia, ib = self._ids(a), self._ids(b)
        if ia.size == 0 or ib.size == 0:
            return np.zeros((len(ia), len(ib)))
        return self.D[np.ix_(ia, ib)]

    def doubling_dimension(self, d: int) -> int:
        if self._doubling is not None:
            return int(self._doubling)
        return super().doubling_dimension(d)


_REGISTRY = {
    "euclidean": EuclideanMetric,
    "l2": EuclideanMetric,
    "chebyshev": ChebyshevMetric,
    "linf": ChebyshevMetric,
    "l_inf": ChebyshevMetric,
    "manhattan": ManhattanMetric,
    "l1": ManhattanMetric,
}


def get_metric(metric: "Metric | str | None") -> Metric:
    """Resolve a metric argument.

    Accepts an existing :class:`Metric` instance, a registry name
    (``"euclidean"``, ``"linf"``, ``"l1"``, ...), or ``None`` (defaults to
    Euclidean).
    """
    if metric is None:
        return EuclideanMetric()
    if isinstance(metric, Metric):
        return metric
    key = str(metric).lower()
    if key not in _REGISTRY:
        raise ValueError(f"unknown metric {metric!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[key]()
