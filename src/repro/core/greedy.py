"""Offline k-center algorithms.

Two classic algorithms the paper builds on:

* :func:`gonzalez` — Gonzalez's farthest-point traversal, a 2-approximation
  for k-center *without* outliers.  Used as a cheap certified upper bound
  on ``opt_{k,0} >= opt_{k,z}`` when seeding radius searches.
* :func:`charikar_greedy` — the 3-approximation of Charikar, Khuller, Mount
  and Narasimhan (SODA 2001) for k-center *with* outliers, in the weighted
  setting.  This is the ``Greedy(P, k, z)`` subroutine of the paper:
  every MBC construction starts by calling it to obtain a radius
  ``r in [opt_{k,z}(P), 3 * opt_{k,z}(P)]``.

The decision procedure (``_greedy_disks``) follows Charikar et al.:
for a radius guess ``g``, repeatedly pick the point whose ball ``B(v, g)``
covers the maximum uncovered weight, then mark everything in the expanded
ball ``B(v, 3g)`` covered.  If after ``k`` picks the uncovered weight is at
most ``z``, the guess is feasible; Charikar et al. prove feasibility for
every ``g >= opt_{k,z}(P)``.  The returned radius is ``3 * g*`` for the
smallest feasible guess ``g*``, hence at most ``3 * opt`` (exact-candidate
mode) or ``3 (1+tol) * opt`` (geometric mode for large inputs).

Performance (the kernels refactor): both decision procedures maintain the
candidate gains *incrementally* — one ball-membership matvec when a guess
starts, then per pick only the weight of the newly covered points is
subtracted from the gains of the candidates whose ``g``-ball contains
them.  Because all library weights are integers (exactly representable in
float64), the incremental sums equal the recomputed sums bit for bit, so
results are identical to the pre-refactor code
(:mod:`repro.core._greedy_reference`; proven by
``tests/test_greedy_parity.py``) at a fraction of the work: ``O(n^2)``
per guess instead of ``O(k n^2)``.  Distance blocks come from
:mod:`repro.kernels` via :meth:`Metric.pairwise_block`, honoring the
``dtype`` / ``kernel_chunk`` knobs of :class:`repro.api.ProblemSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels import Workspace, auto_chunk, resolve_dtype
from .metrics import Metric, _KernelMetric, get_metric
from .points import WeightedPointSet
from .radius import coverage_radius, nearest_center_distances

__all__ = ["GreedyResult", "gonzalez", "charikar_greedy"]

#: Above this many points the exact pairwise-candidate search switches to a
#: geometric grid of radius guesses (3(1+tol)-approximation).
PAIRWISE_LIMIT = 2048


@dataclass(frozen=True)
class GreedyResult:
    """Output of :func:`charikar_greedy` / :func:`gonzalez`.

    Attributes
    ----------
    centers_idx:
        Indices into the input point set of the chosen centers
        (``<= k`` of them).
    radius:
        Certified covering radius: all but weight ``z`` of the input lies
        within ``radius`` of the centers, and
        ``radius <= 3 (1+tol) * opt_{k,z}(P)``.
    guess:
        The feasible radius guess ``g*`` (``radius == 3 * guess`` for
        Charikar; equals ``radius`` for Gonzalez).
    uncovered:
        Boolean mask of input points not covered by ``B(c, radius)``
        (weight at most ``z``).
    """

    centers_idx: np.ndarray
    radius: float
    guess: float
    uncovered: np.ndarray

    def centers(self, wps: WeightedPointSet) -> np.ndarray:
        """Coordinates of the chosen centers."""
        return wps.points[self.centers_idx]


def gonzalez(
    wps: WeightedPointSet,
    k: int,
    metric: "Metric | str | None" = None,
    first: int = 0,
) -> GreedyResult:
    """Gonzalez's farthest-point 2-approximation (no outliers).

    Runs in ``O(nk)`` distance evaluations.  ``first`` selects the initial
    center (the approximation guarantee holds for any choice).
    """
    metric = get_metric(metric)
    n = len(wps)
    if n == 0:
        return GreedyResult(np.zeros(0, dtype=int), 0.0, 0.0, np.zeros(0, dtype=bool))
    k = min(k, n)
    centers = [int(first)]
    dmin = metric.to_set(wps.points[first], wps.points)
    while len(centers) < k:
        nxt = int(np.argmax(dmin))
        centers.append(nxt)
        dmin = np.minimum(dmin, metric.to_set(wps.points[nxt], wps.points))
    radius = float(dmin.max()) if n else 0.0
    return GreedyResult(
        np.asarray(centers, dtype=int), radius, radius, np.zeros(n, dtype=bool)
    )


def _gain_dtype(weights: np.ndarray, kernel_dtype) -> type:
    """Accumulator dtype for the candidate gains.

    float32 when the kernel itself is float32, or when gains are *exactly*
    representable there: integer weights whose total stays below 2^24 —
    then every partial sum is an exact float32 integer and the matvecs run
    at half the memory traffic with bit-identical argmax decisions.
    Fractional weights (a float array passed directly) must stay in
    float64: rounding them would move picks.
    """
    if kernel_dtype == np.float32:
        return np.float32
    if np.issubdtype(weights.dtype, np.integer) and float(weights.sum()) < 2.0**24:
        return np.float32
    return np.float64


def _weight_feasible(weights: np.ndarray, uncovered: np.ndarray, z: int) -> bool:
    """Float-safe feasibility: uncovered weight at most ``z``.

    The pre-refactor code truncated via ``int(weights[uncovered].sum())``,
    so fractional uncovered weight ``z + 0.9`` passed as feasible.  Compare
    the float sum against ``z`` with a small relative tolerance instead —
    identical to the old test on integer weights (any violation is >= 1),
    correct on fractional ones (regression-tested).
    """
    rem = float(np.asarray(weights, dtype=float)[uncovered].sum())
    return rem <= z + 1e-9 * max(1.0, float(z))


def _greedy_disks(
    D: np.ndarray,
    weights: np.ndarray,
    k: int,
    z: int,
    guess: float,
    workspace: "Workspace | None" = None,
) -> "tuple[bool, list[int], np.ndarray]":
    """Charikar decision procedure for radius ``guess`` on a precomputed
    distance matrix ``D``, with incrementally maintained gains.

    ``gain[v]`` is the uncovered weight inside ``B(v, guess)``.  It is
    seeded with one matvec and then *updated* per pick — the weight of the
    newly covered points is subtracted from every candidate whose ball
    contains them — instead of the pre-refactor fresh ``O(n^2)`` matvec
    per pick.  Integer weights make the incremental sums exact, so picks
    (and therefore results) are bit-identical to the reference.

    Returns ``(feasible, centers, uncovered_mask)`` where *uncovered* means
    not within ``3 * guess`` of any chosen center.
    """
    n = len(weights)
    tol = 1e-9 * max(1.0, guess)
    uncovered = np.ones(n, dtype=bool)
    centers: list[int] = []
    # comparisons against D stay in D's own dtype; only the gain
    # accumulators may drop to float32 (see _gain_dtype)
    dt = _gain_dtype(weights, D.dtype)
    w = weights.astype(dt)
    ws = workspace if workspace is not None else Workspace()
    # ball membership at g, as the kernel dtype so the matvec hits BLAS
    # without a hidden bool->float promotion copy per pick
    mask = ws.buffer("disks.mask", D.shape, bool)
    np.less_equal(D, guess + tol, out=mask)
    Wg = ws.buffer("disks.Wg", D.shape, dt)
    np.copyto(Wg, mask, casting="unsafe")
    gain = Wg @ w
    limit3 = 3.0 * guess + tol
    for _ in range(min(k, n)):
        if not uncovered.any():
            break
        v = int(np.argmax(gain))
        centers.append(v)
        newly = uncovered & (D[v] <= limit3)
        idx = np.flatnonzero(newly)
        if idx.size:
            uncovered[idx] = False
            if 2 * idx.size > n:
                # a full matvec beats copying most of Wg's columns; the
                # recomputed integer sum equals the incremental one exactly
                gain = Wg @ (w * uncovered)
            else:
                gain -= Wg[:, idx] @ w[idx]
    return _weight_feasible(weights, uncovered, z), centers, uncovered


def _geometric_decision(
    wps: WeightedPointSet,
    metric: Metric,
    k: int,
    z: int,
    guess: float,
    dtype=None,
    kernel_chunk: "int | None" = None,
    workspace: "Workspace | None" = None,
) -> "tuple[bool, list[int], np.ndarray]":
    """Charikar decision without a full distance matrix (chunked).

    One chunked ball-membership pass seeds the gains; each pick then
    subtracts the newly covered weight via an ``n x |newly|`` distance
    block — ``O(n^2)`` distance evaluations per guess in total, versus the
    pre-refactor ``O(k n^2)`` (a fresh full pass per pick).  Used when
    ``n > PAIRWISE_LIMIT``.
    """
    pts = wps.points
    n = len(pts)
    dt = resolve_dtype(dtype)
    gdt = _gain_dtype(wps.weights, dt)
    w = wps.weights.astype(gdt)
    tol = 1e-9 * max(1.0, guess)
    chunk = kernel_chunk if kernel_chunk is not None else auto_chunk(n, dtype=dt)
    ws = workspace if workspace is not None else Workspace()
    uncovered = np.ones(n, dtype=bool)
    centers: list[int] = []
    gain = np.empty(n, dtype=gdt)
    for i0 in range(0, n, chunk):
        block = metric.pairwise_block(
            pts[i0 : i0 + chunk], pts, dtype=dt, workspace=ws
        )
        gain[i0 : i0 + len(block)] = (block <= guess + tol).astype(gdt) @ w
    limit3 = 3.0 * guess + tol
    for _ in range(min(k, n)):
        if not uncovered.any():
            break
        v = int(np.argmax(gain))
        centers.append(v)
        dv = metric.to_set(pts[v], pts)
        idx = np.flatnonzero(uncovered & (dv <= limit3))
        if idx.size:
            uncovered[idx] = False
            sub = pts[idx]
            wi = w[idx]
            for i0 in range(0, n, chunk):
                block = metric.pairwise_block(
                    pts[i0 : i0 + chunk], sub, dtype=dt, workspace=ws
                )
                gain[i0 : i0 + len(block)] -= (block <= guess + tol).astype(gdt) @ wi
    return _weight_feasible(wps.weights, uncovered, z), centers, uncovered


def charikar_greedy(
    wps: WeightedPointSet,
    k: int,
    z: int,
    metric: "Metric | str | None" = None,
    tol: float = 0.05,
    pairwise_limit: int = PAIRWISE_LIMIT,
    dtype=None,
    kernel_chunk: "int | None" = None,
) -> GreedyResult:
    """Weighted 3-approximation for k-center with ``z`` outliers.

    This is ``Greedy(P, k, z)`` of the paper.  The returned
    :attr:`GreedyResult.radius` satisfies

    ``opt_{k,z}(P) <= radius <= 3 (1 + tol') * opt_{k,z}(P)``

    with ``tol' = 0`` when ``len(wps) <= pairwise_limit`` (binary search
    over all pairwise distances) and ``tol' = tol`` otherwise (geometric
    grid of guesses).  The lower inequality holds because the returned
    radius is achieved by ``k`` concrete balls leaving uncovered weight at
    most ``z``, so the optimum cannot be larger; the upper inequality is
    Charikar et al.'s guarantee that the decision procedure succeeds for
    every guess ``>= opt``.  Both directions are exercised by the test
    suite against brute-force optima.

    ``dtype`` / ``kernel_chunk`` select the distance kernel
    (:mod:`repro.kernels`): the default float64 path is bit-identical to
    the pre-kernels implementation; ``dtype="float32"`` halves memory
    traffic at a documented ~1e-6 relative distance error, which can move
    radius candidates by the same order (the certificate still holds with
    ``tol'`` inflated accordingly).  The distance structure is computed
    once per call and shared across every binary-search / geometric-grid
    guess via a :class:`repro.kernels.Workspace`.

    Degenerate cases: if the total weight is at most ``z`` (everything can
    be an outlier) or ``k >= n``, the radius is ``0``.
    """
    metric = get_metric(metric)
    n = len(wps)
    if n == 0 or wps.total_weight <= z or k >= n:
        idx = np.arange(min(k, n), dtype=int)
        return GreedyResult(idx, 0.0, 0.0, np.zeros(n, dtype=bool))
    if k <= 0:
        raise ValueError("k must be positive")
    ws = Workspace()

    if n <= pairwise_limit:
        # ONE distance matrix for the whole call; every guess below reuses
        # it (plus the workspace's mask/membership buffers).
        D = metric.pairwise_block(wps.points, wps.points, dtype=dtype, workspace=ws)
        # radius 0 can be optimal (duplicates, or light far points absorbed
        # by the outlier budget); test it outright before the positive
        # candidates
        ok0, centers0, uncovered0 = _greedy_disks(D, wps.weights, k, z, 0.0, ws)
        if ok0:
            return GreedyResult(
                np.asarray(centers0, dtype=int), 0.0, 0.0, uncovered0
            )
        if isinstance(metric, _KernelMetric):
            # the built-in norms are bit-symmetric (each entry is computed
            # from coordinate differences whose sign cannot matter), so the
            # strict upper triangle carries every distinct positive value —
            # half the sort the candidate extraction pays
            cand = np.unique(D[np.triu_indices(n, 1)])
        else:
            cand = np.unique(D)
        cand = cand[cand > 0]
        if len(cand) == 0:  # all points coincide
            return GreedyResult(
                np.zeros(1, dtype=int), 0.0, 0.0, np.zeros(n, dtype=bool)
            )
        # Feasibility is monotone for guesses >= opt (Charikar et al.);
        # binary search for the smallest feasible candidate.
        lo, hi = 0, len(cand) - 1
        feasible_hi = _greedy_disks(D, wps.weights, k, z, float(cand[hi]), ws)
        if not feasible_hi[0]:
            # cannot happen for guess >= diameter; guard anyway
            raise RuntimeError("greedy decision failed at maximum candidate radius")
        best = (float(cand[hi]),) + feasible_hi[1:]
        while lo <= hi:
            mid = (lo + hi) // 2
            g = float(cand[mid])
            ok, centers, uncovered = _greedy_disks(D, wps.weights, k, z, g, ws)
            if ok:
                best = (g, centers, uncovered)
                hi = mid - 1
            else:
                lo = mid + 1
        guess, centers, uncovered = best
    else:
        # geometric search between a positive lower bound and the Gonzalez
        # (k-center, no outliers) radius, which upper-bounds opt_{k,z}.
        def decide(g):
            return _geometric_decision(
                wps, metric, k, z, g,
                dtype=dtype, kernel_chunk=kernel_chunk, workspace=ws,
            )

        ok0, centers0, uncovered0 = decide(0.0)
        if ok0:
            return GreedyResult(np.asarray(centers0, dtype=int), 0.0, 0.0, uncovered0)
        gz = gonzalez(wps, k, metric)
        hi_r = max(gz.radius, 1e-300)
        lo_r = hi_r / max(4.0 * n, 4.0)
        ok, centers, uncovered = decide(lo_r)
        if ok:
            guess = lo_r
        else:
            # grid of guesses lo_r * (1+tol)^i up to hi_r; binary search
            ratio = 1.0 + tol
            m = int(np.ceil(np.log(hi_r / lo_r) / np.log(ratio))) + 1
            lo_i, hi_i = 0, m
            best = None
            while lo_i <= hi_i:
                mid = (lo_i + hi_i) // 2
                g = min(lo_r * ratio**mid, hi_r)
                ok, c, u = decide(g)
                if ok:
                    best = (g, c, u)
                    hi_i = mid - 1
                else:
                    lo_i = mid + 1
            if best is None:
                # hi_r is always feasible: Gonzalez covers everything
                g = hi_r
                ok, c, u = decide(g)
                best = (g, c, u)
            guess, centers, uncovered = best

    centers_idx = np.asarray(centers, dtype=int)
    # Report the coverage radius actually achieved by the chosen centers:
    # it is at most 3*guess (the decision procedure covered all but weight z
    # within 3*guess) and at least opt, so the certificate
    # opt <= radius <= 3(1+tol)*opt is preserved while often being tighter.
    achieved = coverage_radius(wps, wps.points[centers_idx], z, metric)
    radius = float(min(3.0 * guess, achieved))
    d = nearest_center_distances(wps, wps.points[centers_idx], metric)
    uncovered = d > radius + 1e-9 * max(1.0, radius)
    return GreedyResult(centers_idx, radius, float(guess), uncovered)
