"""Offline k-center algorithms.

Two classic algorithms the paper builds on:

* :func:`gonzalez` — Gonzalez's farthest-point traversal, a 2-approximation
  for k-center *without* outliers.  Used as a cheap certified upper bound
  on ``opt_{k,0} >= opt_{k,z}`` when seeding radius searches.
* :func:`charikar_greedy` — the 3-approximation of Charikar, Khuller, Mount
  and Narasimhan (SODA 2001) for k-center *with* outliers, in the weighted
  setting.  This is the ``Greedy(P, k, z)`` subroutine of the paper:
  every MBC construction starts by calling it to obtain a radius
  ``r in [opt_{k,z}(P), 3 * opt_{k,z}(P)]``.

The decision procedure (``_greedy_disks``) follows Charikar et al.:
for a radius guess ``g``, repeatedly pick the point whose ball ``B(v, g)``
covers the maximum uncovered weight, then mark everything in the expanded
ball ``B(v, 3g)`` covered.  If after ``k`` picks the uncovered weight is at
most ``z``, the guess is feasible; Charikar et al. prove feasibility for
every ``g >= opt_{k,z}(P)``.  The returned radius is ``3 * g*`` for the
smallest feasible guess ``g*``, hence at most ``3 * opt`` (exact-candidate
mode) or ``3 (1+tol) * opt`` (geometric mode for large inputs).

Performance (the kernels refactor): both decision procedures maintain the
candidate gains *incrementally* — one ball-membership matvec when a guess
starts, then per pick only the weight of the newly covered points is
subtracted from the gains of the candidates whose ``g``-ball contains
them.  Because all library weights are integers (exactly representable in
float64), the incremental sums equal the recomputed sums bit for bit, so
results are identical to the pre-refactor code
(:mod:`repro.core._greedy_reference`; proven by
``tests/test_greedy_parity.py``) at a fraction of the work: ``O(n^2)``
per guess instead of ``O(k n^2)``.  Distance blocks come from
:mod:`repro.kernels` via :meth:`Metric.pairwise_block`, honoring the
``dtype`` / ``kernel_chunk`` knobs of :class:`repro.api.ProblemSpec`.

Grid pruning (the sub-quadratic refactor): for the built-in norms in low
dimension with integer weights, each geometric radius-guess decision
prunes its candidate scans through a
:class:`~repro.geometry.PointGrid`, so both the gain seeding and the
per-pick bookkeeping only evaluate distances between points in
Chebyshev-adjacent cells — ``O(n * (2R+1)^d)`` pairs per guess when the
guess is near the optimum instead of ``O(n^2)``.  Candidate supersets
come from the grid; the surviving pairs are re-evaluated in float64 with
:func:`repro.kernels.pair_distances`, which is bit-identical to the
cdist entries the dense float64 path compares, and all accumulated sums
are exact integers — so the pruned decisions pick the same centers, bit
for bit, as the dense float64 reference (``tests/test_greedy_pruned.py``).
This holds for the float32 fast path too: a pruned decision always
evaluates its sparse distances in exact float64, so ``dtype="float32"``
with pruning returns the float64-reference results (the lossy float32
kernel only runs on the dense fallback).  High dimension, arbitrary /
precomputed metrics and fractional weights fall back to the dense path
automatically (:attr:`GreedyResult.path` records which path served the
call).

Persistent geometry (the hierarchy refactor): the radius search builds
**one** :class:`~repro.geometry.PointGridHierarchy` per call — a lazy
geometric ladder of grids anchored at the smallest guess — and every
guess snaps to the nearest conservative level instead of re-bucketing
all points per guess; coarse levels derive their index from finer ones
at cell (not point) cost, and :func:`repro.core.mbc._greedy_absorb`
reuses the same ladder through :attr:`GreedyResult.geometry`.  The
per-decision cell scans can additionally be sharded across a
:class:`repro.engine.ThreadExecutor` (``decision_jobs``): shards are
deterministic contiguous cell ranges, each accumulates into its own
gain array, and the partials are reduced in shard order — with integer
weights every partial is an exact float64 integer, so the reduction
(and every argmax pick, tie-breaks included) is bit-identical to the
serial scan for any job count.  :attr:`GreedyResult.stats` reports the
``grid_builds`` / ``grid_reuses`` / ``decision_shards`` breakdown.

``kernel_backend="numba"`` additionally dispatches the distance kernels
and the hot gain-update loops to the compiled implementations of
:mod:`repro.kernels.numba_backend` (optional extra; numpy is the
default and the reference).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..engine.executor import ThreadExecutor, shard_ranges
from ..geometry.grid import PointGrid, PointGridHierarchy
from ..kernels import (
    Workspace,
    auto_chunk,
    pair_distances,
    resolve_backend,
    resolve_dtype,
)
from .metrics import Metric, _KernelMetric, get_metric
from .points import WeightedPointSet
from .radius import coverage_radius, nearest_center_distances

__all__ = ["GreedyResult", "gonzalez", "charikar_greedy"]

#: Above this many points the exact pairwise-candidate search switches to a
#: geometric grid of radius guesses (3(1+tol)-approximation).
PAIRWISE_LIMIT = 2048

#: grid pruning needs ``3^d`` neighbor enumeration per cell; beyond this
#: dimension the dense kernels win (same gate the absorption loop uses)
_GRID_MAX_DIM = 4

#: above this many *source* cells, the per-cell blocked scan (one distance
#: block per cell, ~tens of µs of Python each) loses to the fully
#: vectorized COO pair expansion
_GRID_BLOCK_CELLS = 4096

#: point-pair budget per COO expansion chunk (bounds peak memory)
_GRID_PAIR_CHUNK = 4_000_000

#: cells per vectorized neighbor-matching block (bounds the
#: ``cells x 3^d`` searchsorted target matrix); scans at wider rings
#: scale this down so the target matrix stays the same size
_GRID_MATCH_CHUNK = 65536

#: below this many *source points*, a sharded scan's per-shard gain
#: arrays (allocate + reduce, ``O(n * jobs)``) cost more than the scan
#: itself; smaller scans stay serial (never affects results)
_GRID_SHARD_MIN_POINTS = 32768


@dataclass(frozen=True)
class GreedyResult:
    """Output of :func:`charikar_greedy` / :func:`gonzalez`.

    Attributes
    ----------
    centers_idx:
        Indices into the input point set of the chosen centers
        (``<= k`` of them).
    radius:
        Certified covering radius: all but weight ``z`` of the input lies
        within ``radius`` of the centers, and
        ``radius <= 3 (1+tol) * opt_{k,z}(P)``.
    guess:
        The feasible radius guess ``g*`` (``radius == 3 * guess`` for
        Charikar; equals ``radius`` for Gonzalez).
    uncovered:
        Boolean mask of input points not covered by ``B(c, radius)``
        (weight at most ``z``).
    path:
        Which decision path served the call: ``"pairwise"`` (exact
        candidates, ``n <= pairwise_limit``), ``"grid"`` (grid-pruned
        geometric search), ``"dense"`` (chunked dense geometric search)
        or ``"mixed"`` (some guesses gridded, some fell back).
        Provenance only — never affects results.
    stats:
        Provenance counters for the grid-pruned geometric search (zeroed
        when it did not run): ``grid_builds`` (direct point-level
        bucketings),
        ``grid_derived`` (levels derived from a finer one at cell cost),
        ``grid_reuses`` (guesses served by an already-built level),
        ``decisions`` (grid decisions run), ``decision_jobs`` (requested
        job count), ``decision_shards`` (max shards any scan used) and
        ``sharded_scans`` (scans that actually fanned out).  JSON-safe
        ints only; never affects results.
    geometry:
        The :class:`~repro.geometry.PointGridHierarchy` the search built
        (``None`` off the grid path), so downstream consumers — the MBC
        absorption loop — can reuse the ladder instead of re-bucketing
        the same points.  Excluded from comparison and repr.
    """

    centers_idx: np.ndarray
    radius: float
    guess: float
    uncovered: np.ndarray
    path: str = field(default="dense", compare=False)
    stats: dict = field(default_factory=dict, compare=False)
    geometry: "PointGridHierarchy | None" = field(
        default=None, compare=False, repr=False
    )

    def centers(self, wps: WeightedPointSet) -> np.ndarray:
        """Coordinates of the chosen centers."""
        return wps.points[self.centers_idx]


def gonzalez(
    wps: WeightedPointSet,
    k: int,
    metric: "Metric | str | None" = None,
    first: int = 0,
) -> GreedyResult:
    """Gonzalez's farthest-point 2-approximation (no outliers).

    Runs in ``O(nk)`` distance evaluations.  ``first`` selects the initial
    center (the approximation guarantee holds for any choice).
    """
    metric = get_metric(metric)
    n = len(wps)
    if n == 0:
        return GreedyResult(np.zeros(0, dtype=int), 0.0, 0.0, np.zeros(0, dtype=bool))
    k = min(k, n)
    centers = [int(first)]
    dmin = metric.to_set(wps.points[first], wps.points)
    while len(centers) < k:
        nxt = int(np.argmax(dmin))
        centers.append(nxt)
        dmin = np.minimum(dmin, metric.to_set(wps.points[nxt], wps.points))
    radius = float(dmin.max()) if n else 0.0
    return GreedyResult(
        np.asarray(centers, dtype=int), radius, radius, np.zeros(n, dtype=bool)
    )


def _gain_dtype(weights: np.ndarray, kernel_dtype) -> type:
    """Accumulator dtype for the candidate gains.

    float32 when the kernel itself is float32, or when gains are *exactly*
    representable there: integer weights whose total stays below 2^24 —
    then every partial sum is an exact float32 integer and the matvecs run
    at half the memory traffic with bit-identical argmax decisions.
    Fractional weights (a float array passed directly) must stay in
    float64: rounding them would move picks.
    """
    if kernel_dtype == np.float32:
        return np.float32
    if np.issubdtype(weights.dtype, np.integer) and float(weights.sum()) < 2.0**24:
        return np.float32
    return np.float64


def _weight_feasible(weights: np.ndarray, uncovered: np.ndarray, z: int) -> bool:
    """Float-safe feasibility: uncovered weight at most ``z``.

    The pre-refactor code truncated via ``int(weights[uncovered].sum())``,
    so fractional uncovered weight ``z + 0.9`` passed as feasible.  Compare
    the float sum against ``z`` with a small relative tolerance instead —
    identical to the old test on integer weights (any violation is >= 1),
    correct on fractional ones (regression-tested).
    """
    rem = float(np.asarray(weights, dtype=float)[uncovered].sum())
    return rem <= z + 1e-9 * max(1.0, float(z))


def _greedy_disks(
    D: np.ndarray,
    weights: np.ndarray,
    k: int,
    z: int,
    guess: float,
    workspace: "Workspace | None" = None,
    backend: str = "numpy",
) -> "tuple[bool, list[int], np.ndarray]":
    """Charikar decision procedure for radius ``guess`` on a precomputed
    distance matrix ``D``, with incrementally maintained gains.

    ``gain[v]`` is the uncovered weight inside ``B(v, guess)``.  It is
    seeded with one matvec and then *updated* per pick — the weight of the
    newly covered points is subtracted from every candidate whose ball
    contains them — instead of the pre-refactor fresh ``O(n^2)`` matvec
    per pick.  Integer weights make the incremental sums exact, so picks
    (and therefore results) are bit-identical to the reference.

    Returns ``(feasible, centers, uncovered_mask)`` where *uncovered* means
    not within ``3 * guess`` of any chosen center.
    """
    n = len(weights)
    tol = 1e-9 * max(1.0, guess)
    uncovered = np.ones(n, dtype=bool)
    centers: list[int] = []
    limit3 = 3.0 * guess + tol
    # the compiled gain loops sum weights in index order, not BLAS order,
    # so they are reserved for integer weights where any order is exact
    use_numba = (
        backend == "numba"
        and D.dtype == np.float64
        and np.issubdtype(weights.dtype, np.integer)
    )
    if use_numba:
        from ..kernels import numba_backend

        w = weights.astype(np.float64)
        gain = numba_backend.gain_seed(D, w, guess + tol)
        for _ in range(min(k, n)):
            if not uncovered.any():
                break
            v = int(np.argmax(gain))
            centers.append(v)
            idx = np.flatnonzero(uncovered & (D[v] <= limit3))
            if idx.size:
                uncovered[idx] = False
                numba_backend.gain_subtract(D, gain, idx, w, guess + tol)
        return _weight_feasible(weights, uncovered, z), centers, uncovered
    # comparisons against D stay in D's own dtype; only the gain
    # accumulators may drop to float32 (see _gain_dtype)
    dt = _gain_dtype(weights, D.dtype)
    w = weights.astype(dt)
    ws = workspace if workspace is not None else Workspace()
    # ball membership at g, as the kernel dtype so the matvec hits BLAS
    # without a hidden bool->float promotion copy per pick
    mask = ws.buffer("disks.mask", D.shape, bool)
    np.less_equal(D, guess + tol, out=mask)
    Wg = ws.buffer("disks.Wg", D.shape, dt)
    np.copyto(Wg, mask, casting="unsafe")
    gain = Wg @ w
    for _ in range(min(k, n)):
        if not uncovered.any():
            break
        v = int(np.argmax(gain))
        centers.append(v)
        newly = uncovered & (D[v] <= limit3)
        idx = np.flatnonzero(newly)
        if idx.size:
            uncovered[idx] = False
            if 2 * idx.size > n:
                # a full matvec beats copying most of Wg's columns; the
                # recomputed integer sum equals the incremental one exactly
                gain = Wg @ (w * uncovered)
            else:
                gain -= Wg[:, idx] @ w[idx]
    return _weight_feasible(weights, uncovered, z), centers, uncovered


def _geometric_decision(
    wps: WeightedPointSet,
    metric: Metric,
    k: int,
    z: int,
    guess: float,
    dtype=None,
    kernel_chunk: "int | None" = None,
    workspace: "Workspace | None" = None,
    backend: str = "numpy",
) -> "tuple[bool, list[int], np.ndarray]":
    """Charikar decision without a full distance matrix (chunked).

    One chunked ball-membership pass seeds the gains; each pick then
    subtracts the newly covered weight via an ``n x |newly|`` distance
    block — ``O(n^2)`` distance evaluations per guess in total, versus the
    pre-refactor ``O(k n^2)`` (a fresh full pass per pick).  Used when
    ``n > PAIRWISE_LIMIT`` and the grid pruning of :func:`_grid_decision`
    does not apply.
    """
    pts = wps.points
    n = len(pts)
    dt = resolve_dtype(dtype)
    gdt = _gain_dtype(wps.weights, dt)
    w = wps.weights.astype(gdt)
    tol = 1e-9 * max(1.0, guess)
    chunk = kernel_chunk if kernel_chunk is not None else auto_chunk(n, dtype=dt)
    ws = workspace if workspace is not None else Workspace()
    uncovered = np.ones(n, dtype=bool)
    centers: list[int] = []
    gain = np.empty(n, dtype=gdt)
    for i0 in range(0, n, chunk):
        block = metric.pairwise_block(
            pts[i0 : i0 + chunk], pts, dtype=dt, workspace=ws, backend=backend
        )
        gain[i0 : i0 + len(block)] = (block <= guess + tol).astype(gdt) @ w
    limit3 = 3.0 * guess + tol
    for _ in range(min(k, n)):
        if not uncovered.any():
            break
        v = int(np.argmax(gain))
        centers.append(v)
        dv = metric.to_set(pts[v], pts)
        idx = np.flatnonzero(uncovered & (dv <= limit3))
        if idx.size:
            uncovered[idx] = False
            # ws.take gathers the subset's squared norms from the cached
            # full-array reduction instead of re-reducing them per guess
            # (bit-identical values; only the float32 GEMM kernel reads them)
            sub = ws.take(pts, idx)
            wi = w[idx]
            for i0 in range(0, n, chunk):
                block = metric.pairwise_block(
                    pts[i0 : i0 + chunk], sub, dtype=dt, workspace=ws,
                    backend=backend,
                )
                gain[i0 : i0 + len(block)] -= (block <= guess + tol).astype(gdt) @ wi
    return _weight_feasible(wps.weights, uncovered, z), centers, uncovered


def _grid_for_guess(pts: np.ndarray, cutoff: float) -> "PointGrid | None":
    """Per-guess candidate-pruning grid: cell side just above the ball
    cutoff, so the g-ball around any point lies inside its Chebyshev
    1-ring (3^d cells) and the 3g-ball inside its 3-ring.

    The side is clamped from below so quantized cell indices stay under
    ``2^30`` even for tiny guesses (e.g. the guess-0 decision): a larger
    side is always sound — it only admits more candidates, and every
    candidate is re-checked with an exact distance.
    """
    maxabs = float(np.max(np.abs(pts))) if pts.size else 0.0
    side = max(cutoff * (1.0 + 1e-6), maxabs * 2.0**-29)
    return PointGrid.build(pts, side, max_ring=3)


def _accumulate_cells(
    grid: PointGrid,
    pts: np.ndarray,
    metric: Metric,
    w64: np.ndarray,
    cutoff: float,
    gain: np.ndarray,
    sign: float,
    src_cells: np.ndarray,
    src_starts: np.ndarray,
    src_counts: np.ndarray,
    src_members: np.ndarray,
    backend: str,
    workspace: Workspace,
    ring: int,
) -> None:
    """Serial core of :func:`_grid_accumulate_gains`: accumulate
    ``gain[i] += sign * w64[j]`` over every pair with ``j`` a *source*
    point, ``i`` any point in a cell within Chebyshev ring ``ring`` of
    ``j``'s cell, and ``dist(i, j) <= cutoff``.

    Sources are given as cells (indices into ``grid.cell_codes``) with
    their member point indices in ``src_members[src_starts[s] :
    src_starts[s] + src_counts[s]]``.  Seeding passes the grid's own
    cells; the per-pick update passes the newly covered points grouped by
    cell.  Two strategies with identical (exact-integer) results: a
    per-cell blocked distance kernel when sources are few, and a fully
    vectorized COO pair expansion over ragged cell pairs when cells are
    many (tiny guesses make every point its own cell, and a Python loop
    over a million cells would dominate the saved distance work).
    """
    n_src = len(src_cells)
    if n_src == 0:
        return

    def blocked(cand: np.ndarray, mem: np.ndarray) -> None:
        # candidate-rows x source-cols membership matvec, row-chunked so a
        # giant cell (clustered data) never materializes an unbounded block
        rows_per = max(1, _GRID_PAIR_CHUNK // max(1, len(mem)))
        for r0 in range(0, len(cand), rows_per):
            rows = cand[r0 : r0 + rows_per]
            block = metric.pairwise_block(
                pts[rows], pts[mem], workspace=workspace, backend=backend
            )
            contrib = (block <= cutoff) @ w64[mem]
            if sign > 0:
                gain[rows] += contrib
            else:
                gain[rows] -= contrib

    if n_src <= _GRID_BLOCK_CELLS:
        src_pos, nbr = grid.neighbors_of_cells(src_cells, ring)
        bounds = np.searchsorted(src_pos, np.arange(n_src + 1))
        for s in range(n_src):
            cand = grid.points_in_cells(nbr[bounds[s] : bounds[s + 1]])
            mem = src_members[src_starts[s] : src_starts[s] + src_counts[s]]
            blocked(cand, mem)
        return
    kind = metric.name
    # the fused compiled kernel skips the dist/sel/bincount temporaries;
    # same exact-integer result as the numpy expansion below
    fused = None
    if backend == "numba":
        from ..kernels import numba_backend

        if numba_backend.HAVE_NUMBA:
            fused = numba_backend.gain_pairs
    # keep the cells x (2R+1)^d searchsorted target matrix the same size
    # whatever the ring (chunking never affects results)
    match_chunk = max(
        256, (_GRID_MATCH_CHUNK * 9) // (2 * ring + 1) ** grid.dim
    )
    for c0 in range(0, n_src, match_chunk):
        hi = min(c0 + match_chunk, n_src)
        src_pos, nbr = grid.neighbors_of_cells(src_cells[c0:hi], ring)
        src_pos = src_pos + c0
        ca = grid.cell_counts[nbr]
        cb = src_counts[src_pos]
        pair_n = ca * cb
        cum = np.cumsum(pair_n)
        p0 = 0
        while p0 < len(pair_n):
            if pair_n[p0] > _GRID_PAIR_CHUNK:
                # one oversized cell pair: use the blocked kernel for it
                s = src_pos[p0]
                blocked(
                    grid.points_in_cells(nbr[p0 : p0 + 1]),
                    src_members[src_starts[s] : src_starts[s] + src_counts[s]],
                )
                p0 += 1
                continue
            base = int(cum[p0 - 1]) if p0 else 0
            p1 = int(np.searchsorted(cum, base + _GRID_PAIR_CHUNK,
                                     side="right"))
            p1 = min(max(p1, p0 + 1), len(pair_n))
            cnt = pair_n[p0:p1]
            total = int(cnt.sum())
            if total:
                pid = np.repeat(np.arange(p1 - p0), cnt)
                offs = np.concatenate(([0], np.cumsum(cnt)))[:-1]
                t = np.arange(total) - np.repeat(offs, cnt)
                cb_p = cb[p0:p1][pid]
                la = t // cb_p
                lb = t - la * cb_p
                rows = grid.order[grid.cell_starts[nbr[p0:p1]][pid] + la]
                cols = src_members[src_starts[src_pos[p0:p1]][pid] + lb]
                if fused is not None:
                    fused(kind, pts, rows, cols, w64, cutoff, sign, gain)
                else:
                    dist = pair_distances(kind, pts, rows, cols,
                                          backend=backend)
                    sel = dist <= cutoff
                    if sel.any():
                        contrib = np.bincount(
                            rows[sel], weights=w64[cols[sel]],
                            minlength=len(gain),
                        )
                        if sign > 0:
                            gain += contrib
                        else:
                            gain -= contrib
            p0 = p1


def _grid_accumulate_gains(
    grid: PointGrid,
    pts: np.ndarray,
    metric: Metric,
    w64: np.ndarray,
    cutoff: float,
    gain: np.ndarray,
    sign: float,
    src_cells: np.ndarray,
    src_starts: np.ndarray,
    src_counts: np.ndarray,
    src_members: np.ndarray,
    backend: str,
    workspace: Workspace,
    ring: int = 1,
    executor: "ThreadExecutor | None" = None,
) -> int:
    """Sharding wrapper over :func:`_accumulate_cells`.

    With an ``executor`` and a scan worth fanning out (at least
    :data:`_GRID_SHARD_MIN_POINTS` source points), the source cells are
    split into deterministic contiguous ranges (:func:`shard_ranges`);
    each shard scans into its own zeroed gain array with its own
    :class:`Workspace` (workspace buffers are tag-keyed, not
    thread-safe), and the partials are added into ``gain`` in shard
    order on the calling thread.  Every partial is an exact
    (sign-applied) integer in float64, so the reduction is bit-identical
    to the serial scan for any job count.  Returns the number of shards
    that ran (1 = serial).
    """
    n_src = len(src_cells)
    if n_src == 0:
        return 1
    if (
        executor is not None
        and n_src > 1
        and int(src_counts.sum()) >= _GRID_SHARD_MIN_POINTS
    ):
        ranges = shard_ranges(n_src, getattr(executor, "jobs", None) or 1)
        if len(ranges) > 1:

            def run_shard(rng: "tuple[int, int]") -> np.ndarray:
                lo, hi = rng
                part = np.zeros(len(gain), dtype=np.float64)
                _accumulate_cells(
                    grid, pts, metric, w64, cutoff, part, sign,
                    src_cells[lo:hi], src_starts[lo:hi], src_counts[lo:hi],
                    src_members, backend, Workspace(), ring,
                )
                return part

            for part in executor.map(run_shard, ranges):
                gain += part
            return len(ranges)
    _accumulate_cells(
        grid, pts, metric, w64, cutoff, gain, sign, src_cells, src_starts,
        src_counts, src_members, backend, workspace, ring,
    )
    return 1


def _group_by_cell(
    grid: PointGrid, idx: np.ndarray
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
    """Group point indices by their grid cell: ``(cells, starts, counts,
    members)`` in the source format :func:`_grid_accumulate_gains` takes."""
    cells_of = grid.point_cell[idx]
    by_cell = np.argsort(cells_of, kind="stable")
    members = idx[by_cell]
    sorted_cells = cells_of[by_cell]
    is_start = np.empty(len(idx), dtype=bool)
    is_start[0] = True
    np.not_equal(sorted_cells[1:], sorted_cells[:-1], out=is_start[1:])
    starts = np.flatnonzero(is_start)
    cells = sorted_cells[starts]
    counts = np.diff(np.append(starts, len(idx)))
    return cells, starts, counts, members


def _grid_decision(
    wps: WeightedPointSet,
    metric: Metric,
    k: int,
    z: int,
    guess: float,
    grid: PointGrid,
    workspace: Workspace,
    backend: str = "numpy",
    executor: "ThreadExecutor | None" = None,
    stats: "dict | None" = None,
) -> "tuple[bool, list[int], np.ndarray]":
    """Grid-pruned Charikar decision — same contract (and bit-identical
    results) as the float64 :func:`_geometric_decision` with integer
    weights, at ``O(pairs-in-nearby-cells)`` distance evaluations per
    guess instead of ``O(n^2)``.

    Exactness: candidate supersets from the grid are sound at whatever
    cell side it has (:meth:`PointGrid.ring` picks the ring the cutoff
    needs — hierarchy-snapped grids sit at the coarsest side that still
    covers the cutoff in one ring), every surviving pair is re-evaluated
    with float64 distances bit-identical to the dense path's cdist
    entries, and
    integer weights make every accumulated gain an exact float64 integer
    in any summation order — so each argmax pick matches the dense pick,
    including tie-breaks, serial or sharded.
    """
    pts = wps.points
    n = len(pts)
    w64 = wps.weights.astype(np.float64)
    tol = 1e-9 * max(1.0, guess)
    cutoff = guess + tol
    limit3 = 3.0 * guess + tol
    ring = grid.ring(cutoff)
    gain = np.zeros(n, dtype=np.float64)
    shards = _grid_accumulate_gains(
        grid, pts, metric, w64, cutoff, gain, 1.0,
        np.arange(grid.num_cells), grid.cell_starts, grid.cell_counts,
        grid.order, backend, workspace, ring=ring, executor=executor,
    )
    if stats is not None:
        stats["decisions"] += 1
        stats["decision_shards"] = max(stats["decision_shards"], shards)
        if shards > 1:
            stats["sharded_scans"] += 1
    uncovered = np.ones(n, dtype=bool)
    centers: list[int] = []
    for _ in range(min(k, n)):
        if not uncovered.any():
            break
        v = int(np.argmax(gain))
        centers.append(v)
        cand = grid.query_point(v, limit3)
        dv = metric.to_set(pts[v], pts[cand])
        idx = np.sort(cand[uncovered[cand] & (dv <= limit3)])
        if idx.size:
            uncovered[idx] = False
            cells, starts, counts, members = _group_by_cell(grid, idx)
            shards = _grid_accumulate_gains(
                grid, pts, metric, w64, cutoff, gain, -1.0,
                cells, starts, counts, members, backend, workspace,
                ring=ring, executor=executor,
            )
            if stats is not None and shards > 1:
                stats["decision_shards"] = max(
                    stats["decision_shards"], shards
                )
                stats["sharded_scans"] += 1
    return _weight_feasible(wps.weights, uncovered, z), centers, uncovered


def charikar_greedy(
    wps: WeightedPointSet,
    k: int,
    z: int,
    metric: "Metric | str | None" = None,
    tol: float = 0.05,
    pairwise_limit: int = PAIRWISE_LIMIT,
    dtype=None,
    kernel_chunk: "int | None" = None,
    kernel_backend=None,
    prune: str = "auto",
    decision_jobs: "int | None" = None,
) -> GreedyResult:
    """Weighted 3-approximation for k-center with ``z`` outliers.

    This is ``Greedy(P, k, z)`` of the paper.  The returned
    :attr:`GreedyResult.radius` satisfies

    ``opt_{k,z}(P) <= radius <= 3 (1 + tol') * opt_{k,z}(P)``

    with ``tol' = 0`` when ``len(wps) <= pairwise_limit`` (binary search
    over all pairwise distances) and ``tol' = tol`` otherwise (geometric
    grid of guesses).  The lower inequality holds because the returned
    radius is achieved by ``k`` concrete balls leaving uncovered weight at
    most ``z``, so the optimum cannot be larger; the upper inequality is
    Charikar et al.'s guarantee that the decision procedure succeeds for
    every guess ``>= opt``.  Both directions are exercised by the test
    suite against brute-force optima.

    ``dtype`` / ``kernel_chunk`` / ``kernel_backend`` select the distance
    kernel (:mod:`repro.kernels`): the default float64 path is
    bit-identical to the pre-kernels implementation; ``dtype="float32"``
    halves memory traffic at a documented ~1e-6 relative distance error,
    which can move radius candidates by the same order (the certificate
    still holds with ``tol'`` inflated accordingly);
    ``kernel_backend="numba"`` dispatches to the compiled (bit-exact)
    kernels when the optional extra is installed.  The distance structure
    is computed once per call and shared across every binary-search /
    geometric-grid guess via a :class:`repro.kernels.Workspace`.

    ``prune`` controls the grid-pruned candidate scans of the geometric
    search: ``"auto"`` (default) uses them whenever they are exact — a
    built-in norm in dimension <= 4 with integer weights totalling under
    ``2**53`` — ``"off"`` (alias ``"dense"``) forces the dense chunked
    path, and ``"grid"`` *requires* pruning, raising :class:`ValueError`
    when the gate is inapplicable instead of silently falling back.
    Pruned decisions always evaluate their sparse distances in exact
    float64, so pruned results are bit-identical to the dense *float64*
    reference — including under ``dtype="float32"``, where the dense
    fallback would instead pay the documented ~1e-6 distance error.
    :attr:`GreedyResult.path` records what ran.

    ``decision_jobs`` shards each pruned decision's cell scans across
    that many threads (:class:`repro.engine.ThreadExecutor`, created
    once per call); the deterministic shard reduction keeps results
    bit-identical to ``decision_jobs=1``.  Ignored off the grid path,
    where the dense kernels already saturate BLAS threads.

    Degenerate cases: if the total weight is at most ``z`` (everything can
    be an outlier) or ``k >= n``, the radius is ``0``.
    """
    metric = get_metric(metric)
    bk = resolve_backend(kernel_backend)
    if prune not in ("auto", "off", "grid", "dense"):
        raise ValueError(
            f"prune must be 'auto', 'off', 'grid' or 'dense', got {prune!r}"
        )
    jobs = 1 if decision_jobs is None else int(decision_jobs)
    if jobs < 1:
        raise ValueError(f"decision_jobs must be >= 1, got {decision_jobs!r}")
    # the pruning gate: exactly when pruned scans are provably
    # bit-identical to the dense float64 path — a built-in norm on real
    # coordinates in low dimension (sound (2R+1)^d cell neighborhoods)
    # and integer weights small enough that every partial sum is an exact
    # float64 integer in any order
    grid_ok = (
        isinstance(metric, _KernelMetric)
        and wps.points.ndim == 2
        and wps.points.shape[1] <= _GRID_MAX_DIM
        and np.issubdtype(wps.weights.dtype, np.integer)
        and float(wps.weights.sum()) < 2.0**53
    )
    if prune == "grid" and not grid_ok:
        raise ValueError(
            "prune='grid' requires a built-in norm on 2-D coordinate arrays "
            f"of dimension <= {_GRID_MAX_DIM} with integer weights totalling "
            "under 2**53 (the exactness gate); use prune='auto' to fall back "
            "to the dense path automatically"
        )
    n = len(wps)
    if n == 0 or wps.total_weight <= z or k >= n:
        idx = np.arange(min(k, n), dtype=int)
        return GreedyResult(idx, 0.0, 0.0, np.zeros(n, dtype=bool))
    if k <= 0:
        raise ValueError("k must be positive")
    ws = Workspace()
    path = "dense"
    hierarchy: "PointGridHierarchy | None" = None
    stats = {
        "decisions": 0,
        "grid_builds": 0,
        "grid_derived": 0,
        "grid_reuses": 0,
        "decision_jobs": jobs,
        "decision_shards": 1,
        "sharded_scans": 0,
    }

    if n <= pairwise_limit:
        path = "pairwise"
        # ONE distance matrix for the whole call; every guess below reuses
        # it (plus the workspace's mask/membership buffers).
        D = metric.pairwise_block(
            wps.points, wps.points, dtype=dtype, workspace=ws, backend=bk
        )
        # radius 0 can be optimal (duplicates, or light far points absorbed
        # by the outlier budget); test it outright before the positive
        # candidates
        ok0, centers0, uncovered0 = _greedy_disks(
            D, wps.weights, k, z, 0.0, ws, backend=bk
        )
        if ok0:
            return GreedyResult(
                np.asarray(centers0, dtype=int), 0.0, 0.0, uncovered0, path
            )
        if isinstance(metric, _KernelMetric):
            # the built-in norms are bit-symmetric (each entry is computed
            # from coordinate differences whose sign cannot matter), so the
            # strict upper triangle carries every distinct positive value —
            # half the sort the candidate extraction pays
            cand = np.unique(D[np.triu_indices(n, 1)])
        else:
            cand = np.unique(D)
        cand = cand[cand > 0]
        if len(cand) == 0:  # all points coincide
            return GreedyResult(
                np.zeros(1, dtype=int), 0.0, 0.0, np.zeros(n, dtype=bool), path
            )
        # Feasibility is monotone for guesses >= opt (Charikar et al.);
        # binary search for the smallest feasible candidate.
        lo, hi = 0, len(cand) - 1
        feasible_hi = _greedy_disks(
            D, wps.weights, k, z, float(cand[hi]), ws, backend=bk
        )
        if not feasible_hi[0]:
            # cannot happen for guess >= diameter; guard anyway
            raise RuntimeError("greedy decision failed at maximum candidate radius")
        best = (float(cand[hi]),) + feasible_hi[1:]
        while lo <= hi:
            mid = (lo + hi) // 2
            g = float(cand[mid])
            ok, centers, uncovered = _greedy_disks(
                D, wps.weights, k, z, g, ws, backend=bk
            )
            if ok:
                best = (g, centers, uncovered)
                hi = mid - 1
            else:
                lo = mid + 1
        guess, centers, uncovered = best
    else:
        # geometric search between a positive lower bound and the Gonzalez
        # (k-center, no outliers) radius, which upper-bounds opt_{k,z}.
        use_grid = prune in ("auto", "grid") and grid_ok
        paths_used = set()
        executor = ThreadExecutor(jobs=jobs) if use_grid and jobs > 1 else None

        def decide(g):
            if use_grid:
                cutoff = g + 1e-9 * max(1.0, g)
                grid = hierarchy.grid_for(cutoff) if hierarchy is not None \
                    else None
                if grid is None:
                    # no ladder yet (the guess-0 probe) or no buildable
                    # level near this cutoff: one fresh per-guess grid
                    grid = _grid_for_guess(wps.points, cutoff)
                    if grid is not None:
                        stats["grid_builds"] += 1
                if grid is not None:
                    paths_used.add("grid")
                    return _grid_decision(
                        wps, metric, k, z, g, grid, ws, backend=bk,
                        executor=executor, stats=stats,
                    )
            paths_used.add("dense")
            return _geometric_decision(
                wps, metric, k, z, g,
                dtype=dtype, kernel_chunk=kernel_chunk, workspace=ws,
                backend=bk,
            )

        def geometric_path():
            if paths_used == {"grid"}:
                return "grid"
            if paths_used == {"dense"} or not paths_used:
                return "dense"
            return "mixed"

        try:
            ok0, centers0, uncovered0 = decide(0.0)
            if ok0:
                return GreedyResult(
                    np.asarray(centers0, dtype=int), 0.0, 0.0, uncovered0,
                    geometric_path(), stats,
                )
            gz = gonzalez(wps, k, metric)
            hi_r = max(gz.radius, 1e-300)
            lo_r = hi_r / max(4.0 * n, 4.0)
            if use_grid:
                # ONE geometric ladder for the whole search, anchored just
                # above the smallest guess (clamped like _grid_for_guess so
                # quantized indices stay trusted); every guess snaps to a
                # level that is built at most once and derived from a finer
                # one when possible
                maxabs = (
                    float(np.max(np.abs(wps.points))) if wps.points.size
                    else 0.0
                )
                base = max(lo_r * (1.0 + 1e-6), maxabs * 2.0**-29)
                hierarchy = PointGridHierarchy(
                    wps.points, base, max_ring=4,
                    cell_budget=_GRID_BLOCK_CELLS,
                )
            ok, centers, uncovered = decide(lo_r)
            if ok:
                guess = lo_r
            else:
                # grid of guesses lo_r * (1+tol)^i up to hi_r; binary search
                ratio = 1.0 + tol
                m = int(np.ceil(np.log(hi_r / lo_r) / np.log(ratio))) + 1
                lo_i, hi_i = 0, m
                best = None
                while lo_i <= hi_i:
                    mid = (lo_i + hi_i) // 2
                    g = min(lo_r * ratio**mid, hi_r)
                    ok, c, u = decide(g)
                    if ok:
                        best = (g, c, u)
                        hi_i = mid - 1
                    else:
                        lo_i = mid + 1
                if best is None:
                    # hi_r is always feasible: Gonzalez covers everything
                    g = hi_r
                    ok, c, u = decide(g)
                    best = (g, c, u)
                guess, centers, uncovered = best
            path = geometric_path()
        finally:
            if executor is not None:
                executor.close()
        if hierarchy is not None:
            stats["grid_builds"] += hierarchy.direct_builds
            stats["grid_derived"] += hierarchy.derived_builds
            stats["grid_reuses"] += hierarchy.snap_hits

    centers_idx = np.asarray(centers, dtype=int)
    # Report the coverage radius actually achieved by the chosen centers:
    # it is at most 3*guess (the decision procedure covered all but weight z
    # within 3*guess) and at least opt, so the certificate
    # opt <= radius <= 3(1+tol)*opt is preserved while often being tighter.
    achieved = coverage_radius(wps, wps.points[centers_idx], z, metric)
    radius = float(min(3.0 * guess, achieved))
    d = nearest_center_distances(wps, wps.points[centers_idx], metric)
    uncovered = d > radius + 1e-9 * max(1.0, radius)
    return GreedyResult(
        centers_idx, radius, float(guess), uncovered, path, stats, hierarchy
    )
