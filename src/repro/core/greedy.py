"""Offline k-center algorithms.

Two classic algorithms the paper builds on:

* :func:`gonzalez` — Gonzalez's farthest-point traversal, a 2-approximation
  for k-center *without* outliers.  Used as a cheap certified upper bound
  on ``opt_{k,0} >= opt_{k,z}`` when seeding radius searches.
* :func:`charikar_greedy` — the 3-approximation of Charikar, Khuller, Mount
  and Narasimhan (SODA 2001) for k-center *with* outliers, in the weighted
  setting.  This is the ``Greedy(P, k, z)`` subroutine of the paper:
  every MBC construction starts by calling it to obtain a radius
  ``r in [opt_{k,z}(P), 3 * opt_{k,z}(P)]``.

The decision procedure (``_greedy_disks``) follows Charikar et al.:
for a radius guess ``g``, repeatedly pick the point whose ball ``B(v, g)``
covers the maximum uncovered weight, then mark everything in the expanded
ball ``B(v, 3g)`` covered.  If after ``k`` picks the uncovered weight is at
most ``z``, the guess is feasible; Charikar et al. prove feasibility for
every ``g >= opt_{k,z}(P)``.  The returned radius is ``3 * g*`` for the
smallest feasible guess ``g*``, hence at most ``3 * opt`` (exact-candidate
mode) or ``3 (1+tol) * opt`` (geometric mode for large inputs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .metrics import Metric, get_metric
from .points import WeightedPointSet
from .radius import coverage_radius, nearest_center_distances

__all__ = ["GreedyResult", "gonzalez", "charikar_greedy"]

#: Above this many points the exact pairwise-candidate search switches to a
#: geometric grid of radius guesses (3(1+tol)-approximation).
PAIRWISE_LIMIT = 2048


@dataclass(frozen=True)
class GreedyResult:
    """Output of :func:`charikar_greedy` / :func:`gonzalez`.

    Attributes
    ----------
    centers_idx:
        Indices into the input point set of the chosen centers
        (``<= k`` of them).
    radius:
        Certified covering radius: all but weight ``z`` of the input lies
        within ``radius`` of the centers, and
        ``radius <= 3 (1+tol) * opt_{k,z}(P)``.
    guess:
        The feasible radius guess ``g*`` (``radius == 3 * guess`` for
        Charikar; equals ``radius`` for Gonzalez).
    uncovered:
        Boolean mask of input points not covered by ``B(c, radius)``
        (weight at most ``z``).
    """

    centers_idx: np.ndarray
    radius: float
    guess: float
    uncovered: np.ndarray

    def centers(self, wps: WeightedPointSet) -> np.ndarray:
        """Coordinates of the chosen centers."""
        return wps.points[self.centers_idx]


def gonzalez(
    wps: WeightedPointSet,
    k: int,
    metric: "Metric | str | None" = None,
    first: int = 0,
) -> GreedyResult:
    """Gonzalez's farthest-point 2-approximation (no outliers).

    Runs in ``O(nk)`` distance evaluations.  ``first`` selects the initial
    center (the approximation guarantee holds for any choice).
    """
    metric = get_metric(metric)
    n = len(wps)
    if n == 0:
        return GreedyResult(np.zeros(0, dtype=int), 0.0, 0.0, np.zeros(0, dtype=bool))
    k = min(k, n)
    centers = [int(first)]
    dmin = metric.to_set(wps.points[first], wps.points)
    while len(centers) < k:
        nxt = int(np.argmax(dmin))
        centers.append(nxt)
        dmin = np.minimum(dmin, metric.to_set(wps.points[nxt], wps.points))
    radius = float(dmin.max()) if n else 0.0
    return GreedyResult(
        np.asarray(centers, dtype=int), radius, radius, np.zeros(n, dtype=bool)
    )


def _pairwise_matrix(points: np.ndarray, metric: Metric) -> np.ndarray:
    """Full distance matrix (only called for n <= PAIRWISE_LIMIT)."""
    return metric.pairwise(points, points)


def _greedy_disks(
    D: np.ndarray, weights: np.ndarray, k: int, z: int, guess: float
) -> "tuple[bool, list[int], np.ndarray]":
    """Charikar decision procedure for radius ``guess`` on a precomputed
    distance matrix ``D``.

    Returns ``(feasible, centers, uncovered_mask)`` where *uncovered* means
    not within ``3 * guess`` of any chosen center.
    """
    n = len(weights)
    tol = 1e-9 * max(1.0, guess)
    uncovered = np.ones(n, dtype=bool)
    centers: list[int] = []
    within_g = D <= guess + tol
    within_3g = D <= 3.0 * guess + tol
    w = weights.astype(float)
    for _ in range(min(k, n)):
        if not uncovered.any():
            break
        # weight of uncovered points inside B(v, g) for every candidate v
        gain = within_g @ (w * uncovered)
        v = int(np.argmax(gain))
        centers.append(v)
        uncovered &= ~within_3g[v]
    feasible = int(weights[uncovered].sum()) <= z
    return feasible, centers, uncovered


def _geometric_decision(
    wps: WeightedPointSet, metric: Metric, k: int, z: int, guess: float
) -> "tuple[bool, list[int], np.ndarray]":
    """Charikar decision without a full distance matrix (chunked).

    ``O(k)`` passes; each pass computes one candidate row block at a time.
    Used when ``n > PAIRWISE_LIMIT``.
    """
    pts, w = wps.points, wps.weights.astype(float)
    n = len(pts)
    tol = 1e-9 * max(1.0, guess)
    uncovered = np.ones(n, dtype=bool)
    centers: list[int] = []
    chunk = 1024
    for _ in range(min(k, n)):
        if not uncovered.any():
            break
        best_gain, best_v = -1.0, -1
        wu = w * uncovered
        for i0 in range(0, n, chunk):
            block = metric.pairwise(pts[i0 : i0 + chunk], pts)
            gains = (block <= guess + tol) @ wu
            j = int(np.argmax(gains))
            if gains[j] > best_gain:
                best_gain, best_v = float(gains[j]), i0 + j
        centers.append(best_v)
        uncovered &= metric.to_set(pts[best_v], pts) > 3.0 * guess + tol
    feasible = int(wps.weights[uncovered].sum()) <= z
    return feasible, centers, uncovered


def charikar_greedy(
    wps: WeightedPointSet,
    k: int,
    z: int,
    metric: "Metric | str | None" = None,
    tol: float = 0.05,
    pairwise_limit: int = PAIRWISE_LIMIT,
) -> GreedyResult:
    """Weighted 3-approximation for k-center with ``z`` outliers.

    This is ``Greedy(P, k, z)`` of the paper.  The returned
    :attr:`GreedyResult.radius` satisfies

    ``opt_{k,z}(P) <= radius <= 3 (1 + tol') * opt_{k,z}(P)``

    with ``tol' = 0`` when ``len(wps) <= pairwise_limit`` (binary search
    over all pairwise distances) and ``tol' = tol`` otherwise (geometric
    grid of guesses).  The lower inequality holds because the returned
    radius is achieved by ``k`` concrete balls leaving uncovered weight at
    most ``z``, so the optimum cannot be larger; the upper inequality is
    Charikar et al.'s guarantee that the decision procedure succeeds for
    every guess ``>= opt``.  Both directions are exercised by the test
    suite against brute-force optima.

    Degenerate cases: if the total weight is at most ``z`` (everything can
    be an outlier) or ``k >= n``, the radius is ``0``.
    """
    metric = get_metric(metric)
    n = len(wps)
    if n == 0 or wps.total_weight <= z or k >= n:
        idx = np.arange(min(k, n), dtype=int)
        return GreedyResult(idx, 0.0, 0.0, np.zeros(n, dtype=bool))
    if k <= 0:
        raise ValueError("k must be positive")

    if n <= pairwise_limit:
        D = _pairwise_matrix(wps.points, metric)
        # radius 0 can be optimal (duplicates, or light far points absorbed
        # by the outlier budget); test it outright before the positive
        # candidates
        ok0, centers0, uncovered0 = _greedy_disks(D, wps.weights, k, z, 0.0)
        if ok0:
            return GreedyResult(
                np.asarray(centers0, dtype=int), 0.0, 0.0, uncovered0
            )
        cand = np.unique(D)
        cand = cand[cand > 0]
        if len(cand) == 0:  # all points coincide
            return GreedyResult(
                np.zeros(1, dtype=int), 0.0, 0.0, np.zeros(n, dtype=bool)
            )
        # Feasibility is monotone for guesses >= opt (Charikar et al.);
        # binary search for the smallest feasible candidate.
        lo, hi = 0, len(cand) - 1
        feasible_hi = _greedy_disks(D, wps.weights, k, z, float(cand[hi]))
        if not feasible_hi[0]:
            # cannot happen for guess >= diameter; guard anyway
            raise RuntimeError("greedy decision failed at maximum candidate radius")
        best = (float(cand[hi]),) + feasible_hi[1:]
        while lo <= hi:
            mid = (lo + hi) // 2
            g = float(cand[mid])
            ok, centers, uncovered = _greedy_disks(D, wps.weights, k, z, g)
            if ok:
                best = (g, centers, uncovered)
                hi = mid - 1
            else:
                lo = mid + 1
        guess, centers, uncovered = best
    else:
        # geometric search between a positive lower bound and the Gonzalez
        # (k-center, no outliers) radius, which upper-bounds opt_{k,z}.
        ok0, centers0, uncovered0 = _geometric_decision(wps, metric, k, z, 0.0)
        if ok0:
            return GreedyResult(np.asarray(centers0, dtype=int), 0.0, 0.0, uncovered0)
        gz = gonzalez(wps, k, metric)
        hi_r = max(gz.radius, 1e-300)
        lo_r = hi_r / max(4.0 * n, 4.0)
        ok, centers, uncovered = _geometric_decision(wps, metric, k, z, lo_r)
        if ok:
            guess = lo_r
        else:
            # grid of guesses lo_r * (1+tol)^i up to hi_r; binary search
            ratio = 1.0 + tol
            m = int(np.ceil(np.log(hi_r / lo_r) / np.log(ratio))) + 1
            lo_i, hi_i = 0, m
            best = None
            while lo_i <= hi_i:
                mid = (lo_i + hi_i) // 2
                g = min(lo_r * ratio**mid, hi_r)
                ok, c, u = _geometric_decision(wps, metric, k, z, g)
                if ok:
                    best = (g, c, u)
                    hi_i = mid - 1
                else:
                    lo_i = mid + 1
            if best is None:
                # hi_r is always feasible: Gonzalez covers everything
                g = hi_r
                ok, c, u = _geometric_decision(wps, metric, k, z, g)
                best = (g, c, u)
            guess, centers, uncovered = best

    centers_idx = np.asarray(centers, dtype=int)
    # Report the coverage radius actually achieved by the chosen centers:
    # it is at most 3*guess (the decision procedure covered all but weight z
    # within 3*guess) and at least opt, so the certificate
    # opt <= radius <= 3(1+tol)*opt is preserved while often being tighter.
    achieved = coverage_radius(wps, wps.points[centers_idx], z, metric)
    radius = float(min(3.0 * guess, achieved))
    d = nearest_center_distances(wps, wps.points[centers_idx], metric)
    uncovered = d > radius + 1e-9 * max(1.0, radius)
    return GreedyResult(centers_idx, radius, float(guess), uncovered)
