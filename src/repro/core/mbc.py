"""Mini-ball coverings (Definition 2, Algorithm 1, Lemmas 3-7).

A *mini-ball covering* (MBC) of a weighted point set ``P`` is a weighted
subset ``P*`` together with a partition of ``P`` into groups, one per
``q in P*``, such that every group lies in a ball of radius
``eps * opt_{k,z}(P)`` around its representative and carries the group's
total weight.  Lemma 3 shows an MBC is an ``(eps,k,z)``-coreset; Lemma 4
shows MBCs of a partition union to an MBC of the whole; Lemma 5 shows MBCs
compose transitively with error ``eps + gamma + eps*gamma``.

:func:`mbc_construction` is Algorithm 1 (``MBCConstruction``): call
``Greedy(P,k,z)`` for a radius ``r in [opt, 3 opt]``, then greedily absorb
everything within ``eps * r / 3`` of an arbitrary remaining point.  Lemma 7
bounds the output size by ``k * (12/eps)^d + z``.

:func:`update_coreset` is Algorithm 4 (``UpdateCoreset``): the same greedy
absorption at an explicitly given distance ``delta`` (used by the streaming
algorithm when it doubles its radius estimate).

Performance (the kernels refactor): the absorption loop no longer scans
all ``n`` points per representative.  For the built-in norms it buckets
the input into a :class:`repro.geometry.PointGrid` with cell side just
above ``delta`` (the same sorted-int64-code index the grid-pruned
greedy decision procedure uses) and evaluates distances only against the
``3^d`` neighboring cells of each representative — any point within
``delta`` under L2/L1/Linf is within ``delta`` per coordinate, so no
candidate is missed and results are bit-identical to the scalar loop
(:func:`repro.core._greedy_reference.greedy_absorb_reference`; proven by
the parity tests).  When the embedded radius search ran its grid-pruned
path, the absorption reuses the search's persistent
:class:`~repro.geometry.PointGridHierarchy` (via
:attr:`~repro.core.greedy.GreedyResult.geometry`) and snaps its
absorption radius to an existing ladder level instead of re-bucketing
the same points.  Arbitrary metrics, high dimensions and degenerate
cell sides fall back to scanning only the still-unabsorbed points, which
shrinks as the balls absorb.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from ..geometry.grid import PointGrid
from .greedy import charikar_greedy
from .metrics import Metric, _KernelMetric, get_metric
from .points import WeightedPointSet

__all__ = [
    "MiniBallCovering",
    "mbc_construction",
    "update_coreset",
    "compose_errors",
    "mbc_size_bound",
]


@dataclass(frozen=True)
class MiniBallCovering:
    """An ``(eps,k,z)``-mini-ball covering.

    Attributes
    ----------
    coreset:
        The weighted representative set ``P*`` (a subset of the input
        coordinates, re-weighted).
    assignment:
        For each input point, the index into ``coreset`` of its
        representative (``assignment[i] == j`` means input point ``i`` lies
        in the mini-ball of ``coreset`` row ``j``).
    mini_ball_radius:
        The absolute absorption radius used (``eps * r / 3`` in
        Algorithm 1, ``delta`` in Algorithm 4).  Every input point is
        within this distance of its representative.
    greedy_radius:
        The radius ``r`` returned by ``Greedy`` (``nan`` when the covering
        was built by :func:`update_coreset`, which takes ``delta``
        directly).
    eps:
        The error parameter the covering was built for.
    """

    coreset: WeightedPointSet
    assignment: np.ndarray
    mini_ball_radius: float
    greedy_radius: float
    eps: float

    @property
    def size(self) -> int:
        """Number of representatives ``|P*|``."""
        return len(self.coreset)


#: 3^d neighbor cells per representative; beyond this the enumeration
#: overtakes the saved distance work
_GRID_MAX_DIM = 4
#: below this the grid's setup cost exceeds the whole scalar loop
_GRID_MIN_POINTS = 192


def _greedy_absorb(
    wps: WeightedPointSet,
    delta: float,
    metric: Metric,
    order: "np.ndarray | None" = None,
    hierarchy=None,
) -> "tuple[WeightedPointSet, np.ndarray]":
    """Greedy absorption: repeatedly take the first remaining point and
    absorb every remaining point within ``delta`` of it.

    ``order`` optionally permutes the 'arbitrary point' choice (Algorithm 1
    line 4 allows any order; tests use this to check order-independence of
    the guarantees).  Returns the representative set and the assignment.

    ``hierarchy`` optionally passes the
    :class:`~repro.geometry.PointGridHierarchy` an embedded radius search
    already built over *the same points* (identity-checked): the
    absorption then snaps ``delta`` to one of its levels — deriving a new
    level at cell cost if needed — instead of re-bucketing every point.

    Bit-identical to the pre-refactor scalar loop; only the candidate set
    each representative's distances are evaluated against shrinks — to the
    nearby grid cells when the metric/dimension admit the grid, or to the
    still-unabsorbed points otherwise.
    """
    n = len(wps)
    if n == 0:
        return wps, np.zeros(0, dtype=np.int64)
    pts = wps.points
    if order is None:
        order = np.arange(n)
    remaining = np.ones(n, dtype=bool)
    assignment = np.full(n, -1, dtype=np.int64)
    rep_rows: list[int] = []
    rep_weights: list[int] = []
    tol = 1e-9 * max(1.0, delta)
    cutoff = delta + tol

    grid = None
    # only the built-in norm metrics operate on actual coordinates with
    # dist <= delta implying per-coordinate distance <= delta (L2 and L1
    # dominate Linf), making the 3^d neighborhood a sound candidate
    # superset; an isinstance gate (not metric.name, which Callable/
    # PrecomputedMetric document as cosmetic) keeps e.g. a
    # PrecomputedMetric(name="euclidean") off the grid — its "points" are
    # element ids, meaningless to bucket
    if (
        n >= _GRID_MIN_POINTS
        and pts.shape[1] <= _GRID_MAX_DIM
        and isinstance(metric, _KernelMetric)
    ):
        if (
            hierarchy is not None
            and hierarchy.pts is pts
            and cutoff > 0
            and np.isfinite(cutoff)
        ):
            # the radius search already indexed these exact points: snap
            # delta to its ladder (query_point re-derives the ring the
            # cutoff needs at that level's side, so the superset stays
            # sound at any snapped side)
            grid = hierarchy.grid_for(cutoff)
        if grid is None:
            # side slightly above the cutoff: the 1e-6 slack strictly
            # dominates the float rounding of pts/side under the
            # |cell index| < 2^30 guard, so two points within `cutoff`
            # always land in adjacent cells (ring 1); the
            # max(|coord|)-based floor keeps the guard satisfiable for
            # tiny cutoffs (larger cells are always sound)
            maxabs = float(np.max(np.abs(pts))) if pts.size else 0.0
            side = max(cutoff * (1.0 + 1e-6), maxabs * 2.0**-29)
            grid = PointGrid.build(pts, side, max_ring=1)

    if grid is not None:
        for idx in order:
            if not remaining[idx]:
                continue
            cand = grid.query_point(int(idx), cutoff)
            d = metric.to_set(pts[idx], pts[cand])
            sel = cand[remaining[cand] & (d <= cutoff)]
            assignment[sel] = len(rep_rows)
            rep_rows.append(int(idx))
            rep_weights.append(int(wps.weights[sel].sum()))
            remaining[sel] = False
    else:
        rem = np.arange(n)
        for idx in order:
            if not remaining[idx]:
                continue
            d = metric.to_set(pts[idx], pts[rem])
            absorbed = d <= cutoff
            sel = rem[absorbed]
            assignment[sel] = len(rep_rows)
            rep_rows.append(int(idx))
            rep_weights.append(int(wps.weights[sel].sum()))
            remaining[sel] = False
            rem = rem[~absorbed]
    coreset = WeightedPointSet(
        pts[rep_rows], np.asarray(rep_weights, dtype=np.int64)
    )
    return coreset, assignment


def mbc_construction(
    wps: WeightedPointSet,
    k: int,
    z: int,
    eps: float,
    metric: "Metric | str | None" = None,
    radius: "float | None" = None,
    order: "np.ndarray | None" = None,
    dtype=None,
    kernel_chunk: "int | None" = None,
    kernel_backend: "str | None" = None,
    prune: "str | None" = None,
    decision_jobs: "int | None" = None,
) -> MiniBallCovering:
    """Algorithm 1: ``MBCConstruction(P, k, z, eps)``.

    Parameters
    ----------
    radius:
        Optional externally supplied ``Greedy`` radius (the MPC algorithms
        reuse radii computed in an earlier round); when ``None``,
        ``Greedy(P,k,z)`` is invoked.
    order:
        Optional permutation controlling which 'arbitrary point' is picked
        first (the guarantee holds for any order).
    dtype, kernel_chunk, kernel_backend, prune, decision_jobs:
        Distance-kernel and pruning knobs for the embedded radius search
        (see :func:`repro.core.greedy.charikar_greedy`); the absorption
        itself always evaluates exact float64 distances.  When the radius
        search ran its grid-pruned path, the absorption reuses its
        persistent grid ladder instead of re-bucketing the points.

    Returns an ``(eps', k, z)``-mini-ball covering with
    ``eps' = eps * (r / (3 opt)) <= eps`` — i.e. at least as good as
    requested (Lemma 7).
    """
    if eps < 0:
        raise ValueError("eps must be non-negative")
    metric = get_metric(metric)
    hierarchy = None
    if radius is None:
        res = charikar_greedy(
            wps, k, z, metric, dtype=dtype, kernel_chunk=kernel_chunk,
            kernel_backend=kernel_backend,
            prune=prune if prune is not None else "auto",
            decision_jobs=decision_jobs,
        )
        radius = res.radius
        hierarchy = res.geometry
    delta = eps * radius / 3.0
    coreset, assignment = _greedy_absorb(
        wps, delta, metric, order, hierarchy=hierarchy
    )
    return MiniBallCovering(
        coreset=coreset,
        assignment=assignment,
        mini_ball_radius=delta,
        greedy_radius=float(radius),
        eps=float(eps),
    )


def update_coreset(
    wps: WeightedPointSet,
    delta: float,
    metric: "Metric | str | None" = None,
    order: "np.ndarray | None" = None,
) -> MiniBallCovering:
    """Algorithm 4: ``UpdateCoreset(Q, delta)``.

    Greedy absorption at absolute distance ``delta``; used by the streaming
    algorithm (Algorithm 3 line 10) after doubling its radius estimate.
    """
    metric = get_metric(metric)
    coreset, assignment = _greedy_absorb(wps, delta, metric, order)
    return MiniBallCovering(
        coreset=coreset,
        assignment=assignment,
        mini_ball_radius=float(delta),
        greedy_radius=float("nan"),
        eps=float("nan"),
    )


def compose_errors(gamma: float, eps: float) -> float:
    """Lemma 5: composing a ``gamma``-MBC with an ``eps``-MBC of it yields
    an ``(eps + gamma + eps*gamma)``-MBC of the original set."""
    return eps + gamma + eps * gamma


def mbc_size_bound(k: int, z: int, eps: float, d: int) -> int:
    """Lemma 7's size bound ``k * ceil(12/eps)^d + z`` on Algorithm 1's
    output (doubling dimension ``d``)."""
    if eps <= 0:
        raise ValueError("size bound needs eps > 0")
    return int(k * ceil(12.0 / eps) ** d + z)
