"""Coreset definitions and verification (Definition 1, Lemma 3).

An ``(eps,k,z)``-coreset ``P*`` of ``P`` must satisfy

1. ``(1-eps) opt_{k,z}(P) <= opt_{k,z}(P*) <= (1+eps) opt_{k,z}(P)``, and
2. for any ``k`` congruent balls leaving uncovered weight at most ``z`` on
   ``P*``, expanding their radius by ``eps * opt_{k,z}(P)`` leaves
   uncovered weight at most ``z`` on ``P``.

The verifiers here certify these conditions *empirically*: condition (1)
exactly via brute force on small instances (or within certified greedy
bounds otherwise), condition (2) on a caller-supplied or randomly sampled
family of ball sets.  They are the backbone of the test-suite and of the
quality experiment E9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .greedy import charikar_greedy
from .metrics import Metric, get_metric
from .mbc import MiniBallCovering
from .points import WeightedPointSet
from .radius import nearest_center_distances
from .solver import brute_force_opt

__all__ = [
    "CoresetCheck",
    "verify_weight_property",
    "verify_covering_property",
    "verify_sandwich",
    "verify_expansion_property",
    "verify_mbc",
    "opt_bounds",
]


@dataclass(frozen=True)
class CoresetCheck:
    """Outcome of a coreset verification.

    Attributes
    ----------
    ok:
        Whether every checked condition held.
    details:
        Human-readable summary of each condition, for test failure
        messages and experiment reports.
    """

    ok: bool
    details: str


def verify_weight_property(
    original: WeightedPointSet, coreset: WeightedPointSet
) -> CoresetCheck:
    """Definition 2 property (1): total weight is preserved."""
    ok = original.total_weight == coreset.total_weight
    return CoresetCheck(
        ok,
        f"weight: original={original.total_weight} coreset={coreset.total_weight}",
    )


def _rowwise_distances(
    a: np.ndarray, b: np.ndarray, metric: Metric
) -> np.ndarray:
    """Distance between corresponding rows of ``a`` and ``b``."""
    name = getattr(metric, "name", "")
    diffs = a - b
    if name in ("euclidean", "l2"):
        return np.linalg.norm(diffs, axis=1)
    if name == "chebyshev":
        return np.abs(diffs).max(axis=1)
    if name == "manhattan":
        return np.abs(diffs).sum(axis=1)
    return np.array([metric.distance(a[i], b[i]) for i in range(len(a))])


def verify_covering_property(
    original: WeightedPointSet,
    mbc: MiniBallCovering,
    max_distance: float,
    metric: "Metric | str | None" = None,
) -> CoresetCheck:
    """Definition 2 property (2): every point is within ``max_distance`` of
    its representative (callers pass ``eps * opt`` or the construction's
    ``mini_ball_radius``)."""
    metric = get_metric(metric)
    if len(original) == 0:
        return CoresetCheck(True, "covering: empty input")
    if len(mbc.assignment) != len(original):
        return CoresetCheck(False, "covering: assignment length mismatch")
    if (mbc.assignment < 0).any():
        return CoresetCheck(False, "covering: unassigned points present")
    reps = mbc.coreset.points[mbc.assignment]
    d = _rowwise_distances(original.points, reps, metric)
    worst = float(d.max())
    tol = 1e-9 * max(1.0, max_distance)
    ok = worst <= max_distance + tol
    return CoresetCheck(ok, f"covering: worst={worst:.6g} allowed={max_distance:.6g}")


def opt_bounds(
    wps: WeightedPointSet,
    k: int,
    z: int,
    metric: "Metric | str | None" = None,
    exact_limit: int = 14,
) -> "tuple[float, float]":
    """Certified interval ``[lo, hi]`` containing ``opt_{k,z}(wps)``.

    Exact (``lo == hi``) via brute force when the instance is small;
    otherwise the Charikar certificate ``[r/3, r]``.
    """
    metric = get_metric(metric)
    if len(wps) <= exact_limit:
        r = brute_force_opt(wps, k, z, metric, max_points=exact_limit).radius
        return r, r
    res = charikar_greedy(wps, k, z, metric)
    return res.radius / 3.0, res.radius


def verify_sandwich(
    original: WeightedPointSet,
    coreset: WeightedPointSet,
    k: int,
    z: int,
    eps: float,
    metric: "Metric | str | None" = None,
    exact_limit: int = 14,
) -> CoresetCheck:
    """Definition 1 condition (1), the ``(1 +- eps)`` sandwich.

    Uses exact optima when both sets are small enough, otherwise certified
    greedy intervals (the check then allows the interval slack, so it can
    only fail when the condition is *provably* violated).
    """
    metric = get_metric(metric)
    lo_p, hi_p = opt_bounds(original, k, z, metric, exact_limit)
    lo_c, hi_c = opt_bounds(coreset, k, z, metric, exact_limit)
    tol = 1e-9 * max(1.0, hi_p)
    # provable violation: even the most favourable values in the intervals
    # cannot satisfy the sandwich
    lower_ok = hi_c >= (1.0 - eps) * lo_p - tol
    upper_ok = lo_c <= (1.0 + eps) * hi_p + tol
    ok = lower_ok and upper_ok
    return CoresetCheck(
        ok,
        "sandwich: opt(P) in "
        f"[{lo_p:.6g},{hi_p:.6g}], opt(P*) in [{lo_c:.6g},{hi_c:.6g}], eps={eps}",
    )


def verify_expansion_property(
    original: WeightedPointSet,
    coreset: WeightedPointSet,
    k: int,
    z: int,
    eps: float,
    metric: "Metric | str | None" = None,
    ball_sets: "list[tuple[np.ndarray, float]] | None" = None,
    rng: "np.random.Generator | None" = None,
    trials: int = 20,
    opt_value: "float | None" = None,
) -> CoresetCheck:
    """Definition 1 condition (2) on a family of ball sets.

    For each ``(centers, r)`` with uncovered coreset weight at most ``z``,
    checks that uncovered *original* weight within radius
    ``r + eps*opt`` is at most ``z``.  When ``ball_sets`` is ``None``, a
    random family is sampled: centers drawn from the coreset points and
    radii spanning ``[0, 2*opt]``.
    """
    metric = get_metric(metric)
    if opt_value is None:
        opt_value = opt_bounds(original, k, z, metric)[1]
    if ball_sets is None:
        rng = rng or np.random.default_rng(0)
        ball_sets = []
        for _ in range(trials):
            kk = int(rng.integers(1, k + 1))
            if len(coreset) == 0:
                continue
            idx = rng.choice(len(coreset), size=min(kk, len(coreset)), replace=False)
            r = float(rng.uniform(0.0, 2.0 * max(opt_value, 1e-12)))
            ball_sets.append((coreset.points[idx], r))
    failures = []
    for centers, r in ball_sets:
        centers = np.atleast_2d(np.asarray(centers, dtype=float))
        if len(centers) > k:
            raise ValueError("ball set uses more than k balls")
        dc = nearest_center_distances(coreset, centers, metric)
        tol = 1e-9 * max(1.0, r)
        w_unc_core = int(coreset.weights[dc > r + tol].sum())
        if w_unc_core > z:
            continue  # premise not met; nothing to check
        r_exp = r + eps * opt_value
        dp = nearest_center_distances(original, centers, metric)
        tol2 = 1e-9 * max(1.0, r_exp)
        w_unc_orig = int(original.weights[dp > r_exp + tol2].sum())
        if w_unc_orig > z:
            failures.append((r, w_unc_core, w_unc_orig))
    ok = not failures
    return CoresetCheck(
        ok,
        f"expansion: {len(ball_sets)} ball sets checked, "
        f"{len(failures)} violations {failures[:3]}",
    )


def verify_mbc(
    original: WeightedPointSet,
    mbc: MiniBallCovering,
    k: int,
    z: int,
    eps: float,
    metric: "Metric | str | None" = None,
    exact_limit: int = 14,
) -> CoresetCheck:
    """Full Definition 2 + Lemma 3 verification of a mini-ball covering:
    weight preservation, covering distance at most ``eps * opt`` (certified
    via an upper bound on opt), and the Definition 1 sandwich."""
    metric = get_metric(metric)
    checks = [verify_weight_property(original, mbc.coreset)]
    _, hi = opt_bounds(original, k, z, metric, exact_limit)
    checks.append(verify_covering_property(original, mbc, eps * hi, metric))
    checks.append(
        verify_sandwich(original, mbc.coreset, k, z, eps, metric, exact_limit)
    )
    ok = all(c.ok for c in checks)
    return CoresetCheck(ok, "; ".join(c.details for c in checks))
