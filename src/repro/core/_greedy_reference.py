"""Frozen pre-refactor reference implementations (do NOT optimize).

These are verbatim copies of the ``Greedy(P,k,z)`` decision procedures and
the greedy absorption loop as they existed before the kernels-layer
refactor.  They exist for two reasons:

* the parity tests (``tests/test_greedy_parity.py``) prove the rewritten
  incremental implementations in :mod:`repro.core.greedy` and
  :mod:`repro.core.mbc` are bit-for-bit identical to these on float64
  integer-weighted instances, and
* the benchmark runner (``benchmarks/run_all.py`` /
  ``benchmarks/bench_core_kernels.py``) measures speedups against them.

The one intentional deviation: the pre-refactor code decided feasibility
via ``int(weights[uncovered].sum()) <= z``, which truncates fractional
weights (uncovered weight ``z + 0.9`` passed as feasible).  All inputs the
library constructs carry integer weights, for which the truncation is a
no-op, so the copies here keep the historical expression — the float-safe
comparison lives only in the production code, with its own regression
test.
"""

from __future__ import annotations

import numpy as np

from .greedy import GreedyResult, gonzalez
from .metrics import Metric, get_metric
from .points import WeightedPointSet
from .radius import coverage_radius, nearest_center_distances

__all__ = [
    "greedy_disks_reference",
    "geometric_decision_reference",
    "charikar_greedy_reference",
    "greedy_absorb_reference",
]


def greedy_disks_reference(
    D: np.ndarray, weights: np.ndarray, k: int, z: int, guess: float
) -> "tuple[bool, list[int], np.ndarray]":
    """Pre-refactor Charikar decision: a fresh ``O(n^2)`` ball-membership
    matvec for every pick."""
    n = len(weights)
    tol = 1e-9 * max(1.0, guess)
    uncovered = np.ones(n, dtype=bool)
    centers: list[int] = []
    within_g = D <= guess + tol
    within_3g = D <= 3.0 * guess + tol
    w = weights.astype(float)
    for _ in range(min(k, n)):
        if not uncovered.any():
            break
        gain = within_g @ (w * uncovered)
        v = int(np.argmax(gain))
        centers.append(v)
        uncovered &= ~within_3g[v]
    feasible = int(weights[uncovered].sum()) <= z
    return feasible, centers, uncovered


def geometric_decision_reference(
    wps: WeightedPointSet, metric: Metric, k: int, z: int, guess: float
) -> "tuple[bool, list[int], np.ndarray]":
    """Pre-refactor chunked decision: the full chunked distance matrix is
    re-derived for every pick of every guess."""
    pts, w = wps.points, wps.weights.astype(float)
    n = len(pts)
    tol = 1e-9 * max(1.0, guess)
    uncovered = np.ones(n, dtype=bool)
    centers: list[int] = []
    chunk = 1024
    for _ in range(min(k, n)):
        if not uncovered.any():
            break
        best_gain, best_v = -1.0, -1
        wu = w * uncovered
        for i0 in range(0, n, chunk):
            block = metric.pairwise(pts[i0 : i0 + chunk], pts)
            gains = (block <= guess + tol) @ wu
            j = int(np.argmax(gains))
            if gains[j] > best_gain:
                best_gain, best_v = float(gains[j]), i0 + j
        centers.append(best_v)
        uncovered &= metric.to_set(pts[best_v], pts) > 3.0 * guess + tol
    feasible = int(wps.weights[uncovered].sum()) <= z
    return feasible, centers, uncovered


def charikar_greedy_reference(
    wps: WeightedPointSet,
    k: int,
    z: int,
    metric: "Metric | str | None" = None,
    tol: float = 0.05,
    pairwise_limit: int = 2048,
) -> GreedyResult:
    """Pre-refactor ``Greedy(P, k, z)``: same radius-search structure as
    :func:`repro.core.greedy.charikar_greedy`, driving the non-incremental
    decision procedures above."""
    metric = get_metric(metric)
    n = len(wps)
    if n == 0 or wps.total_weight <= z or k >= n:
        idx = np.arange(min(k, n), dtype=int)
        return GreedyResult(idx, 0.0, 0.0, np.zeros(n, dtype=bool))
    if k <= 0:
        raise ValueError("k must be positive")

    if n <= pairwise_limit:
        D = metric.pairwise(wps.points, wps.points)
        ok0, centers0, uncovered0 = greedy_disks_reference(D, wps.weights, k, z, 0.0)
        if ok0:
            return GreedyResult(
                np.asarray(centers0, dtype=int), 0.0, 0.0, uncovered0
            )
        cand = np.unique(D)
        cand = cand[cand > 0]
        if len(cand) == 0:
            return GreedyResult(
                np.zeros(1, dtype=int), 0.0, 0.0, np.zeros(n, dtype=bool)
            )
        lo, hi = 0, len(cand) - 1
        feasible_hi = greedy_disks_reference(D, wps.weights, k, z, float(cand[hi]))
        if not feasible_hi[0]:
            raise RuntimeError("greedy decision failed at maximum candidate radius")
        best = (float(cand[hi]),) + feasible_hi[1:]
        while lo <= hi:
            mid = (lo + hi) // 2
            g = float(cand[mid])
            ok, centers, uncovered = greedy_disks_reference(D, wps.weights, k, z, g)
            if ok:
                best = (g, centers, uncovered)
                hi = mid - 1
            else:
                lo = mid + 1
        guess, centers, uncovered = best
    else:
        ok0, centers0, uncovered0 = geometric_decision_reference(
            wps, metric, k, z, 0.0
        )
        if ok0:
            return GreedyResult(np.asarray(centers0, dtype=int), 0.0, 0.0, uncovered0)
        gz = gonzalez(wps, k, metric)
        hi_r = max(gz.radius, 1e-300)
        lo_r = hi_r / max(4.0 * n, 4.0)
        ok, centers, uncovered = geometric_decision_reference(wps, metric, k, z, lo_r)
        if ok:
            guess = lo_r
        else:
            ratio = 1.0 + tol
            m = int(np.ceil(np.log(hi_r / lo_r) / np.log(ratio))) + 1
            lo_i, hi_i = 0, m
            best = None
            while lo_i <= hi_i:
                mid = (lo_i + hi_i) // 2
                g = min(lo_r * ratio**mid, hi_r)
                ok, c, u = geometric_decision_reference(wps, metric, k, z, g)
                if ok:
                    best = (g, c, u)
                    hi_i = mid - 1
                else:
                    lo_i = mid + 1
            if best is None:
                g = hi_r
                ok, c, u = geometric_decision_reference(wps, metric, k, z, g)
                best = (g, c, u)
            guess, centers, uncovered = best

    centers_idx = np.asarray(centers, dtype=int)
    achieved = coverage_radius(wps, wps.points[centers_idx], z, metric)
    radius = float(min(3.0 * guess, achieved))
    d = nearest_center_distances(wps, wps.points[centers_idx], metric)
    uncovered = d > radius + 1e-9 * max(1.0, radius)
    return GreedyResult(centers_idx, radius, float(guess), uncovered)


def greedy_absorb_reference(
    wps: WeightedPointSet,
    delta: float,
    metric: Metric,
    order: "np.ndarray | None" = None,
) -> "tuple[WeightedPointSet, np.ndarray]":
    """Pre-refactor greedy absorption: one full-length ``to_set`` per
    representative, scanning all ``n`` points every time."""
    n = len(wps)
    if n == 0:
        return wps, np.zeros(0, dtype=np.int64)
    pts = wps.points
    if order is None:
        order = np.arange(n)
    remaining = np.ones(n, dtype=bool)
    assignment = np.full(n, -1, dtype=np.int64)
    rep_rows: list[int] = []
    rep_weights: list[int] = []
    tol = 1e-9 * max(1.0, delta)
    for idx in order:
        if not remaining[idx]:
            continue
        d = metric.to_set(pts[idx], pts)
        absorbed = remaining & (d <= delta + tol)
        assignment[absorbed] = len(rep_rows)
        rep_rows.append(int(idx))
        rep_weights.append(int(wps.weights[absorbed].sum()))
        remaining &= ~absorbed
    coreset = WeightedPointSet(
        pts[rep_rows], np.asarray(rep_weights, dtype=np.int64)
    )
    return coreset, assignment
