"""`repro.scenarios` — named workloads and the cross-backend matrix.

The backend registry (:mod:`repro.api`) answers "which algorithms can I
run"; this package answers "on what, and how well".  It mirrors the
registry pattern for *workloads*:

* :class:`Scenario` / :class:`ScenarioInstance` — a registered recipe
  and one materialized, reproducible point stream (with reference
  radius, tags and per-backend-family session options);
* the **scenario registry** — ``register_scenario`` / ``get_scenario``
  / ``available_scenarios`` / ``scenario_table``, under which the
  built-in catalogue (:mod:`repro.scenarios.builtin`) self-registers:
  drift, adversarial insertion orders, duplicate floods, outlier
  bursts, high dimension, integer grids and real datasets;
* the **evaluation matrix** (:mod:`repro.scenarios.matrix`) — runs any
  backends over any scenarios through :class:`~repro.api.KCenterSession`
  and emits a quality/runtime matrix as JSON + markdown.

Quickstart::

    from repro.scenarios import available_scenarios, get_scenario, run_matrix

    inst = get_scenario("outlier-burst").make(quick=True, seed=0)
    result = run_matrix(["outlier-burst"], ["offline", "insertion-only"],
                        quick=True)
    print(result.to_markdown())

CLI: ``python -m repro.experiments matrix --quick``.
"""

from .datasets import (
    DATASETS,
    DatasetSource,
    DatasetUnavailableError,
    default_data_dir,
    load_dataset,
    load_dataset_source,
)
from .matrix import (
    DEFAULT_BACKENDS,
    CellResult,
    MatrixResult,
    cell_cache_params,
    replicate_seeds,
    run_cell,
    run_matrix,
)
from .registry import (
    DuplicateScenarioError,
    ScenarioError,
    UnknownScenarioError,
    available_scenarios,
    get_scenario,
    register_scenario,
    scenario_table,
    unregister_scenario,
)
from .scenario import Scenario, ScenarioInstance
from . import builtin  # noqa: F401 - importing registers the builtins

__all__ = [
    "DATASETS",
    "DEFAULT_BACKENDS",
    "CellResult",
    "DatasetSource",
    "DatasetUnavailableError",
    "DuplicateScenarioError",
    "MatrixResult",
    "Scenario",
    "ScenarioError",
    "ScenarioInstance",
    "UnknownScenarioError",
    "available_scenarios",
    "cell_cache_params",
    "default_data_dir",
    "get_scenario",
    "load_dataset",
    "load_dataset_source",
    "register_scenario",
    "replicate_seeds",
    "run_cell",
    "run_matrix",
    "scenario_table",
    "unregister_scenario",
]
