"""The built-in scenario catalogue.

Each factory materializes a :class:`~repro.scenarios.ScenarioInstance`
deterministically from ``(quick, seed)`` and registers itself under a
stable name, so ``available_scenarios()`` is the single source of truth
for the evaluation matrix, the CLI and the docs catalogue.

The catalogue deliberately spans the failure modes the paper's models
differ on: drift (streaming recompression churn), adversarial insertion
orders (the §4 lower-bound prefixes), duplicate floods (weight
concentration), outlier bursts at the stream tail (outlier-budget
stress), high dimension (the ``1/eps^d`` blow-up), integer grids (the
fully-dynamic input domain) and real point clouds.
"""

from __future__ import annotations

import os

import numpy as np

from ..api.spec import ProblemSpec
from ..lowerbounds.insertion_only import Lemma12Instance
from ..store import PointStore, StoreError
from ..workloads.synthetic import (
    clustered_with_outliers,
    drifting_stream,
    integer_workload,
)
from .datasets import default_data_dir, load_dataset
from .registry import register_scenario
from .scenario import ScenarioInstance

__all__ = ["DEFAULT_BATCHES"]

#: how many ``extend`` batches a stream is split into (storage checkpoints)
DEFAULT_BATCHES = 8


def _split(points: np.ndarray, num: int = DEFAULT_BATCHES) -> "list[np.ndarray]":
    """Split a stream into ``num`` arrival-order batches."""
    return [b for b in np.array_split(np.asarray(points), num) if len(b)]


@register_scenario(
    "clustered-baseline",
    tags=("baseline",),
    description="Gaussian mixture with planted shell outliers, shuffled order",
)
def _clustered_baseline(quick: bool = False, seed: int = 0) -> ScenarioInstance:
    """Well-separated Gaussian clusters plus uniform shell outliers."""
    n, k, z = (400, 4, 8) if quick else (4000, 4, 32)
    rng = np.random.default_rng(seed)
    w = clustered_with_outliers(n, k, z, d=2, rng=rng)
    spec = ProblemSpec(k=k, z=z, eps=0.5, dim=2, seed=seed)
    return ScenarioInstance("clustered-baseline", spec, _split(w.points))


@register_scenario(
    "concentric-drift",
    tags=("drift",),
    description="concentric Gaussian clusters whose labels drift over the stream",
)
def _concentric_drift(quick: bool = False, seed: int = 0) -> ScenarioInstance:
    """Clusters on a ring; sampling drifts from the first to the last.

    Early stream batches are dominated by cluster 0, late batches by
    cluster ``k-1`` — a coreset that recompresses greedily against early
    structure must keep absorbing new mass elsewhere.
    """
    n, k, z = (400, 4, 8) if quick else (4000, 4, 32)
    rng = np.random.default_rng(seed)
    angles = 2.0 * np.pi * np.arange(k) / k
    centers = 12.0 * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    t = np.linspace(0.0, 1.0, n)
    # drift the label distribution: P(cluster i | t) peaks as t crosses i/k
    logits = -8.0 * (t[:, None] - np.arange(k)[None, :] / max(k - 1, 1)) ** 2
    probs = np.exp(logits)
    probs /= probs.sum(axis=1, keepdims=True)
    labels = np.array([rng.choice(k, p=p) for p in probs])
    pts = centers[labels] + rng.normal(0.0, 0.6, size=(n, 2))
    out_at = rng.choice(n, size=z, replace=False)
    dirs = rng.normal(size=(z, 2))
    dirs /= np.maximum(np.linalg.norm(dirs, axis=1, keepdims=True), 1e-12)
    pts[out_at] = dirs * rng.uniform(80.0, 160.0, size=(z, 1))
    spec = ProblemSpec(k=k, z=z, eps=0.5, dim=2, seed=seed)
    return ScenarioInstance("concentric-drift", spec, _split(pts))


@register_scenario(
    "drifting-clusters",
    tags=("drift",),
    description="cluster centres move continuously (workloads.drifting_stream)",
)
def _drifting_clusters(quick: bool = False, seed: int = 0) -> ScenarioInstance:
    """The library's drifting-stream generator: centres with velocity."""
    n, k, z = (400, 4, 8) if quick else (4000, 4, 32)
    rng = np.random.default_rng(seed)
    pts = drifting_stream(n, k, z, d=2, drift=0.05, rng=rng)
    spec = ProblemSpec(k=k, z=z, eps=0.5, dim=2, seed=seed)
    return ScenarioInstance("drifting-clusters", spec, _split(pts))


@register_scenario(
    "adversarial-insertion",
    tags=("adversarial",),
    description="the §4.1 lower-bound prefix: outliers first, then dense clusters",
)
def _adversarial_insertion(quick: bool = False, seed: int = 0) -> ScenarioInstance:
    """The Lemma 12 adversary's prefix as an insertion order.

    All ``z`` outliers arrive before any cluster structure exists, then
    the ``(lambda+1)^d``-point clusters arrive one cluster at a time —
    the exact prefix the storage lower bound is proved on.  ``seed``
    only rotates the cluster arrival order (the construction itself is
    deterministic).
    """
    k, z, lb_eps = (8, 8, 1.0 / 32.0) if quick else (12, 32, 1.0 / 64.0)
    inst = Lemma12Instance.build(k=k, z=z, d=2, eps=lb_eps)
    rng = np.random.default_rng(seed)
    order = rng.permutation(inst.k - 2 * inst.d + 1)
    clusters = [inst.cluster_points[inst.cluster_index == i] for i in order]
    pts = np.concatenate([inst.outliers] + clusters)
    spec = ProblemSpec(k=k, z=z, eps=0.5, dim=2, seed=seed)
    return ScenarioInstance(
        "adversarial-insertion", spec, _split(pts),
        notes=f"Lemma 12 construction: lambda={inst.lam}, h={inst.h}, r={inst.r:.4g}",
    )


@register_scenario(
    "adversarial-sorted",
    tags=("adversarial",),
    description="clustered data in lexicographic order (worst case for "
                "contiguous partitioning)",
)
def _adversarial_sorted(quick: bool = False, seed: int = 0) -> ScenarioInstance:
    """Clustered stream sorted lexicographically by coordinates.

    Contiguous MPC partitions then receive spatially coherent slices
    (each machine sees few clusters and few outliers), and streaming
    algorithms see each cluster exhausted before the next begins.
    """
    n, k, z = (400, 4, 8) if quick else (4000, 4, 32)
    rng = np.random.default_rng(seed)
    w = clustered_with_outliers(n, k, z, d=2, rng=rng)
    pts = w.points[np.lexsort(w.points.T[::-1])]
    spec = ProblemSpec(k=k, z=z, eps=0.5, dim=2, seed=seed)
    return ScenarioInstance("adversarial-sorted", spec, _split(pts))


@register_scenario(
    "duplicate-flood",
    tags=("heavy-duplicates",),
    description="a handful of distinct sites repeated thousands of times",
)
def _duplicate_flood(quick: bool = False, seed: int = 0) -> ScenarioInstance:
    """Exact duplicates dominate the stream; weight handling is the test.

    Only ``3k`` distinct in-cluster sites exist; every structure that
    stores points with multiplicity (instead of merging weights) blows
    up, and integer-weight arithmetic in the radius search is exercised
    at high multiplicity.
    """
    n, k, z = (400, 4, 8) if quick else (6000, 4, 32)
    rng = np.random.default_rng(seed)
    sites = rng.uniform(-15.0, 15.0, size=(3 * k, 2))
    idx = rng.integers(0, len(sites), size=n - z)
    pts = sites[idx]
    dirs = rng.normal(size=(z, 2))
    dirs /= np.maximum(np.linalg.norm(dirs, axis=1, keepdims=True), 1e-12)
    outliers = dirs * rng.uniform(90.0, 180.0, size=(z, 1))
    where = np.sort(rng.choice(n, size=z, replace=False))
    stream = np.insert(pts, np.clip(where - np.arange(z), 0, len(pts)),
                       outliers, axis=0)
    spec = ProblemSpec(k=k, z=z, eps=0.5, dim=2, seed=seed)
    return ScenarioInstance("duplicate-flood", spec, _split(stream))


@register_scenario(
    "outlier-burst",
    tags=("outlier-burst",),
    description="clean clustered prefix, all outliers burst in the final batches",
)
def _outlier_burst(quick: bool = False, seed: int = 0) -> ScenarioInstance:
    """Every planted outlier arrives in the last ~5% of the stream.

    A structure that spent its outlier budget absorbing cluster mass
    early has nothing left when the burst hits; the paper's separate
    ``z`` budget is exactly what this stresses.
    """
    n, k, z = (400, 4, 16) if quick else (4000, 4, 64)
    rng = np.random.default_rng(seed)
    w = clustered_with_outliers(n, k, z, d=2, rng=rng, shuffle=False)
    # unshuffled: rows [0, n-z) are cluster points, [n-z, n) the outliers
    spec = ProblemSpec(k=k, z=z, eps=0.5, dim=2, seed=seed)
    return ScenarioInstance("outlier-burst", spec, _split(w.points))


@register_scenario(
    "sliding-churn",
    tags=("drift", "churn"),
    description="regime changes: cluster centres redrawn every quarter of "
                "the stream",
)
def _sliding_churn(quick: bool = False, seed: int = 0) -> ScenarioInstance:
    """Piecewise-stationary stream with abrupt regime changes.

    Centres are redrawn from scratch every quarter, so structure built
    for one regime is dead weight in the next; the instance's ``window``
    marks the final regime as the region a sliding-window backend is
    judged over.
    """
    n, k, z = (400, 4, 8) if quick else (4000, 4, 32)
    rng = np.random.default_rng(seed)
    regimes = 4
    per = n // regimes
    chunks = []
    for _ in range(regimes):
        centers = rng.uniform(-20.0, 20.0, size=(k, 2))
        labels = rng.integers(0, k, size=per)
        chunks.append(centers[labels] + rng.normal(0.0, 0.5, size=(per, 2)))
    pts = np.concatenate(chunks)[: n]
    out_at = rng.choice(n, size=z, replace=False)
    dirs = rng.normal(size=(z, 2))
    dirs /= np.maximum(np.linalg.norm(dirs, axis=1, keepdims=True), 1e-12)
    pts[out_at] = dirs * rng.uniform(100.0, 200.0, size=(z, 1))
    spec = ProblemSpec(k=k, z=z, eps=0.5, dim=2, seed=seed)
    return ScenarioInstance("sliding-churn", spec, _split(pts), window=per)


@register_scenario(
    "high-dim",
    tags=("high-dim",),
    description="Gaussian clusters in d=16 (the 1/eps^d blow-up regime)",
)
def _high_dim(quick: bool = False, seed: int = 0) -> ScenarioInstance:
    """Moderate-``n`` clusters in 16 dimensions.

    Size thresholds of the streaming/window structures scale like
    ``1/eps^d``; high ambient dimension is where those thresholds and
    the kernels' norm accumulations are stressed.
    """
    n, k, z, d = (400, 4, 8, 16) if quick else (3000, 4, 32, 16)
    rng = np.random.default_rng(seed)
    w = clustered_with_outliers(n, k, z, d=d, rng=rng)
    spec = ProblemSpec(k=k, z=z, eps=0.5, dim=d, seed=seed)
    return ScenarioInstance("high-dim", spec, _split(w.points))


@register_scenario(
    "integer-grid",
    tags=("baseline", "integer"),
    description="clustered points on the integer grid [Delta]^2 "
                "(fully-dynamic input domain)",
)
def _integer_grid(quick: bool = False, seed: int = 0) -> ScenarioInstance:
    """Clusters on ``[Delta]^d`` — the only stream the sketch-based
    fully-dynamic backends can ingest, so this is the scenario that puts
    them into the cross-backend matrix."""
    n, k, z, delta = (400, 4, 8, 1024) if quick else (4000, 4, 32, 1024)
    rng = np.random.default_rng(seed)
    w = integer_workload(n, k, z, delta_universe=delta, d=2,
                         cluster_radius=8, rng=rng)
    spec = ProblemSpec(k=k, z=z, eps=0.5, dim=2, seed=seed)
    return ScenarioInstance(
        "integer-grid", spec, _split(w.points), delta_universe=delta,
    )


def _ooc_clustered_store(n: int, k: int, z: int, d: int, seed: int,
                         chunk_rows: int):
    """Build (or reuse) an on-disk clustered store, chunk by chunk.

    Deterministic in ``(n, k, z, d, seed)``: cluster centres come from
    ``rng(seed)`` and each chunk's labels/noise from an independent
    ``rng([seed, chunk_index])`` child, so the stream is identical
    whether it is generated in one process or resumed — and the store is
    cached under ``$REPRO_DATA_DIR/stores`` keyed by those parameters,
    so repeated sweeps (and the bench ``--store-dir`` path) generate the
    geometry once.  The writer's working set is one chunk: n=10^7 is
    generated without ever holding more than ``chunk_rows`` rows.

    The ``z`` planted outliers sit on a far shell at deterministic,
    evenly spaced stream positions — spread out (not a tail burst) so
    the bounded reference sample sees a proportional share of them.
    """
    root = os.path.join(default_data_dir(), "stores")
    path = os.path.join(root, f"ooc-clustered-n{n}-k{k}-z{z}-d{d}-s{seed}")
    try:
        return PointStore.open(path)
    except StoreError:
        pass
    os.makedirs(root, exist_ok=True)
    rng0 = np.random.default_rng(seed)
    centers = rng0.uniform(-40.0, 40.0, size=(k, d))
    out_at = np.linspace(0, n - 1, num=z, dtype=np.int64) if z else \
        np.zeros(0, dtype=np.int64)
    store = PointStore.create(path, chunk_rows=chunk_rows, overwrite=True)
    try:
        for ci, lo in enumerate(range(0, n, chunk_rows)):
            b = min(chunk_rows, n - lo)
            rng = np.random.default_rng([seed, ci])
            labels = rng.integers(0, k, size=b)
            pts = centers[labels] + rng.normal(0.0, 0.8, size=(b, d))
            local = out_at[(out_at >= lo) & (out_at < lo + b)] - lo
            if len(local):
                dirs = rng.normal(size=(len(local), d))
                dirs /= np.maximum(
                    np.linalg.norm(dirs, axis=1, keepdims=True), 1e-12
                )
                pts[local] = dirs * rng.uniform(
                    400.0, 800.0, size=(len(local), 1)
                )
            store.append(pts)
    except BaseException:
        store.abort()
        raise
    return store.finalize()


def _ooc_instance(name: str, n: int, chunk_rows: int, quick_n: int,
                  quick: bool, seed: int) -> ScenarioInstance:
    k, z = 8, 64
    if quick:
        n, chunk_rows = quick_n, max(quick_n // 8, 1)
    source = _ooc_clustered_store(n, k, z, d=2, seed=seed,
                                  chunk_rows=chunk_rows)
    spec = ProblemSpec(k=k, z=z, eps=0.5, dim=2, seed=seed)
    return ScenarioInstance(
        name, spec, source=source, chunk_rows=chunk_rows,
        reference_sample=4096,
        notes=f"on-disk store {source.path} ({n} rows, "
              f"{source.n_chunks} chunks of {chunk_rows})",
    )


@register_scenario(
    "ooc-clustered-1m",
    tags=("out-of-core", "scale"),
    description="n=10^6 clustered stream served from a memory-mapped "
                "on-disk store (quick: n=2*10^4)",
)
def _ooc_clustered_1m(quick: bool = False, seed: int = 0) -> ScenarioInstance:
    """Out-of-core clustered stream at n=10^6 (see ROADMAP items 2-3).

    The stream never exists in RAM: it is generated chunk-wise into a
    cached :class:`~repro.store.PointStore` and replayed by memory-
    mapping one chunk at a time.  The reference radius comes from a
    deterministic 4096-row subsample.  Tagged ``"scale"`` and excluded
    from the default sweep — opt in by name.
    """
    return _ooc_instance("ooc-clustered-1m", 1_000_000, 65_536, 20_000,
                         quick, seed)


@register_scenario(
    "ooc-clustered-10m",
    tags=("out-of-core", "scale"),
    description="n=10^7 clustered stream served from a memory-mapped "
                "on-disk store (quick: n=4*10^4)",
)
def _ooc_clustered_10m(quick: bool = False, seed: int = 0) -> ScenarioInstance:
    """The n=10^7 scaling workload the kernel PRs (7/8) made feasible:
    ~160 MB of geometry on disk, streamed through a working set of one
    65536-row chunk.  Same construction as ``ooc-clustered-1m``."""
    return _ooc_instance("ooc-clustered-10m", 10_000_000, 65_536, 40_000,
                         quick, seed)


@register_scenario(
    "real-iris",
    tags=("real", "on-disk"),
    description="UCI Iris point cloud (downloaded and cached on disk)",
)
def _real_iris(quick: bool = False, seed: int = 0) -> ScenarioInstance:
    """The UCI Iris measurements as a real 4-d point cloud.

    Loaded through :func:`repro.scenarios.datasets.load_dataset`
    (cache -> on-disk csv -> download); raises
    :class:`~repro.scenarios.datasets.DatasetUnavailableError` when the
    data cannot be obtained, which the matrix records as an
    ``"unavailable"`` cell.  ``seed`` shuffles the arrival order.
    """
    pts = load_dataset("iris")
    rng = np.random.default_rng(seed)
    pts = pts[rng.permutation(len(pts))]
    spec = ProblemSpec(k=3, z=5, eps=0.5, dim=int(pts.shape[1]), seed=seed)
    return ScenarioInstance(
        "real-iris", spec, _split(pts, 4),
        notes="UCI Iris, labels dropped, order shuffled by seed",
    )
