"""The `Scenario` / `ScenarioInstance` pair: named, tagged, reproducible
workloads that any registered backend can be evaluated on.

A :class:`Scenario` is a registered *recipe* — a factory plus metadata —
while a :class:`ScenarioInstance` is one concrete materialization: an
ordered point stream (in batches, so harnesses get natural storage
checkpoints), the :class:`~repro.api.ProblemSpec` the stream was planted
for, and a reference radius to normalize solution quality against.

The instance also knows how to configure each backend family for its
data (``session_options``): sliding-window backends get a window and a
radius ladder derived from the data's bounding box, fully-dynamic
backends get the integer universe — or are declared incompatible when
the stream is not integral.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from ..api.spec import ProblemSpec
from ..core.points import WeightedPointSet
from ..store import DEFAULT_CHUNK_ROWS, PointSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.registry import BackendInfo

__all__ = ["Scenario", "ScenarioInstance"]


@dataclass
class ScenarioInstance:
    """One materialized workload: a point stream plus evaluation context.

    The stream is carried either as in-RAM ``batches`` (the classic
    form) or as a lazy :class:`~repro.store.PointSource` (the
    out-of-core form, for datasets ≫ RAM).  Harnesses that iterate
    :meth:`chunks` work identically over both; the dense views
    (:attr:`points`, :meth:`point_set`) stay available for list-backed
    instances and *materialize* a source-backed stream — out-of-core
    consumers must not touch them.

    Parameters
    ----------
    name:
        Scenario name the instance came from.
    spec:
        The :class:`~repro.api.ProblemSpec` the stream was planted for
        (``k`` true clusters, ``z`` planted outliers, ``dim``, ``seed``).
    batches:
        The stream, in arrival order, as a list of ``(b_i, d)`` arrays.
        Harnesses feed one batch per ``extend`` call and may checkpoint
        storage between batches.  ``None`` for source-backed instances.
    reference_radius:
        Planted/ground-truth radius when the construction certifies one;
        ``None`` means :meth:`reference` computes a greedy reference on
        the full stream instead.
    delta_universe:
        Integer universe size when every coordinate is integral in
        ``1..delta_universe`` (enables the fully-dynamic backends);
        ``None`` for real-valued streams.
    window:
        Sliding-window length the scenario is meant to be judged over;
        ``None`` means the full stream (the window backends then cover
        everything, so cross-backend ratios stay comparable).
    notes:
        Free-form provenance (construction constants, dataset source).
    source:
        Lazy stream carrier for out-of-core instances (mutually
        exclusive with ``batches``).
    chunk_rows:
        Batch size :meth:`chunks` reads a ``source`` with; chunk
        boundaries are a function of this alone, so a checkpoint's
        chunk index identifies an exact stream position.
    reference_sample:
        Row cap for the sampled greedy reference of source-backed
        streams without a planted radius (default 4096).
    """

    name: str
    spec: ProblemSpec
    batches: "list[np.ndarray] | None" = None
    reference_radius: "float | None" = None
    delta_universe: "int | None" = None
    window: "int | None" = None
    notes: str = ""
    source: "PointSource | None" = field(default=None, repr=False)
    chunk_rows: "int | None" = None
    reference_sample: "int | None" = None
    _points: "np.ndarray | None" = field(default=None, repr=False)
    _reference: "float | None" = field(default=None, repr=False)
    _scale: "float | None" = field(default=None, repr=False)

    def __post_init__(self):
        if (self.batches is None) == (self.source is None):
            raise ValueError(
                "ScenarioInstance needs exactly one stream carrier: "
                "batches or source"
            )

    # -- stream views ------------------------------------------------------

    def chunks(self, start: int = 0):
        """The stream as an ordered batch generator (the ingest path).

        List-backed instances yield their ``batches`` unchanged;
        source-backed instances read fixed ``chunk_rows``-sized chunks
        lazily (for store/memmap sources each yield is a view of the
        mapping — the working set is one chunk).  ``start`` skips that
        many leading batches *without reading them* where the source
        supports seeking — the resume path of checkpointed sweeps.
        """
        if self.source is not None:
            for pts, _w in self.source.chunks(self.chunk_rows, start=start):
                yield pts
        else:
            for b in self.batches[int(start):]:
                yield np.atleast_2d(b)

    @property
    def num_batches(self) -> int:
        """Number of batches :meth:`chunks` yields from the start."""
        if self.source is not None:
            cr = int(self.chunk_rows or DEFAULT_CHUNK_ROWS)
            return -(-len(self.source) // cr)
        return len(self.batches)

    @property
    def points(self) -> np.ndarray:
        """The full stream as one ``(n, d)`` array (cached concat).

        Materializes source-backed streams — in-RAM consumers only.
        """
        if self._points is None:
            if self.source is not None:
                self._points = np.asarray(
                    self.source.materialize()[0], dtype=float
                )
            else:
                self._points = np.concatenate(
                    [np.atleast_2d(b) for b in self.batches], axis=0
                )
        return self._points

    @property
    def n(self) -> int:
        """Total number of stream points."""
        if self.source is not None:
            return len(self.source)
        return len(self.points)

    @property
    def dim(self) -> int:
        """Ambient dimension of the stream."""
        if self.source is not None:
            return int(self.source.dim)
        return int(self.points.shape[1])

    def point_set(self) -> WeightedPointSet:
        """The full stream as a unit-weight :class:`WeightedPointSet`."""
        return WeightedPointSet.from_points(np.asarray(self.points, dtype=float))

    # -- evaluation context ------------------------------------------------

    def reference(self) -> float:
        """The radius solutions are normalized against.

        Returns the planted ``reference_radius`` when the construction
        certifies one; otherwise runs the Charikar--Khuller greedy
        3-approximation on the (merged) full stream once and caches the
        result — the same solver every backend's coreset is solved with,
        so the ratio isolates coreset quality from solver quality.

        Source-backed streams without a planted radius never
        materialize: the greedy runs on a deterministic bounded
        subsample (``reference_sample`` rows, default 4096) instead —
        an approximate normalizer, but identical across backends, so
        cross-backend ratios remain comparable.
        """
        if self.reference_radius is not None:
            return float(self.reference_radius)
        if self._reference is None:
            from ..core.greedy import charikar_greedy

            if self.source is not None:
                cap = int(self.reference_sample or 4096)
                pts = np.asarray(
                    self.source.sample(cap, self.chunk_rows), dtype=float
                )
                P = WeightedPointSet.from_points(pts).merged()
            else:
                P = self.point_set().merged()
            res = charikar_greedy(
                P, self.spec.k, self.spec.z, self.spec.resolved_metric
            )
            self._reference = float(res.radius)
        return self._reference

    def prime_reference(self, value: float) -> None:
        """Install a precomputed reference radius (sweep optimization:
        the matrix resolves it once per scenario, not once per cell)."""
        self._reference = float(value)

    def scale(self) -> float:
        """Bounding-box diagonal of the stream (the data's distance
        scale).  Source-backed streams compute it by streaming min/max
        over chunks (cached — one pass regardless of how many backends
        ask)."""
        if self._scale is None:
            if self.source is not None:
                if len(self.source) == 0:
                    return 1.0
                mins, maxs = self.source.bounds(self.chunk_rows)
                span = maxs - mins
            else:
                pts = self.points
                if len(pts) == 0:
                    return 1.0
                span = np.ptp(pts, axis=0)
            self._scale = float(max(np.linalg.norm(span), 1e-9))
        return self._scale

    # -- backend adaptation ------------------------------------------------

    def compatible(self, info: "BackendInfo") -> bool:
        """Whether ``info``'s backend can ingest this stream at all.

        The only structural incompatibility today: fully-dynamic backends
        sketch over an integer universe, so they require an integral
        stream (``delta_universe`` set).
        """
        if info.model == "fully-dynamic":
            return self.delta_universe is not None
        return True

    def session_options(self, info: "BackendInfo") -> dict:
        """Backend-family options adapted to this stream.

        Parameters
        ----------
        info:
            The backend registration the options are for.

        Returns
        -------
        dict
            Keyword options for :class:`~repro.api.KCenterSession` —
            ``delta_universe`` for fully-dynamic backends, a
            ``window``/``r_min``/``r_max`` triple (derived from the
            stream's bounding box) for sliding-window backends, empty
            otherwise.
        """
        if info.model == "fully-dynamic":
            return {"delta_universe": self.delta_universe}
        if info.model == "sliding-window":
            diag = self.scale()
            return {
                "window": int(self.window or self.n),
                "r_min": diag / 4096.0,
                "r_max": diag * 1.001,
            }
        return {}


@dataclass(frozen=True)
class Scenario:
    """A registered workload recipe: factory plus catalogue metadata.

    Attributes
    ----------
    name:
        Registry key.
    factory:
        ``factory(quick, seed) -> ScenarioInstance``.
    tags:
        Classification tags (``"drift"``, ``"adversarial"``, ...).
    description:
        One-line summary for catalogues and the CLI.
    """

    name: str
    factory: "Callable[..., ScenarioInstance]" = field(compare=False)
    tags: "tuple[str, ...]" = ()
    description: str = ""

    def make(self, quick: bool = False, seed: int = 0) -> ScenarioInstance:
        """Materialize the scenario.

        Parameters
        ----------
        quick:
            Reduced stream length (CI/smoke sizes).
        seed:
            Root seed; equal ``(quick, seed)`` pairs produce equal
            streams (enforced by the determinism tests).
        """
        inst = self.factory(quick=quick, seed=seed)
        if not isinstance(inst, ScenarioInstance):
            raise TypeError(
                f"scenario {self.name!r} factory returned "
                f"{type(inst).__name__}, expected ScenarioInstance"
            )
        return inst
