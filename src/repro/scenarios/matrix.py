"""The cross-backend evaluation matrix.

Runs any set of registered backends over any set of registered scenarios
through the one :class:`~repro.api.KCenterSession` facade and records a
quality/runtime cell per ``(scenario, backend)`` pair:

* **radius ratio** — the backend's greedy-solved radius over the
  scenario's reference radius (same solver on the full stream), so the
  ratio isolates what the *coreset* lost;
* **peak storage** — the largest storage figure the backend reported at
  any batch checkpoint (``stored`` / ``storage_cells`` / ``buffered``);
* **wall time** — seconds spent inside backend calls (ingest + solve).

Cells are independent, so the harness shards them across a
:class:`repro.engine` executor (``--jobs``) and caches each cell in a
:class:`~repro.engine.ResultsCache` keyed by the *fully resolved* cell
identity — scenario, backend, quick, seed, the complete spec dict
(including ``dtype``/``kernel_chunk``/``decision_jobs``) and the derived
session options — so a knob change can never serve a stale cell.  With
``--checkpoint-dir`` each in-flight cell additionally saves a durable
session snapshot (:mod:`repro.persist`) after every batch: a killed
sweep resumes *mid-stream* from the checkpoint (bit-identical to the
uninterrupted run) instead of replaying the cell from scratch.

With ``--replicates N`` every ``(scenario, backend)`` pair runs ``N``
times, each replicate on its own stream seed derived through the
engine's ``SeedSequence.spawn`` discipline
(:func:`repro.engine.derive_seeds`), each replicate a separate
cached/checkpointed cell.  The emitters then report mean, bootstrap CI
and quantiles per pair (:mod:`repro.verify`) plus a Holm-corrected
pairwise backend significance matrix instead of single-seed point
estimates.

The result renders as JSON (machine-readable, schema documented in
``docs/benchmarks.md``) and as a markdown table (human-readable, quoted
by the docs scenario catalogue)::

    python -m repro.experiments matrix --quick
    python -m repro.experiments matrix --scenarios drift,adversarial \\
        --backends insertion-only,mpc-two-round --jobs 4
    python -m repro.experiments matrix --quick --replicates 5
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import asdict, dataclass, fields

from ..api.registry import UnknownBackendError, available_backends, get_backend
from ..api.session import KCenterSession
from ..engine import ResultsCache, default_results_dir, derive_seeds, get_executor
from ..persist import read_snapshot
from .datasets import DatasetUnavailableError
from .registry import UnknownScenarioError, available_scenarios, get_scenario

__all__ = [
    "DEFAULT_BACKENDS",
    "CellResult",
    "MatrixResult",
    "cell_cache_params",
    "replicate_seeds",
    "run_cell",
    "run_matrix",
    "default_scenario_names",
    "resolve_scenario_names",
    "matrix_main",
]

#: backends the matrix sweeps when none are named: one per computational
#: model that can ingest arbitrary real-valued streams, plus the
#: fully-dynamic sketch (exercised by the integer scenarios, skipped
#: elsewhere).
DEFAULT_BACKENDS = (
    "offline",
    "insertion-only",
    "sliding-window",
    "mpc-two-round",
    "dynamic",
)

#: scenario tags excluded from the default sweep (opt in by name/tag):
#: "real" needs network-fetched datasets, "scale" streams n>=10^6 points
#: from an on-disk store — both far too heavy for a default/CI sweep
DEFAULT_EXCLUDED_TAGS = ("real", "scale")


@dataclass(frozen=True)
class CellResult:
    """One ``(scenario, backend)`` cell of the evaluation matrix.

    Attributes
    ----------
    scenario, backend:
        Registry names of the pair.
    status:
        ``"ok"``, ``"skipped"`` (structurally incompatible),
        ``"unavailable"`` (real dataset not obtainable) or ``"error"``.
    radius:
        Greedy radius solved on the backend's coreset (``ok`` only).
    reference_radius:
        The scenario's reference radius (same greedy solver, full
        stream).
    radius_ratio:
        ``radius / reference_radius`` — the quality figure.
    coreset_size:
        Points in the backend's final coreset.
    peak_storage:
        Largest storage figure reported at any batch checkpoint.
    updates:
        Stream points ingested.
    wall_time:
        Seconds inside backend calls (ingest + coreset + solve).
    note:
        Error text / skip reason / scenario provenance.
    seed:
        The stream seed this cell materialized with (the root seed for
        single runs, a :func:`replicate_seeds`-derived child otherwise).
    replicate:
        Replicate index within the sweep (``0`` for single runs).
    """

    scenario: str
    backend: str
    status: str
    radius: "float | None" = None
    reference_radius: "float | None" = None
    radius_ratio: "float | None" = None
    coreset_size: "int | None" = None
    peak_storage: "int | None" = None
    updates: "int | None" = None
    wall_time: "float | None" = None
    note: str = ""
    seed: "int | None" = None
    replicate: "int | None" = None


def replicate_seeds(seed: int, replicates: int) -> "list[int]":
    """Per-replicate stream seeds via the engine's spawn discipline.

    A single replicate keeps the root seed itself, so ``--replicates 1``
    is byte-identical to a plain sweep (and reuses its cached cells).
    With ``N > 1`` replicates each seed is the first word of child ``i``
    of ``SeedSequence(seed).spawn(N)`` (:func:`repro.engine.derive_seeds`),
    so replicate ``i``'s stream depends only on ``(seed, i)`` — never on
    sweep order, job count, or which process materializes it.
    """
    if replicates < 1:
        raise ValueError(f"replicates must be >= 1, got {replicates}")
    if replicates == 1:
        return [int(seed)]
    return [int(ss.generate_state(1)[0])
            for ss in derive_seeds(int(seed), replicates)]


#: stats keys probed (in order) for a backend's current storage figure
_STORAGE_KEYS = ("stored", "storage_cells", "buffered")

#: env hook for the CI kill-and-resume smoke: after this many checkpoint
#: writes (process-wide) the sweep dies with SystemExit, simulating a
#: mid-stream crash at a deterministic point
_KILL_ENV = "REPRO_MATRIX_KILL_AFTER"

#: process-wide checkpoint-write counter backing the kill hook
_ckpt_writes = 0


def _storage_probe(stats: dict) -> "int | None":
    """Extract the backend's storage figure from a ``stats()`` dict."""
    for key in _STORAGE_KEYS:
        v = stats.get(key)
        if v is not None:
            return int(v)
    return None


def _resolved_spec(spec, dtype: "str | None", kernel_chunk: "int | None",
                   decision_jobs: "int | None" = None):
    """The scenario's spec with sweep-level kernel knobs layered on."""
    changes = {}
    if dtype is not None:
        changes["dtype"] = dtype
    if kernel_chunk is not None:
        changes["kernel_chunk"] = int(kernel_chunk)
    if decision_jobs is not None:
        changes["decision_jobs"] = int(decision_jobs)
    return spec.replace(**changes) if changes else spec


def cell_cache_params(scenario: str, backend: str, quick: bool, seed: int,
                      spec, options: dict) -> dict:
    """The fully resolved cache identity of one matrix cell.

    Includes the complete spec dict (every knob, ``dtype`` and
    ``kernel_chunk`` included) and the derived backend session options,
    so changing any of them misses the cache instead of serving a stale
    cell computed under different parameters.
    """
    return {
        "scenario": scenario,
        "backend": backend,
        "quick": bool(quick),
        "seed": int(seed),
        "spec": spec.as_dict(),
        "options": dict(options),
    }


def _checkpoint_path(checkpoint_dir: str, params: dict) -> str:
    """Per-cell checkpoint file, keyed by the full cell identity."""
    return os.path.join(
        checkpoint_dir, ResultsCache.key("matrix-ckpt", params) + ".ckpt"
    )


def _load_checkpoint(path: str, scenario: str, backend: str):
    """Resume state from a cell checkpoint: ``(session, next_batch, peak)``.

    Any unreadable/mismatched checkpoint degrades to a fresh start —
    resuming is an optimization, never a correctness requirement.
    """
    try:
        manifest, state = read_snapshot(path)
        extra = manifest.get("extra", {})
        if extra.get("scenario") != scenario or extra.get("backend") != backend:
            return None, 0, None
        sess = KCenterSession.from_snapshot(manifest, state, backend=backend)
        peak = extra.get("peak")
        return sess, int(extra.get("batch", 0)), (
            int(peak) if peak is not None else None
        )
    except Exception:
        return None, 0, None


def _maybe_simulated_kill() -> None:
    """Die (SystemExit) once the env-configured checkpoint budget is hit."""
    global _ckpt_writes
    _ckpt_writes += 1
    limit = os.environ.get(_KILL_ENV)
    if limit and _ckpt_writes >= int(limit):
        raise SystemExit(
            f"simulated kill after {_ckpt_writes} checkpoint writes "
            f"({_KILL_ENV}={limit})"
        )


def run_cell(
    scenario_name: str,
    backend_name: str,
    quick: bool = False,
    seed: int = 0,
    reference: "float | None" = None,
    dtype: "str | None" = None,
    kernel_chunk: "int | None" = None,
    decision_jobs: "int | None" = None,
    checkpoint_dir: "str | None" = None,
    instance=None,
    replicate: int = 0,
) -> CellResult:
    """Evaluate one backend on one scenario (one matrix cell).

    Materializes the scenario, drives the backend through a
    :class:`~repro.api.KCenterSession` batch by batch (probing storage
    at every checkpoint), solves the final coreset with the greedy
    3-approximation, and normalizes against the scenario's reference
    radius.  Structural incompatibility and unavailable datasets come
    back as non-``ok`` statuses instead of raising.

    Parameters
    ----------
    scenario_name, backend_name:
        Registry names of the pair.
    quick, seed:
        Materialization parameters for the scenario.
    reference:
        Precomputed reference radius for this ``(scenario, quick,
        seed)`` triple, so sweeps solve the full-stream reference once
        per scenario instead of once per cell; ``None`` computes it
        here.
    dtype, kernel_chunk:
        Distance-kernel knobs layered onto the scenario's spec
        (:mod:`repro.kernels`); part of the cell's cache identity.
    decision_jobs:
        Thread count for sharded grid-pruned greedy decisions
        (:func:`repro.core.greedy.charikar_greedy`); bit-identical to
        serial, so results match for any value, but it is still part of
        the cell's cache identity (it is a spec field).
    checkpoint_dir:
        When set, the in-flight session is snapshotted here after every
        batch (streaming-model backends) or on a power-of-two batch
        cadence (buffered offline/MPC backends, whose snapshots rewrite
        the whole input prefix), and an existing matching checkpoint
        resumes the stream mid-cell — bit-identical to the
        uninterrupted run (the completed cell removes its checkpoint).
    instance:
        Pre-materialized :class:`~repro.scenarios.ScenarioInstance`
        (sweep optimization); ``None`` materializes here.
    replicate:
        Replicate index recorded in the cell (provenance only — the
        replicate's stream identity is fully carried by ``seed``).
    """
    scenario = get_scenario(scenario_name)
    info = get_backend(backend_name)
    ids = {"seed": int(seed), "replicate": int(replicate)}
    if instance is None:
        try:
            instance = scenario.make(quick=quick, seed=seed)
        except DatasetUnavailableError as exc:
            return CellResult(scenario_name, backend_name, "unavailable",
                              note=str(exc), **ids)
    inst = instance
    if reference is not None:
        inst.prime_reference(reference)
    if not inst.compatible(info):
        return CellResult(
            scenario_name, backend_name, "skipped",
            note=f"{info.model} backend incompatible with this stream",
            **ids,
        )
    try:
        spec = _resolved_spec(inst.spec, dtype, kernel_chunk, decision_jobs)
        options = inst.session_options(info)
        ckpt = None
        if checkpoint_dir:
            params = cell_cache_params(
                scenario_name, backend_name, quick, seed, spec, options
            )
            ckpt = _checkpoint_path(checkpoint_dir, params)
        sess, start, peak = None, 0, None
        if ckpt is not None and os.path.exists(ckpt):
            sess, start, peak = _load_checkpoint(ckpt, scenario_name,
                                                 backend_name)
        if sess is None:
            sess = KCenterSession.from_spec(
                spec, backend=backend_name, **options
            )
            start, peak = 0, None
        # buffered backends (offline, MPC) snapshot their whole input
        # prefix, so a per-batch cadence would write 1+2+...+B batches —
        # quadratic I/O for backends whose ingest is a cheap append.  A
        # power-of-two cadence keeps their total checkpoint I/O linear
        # while streaming-model backends (small state, real per-batch
        # work) still checkpoint every batch.
        buffered = info.model in ("offline", "mpc")
        # inst.chunks(start) seeks past already-ingested batches without
        # reading them (source-backed streams memory-map one chunk at a
        # time), so a resumed out-of-core cell re-reads nothing.  The
        # checkpoint cursor is (chunk index, row offset): "batch" is the
        # next chunk to ingest, "row" the rows consumed — for
        # fixed-chunk sources the two are redundant by construction
        # (row = batch * chunk_rows until the last chunk), and the row
        # field lets a resume validate the stream identity cheaply.
        rows = sess.updates_seen
        for i, batch in enumerate(inst.chunks(start), start=start):
            sess.extend(batch)
            rows += len(batch)
            probe = _storage_probe(sess.backend.stats())
            if probe is not None:
                peak = probe if peak is None else max(peak, probe)
            if ckpt is not None and (not buffered or (i + 1) & i == 0):
                sess.save(ckpt, extra={
                    "scenario": scenario_name, "backend": backend_name,
                    "batch": i + 1, "row": rows, "peak": peak,
                })
                _maybe_simulated_kill()
        sol = sess.solve(method="greedy3")
        ref = inst.reference()
        ratio = float(sol.radius) / ref if ref > 0 else float("inf")
        if peak is not None:
            peak = max(peak, sol.coreset_size)
        if ckpt is not None and os.path.exists(ckpt):
            os.remove(ckpt)  # the finished cell no longer needs it
        return CellResult(
            scenario=scenario_name,
            backend=backend_name,
            status="ok",
            radius=float(sol.radius),
            reference_radius=float(ref),
            radius_ratio=float(ratio),
            coreset_size=int(sol.coreset_size),
            peak_storage=peak,
            updates=int(sol.updates),
            wall_time=float(sol.wall_time),
            note=inst.notes,
            **ids,
        )
    except Exception as exc:  # one bad cell must not kill the sweep
        return CellResult(scenario_name, backend_name, "error",
                          note=f"{type(exc).__name__}: {exc}", **ids)


#: per-process memo of reference radii, keyed ``(scenario, quick, seed)``
_REFERENCES: "dict[tuple, float]" = {}

#: per-process memo of the most recent materialized instance (the
#: resolved cache identity needs the instance, and a sweep visits each
#: scenario once per backend, scenario-major).  Bounded to ONE entry so
#: peak memory stays at ~one stream, not every swept stream at once.
_INSTANCES: "dict[tuple, object]" = {}


def _scenario_instance(scenario: str, quick: bool, seed: int):
    """Materialize (or reuse) the scenario instance for one sweep cell.

    Raises whatever the factory raises (``DatasetUnavailableError`` for
    missing real datasets); failures are never memoized.
    """
    key = (scenario, bool(quick), int(seed))
    inst = _INSTANCES.get(key)
    if inst is None:
        inst = get_scenario(scenario).make(quick=quick, seed=seed)
        _INSTANCES.clear()  # single-entry memo: evict the previous scenario
        _INSTANCES[key] = inst
    return inst


def _scenario_reference(scenario: str, quick: bool, seed: int,
                        cache: "ResultsCache | None",
                        force: bool) -> "float | None":
    """Resolve the scenario's reference radius once per ``(scenario,
    quick, seed)`` — memoized per process and, when a cache is given,
    shared across processes and runs.  Returns ``None`` when the
    scenario cannot be materialized (real dataset unavailable); the
    cell run then reports the failure itself."""
    key = (scenario, bool(quick), int(seed))
    params = {"scenario": scenario, "quick": bool(quick), "seed": int(seed)}
    # the memo is honored even under force: run_matrix clears it at the
    # start of a forced run, so hits here are this run's own recomputes
    if key in _REFERENCES:
        ref = _REFERENCES[key]
        if cache is not None and ("matrix-ref", params) not in cache:
            cache.put("matrix-ref", params, ref)  # backfill a fresh cache dir
        return ref
    if cache is not None and not force:
        hit = cache.get("matrix-ref", params)
        if isinstance(hit, float):
            _REFERENCES[key] = hit
            return hit
    try:
        ref = _scenario_instance(scenario, quick, seed).reference()
    except Exception:
        return None
    _REFERENCES[key] = ref
    if cache is not None:
        cache.put("matrix-ref", params, ref)
    return ref


def _cell_task(task: tuple) -> dict:
    """One unit of matrix fan-out (module-level so process pools pickle
    it); opens its own cache handle and returns the cell as a dict."""
    (scenario, backend, quick, seed, replicate, cache_root, force,
     dtype, kernel_chunk, decision_jobs, checkpoint_dir) = task
    cache = ResultsCache(cache_root) if cache_root else None
    cell_fields = {f.name for f in fields(CellResult)}
    info = get_backend(backend)

    def _valid(hit):
        # schema-validate: a stale entry from another version is a miss
        return isinstance(hit, dict) and hit.get("status") == "ok" \
            and set(hit) == cell_fields

    # the full resolved cache key below needs the materialized instance;
    # dataset-backed cells therefore also keep a cheap alias entry so an
    # unavailable dataset can still serve its last-known-good cell
    alias_params = {"scenario": scenario, "backend": backend,
                    "quick": bool(quick), "seed": int(seed),
                    "replicate": int(replicate),
                    "dtype": dtype, "kernel_chunk": kernel_chunk,
                    "decision_jobs": decision_jobs}
    sc = get_scenario(scenario)
    try:
        # memoized per process: the resolved spec/options the instance
        # yields are what make the cache key immune to knob and
        # derivation changes, and the sweep visits each scenario once
        # per backend
        inst = _scenario_instance(scenario, quick, seed)
    except DatasetUnavailableError as exc:
        if cache is not None and not force:
            hit = cache.get("matrix-cell-alias", alias_params)
            if _valid(hit):
                return hit
        return asdict(CellResult(scenario, backend, "unavailable",
                                 note=str(exc), seed=int(seed),
                                 replicate=int(replicate)))
    spec = _resolved_spec(inst.spec, dtype, kernel_chunk, decision_jobs)
    params = cell_cache_params(
        scenario, backend, quick, seed, spec, inst.session_options(info)
    )
    if cache is not None and not force:
        hit = cache.get("matrix-cell", params)
        if _valid(hit):
            return hit
    ref = _scenario_reference(scenario, quick, seed, cache, force)
    cell = asdict(run_cell(scenario, backend, quick=quick, seed=seed,
                           reference=ref, dtype=dtype,
                           kernel_chunk=kernel_chunk,
                           decision_jobs=decision_jobs,
                           checkpoint_dir=checkpoint_dir, instance=inst,
                           replicate=replicate))
    # only settled results are cached: transient failures ("unavailable",
    # "error") must retry on the next run, and "skipped" is free anyway
    if cache is not None and cell["status"] == "ok":
        cache.put("matrix-cell", params, cell)
        if "real" in sc.tags:
            # factories are deterministic in (quick, seed), so the alias
            # is as precise as the full key while the dataset on disk is
            # unchanged — exactly the last-known-good case it serves
            cache.put("matrix-cell-alias", alias_params, cell)
    return cell


@dataclass
class MatrixResult:
    """A completed sweep: the cell list plus run provenance.

    Attributes
    ----------
    scenarios, backends:
        The swept registry names, in sweep order.
    quick, seed:
        The materialization parameters every cell shared (``seed`` is
        the *root* seed; replicated cells carry their own derived seed).
    cells:
        One :class:`CellResult` per ``(scenario, replicate, backend)``
        triple, in sweep order.
    replicates:
        Replicates per ``(scenario, backend)`` pair (``1`` = the
        classic single-seed sweep).
    alpha:
        Family-wise significance level the emitted verdicts use.
    """

    scenarios: "list[str]"
    backends: "list[str]"
    quick: bool
    seed: int
    cells: "list[CellResult]"
    replicates: int = 1
    alpha: float = 0.05

    def cell(self, scenario: str, backend: str) -> "CellResult | None":
        """The first cell for a pair, or ``None`` when it was not swept."""
        for c in self.cells:
            if c.scenario == scenario and c.backend == backend:
                return c
        return None

    def replicate_cells(self, scenario: str, backend: str) -> "list[CellResult]":
        """Every replicate cell of one pair, in replicate order."""
        return sorted(
            (c for c in self.cells
             if c.scenario == scenario and c.backend == backend),
            key=lambda c: (c.replicate or 0),
        )

    # -- statistical verification ------------------------------------------

    def summary(self) -> "list[dict]":
        """Mean/CI/quantile aggregates per ``(scenario, backend, metric)``.

        Seeded with the sweep's root seed plus a stable digest of each
        group key (:mod:`repro.verify`), so the aggregate — like the
        cells — is byte-identical across ``--jobs`` values.
        """
        from ..verify import summarize_cells

        return summarize_cells(self.cells, seed=self.seed)

    def significance(self) -> dict:
        """Pairwise Holm-corrected backend comparisons per metric.

        Backends are paired on shared ``(scenario, seed)`` streams —
        see :func:`repro.verify.significance_matrix`.
        """
        from ..verify import significance_matrix

        return significance_matrix(self.cells, list(self.backends),
                                   alpha=self.alpha, seed=self.seed)

    # -- serialization -----------------------------------------------------

    def to_json_dict(self) -> dict:
        """The machine-readable document (schema: ``docs/benchmarks.md``).

        Replicated sweeps (``replicates > 1``) additionally carry a
        ``summary`` list (mean/CI/quantiles per pair and metric) and a
        ``significance`` object (the pairwise backend matrix).
        """
        import repro

        doc = {
            "suite": "scenario-matrix",
            "version": repro.__version__,
            "quick": bool(self.quick),
            "seed": int(self.seed),
            "replicates": int(self.replicates),
            "scenarios": list(self.scenarios),
            "backends": list(self.backends),
            "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "cells": [asdict(c) for c in self.cells],
        }
        if self.replicates > 1:
            doc["summary"] = self.summary()
            doc["significance"] = self.significance()
        return doc

    def write_json(self, path: str) -> None:
        """Write :meth:`to_json_dict` to ``path`` (pretty-printed)."""
        with open(path, "w") as fh:
            json.dump(self.to_json_dict(), fh, indent=2)

    def _pivot_entry(self, scenario: str, backend: str) -> str:
        """One radius-ratio pivot cell: a point estimate for single
        sweeps, ``mean [ci_lo, ci_hi]`` over the replicates otherwise."""
        reps = self.replicate_cells(scenario, backend)
        if not reps:
            return ""
        ok = [c for c in reps if c.status == "ok"]
        if not ok:
            return reps[0].status
        if self.replicates <= 1 or len(ok) == 1:
            return f"{ok[0].radius_ratio:.3f}"
        from ..verify import summarize

        s = summarize([c.radius_ratio for c in ok], seed=self.seed,
                      key=(scenario, backend, "radius_ratio"))
        return f"{s.mean:.3f} [{s.ci_lo:.3f}, {s.ci_hi:.3f}]"

    def to_markdown(self) -> str:
        """Render the sweep as markdown.

        A radius-ratio pivot (scenario rows x backend columns; mean and
        bootstrap CI when replicated) followed by the full per-cell
        table; replicated sweeps append the statistical summary and the
        pairwise significance matrix (:mod:`repro.verify`).
        """
        title = "### Radius ratio vs reference (lower is better)"
        if self.replicates > 1:
            title += (f" — mean [95% CI] over {self.replicates} replicates")
        lines = [title, ""]
        header = ["scenario"] + list(self.backends)
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for s in self.scenarios:
            row = [s] + [self._pivot_entry(s, b) for b in self.backends]
            lines.append("| " + " | ".join(row) + " |")
        if self.replicates > 1:
            lines += ["", "### Statistical summary (per metric, "
                          f"over {self.replicates} replicates)", ""]
            cols = ["scenario", "backend", "metric", "n", "mean",
                    "95% CI", "median", "min", "max"]
            lines.append("| " + " | ".join(cols) + " |")
            lines.append("|" + "---|" * len(cols))
            for row in self.summary():
                q = row["quantiles"]
                lines.append(
                    "| " + " | ".join([
                        row["scenario"], row["backend"], row["metric"],
                        str(row["n"]), _fmt(row["mean"]),
                        f"[{_fmt(row['ci_lo'])}, {_fmt(row['ci_hi'])}]",
                        _fmt(q["median"]), _fmt(q["min"]), _fmt(q["max"]),
                    ]) + " |"
                )
            from ..verify import significance_markdown

            lines += ["", significance_markdown(self.significance()).rstrip()]
        lines += ["", "### Full matrix", ""]
        cols = ["scenario", "backend", "rep", "seed", "status", "radius",
                "ratio", "coreset", "peak storage", "updates", "wall s"]
        lines.append("| " + " | ".join(cols) + " |")
        lines.append("|" + "---|" * len(cols))
        for c in self.cells:
            lines.append(
                "| " + " | ".join([
                    c.scenario, c.backend, _fmt(c.replicate), _fmt(c.seed),
                    c.status, _fmt(c.radius), _fmt(c.radius_ratio),
                    _fmt(c.coreset_size), _fmt(c.peak_storage),
                    _fmt(c.updates), _fmt(c.wall_time),
                ]) + " |"
            )
        return "\n".join(lines) + "\n"

    def write_markdown(self, path: str) -> None:
        """Write :meth:`to_markdown` to ``path``."""
        with open(path, "w") as fh:
            fh.write(self.to_markdown())


def _fmt(v) -> str:
    """Compact cell formatting for the markdown table."""
    if v is None:
        return ""
    if isinstance(v, float):
        return f"{v:.3g}" if (v != 0 and abs(v) < 0.01) or abs(v) >= 1000 \
            else f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)


def default_scenario_names() -> "list[str]":
    """The default sweep: every registered scenario not carrying an
    excluded tag (real datasets are opt-in by name or tag)."""
    from . import builtin  # noqa: F401 - importing registers the builtins

    out = []
    for name in available_scenarios():
        sc = get_scenario(name)
        if not any(t in sc.tags for t in DEFAULT_EXCLUDED_TAGS):
            out.append(name)
    return out


def resolve_scenario_names(tokens: "list[str]") -> "list[str]":
    """Expand a CLI scenario selection into registry names.

    Each token may be a scenario name, a tag (expanded to every scenario
    carrying it) or ``"all"``.  Order is preserved, duplicates dropped.

    Raises
    ------
    UnknownScenarioError
        For a token that is neither a name, a tag, nor ``"all"``.
    """
    from . import builtin  # noqa: F401 - importing registers the builtins

    out: "list[str]" = []

    def _add(name):
        if name not in out:
            out.append(name)

    all_names = available_scenarios()
    for tok in tokens:
        tok = tok.strip()
        if not tok:
            continue
        if tok == "all":
            for n in all_names:
                _add(n)
        elif tok in all_names:
            _add(tok)
        else:
            by_tag = available_scenarios(tag=tok)
            if not by_tag:
                tags = sorted({t for n in all_names
                               for t in get_scenario(n).tags})
                raise UnknownScenarioError(
                    f"unknown scenario or tag {tok!r}; scenarios: "
                    f"{all_names}; tags: {tags}"
                )
            for n in by_tag:
                _add(n)
    return out


def run_matrix(
    scenarios: "list[str] | None" = None,
    backends: "list[str] | None" = None,
    *,
    quick: bool = False,
    seed: int = 0,
    replicates: int = 1,
    alpha: float = 0.05,
    executor: "str | None" = None,
    jobs: "int | None" = None,
    cache_root: "str | None" = None,
    force: bool = False,
    dtype: "str | None" = None,
    kernel_chunk: "int | None" = None,
    decision_jobs: "int | None" = None,
    checkpoint_dir: "str | None" = None,
) -> MatrixResult:
    """Sweep ``backends`` x ``scenarios`` and collect the matrix.

    Parameters
    ----------
    scenarios:
        Scenario registry names; ``None`` sweeps
        :func:`default_scenario_names`.
    backends:
        Backend registry names; ``None`` sweeps :data:`DEFAULT_BACKENDS`.
    quick:
        Reduced stream sizes (CI smoke).
    seed:
        Root seed handed to every scenario factory and spec (and, for
        replicated sweeps, to :func:`replicate_seeds`).
    replicates:
        Runs per ``(scenario, backend)`` pair, each on its own derived
        stream seed and each a separately cached/checkpointed cell;
        ``1`` keeps the classic single-seed sweep byte-identical
        (including its cache keys).
    alpha:
        Family-wise significance level for the emitted verdicts
        (replicated sweeps only).
    executor, jobs:
        Cell fan-out (see :func:`repro.engine.get_executor`); ``jobs``
        alone implies a process pool, neither means serial.
    cache_root:
        Cell cache directory; ``None`` disables caching.
    force:
        Recompute cells even when cached.
    dtype, kernel_chunk:
        Distance-kernel knobs layered onto every cell's spec; part of
        each cell's cache identity.
    decision_jobs:
        Sharded-decision thread count layered onto every cell's spec;
        results are bit-identical for any value (deterministic
        index-ordered reduction), which the CI parity step exploits by
        byte-comparing ``--decision-jobs 1`` against ``2``.
    checkpoint_dir:
        Per-cell mid-stream checkpoint directory (see :func:`run_cell`);
        a killed sweep rerun with the same directory resumes in-flight
        cells from their last completed batch.

    Returns
    -------
    MatrixResult
        Cells in ``(scenario, backend)`` sweep order.
    """
    from . import builtin  # noqa: F401 - importing registers the builtins

    scenario_names = (
        list(scenarios) if scenarios is not None else default_scenario_names()
    )
    backend_names = (
        list(backends) if backends is not None else list(DEFAULT_BACKENDS)
    )
    for name in scenario_names:
        get_scenario(name)  # raise early on typos, before any work
    for name in backend_names:
        get_backend(name)
    seeds = replicate_seeds(seed, replicates)
    # scenario-major, then replicate, then backend: consecutive tasks
    # share a (scenario, seed) materialization, so the single-entry
    # per-process instance memo keeps paying under replication
    tasks = [
        (s, b, quick, rep_seed, rep, cache_root, force, dtype, kernel_chunk,
         decision_jobs, checkpoint_dir)
        for s in scenario_names
        for rep, rep_seed in enumerate(seeds)
        for b in backend_names
    ]
    if executor is None and jobs is not None and jobs > 1:
        executor = "process"
    if force:
        _REFERENCES.clear()  # a forced run recomputes each reference once
    exe = get_executor(executor, jobs)
    try:
        cells = [CellResult(**d) for d in exe.map(_cell_task, tasks)]
    finally:
        close = getattr(exe, "close", None)
        if close is not None:
            close()
    return MatrixResult(
        scenarios=scenario_names,
        backends=backend_names,
        quick=quick,
        seed=seed,
        cells=cells,
        replicates=int(replicates),
        alpha=float(alpha),
    )


# ---------------------------------------------------------------------------
# CLI (dispatched from `python -m repro.experiments matrix ...`)
# ---------------------------------------------------------------------------


def build_matrix_parser() -> argparse.ArgumentParser:
    """The ``matrix`` subcommand's argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments matrix",
        description="Run registered backends over registered scenarios and "
                    "emit a quality/runtime matrix (JSON + markdown).",
    )
    parser.add_argument("--scenarios", default=None, metavar="NAMES",
                        help="comma-separated scenario names and/or tags "
                             "(e.g. 'drift,adversarial'), or 'all' "
                             "(default: every non-real scenario)")
    parser.add_argument("--backends", default=None, metavar="NAMES",
                        help="comma-separated backend names, or 'all' "
                             f"(default: {','.join(DEFAULT_BACKENDS)})")
    parser.add_argument("--quick", action="store_true",
                        help="reduced stream sizes (seconds instead of minutes)")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed for scenario streams and specs")
    parser.add_argument("--replicates", type=int, default=1, metavar="N",
                        help="runs per (scenario, backend) pair, each on its "
                             "own SeedSequence-derived stream seed; N > 1 "
                             "emits mean/CI/quantile aggregates and a "
                             "pairwise significance matrix")
    parser.add_argument("--alpha", type=float, default=0.05,
                        help="family-wise significance level for the "
                             "replicated significance matrix (default 0.05)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="shard cells over N processes")
    parser.add_argument("--results-dir", default=None, metavar="DIR",
                        help="cell cache + default output location (default: "
                             "$REPRO_RESULTS_DIR or ./.repro-results)")
    parser.add_argument("--no-cache", action="store_true",
                        help="run without reading or writing cached cells")
    parser.add_argument("--force", action="store_true",
                        help="recompute even when cached cells exist")
    parser.add_argument("--dtype", choices=("float32", "float64"),
                        default=None,
                        help="distance-kernel precision layered onto every "
                             "cell's spec (cache-keyed; default: the "
                             "scenario's own setting)")
    parser.add_argument("--decision-jobs", type=int, default=None,
                        metavar="N", dest="decision_jobs",
                        help="threads for sharded grid-pruned greedy "
                             "decisions (cache-keyed; bit-identical results "
                             "for any N)")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="save a durable session snapshot per cell after "
                             "every batch; a killed sweep rerun with the same "
                             "directory resumes mid-stream (bit-identical to "
                             "an uninterrupted run)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="JSON output path (default: "
                             "<results-dir>/matrix.json)")
    parser.add_argument("--markdown", default=None, metavar="PATH",
                        help="markdown output path (default: "
                             "<results-dir>/matrix.md)")
    parser.add_argument("--list", action="store_true", dest="list_scenarios",
                        help="list registered scenarios and tags, then exit")
    return parser


def matrix_main(argv: "list[str]") -> int:
    """Entry point for ``python -m repro.experiments matrix ...``."""
    from . import builtin  # noqa: F401 - importing registers the builtins
    from .registry import scenario_table

    args = build_matrix_parser().parse_args(argv)
    if args.list_scenarios:
        for sc in scenario_table():
            tags = ",".join(sc.tags)
            print(f"{sc.name:<24} [{tags}] {sc.description}")
        return 0
    if args.jobs < 1:
        print("--jobs must be >= 1")
        return 2
    if args.replicates < 1:
        print("--replicates must be >= 1")
        return 2
    if not 0.0 < args.alpha < 1.0:
        print("--alpha must be in (0, 1)")
        return 2
    if args.decision_jobs is not None and args.decision_jobs < 1:
        print("--decision-jobs must be >= 1")
        return 2

    try:
        scenarios = (
            resolve_scenario_names(args.scenarios.split(","))
            if args.scenarios else None
        )
        backends = None
        if args.backends:
            backends = (
                available_backends() if args.backends.strip() == "all"
                else [b.strip() for b in args.backends.split(",") if b.strip()]
            )
            for b in backends:
                get_backend(b)
    except (UnknownScenarioError, UnknownBackendError) as exc:
        print(exc)
        return 2
    if scenarios is not None and not scenarios:
        print("--scenarios selected nothing; see --list for names and tags")
        return 2
    if backends is not None and not backends:
        print(f"--backends selected nothing; available: {available_backends()}")
        return 2

    results_dir = args.results_dir or default_results_dir()
    cache_root = None if args.no_cache else results_dir
    result = run_matrix(
        scenarios, backends,
        quick=args.quick, seed=args.seed,
        replicates=args.replicates, alpha=args.alpha,
        jobs=args.jobs if args.jobs > 1 else None,
        cache_root=cache_root, force=args.force,
        dtype=args.dtype, decision_jobs=args.decision_jobs,
        checkpoint_dir=args.checkpoint_dir,
    )

    os.makedirs(results_dir, exist_ok=True)
    json_path = args.json or os.path.join(results_dir, "matrix.json")
    md_path = args.markdown or os.path.join(results_dir, "matrix.md")
    for path in (json_path, md_path):
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
    result.write_json(json_path)
    result.write_markdown(md_path)
    print(result.to_markdown())
    print(f"wrote {json_path} and {md_path}")
    return 0
