"""On-disk real-dataset loader with download + cache.

Follows the :class:`repro.engine.ResultsCache` pattern: a cache directory
(``$REPRO_DATA_DIR`` or ``./.repro-data``) holds one ``<name>.npy`` per
dataset plus a JSON sidecar recording provenance (source URL, shape,
fetch time), and writes are atomic (temp file + rename).

Resolution order for :func:`load_dataset`:

1. the cached ``<name>.npy`` in the data directory;
2. a user-dropped ``<name>.csv`` / ``<name>.txt`` in the data directory
   (whitespace- or comma-separated numeric rows — the air-gapped path);
3. a network fetch of the registered source URL (never attempted when
   ``$REPRO_OFFLINE`` is set).

When all three fail the loader raises :class:`DatasetUnavailableError`;
the evaluation matrix records such cells as ``"unavailable"`` instead of
failing the run, so real-data scenarios degrade gracefully on machines
without the files or the network.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

import numpy as np

from ..store import MemmapSource, write_points_npy

__all__ = [
    "DatasetSource",
    "DatasetUnavailableError",
    "DATASETS",
    "default_data_dir",
    "load_dataset",
    "load_dataset_source",
]

#: environment override for the dataset cache location
DATA_DIR_ENV = "REPRO_DATA_DIR"

#: set to any non-empty value to forbid network fetches
OFFLINE_ENV = "REPRO_OFFLINE"


class DatasetUnavailableError(RuntimeError):
    """A real dataset is neither cached, on disk, nor fetchable."""


@dataclass(frozen=True)
class DatasetSource:
    """A registered real dataset: where it lives and how to parse it.

    Attributes
    ----------
    name:
        Cache key (``<name>.npy`` on disk).
    url:
        Source URL of the raw file.
    columns:
        Column indices forming the point coordinates (the remaining
        columns — labels, ids — are dropped).
    delimiter:
        Field delimiter of the raw file (``None`` = any whitespace).
    description:
        One-line provenance for catalogues and sidecars.
    """

    name: str
    url: str
    columns: "tuple[int, ...]"
    delimiter: "str | None" = ","
    description: str = ""


#: real point clouds the `real-*` scenarios draw from
DATASETS: "dict[str, DatasetSource]" = {
    "iris": DatasetSource(
        name="iris",
        url="https://archive.ics.uci.edu/ml/machine-learning-databases/iris/iris.data",
        columns=(0, 1, 2, 3),
        delimiter=",",
        description="UCI Iris: 150 flower measurements in 4 dimensions",
    ),
    "wine": DatasetSource(
        name="wine",
        url="https://archive.ics.uci.edu/ml/machine-learning-databases/wine/wine.data",
        columns=(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13),
        delimiter=",",
        description="UCI Wine: 178 chemical analyses in 13 dimensions",
    ),
}


def default_data_dir() -> str:
    """``$REPRO_DATA_DIR`` when set, else ``.repro-data`` in cwd."""
    return os.environ.get(DATA_DIR_ENV) or os.path.join(os.curdir, ".repro-data")


def _parse_rows(text: str, source: DatasetSource) -> np.ndarray:
    """Parse delimiter-separated numeric rows into the source's columns."""
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split(source.delimiter) if source.delimiter else line.split()
        try:
            rows.append([float(fields[c]) for c in source.columns])
        except (ValueError, IndexError):
            continue  # header / trailing junk lines
    if not rows:
        raise DatasetUnavailableError(
            f"dataset {source.name!r}: no parseable numeric rows"
        )
    return np.asarray(rows, dtype=float)


def _write_cached(root: str, source: DatasetSource, pts: np.ndarray,
                  origin: str) -> None:
    """Atomically store ``pts`` plus a JSON provenance sidecar.

    The array goes through the :func:`repro.store.write_points_npy`
    spool (temp file, header finalized on close, rename into place), so
    a killed or failed write can never publish a torn ``.npy`` — the
    cache either holds the complete array or nothing.
    """
    os.makedirs(root, exist_ok=True)
    npy = os.path.join(root, f"{source.name}.npy")
    write_points_npy(npy, (np.atleast_2d(np.asarray(pts, dtype=float)),))
    meta = os.path.join(root, f"{source.name}.json")
    meta_tmp = meta + f".tmp.{os.getpid()}"
    with open(meta_tmp, "w") as f:
        json.dump(
            {
                "dataset": source.name,
                "origin": origin,
                "url": source.url,
                "shape": list(pts.shape),
                "written_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            },
            f,
            indent=2,
        )
    os.replace(meta_tmp, meta)


def _fetch(source: DatasetSource, timeout: float) -> str:
    """Download the raw file (raises ``DatasetUnavailableError`` offline)."""
    if os.environ.get(OFFLINE_ENV):
        raise DatasetUnavailableError(
            f"dataset {source.name!r}: ${OFFLINE_ENV} is set, not fetching"
        )
    from urllib.request import urlopen

    try:
        with urlopen(source.url, timeout=timeout) as resp:
            return resp.read().decode("utf-8", errors="replace")
    except Exception as exc:
        raise DatasetUnavailableError(
            f"dataset {source.name!r}: fetch of {source.url} failed ({exc}); "
            f"drop a {source.name}.csv into {default_data_dir()!r} to use it "
            "offline"
        ) from None


def load_dataset(
    name: str,
    data_dir: "str | None" = None,
    timeout: float = 30.0,
) -> np.ndarray:
    """Load a registered real dataset as an ``(n, d)`` float array.

    Parameters
    ----------
    name:
        Key in :data:`DATASETS`.
    data_dir:
        Cache directory; ``None`` resolves via :func:`default_data_dir`.
    timeout:
        Network timeout (seconds) for the download path.

    Returns
    -------
    numpy.ndarray
        The point cloud, cached as ``<name>.npy`` for subsequent calls.

    Raises
    ------
    DatasetUnavailableError
        When the dataset is not cached, not on disk, and not fetchable.
    """
    try:
        source = DATASETS[name]
    except KeyError:
        raise DatasetUnavailableError(
            f"unknown dataset {name!r}; registered: {sorted(DATASETS)}"
        ) from None
    root = data_dir if data_dir is not None else default_data_dir()

    npy = os.path.join(root, f"{source.name}.npy")
    if os.path.exists(npy):
        try:
            return np.asarray(np.load(npy), dtype=float)
        except Exception:
            pass  # corrupted cache entry: fall through and rebuild

    for ext in (".csv", ".txt", ".data"):
        raw = os.path.join(root, source.name + ext)
        if os.path.exists(raw):
            with open(raw, "r", encoding="utf-8", errors="replace") as f:
                pts = _parse_rows(f.read(), source)
            _write_cached(root, source, pts, origin=raw)
            return pts

    pts = _parse_rows(_fetch(source, timeout), source)
    _write_cached(root, source, pts, origin=source.url)
    return pts


def load_dataset_source(
    name: str,
    data_dir: "str | None" = None,
    timeout: float = 30.0,
) -> MemmapSource:
    """Load a registered real dataset as a memory-mapped
    :class:`~repro.store.PointSource`.

    Same resolution order (and cache population) as
    :func:`load_dataset`, but the cached ``<name>.npy`` is served with
    ``mmap_mode="r"`` instead of being read into RAM — the out-of-core
    form real-data scenarios and sweeps consume.
    """
    try:
        source = DATASETS[name]
    except KeyError:
        raise DatasetUnavailableError(
            f"unknown dataset {name!r}; registered: {sorted(DATASETS)}"
        ) from None
    root = data_dir if data_dir is not None else default_data_dir()
    npy = os.path.join(root, f"{source.name}.npy")
    if not os.path.exists(npy):
        # populates the atomic .npy cache (or raises DatasetUnavailableError)
        load_dataset(name, data_dir=data_dir, timeout=timeout)
    try:
        return MemmapSource(npy)
    except Exception as exc:
        raise DatasetUnavailableError(
            f"dataset {name!r}: cached {npy!r} is unreadable ({exc}); "
            "delete it to force a rebuild"
        ) from None
