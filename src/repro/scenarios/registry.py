"""String-keyed scenario registry.

Mirror of :mod:`repro.api.registry`, for workloads instead of algorithms:
every scenario self-registers under a stable name (``"outlier-burst"``,
``"adversarial-insertion"``, ...) with tags and a description, so the
evaluation matrix, the CLI and the docs catalogue can all enumerate the
same set by configuration string instead of importing factory functions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .scenario import Scenario

__all__ = [
    "ScenarioError",
    "UnknownScenarioError",
    "DuplicateScenarioError",
    "register_scenario",
    "unregister_scenario",
    "get_scenario",
    "available_scenarios",
    "scenario_table",
]


class ScenarioError(KeyError):
    """Base class for scenario registry lookup/registration failures."""

    def __str__(self) -> str:  # KeyError quotes its payload; keep prose
        """Render the first argument verbatim (prose, not a quoted key)."""
        return self.args[0] if self.args else ""


class UnknownScenarioError(ScenarioError):
    """Raised by :func:`get_scenario` for an unregistered name."""


class DuplicateScenarioError(ScenarioError):
    """Raised by :func:`register_scenario` on a name collision."""


_SCENARIOS: "dict[str, Scenario]" = {}


def _invalidate_matrix_memo(name: str) -> None:
    """Drop any memoized reference radii and materialized instances for
    ``name`` (a re-registered or unregistered scenario must not be scored
    against — or served from — the old definition)."""
    from .matrix import _INSTANCES, _REFERENCES

    for memo in (_REFERENCES, _INSTANCES):
        for key in [k for k in memo if k[0] == name]:
            del memo[key]


def register_scenario(
    name: str,
    factory: "Callable | None" = None,
    *,
    tags: "tuple[str, ...] | list[str]" = (),
    description: str = "",
    overwrite: bool = False,
) -> "Callable":
    """Register a scenario factory under ``name``.

    Parameters
    ----------
    name:
        Registry key (stable, CLI-facing).
    factory:
        ``factory(quick: bool, seed: int) -> ScenarioInstance``.  When
        omitted the call returns a decorator, mirroring
        :func:`repro.api.register_backend`.
    tags:
        Classification tags (``"drift"``, ``"adversarial"``,
        ``"heavy-duplicates"``, ``"outlier-burst"``, ``"high-dim"``,
        ``"real"``, ...), used by :func:`available_scenarios` filtering
        and by the matrix CLI's default selection.
    description:
        One-line summary for the docs catalogue and ``--list-scenarios``.
    overwrite:
        Replace an existing registration instead of raising
        :class:`DuplicateScenarioError`.

    Returns
    -------
    Callable
        The factory (so the function is usable as a decorator).
    """

    def _register(f):
        from .scenario import Scenario

        if not name or not isinstance(name, str):
            raise ValueError("scenario name must be a non-empty string")
        if name in _SCENARIOS:
            if not overwrite:
                raise DuplicateScenarioError(
                    f"scenario {name!r} is already registered; pass "
                    "overwrite=True to replace it"
                )
            _invalidate_matrix_memo(name)
        _SCENARIOS[name] = Scenario(
            name=name,
            factory=f,
            tags=tuple(tags),
            description=description,
        )
        return f

    if factory is not None:
        return _register(factory)
    return _register


def unregister_scenario(name: str) -> None:
    """Remove a registration (primarily for test isolation)."""
    if name not in _SCENARIOS:
        raise UnknownScenarioError(f"scenario {name!r} is not registered")
    _invalidate_matrix_memo(name)
    del _SCENARIOS[name]


def get_scenario(name: str) -> "Scenario":
    """Look up a registered scenario by name.

    Raises
    ------
    UnknownScenarioError
        For an unregistered name; the message lists the known names (the
        discovery mechanism for CLI/config typos).
    """
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        ) from None


def available_scenarios(tag: "str | None" = None) -> "list[str]":
    """Sorted names of all registered scenarios.

    Parameters
    ----------
    tag:
        When given, only scenarios carrying this tag are listed.
    """
    names = [
        n for n, sc in _SCENARIOS.items()
        if tag is None or tag in sc.tags
    ]
    return sorted(names)


def scenario_table() -> "list[Scenario]":
    """All registrations, sorted by name (the docs scenario catalogue)."""
    return [_SCENARIOS[n] for n in available_scenarios()]
