"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.workloads import clustered_with_outliers, drifting_stream, integer_workload


class TestClusteredWithOutliers:
    def test_shapes(self, rng):
        wl = clustered_with_outliers(100, 3, 7, d=4, rng=rng)
        assert wl.points.shape == (100, 4)
        assert wl.outlier_mask.sum() == 7
        assert wl.centers.shape == (3, 4)

    def test_outliers_are_far(self, rng):
        wl = clustered_with_outliers(200, 2, 10, d=2, rng=rng)
        from scipy.spatial.distance import cdist
        d_out = cdist(wl.points[wl.outlier_mask], wl.centers).min(axis=1)
        d_in = cdist(wl.points[~wl.outlier_mask], wl.centers).min(axis=1)
        assert d_out.min() > d_in.max()

    def test_z_greater_than_n_rejected(self, rng):
        with pytest.raises(ValueError):
            clustered_with_outliers(5, 1, 10, rng=rng)

    def test_no_shuffle_order(self, rng):
        wl = clustered_with_outliers(50, 2, 5, rng=rng, shuffle=False)
        assert wl.outlier_mask[-5:].all() and not wl.outlier_mask[:-5].any()

    def test_point_set_roundtrip(self, rng):
        wl = clustered_with_outliers(50, 2, 5, rng=rng)
        P = wl.point_set()
        assert len(P) == 50 and P.total_weight == 50

    def test_reproducible(self):
        a = clustered_with_outliers(50, 2, 5, rng=np.random.default_rng(1))
        b = clustered_with_outliers(50, 2, 5, rng=np.random.default_rng(1))
        assert np.array_equal(a.points, b.points)


class TestDriftingStream:
    def test_shape(self, rng):
        s = drifting_stream(300, 2, 10, d=3, rng=rng)
        assert s.shape == (300, 3)

    def test_outlier_magnitudes(self, rng):
        s = drifting_stream(300, 2, 10, d=2, outlier_spread=100, rng=rng)
        norms = np.linalg.norm(s, axis=1)
        assert (norms > 80).sum() >= 10


class TestIntegerWorkload:
    def test_in_universe(self, rng):
        wl = integer_workload(100, 2, 5, delta_universe=64, d=2, rng=rng)
        assert wl.points.dtype == np.int64
        assert wl.points.min() >= 1 and wl.points.max() <= 64

    def test_universe_too_small(self, rng):
        with pytest.raises(ValueError):
            integer_workload(10, 1, 0, delta_universe=4, cluster_radius=4, rng=rng)
