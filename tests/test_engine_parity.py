"""Executor parity: serial, thread and process runs are bit-identical.

The determinism contract of :mod:`repro.engine` — order-preserving maps,
SeedSequence-derived task randomness, accounting in the calling process —
means the *same* ``ProblemSpec(seed=...)`` must yield identical coresets,
radii and per-machine peak-storage accounting no matter which executor
the MPC backends fan out over.
"""

import numpy as np
import pytest

from repro.api import KCenterSession, ProblemSpec
from repro.workloads import clustered_with_outliers

MPC_BACKENDS = ["mpc-two-round", "mpc-one-round", "mpc-multi-round"]
EXECUTORS = ["serial", "thread", "process"]


def _run(backend: str, executor: str, jobs: "int | None" = 2):
    spec = ProblemSpec(k=3, z=16, eps=0.5, dim=2, seed=11,
                      executor=executor, jobs=jobs)
    wl = clustered_with_outliers(500, spec.k, spec.z, spec.dim,
                                 rng=np.random.default_rng(5))
    sess = KCenterSession.from_spec(spec, backend=backend, num_machines=6)
    sess.extend(wl.points)
    cs = sess.coreset()
    sol = sess.solve()
    stats = sess.backend.last_result.stats
    return cs, sol, stats


class TestExecutorParity:
    @pytest.mark.parametrize("backend", MPC_BACKENDS)
    def test_all_executors_bit_identical(self, backend):
        cs0, sol0, stats0 = _run(backend, "serial")
        for executor in EXECUTORS[1:]:
            cs, sol, stats = _run(backend, executor)
            # identical coreset, bit for bit
            assert np.array_equal(cs0.points, cs.points), executor
            assert np.array_equal(cs0.weights, cs.weights), executor
            # identical solved radius
            assert sol0.radius == sol.radius, executor
            # identical Machine peak-memory accounting
            assert stats0.per_machine_peak == stats.per_machine_peak, executor
            assert stats0.coordinator_peak == stats.coordinator_peak, executor
            assert stats0.worker_peak == stats.worker_peak, executor
            assert stats0.rounds == stats.rounds, executor
            assert stats0.total_communication == stats.total_communication, executor

    @pytest.mark.parametrize("backend", ["cpp-mpc-deterministic", "cpp-mpc-randomized"])
    def test_baseline_backends_honor_executor(self, backend):
        cs0, sol0, stats0 = _run(backend, "serial")
        cs, sol, stats = _run(backend, "thread")
        assert np.array_equal(cs0.points, cs.points)
        assert sol0.radius == sol.radius
        assert stats0.per_machine_peak == stats.per_machine_peak

    def test_session_option_overrides_spec(self):
        """executor/jobs passed as session options beat the spec fields."""
        spec = ProblemSpec(k=2, z=4, eps=0.5, dim=2, seed=0, executor="serial")
        wl = clustered_with_outliers(200, 2, 4, 2, rng=np.random.default_rng(1))
        sess = KCenterSession.from_spec(spec, backend="mpc-two-round",
                                        num_machines=4, executor="thread", jobs=2)
        assert sess.backend.executor.name == "thread"
        assert sess.backend.executor.jobs == 2
        sess.extend(wl.points)
        assert len(sess.coreset()) > 0

    def test_jobs_alone_implies_threads(self):
        spec = ProblemSpec(k=2, z=4, eps=0.5, dim=2, seed=0, jobs=3)
        sess = KCenterSession.from_spec(spec, backend="mpc-two-round",
                                        num_machines=2)
        assert sess.backend.executor.name == "thread"
        assert sess.backend.executor.jobs == 3

    def test_no_knobs_defers_to_legacy_parallel(self):
        spec = ProblemSpec(k=2, z=4, eps=0.5, dim=2, seed=0)
        sess = KCenterSession.from_spec(spec, backend="mpc-two-round",
                                        num_machines=2)
        assert sess.backend.executor is None

    def test_resolved_executor_matches_backend_rule(self):
        """spec.resolved_executor() follows the same resolution rule the
        MPC backends apply."""
        assert ProblemSpec(k=1, z=0, eps=0.5).resolved_executor().name == "serial"
        ex = ProblemSpec(k=1, z=0, eps=0.5, jobs=4).resolved_executor()
        assert ex.name == "thread" and ex.jobs == 4  # jobs alone -> threads
        ex = ProblemSpec(k=1, z=0, eps=0.5, executor="process", jobs=2).resolved_executor()
        assert ex.name == "process" and ex.jobs == 2

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ProblemSpec(k=2, z=4, eps=0.5, jobs=0)
        with pytest.raises(ValueError):
            ProblemSpec(k=2, z=4, eps=0.5, executor=7)
