"""Snapshot/restore parity: save -> load -> continue == uninterrupted.

Property-style roundtrips for every registered backend (random prefix ->
save -> load -> suffix must equal the full-stream run bit for bit), the
container format's validation paths, and the `delete_many` accounting
contract.
"""

import json
import zipfile

import numpy as np
import pytest

from repro.api import (
    KCenterSession,
    ProblemSpec,
    SnapshotError,
    UnsupportedOperationError,
    available_backends,
    register_backend,
    unregister_backend,
)
from repro.persist import (
    read_manifest,
    SNAPSHOT_FORMAT_VERSION,
    read_snapshot,
    supports_snapshot,
    write_snapshot,
)

DELTA = 64

#: session options per backend family (mirrors the scenario adapters)
BACKEND_OPTIONS = {
    "dynamic": {"delta_universe": DELTA, "s_override": 24},
    "dynamic-deterministic": {"delta_universe": DELTA, "s_override": 24},
    "sliding-window": {"window": 120, "r_min": 0.05, "r_max": 40.0},
    "mpc-two-round": {"num_machines": 4},
    "mpc-one-round": {"num_machines": 4},
    "mpc-multi-round": {"num_machines": 4},
    "cpp-mpc-deterministic": {"num_machines": 4},
    "cpp-mpc-randomized": {"num_machines": 4},
}

INTEGER_BACKENDS = {"dynamic", "dynamic-deterministic"}

ALL_BACKENDS = sorted(available_backends())


def _spec(seed=7):
    return ProblemSpec(k=3, z=5, eps=0.5, dim=2, seed=seed)


def _stream(backend, seed, n=200):
    rng = np.random.default_rng(seed)
    if backend in INTEGER_BACKENDS:
        return rng.integers(1, DELTA, size=(n, 2)).astype(float)
    return rng.normal(size=(n, 2)) * 5.0


def _make(backend, seed=7):
    return KCenterSession.from_spec(
        _spec(seed), backend=backend, **BACKEND_OPTIONS.get(backend, {})
    )


def _stats_no_wall(sess):
    out = sess.stats()
    out.pop("wall_time")
    return out


class TestRoundtripAllBackends:
    """The acceptance criterion: for every registered backend, save ->
    load -> continue yields bit-identical coreset, radius and stats."""

    def test_all_builtins_registered(self):
        assert len(ALL_BACKENDS) >= 11

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("case", range(3))
    def test_prefix_save_load_suffix_equals_full_stream(
        self, backend, case, tmp_path
    ):
        stream = _stream(backend, seed=100 + case)
        # random split (case 0 pins the empty-prefix edge)
        split = 0 if case == 0 else int(
            np.random.default_rng(case).integers(1, len(stream))
        )
        path = str(tmp_path / "cell.ckpt")

        full = _make(backend)
        full.extend(stream)

        part = _make(backend)
        if split:
            part.extend(stream[:split])
        part.save(path)
        resumed = KCenterSession.load(path)
        resumed.extend(stream[split:])

        cs_full, cs_res = full.coreset(), resumed.coreset()
        assert np.array_equal(cs_full.points, cs_res.points)
        assert np.array_equal(cs_full.weights, cs_res.weights)
        assert full.solve().radius == resumed.solve().radius
        assert full.updates_seen == resumed.updates_seen
        assert _stats_no_wall(full) == _stats_no_wall(resumed)

    @pytest.mark.parametrize("backend", sorted(INTEGER_BACKENDS))
    def test_roundtrip_across_deletions(self, backend, tmp_path):
        stream = _stream(backend, seed=3)
        doomed = stream[40:80]
        path = str(tmp_path / "dyn.ckpt")

        full = _make(backend)
        full.extend(stream)
        full.delete_many(doomed)

        part = _make(backend)
        part.extend(stream)
        part.save(path)
        resumed = KCenterSession.load(path)
        resumed.delete_many(doomed)

        cs_full, cs_res = full.coreset(), resumed.coreset()
        assert np.array_equal(cs_full.points, cs_res.points)
        assert np.array_equal(cs_full.weights, cs_res.weights)
        assert full.updates_seen == resumed.updates_seen

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_all_registered_backends_support_snapshot(self, backend):
        sess = _make(backend)
        assert supports_snapshot(sess.backend)


class TestSnapshotFile:
    def test_manifest_is_auditable_json(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        sess = _make("insertion-only")
        sess.extend(_stream("insertion-only", 0, n=50))
        sess.save(path, extra={"note": "hello"})
        with zipfile.ZipFile(path) as zf:
            manifest = json.loads(zf.read("manifest.json").decode())
        assert manifest["kind"] == "kcenter-session"
        assert manifest["format"] == SNAPSHOT_FORMAT_VERSION
        assert manifest["backend"] == "insertion-only"
        assert manifest["spec"]["k"] == 3 and manifest["spec"]["seed"] == 7
        assert manifest["updates"] == 50
        assert manifest["extra"] == {"note": "hello"}
        assert "payload.npz" in zf.namelist()

    def test_updates_and_wall_time_provenance(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        sess = _make("insertion-only")
        sess.extend(_stream("insertion-only", 0, n=80))
        sess.save(path)
        loaded = KCenterSession.load(path)
        assert loaded.updates_seen == 80
        assert loaded.wall_time == sess.wall_time
        assert loaded.backend_name == "insertion-only"
        assert loaded.spec.as_dict() == sess.spec.as_dict()

    def test_load_backend_mismatch(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        _make("insertion-only").save(path)
        with pytest.raises(SnapshotError, match="backend"):
            KCenterSession.load(path, backend="offline")

    def test_load_spec_mismatch(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        _make("insertion-only").save(path)
        with pytest.raises(SnapshotError, match="spec"):
            KCenterSession.load(path, spec=_spec(seed=8))

    def test_unknown_format_version_rejected(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        write_snapshot(path, {"kind": "kcenter-session", "format": 99}, {})
        with pytest.raises(SnapshotError, match="format"):
            read_snapshot(path)

    def test_corrupted_file_rejected(self, tmp_path):
        path = tmp_path / "s.ckpt"
        path.write_bytes(b"this is not a zip")
        with pytest.raises(SnapshotError, match="cannot read"):
            KCenterSession.load(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SnapshotError):
            KCenterSession.load(str(tmp_path / "nope.ckpt"))

    def test_non_session_snapshot_rejected(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        write_snapshot(path, {"kind": "something-else"}, {})
        with pytest.raises(SnapshotError, match="not a KCenterSession"):
            KCenterSession.load(path)

    def test_option_overrides_on_load(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        sess = _make("mpc-two-round")
        sess.extend(_stream("mpc-two-round", 0, n=60))
        sess.save(path)
        loaded = KCenterSession.load(path, num_machines=2)
        assert loaded.backend.num_machines == 2

    def test_numpy_scalar_options_are_coerced(self, tmp_path):
        # options derived from numpy computations (np.int64 windows etc.)
        # are trivially portable and must not fail the save
        path = str(tmp_path / "s.ckpt")
        sess = KCenterSession.from_spec(
            _spec(), backend="sliding-window",
            window=np.int64(120), r_min=np.float64(0.05),
            r_max=np.float64(40.0),
        )
        sess.extend(_stream("sliding-window", 0, n=60))
        sess.save(path)
        loaded = KCenterSession.load(path)
        loaded.extend(_stream("sliding-window", 1, n=30))
        assert loaded.updates_seen == 90

    def test_malformed_manifest_raises_snapshot_error(self, tmp_path):
        # missing spec / backend keys must surface as SnapshotError, not
        # KeyError, so `except SnapshotError` callers degrade gracefully
        no_spec = str(tmp_path / "a.ckpt")
        write_snapshot(no_spec, {"kind": "kcenter-session",
                                 "backend": "insertion-only"}, {})
        with pytest.raises(SnapshotError, match="spec"):
            KCenterSession.load(no_spec)
        no_backend = str(tmp_path / "b.ckpt")
        write_snapshot(no_backend, {"kind": "kcenter-session",
                                    "spec": _spec().as_dict()}, {})
        with pytest.raises(SnapshotError, match="backend"):
            KCenterSession.load(no_backend)
        bad_spec = str(tmp_path / "c.ckpt")
        write_snapshot(bad_spec, {"kind": "kcenter-session",
                                  "backend": "insertion-only",
                                  "spec": {"k": 0, "z": 1, "eps": 0.5}}, {})
        with pytest.raises(SnapshotError, match="reconstruct"):
            KCenterSession.load(bad_spec)

    def test_unserializable_option_fails_at_save(self, tmp_path):
        sess = KCenterSession.from_spec(
            _spec(), backend="mpc-two-round", num_machines=2,
            partition=lambda P: [P],
        )
        with pytest.raises(SnapshotError, match="partition"):
            sess.save(str(tmp_path / "s.ckpt"))

    def test_geometry_changing_override_rejected_on_load(self, tmp_path):
        # a different window reinterprets expiry/eviction state: the
        # restore must refuse rather than silently report wrong coresets
        path = str(tmp_path / "sw.ckpt")
        sess = _make("sliding-window")
        sess.extend(_stream("sliding-window", 0, n=150))
        sess.save(path)
        with pytest.raises(SnapshotError, match="window"):
            KCenterSession.load(path, window=10000)
        with pytest.raises(SnapshotError):
            KCenterSession.load(path, r_min=0.01)

    def test_seed_mismatch_detected_by_sketch_digest(self):
        # restoring randomized sketch state into a structure built from a
        # different seed must fail loudly, not silently mis-decode
        a = _make("dynamic", seed=1)
        a.extend(_stream("dynamic", 0, n=50))
        b = _make("dynamic", seed=2)
        with pytest.raises(SnapshotError, match="randomness"):
            b.backend.restore(a.backend.snapshot())


class TestUnsupportedBackends:
    def test_custom_backend_without_snapshot(self, tmp_path):
        class Minimal:
            def __init__(self, spec, **options):
                self.spec = spec
                self._pts = []

            def insert(self, p):
                self._pts.append(np.asarray(p, float))

            def extend(self, pts):
                for p in np.atleast_2d(pts):
                    self.insert(p)

            def coreset(self):
                from repro.core import WeightedPointSet

                return WeightedPointSet(np.asarray(self._pts))

            def guarantee(self):
                from repro.api import Guarantee

                return Guarantee(eps=0.5, model="offline")

            def stats(self):
                return {}

        register_backend("_persist-minimal", Minimal)
        try:
            sess = KCenterSession.from_spec(_spec(), backend="_persist-minimal")
            assert not supports_snapshot(sess.backend)
            with pytest.raises(UnsupportedOperationError, match="snapshot"):
                sess.save(str(tmp_path / "s.ckpt"))
            # missing delete support surfaces as the clear error, not
            # an AttributeError
            with pytest.raises(UnsupportedOperationError, match="delete"):
                sess.delete([0.0, 0.0])
            with pytest.raises(UnsupportedOperationError, match="delete"):
                sess.delete_many(np.zeros((2, 2)))
            assert sess.updates_seen == 0
        finally:
            unregister_backend("_persist-minimal")

    def test_base_placeholder_is_flagged_unsupported(self):
        from repro.api.backends import _BackendBase

        assert not supports_snapshot(_BackendBase(_spec()))


class TestDeleteManyAccounting:
    def test_unsupported_delete_keeps_updates_exact(self):
        sess = _make("insertion-only")
        sess.extend(_stream("insertion-only", 0, n=30))
        with pytest.raises(UnsupportedOperationError):
            sess.delete_many(np.zeros((4, 2)))
        assert sess.updates_seen == 30  # the failed batch added nothing

    def test_mid_batch_failure_counts_applied_deletes_only(self):
        class Flaky:
            def __init__(self, spec, **options):
                self.spec = spec
                self.deleted = 0

            def insert(self, p):
                pass

            def extend(self, pts):
                pass

            def delete(self, p):
                if self.deleted >= 2:
                    raise RuntimeError("boom")
                self.deleted += 1

            def coreset(self):
                from repro.core import WeightedPointSet

                return WeightedPointSet.empty(2)

            def guarantee(self):
                from repro.api import Guarantee

                return Guarantee(eps=0.5, model="fully-dynamic")

            def stats(self):
                return {}

        register_backend("_persist-flaky", Flaky, supports_delete=True)
        try:
            sess = KCenterSession.from_spec(_spec(), backend="_persist-flaky")
            with pytest.raises(RuntimeError, match="boom"):
                sess.delete_many(np.zeros((5, 2)))
            # exactly the two applied deletions are accounted
            assert sess.updates_seen == 2
            assert sess.backend.deleted == 2
        finally:
            unregister_backend("_persist-flaky")

    def test_batched_delete_counts_after_success(self):
        sess = _make("dynamic")
        pts = _stream("dynamic", 1, n=40)
        sess.extend(pts)
        sess.delete_many(pts[:10])
        assert sess.updates_seen == 50

    @pytest.mark.parametrize("backend", sorted(INTEGER_BACKENDS))
    def test_bad_batch_is_all_or_nothing(self, backend):
        # a batch with a point outside [1, Delta]^d must raise with the
        # sketches unmutated and nothing accounted
        sess = _make(backend)
        good = _stream(backend, 2, n=30)
        sess.extend(good)
        before = sess.coreset()
        bad = good[:5].copy()
        bad[3] = [DELTA * 10, DELTA * 10]
        with pytest.raises(ValueError, match="coordinates must lie"):
            sess.delete_many(bad)
        assert sess.updates_seen == 30
        after = sess.coreset()
        assert np.array_equal(before.points, after.points)
        assert np.array_equal(before.weights, after.weights)


class TestStateTreeFormat:
    def test_array_and_json_leaves_roundtrip(self, tmp_path):
        state = {
            "a": np.arange(6, dtype=np.int64).reshape(2, 3),
            "nested": {"b": np.ones(2), "s": "text", "n": None, "f": 1.5,
                       "lst": [1, 2, 3]},
            "flag": True,
        }
        path = str(tmp_path / "t.snap")
        write_snapshot(path, {"kind": "test"}, state)
        manifest, loaded = read_snapshot(path)
        assert manifest["kind"] == "test"
        assert np.array_equal(loaded["a"], state["a"])
        assert np.array_equal(loaded["nested"]["b"], state["nested"]["b"])
        assert loaded["nested"]["s"] == "text"
        assert loaded["nested"]["n"] is None
        assert loaded["nested"]["f"] == 1.5
        assert loaded["nested"]["lst"] == [1, 2, 3]
        assert loaded["flag"] is True

    def test_bad_keys_and_leaves_rejected(self, tmp_path):
        path = str(tmp_path / "t.snap")
        with pytest.raises(SnapshotError, match="key"):
            write_snapshot(path, {}, {"a/b": 1})
        with pytest.raises(SnapshotError, match="unsupported type"):
            write_snapshot(path, {}, {"a": object()})

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "t.snap"
        write_snapshot(str(path), {"kind": "test"}, {"a": np.ones(3)})
        assert [p.name for p in tmp_path.iterdir()] == ["t.snap"]

    def test_object_dtype_arrays_rejected_at_write(self, tmp_path):
        # an object array would pickle into the payload and then be
        # unreadable forever under allow_pickle=False — fail at save time
        path = str(tmp_path / "t.snap")
        bad = np.array([np.zeros(2), np.zeros(3)], dtype=object)
        with pytest.raises(SnapshotError, match="object-dtype"):
            write_snapshot(path, {"kind": "test"}, {"a": bad})

    def test_corrupted_payload_raises_snapshot_error(self, tmp_path):
        # a valid zip whose npz member is garbage must still surface as
        # SnapshotError, not a raw numpy ValueError
        path = tmp_path / "t.snap"
        with zipfile.ZipFile(path, "w") as zf:
            zf.writestr("manifest.json",
                        json.dumps({"format": SNAPSHOT_FORMAT_VERSION}))
            zf.writestr("payload.npz", b"not an npz archive")
        with pytest.raises(SnapshotError, match="payload"):
            read_snapshot(str(path))

    def test_from_snapshot_matches_load(self, tmp_path):
        path = str(tmp_path / "s.ckpt")
        sess = _make("insertion-only")
        sess.extend(_stream("insertion-only", 0, n=60))
        sess.save(path)
        manifest, state = read_snapshot(path)
        a = KCenterSession.load(path)
        b = KCenterSession.from_snapshot(manifest, state)
        assert np.array_equal(a.coreset().points, b.coreset().points)
        assert a.updates_seen == b.updates_seen
        with pytest.raises(SnapshotError, match="kind"):
            KCenterSession.from_snapshot({"kind": "other"}, {})


class TestNetworkHardening:
    """Snapshots received over the wire (`repro.serve`) must not be able
    to escape the spool directory or exhaust memory on load."""

    def _zip(self, path, members):
        with zipfile.ZipFile(path, "w") as zf:
            for name, data in members.items():
                zf.writestr(name, data)

    def _manifest_bytes(self):
        return json.dumps({"format": SNAPSHOT_FORMAT_VERSION,
                           "state": {}, "arrays": []}).encode()

    @pytest.mark.parametrize("name", [
        "../evil.npy",
        "sub/dir.npy",
        "..\\evil.npy",
        "/etc/passwd",
        "a/../b",
    ])
    def test_zip_slip_member_names_rejected(self, tmp_path, name):
        path = tmp_path / "t.snap"
        self._zip(path, {"manifest.json": self._manifest_bytes(),
                         "payload.npz": b"", name: b"x"})
        with pytest.raises(SnapshotError, match="path separator|traversal"):
            read_snapshot(str(path))
        with pytest.raises(SnapshotError, match="path separator|traversal"):
            read_manifest(str(path))

    def test_decompressed_size_cap_enforced(self, tmp_path):
        # 20 MB of zeros deflates to ~20 kB: the directory size fields
        # are honest here, but the cap must bind on decompressed bytes
        path = str(tmp_path / "t.snap")
        write_snapshot(path, {"kind": "test"},
                       {"a": np.zeros((2_500_000,), dtype=np.float64)})
        manifest, state = read_snapshot(path, max_bytes=64 << 20)  # fits
        assert state["a"].shape == (2_500_000,)
        with pytest.raises(SnapshotError, match="budget"):
            read_snapshot(path, max_bytes=1 << 20)

    def test_size_cap_ignores_forged_directory_sizes(self, tmp_path):
        # rewrite the central directory to claim a tiny decompressed
        # size; the streaming cap must still fire on the real bytes
        path = tmp_path / "t.snap"
        big = zipfile.ZipInfo("payload.npz")
        big.compress_type = zipfile.ZIP_DEFLATED
        with zipfile.ZipFile(path, "w") as zf:
            zf.writestr("manifest.json", self._manifest_bytes())
            zf.writestr(big, b"\0" * (8 << 20))
        with pytest.raises(SnapshotError, match="budget"):
            read_snapshot(str(path), max_bytes=1 << 20)

    def test_cap_env_override(self, tmp_path, monkeypatch):
        path = str(tmp_path / "t.snap")
        write_snapshot(path, {"kind": "test"},
                       {"a": np.zeros((200_000,), dtype=np.float64)})
        monkeypatch.setenv("REPRO_SNAPSHOT_MAX_BYTES", str(1 << 10))
        with pytest.raises(SnapshotError, match="budget"):
            read_snapshot(path)
        monkeypatch.setenv("REPRO_SNAPSHOT_MAX_BYTES", str(1 << 30))
        read_snapshot(path)

    def test_invalid_cap_rejected(self, tmp_path):
        path = str(tmp_path / "t.snap")
        write_snapshot(path, {"kind": "test"}, {})
        with pytest.raises(SnapshotError, match="max_bytes"):
            read_snapshot(path, max_bytes=0)

    def test_read_manifest_is_cheap_and_validated(self, tmp_path):
        path = str(tmp_path / "t.snap")
        sess = _make("insertion-only")
        sess.extend(_stream("insertion-only", 0, n=40))
        sess.save(path, extra={"tag": "spool"})
        manifest = read_manifest(path)
        assert manifest["kind"] == "kcenter-session"
        assert manifest["backend"] == "insertion-only"
        assert manifest["updates"] == 40
        assert manifest["extra"] == {"tag": "spool"}
        # version check still applies on the manifest-only path
        bad = str(tmp_path / "v.snap")
        write_snapshot(bad, {"kind": "test", "format": 99}, {})
        with pytest.raises(SnapshotError, match="format"):
            read_manifest(bad)

    def test_read_manifest_missing_member(self, tmp_path):
        path = tmp_path / "t.snap"
        self._zip(path, {"payload.npz": b""})
        with pytest.raises(SnapshotError, match="cannot read"):
            read_manifest(str(path))

    def test_truncated_member_surfaces_snapshot_error(self, tmp_path):
        src = tmp_path / "ok.snap"
        write_snapshot(str(src), {"kind": "test"},
                       {"a": np.arange(1000, dtype=np.float64)})
        clipped = tmp_path / "clipped.snap"
        data = src.read_bytes()
        clipped.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotError):
            read_snapshot(str(clipped))
