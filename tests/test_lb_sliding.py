"""Tests for the Theorem 30 sliding-window lower bound (§6)."""

import numpy as np
import pytest

from repro.core import continuous_opt_1d
from repro.lowerbounds import Theorem30Instance, theorem30_parameters


class TestParameters:
    def test_d1(self):
        lam, s, zeta = theorem30_parameters(1, 1 / 24, z=3)
        assert lam == 3 and s == 1 and zeta == 3

    def test_d2(self):
        lam, s, zeta = theorem30_parameters(2, 1 / 24, z=9)
        assert lam == 3 and s == 9 - 4 and zeta == 3

    def test_eps_range(self):
        with pytest.raises(ValueError):
            theorem30_parameters(1, 1 / 8, z=1)  # eps > 1/24

    def test_lambda_must_be_odd_integer(self):
        with pytest.raises(ValueError):
            theorem30_parameters(1, 1 / 32, z=1)  # lambda = 4 even


@pytest.fixture
def inst():
    return Theorem30Instance.build(k=2, z=3, d=1, eps=1 / 24, g=3)


class TestConstruction:
    def test_subgroup_sizes(self, inst):
        for pts in inst.subgroup_points.values():
            assert len(pts) == inst.z + 1

    def test_counts(self, inst):
        assert len(inst.subgroup_points) == inst.num_clusters * inst.g * inst.s

    def test_required_expirations(self, inst):
        per_cluster = (inst.g * inst.s - 1) * (inst.z + 1)
        assert inst.required_expirations == inst.num_clusters * per_cluster

    def test_subgroup_diameter(self, inst):
        """Subgroup L_inf diameter is 2^j zeta."""
        for (i, j, l), pts in inst.subgroup_points.items():
            diam = np.abs(pts[:, None, :] - pts[None, :, :]).max()
            assert diam <= (2**j) * inst.zeta + 1e-9

    def test_arrival_order(self, inst):
        """Larger scales arrive first (so they expire first)."""
        order = inst.arrival_order()
        assert len(order) == len(inst.subgroup_points) * (inst.z + 1)
        # first arrivals are scale-g points, last are scale-1
        g_pts = {tuple(p) for p in inst.subgroup_points[(0, inst.g, 0)]}
        first = {tuple(p) for p in order[: inst.z + 1]}
        assert first <= g_pts

    def test_k_constraint(self):
        with pytest.raises(ValueError):
            Theorem30Instance.build(k=1, z=1, d=1, eps=1 / 24, g=2)


class TestClaim31:
    def test_flank_distances(self, inst):
        """Flanking sets sit at L_inf distance 2^{j*} zeta (2 lambda) from
        the subgroup."""
        j_star = 2
        G = inst.subgroup_points[(0, j_star, 0)]
        flanks = inst.flank_sets(0, j_star, 0)
        offset = (2**j_star) * inst.zeta * 2 * inst.lam
        from scipy.spatial.distance import cdist
        d = cdist(flanks, G, metric="chebyshev").min(axis=1)
        assert np.allclose(d, offset)

    @pytest.mark.parametrize("j_star", [2, 3])
    def test_radius_drop_exact(self, inst, j_star):
        """The Claim 31 mechanism with exact continuous optima: the drop
        at expiration exceeds the 1 - 3 eps tolerance."""
        before, after, bound = inst.claim31_windows(0, j_star, 0)
        rb = continuous_opt_1d(before, inst.k, inst.z)
        ra = continuous_opt_1d(after, inst.k, inst.z)
        assert rb >= (2**j_star) * inst.zeta * inst.lam - 1e-9  # paper lb
        assert ra <= (2**j_star) * inst.zeta * (2 * inst.lam - 1) / 2 + 1e-9
        assert ra / rb <= bound + 1e-9
        assert ra / rb < 1 - 3 * inst.eps

    def test_windows_differ_by_p_star(self, inst):
        before, after, _ = inst.claim31_windows(0, 2, 0)
        assert len(before) == len(after) + 1

    def test_invalid_target_rejected(self, inst):
        with pytest.raises(ValueError):
            inst.claim31_windows(0, 1, 0)  # j*=1, l*=0 excluded by Claim 31
        with pytest.raises(KeyError):
            inst.claim31_windows(5, 2, 0)

    def test_spread_ratio_bounded(self, inst):
        """The construction's spread stays within the sigma the paper
        allows (log sigma' <= 1 + g + log(kz/eps))."""
        all_pts = np.concatenate(
            [pts for pts in inst.subgroup_points.values()]
            + [inst.flank_sets(0, inst.g, 0)]
        )
        from scipy.spatial.distance import pdist
        D = pdist(all_pts.reshape(len(all_pts), -1), metric="chebyshev")
        D = D[D > 0]
        sigma_prime = D.max() / D.min()
        kz_eps = inst.k * inst.z / inst.eps
        assert np.log2(sigma_prime) <= 1 + inst.g + np.log2(kz_eps) + 2
