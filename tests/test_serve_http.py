"""End-to-end HTTP surface: routes, error taxonomy, probes, metrics."""

import http.client
import json

import numpy as np
import pytest

from repro.api import KCenterSession, ProblemSpec
from repro.serve import ReproServer, ServeConfig
from test_serve_metrics import parse_prometheus

SPEC = dict(k=3, z=4, eps=0.5, dim=2, seed=0)


@pytest.fixture
def server(tmp_path):
    srv = ReproServer(ServeConfig(port=0, spool_dir=str(tmp_path / "spool")))
    srv.start()
    yield srv
    srv.stop()


@pytest.fixture
def client(server):
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
    yield conn
    conn.close()


def _req(conn, method, path, body=None, headers=None):
    hdrs = {"Content-Type": "application/json"}
    hdrs.update(headers or {})
    if isinstance(body, dict):
        body = json.dumps(body).encode()
    conn.request(method, path, body=body, headers=hdrs)
    resp = conn.getresponse()
    payload = resp.read()
    ctype = resp.getheader("Content-Type", "")
    doc = (json.loads(payload)
           if ctype.startswith("application/json") and payload else payload)
    return resp.status, doc, ctype


def _create(conn, name, backend="insertion-only", **extra):
    body = {"spec": SPEC, "backend": backend, **extra}
    return _req(conn, "PUT", f"/sessions/{name}", body)


def _points(seed, n=64, d=2):
    return np.random.default_rng(seed).normal(size=(n, d)) * 4.0


class TestProbes:
    def test_healthz_and_readyz(self, server, client):
        status, body, ctype = _req(client, "GET", "/healthz")
        assert (status, body) == (200, b"ok\n") and ctype.startswith("text/plain")
        status, body, _ = _req(client, "GET", "/readyz")
        assert (status, body) == (200, b"ready\n")

    def test_readyz_503_when_not_ready(self, server, client):
        server._ready.clear()
        try:
            status, body, _ = _req(client, "GET", "/readyz")
            assert (status, body) == (503, b"not ready\n")
        finally:
            server._ready.set()

    def test_unknown_route_and_method(self, server, client):
        status, doc, _ = _req(client, "GET", "/nope")
        assert status == 404 and doc["error"]["code"] == "unknown-route"
        status, doc, _ = _req(client, "POST", "/sessions/a")
        assert status == 405 and doc["error"]["code"] == "method-not-allowed"


class TestSessionRoutes:
    def test_create_conflict_and_info(self, server, client):
        status, doc, _ = _create(client, "a")
        assert status == 201 and doc["name"] == "a" and doc["resident"]
        status, doc, _ = _create(client, "a")
        assert status == 409 and doc["error"]["code"] == "session-exists"
        status, doc, _ = _req(client, "GET", "/sessions/a")
        assert status == 200 and doc["backend"] == "insertion-only"
        status, doc, _ = _req(client, "GET", "/sessions")
        assert status == 200 and [s["name"] for s in doc["sessions"]] == ["a"]

    def test_create_validation_errors(self, server, client):
        cases = [
            ("bad name", "PUT", "/sessions/..", {"spec": SPEC},
             400, "bad-session-name"),
            ("no spec", "PUT", "/sessions/a", {}, 400, "missing-spec"),
            ("bad spec", "PUT", "/sessions/a", {"spec": {"k": -1}},
             400, "bad-spec"),
            ("bad backend", "PUT", "/sessions/a",
             {"spec": SPEC, "backend": "warp-drive"}, 400, "unknown-backend"),
            ("bad cadence", "PUT", "/sessions/a",
             {"spec": SPEC, "checkpoint_every": 0},
             400, "bad-checkpoint-every"),
            ("bad reference", "PUT", "/sessions/a",
             {"spec": SPEC, "reference_radius": -1},
             400, "bad-reference-radius"),
        ]
        for label, method, path, body, want_status, want_code in cases:
            status, doc, _ = _req(client, method, path, body)
            assert status == want_status, label
            assert doc["error"]["code"] == want_code, label

    def test_extend_json_and_binary_wire_parity(self, server, client):
        pts = _points(3)
        _create(client, "j")
        _create(client, "b")
        status, doc, _ = _req(client, "POST", "/sessions/j/extend",
                              {"points": pts.tolist()})
        assert status == 200 and doc["applied"] == len(pts)
        raw = np.ascontiguousarray(pts, dtype="<f8").tobytes()
        status, doc, _ = _req(
            client, "POST", "/sessions/b/extend", raw,
            headers={"Content-Type": "application/octet-stream",
                     "X-Repro-Shape": f"{pts.shape[0]},{pts.shape[1]}"})
        assert status == 200 and doc["applied"] == len(pts)
        _, sol_j, _ = _req(client, "GET", "/sessions/j/solve")
        _, sol_b, _ = _req(client, "GET", "/sessions/b/solve")
        assert sol_j["radius"] == sol_b["radius"]
        assert sol_j["centers"] == sol_b["centers"]

    def test_extend_error_taxonomy(self, server, client):
        _create(client, "a")
        cases = [
            ("no points", {}, None, 400, "missing-points"),
            ("nan", {"points": [[float("nan"), 0.0]]}, None,
             400, "bad-points"),
            ("ragged", {"points": [[1.0, 2.0], [3.0]]}, None,
             400, "bad-points"),
            ("3d", {"points": [[[1.0]]]}, None, 400, "bad-points"),
        ]
        for label, body, headers, want_status, want_code in cases:
            status, doc, _ = _req(client, "POST", "/sessions/a/extend",
                                  body, headers=headers)
            assert status == want_status, label
            assert doc["error"]["code"] == want_code, label
        # binary path: shape header mismatches
        raw = b"\x00" * 16
        for shape in (None, "bogus", "3,2"):
            headers = {"Content-Type": "application/octet-stream"}
            if shape:
                headers["X-Repro-Shape"] = shape
            status, doc, _ = _req(client, "POST", "/sessions/a/extend",
                                  raw, headers=headers)
            assert status == 400 and doc["error"]["code"] == "bad-shape"
        status, doc, _ = _req(client, "POST", "/sessions/ghost/extend",
                              {"points": [[0.0, 0.0]]})
        assert status == 404 and doc["error"]["code"] == "unknown-session"

    def test_solve_matches_library_and_reports_ratio(self, server, client):
        pts = _points(7)
        control = KCenterSession.from_spec(
            ProblemSpec(**SPEC), backend="insertion-only")
        control.extend(pts)
        want = control.solve(method="greedy3")
        _create(client, "a", reference_radius=float(want.radius))
        _req(client, "POST", "/sessions/a/extend", {"points": pts.tolist()})
        status, doc, _ = _req(client, "GET", "/sessions/a/solve?method=greedy3")
        assert status == 200
        assert doc["radius"] == want.radius
        assert np.array_equal(np.asarray(doc["centers"]), want.centers)
        assert doc["coreset_size"] == want.coreset_size
        assert doc["radius_ratio"] == pytest.approx(1.0)
        # kernel provenance rides along with every solve
        assert doc["kernel_backend"] == "numpy"
        assert doc["greedy_path"] in ("pairwise", "grid", "dense", "mixed")

    def test_delete_points_routes(self, server, client):
        pts = np.random.default_rng(5).integers(
            1, 64, size=(48, 2)).astype(float)
        _create(client, "dyn", backend="dynamic",
                options={"delta_universe": 64, "s_override": 24})
        _req(client, "POST", "/sessions/dyn/extend", {"points": pts.tolist()})
        status, doc, _ = _req(client, "POST", "/sessions/dyn/delete",
                              {"points": pts[:8].tolist()})
        assert status == 200 and doc["applied"] == 8
        _create(client, "ins")
        _req(client, "POST", "/sessions/ins/extend", {"points": pts.tolist()})
        status, doc, _ = _req(client, "POST", "/sessions/ins/delete",
                              {"points": pts[:8].tolist()})
        assert status == 409 and doc["error"]["code"] == "delete-unsupported"

    def test_save_and_drop(self, server, client):
        _create(client, "a")
        _req(client, "POST", "/sessions/a/extend",
             {"points": _points(1).tolist()})
        status, doc, _ = _req(client, "POST", "/sessions/a/save")
        assert status == 200 and doc["path"].endswith("a.snap")
        status, doc, _ = _req(client, "DELETE", "/sessions/a")
        assert status == 200 and doc == {"deleted": "a"}
        status, doc, _ = _req(client, "GET", "/sessions/a")
        assert status == 404


class TestMetricsEndpoint:
    def test_scrape_parses_and_carries_families(self, server, client):
        _create(client, "a")
        pts = _points(2)
        _req(client, "POST", "/sessions/a/extend", {"points": pts.tolist()})
        _req(client, "GET", "/sessions/a/solve")
        _req(client, "GET", "/nope")  # a 404 lands in the request counter too
        status, body, ctype = _req(client, "GET", "/metrics")
        assert status == 200
        assert ctype == "text/plain; version=0.0.4; charset=utf-8"
        fams = parse_prometheus(body.decode())
        for family in (
            "repro_serve_ready",
            "repro_serve_http_requests_total",
            "repro_serve_points_total",
            "repro_serve_solves_total",
            "repro_serve_request_seconds",
            "repro_serve_solve_seconds",
            "repro_serve_sessions_resident",
            "repro_serve_sessions_evicted",
            "repro_serve_evictions_total",
            "repro_serve_restores_total",
            "repro_serve_checkpoints_total",
            "repro_serve_recovered_sessions_total",
            "repro_serve_coreset_size",
            "repro_serve_solve_radius",
        ):
            assert family in fams, family
        assert server.gauge_up.value() == 1
        assert server.counter_points.value(
            op="extend", backend="insertion-only") == len(pts)
        assert server.counter_solves.value(backend="insertion-only") == 1
        assert server.counter_requests.value(
            method="GET", route="*", code="404") >= 1
        # per-backend latency histogram has one extend + one solve sample
        hist = [s for s in fams["repro_serve_request_seconds"]["samples"]
                if s[0].endswith("_count") and s[1]["op"] == "extend"]
        assert hist and float(hist[0][2]) == 1
        # the solve also landed in the per-kernel-backend histogram
        khist = [s for s in fams["repro_serve_solve_seconds"]["samples"]
                 if s[0].endswith("_count") and s[1]["kernel"] == "numpy"]
        assert khist and float(khist[0][2]) == 1

    def test_session_gauges_are_removed_on_drop(self, server, client):
        _create(client, "a")
        _req(client, "POST", "/sessions/a/extend",
             {"points": _points(4).tolist()})
        _req(client, "GET", "/sessions/a/solve")
        _, body, _ = _req(client, "GET", "/metrics")
        assert 'repro_serve_coreset_size{session="a"}' in body.decode()
        _req(client, "DELETE", "/sessions/a")
        _, body, _ = _req(client, "GET", "/metrics")
        assert 'session="a"' not in body.decode()


class TestServerLifecycle:
    def test_ready_file_points_at_server(self, server):
        with open(server.config.ready_file) as fh:
            doc = json.load(fh)
        assert doc["port"] == server.port
        assert doc["url"] == server.url
        assert doc["recovered"] == []

    def test_stop_checkpoints_sessions(self, tmp_path):
        spool = tmp_path / "spool"
        srv = ReproServer(ServeConfig(port=0, spool_dir=str(spool))).start()
        conn = http.client.HTTPConnection("127.0.0.1", srv.port, timeout=30)
        try:
            _create(conn, "a")
            _req(conn, "POST", "/sessions/a/extend",
                 {"points": _points(6).tolist()})
        finally:
            conn.close()
        srv.stop()
        assert (spool / "a.snap").exists()

    def test_restart_recovers_spooled_sessions(self, tmp_path):
        spool = tmp_path / "spool"
        pts = _points(8)
        srv = ReproServer(ServeConfig(port=0, spool_dir=str(spool))).start()
        conn = http.client.HTTPConnection("127.0.0.1", srv.port, timeout=30)
        try:
            _create(conn, "a")
            _req(conn, "POST", "/sessions/a/extend", {"points": pts.tolist()})
            _, want, _ = _req(conn, "GET", "/sessions/a/solve")
        finally:
            conn.close()
        srv.stop()

        srv2 = ReproServer(ServeConfig(port=0, spool_dir=str(spool))).start()
        conn = http.client.HTTPConnection("127.0.0.1", srv2.port, timeout=30)
        try:
            assert srv2.recovered == ["a"]
            status, got, _ = _req(conn, "GET", "/sessions/a/solve")
            assert status == 200
            assert got["radius"] == want["radius"]
            assert got["centers"] == want["centers"]
        finally:
            conn.close()
            srv2.stop()

    def test_context_manager(self, tmp_path):
        with ReproServer(ServeConfig(
                port=0, spool_dir=str(tmp_path / "s"))) as srv:
            conn = http.client.HTTPConnection(
                "127.0.0.1", srv.port, timeout=30)
            try:
                status, _, _ = _req(conn, "GET", "/healthz")
                assert status == 200
            finally:
                conn.close()
