"""Unit tests for repro.geometry.grid."""

import numpy as np
import pytest

from repro.geometry import GridHierarchy, GridLevel


class TestGridLevel:
    def test_side_and_counts(self):
        g = GridLevel(level=3, delta=100, dim=2)
        assert g.side == 8
        assert g.cells_per_axis == 13
        assert g.num_cells == 169

    def test_finest_grid_isolates_points(self):
        g = GridLevel(level=0, delta=16, dim=2)
        pts = np.array([[1, 1], [1, 2], [16, 16]])
        ids = g.cell_ids(pts)
        assert len(set(ids.tolist())) == 3

    def test_coarsest_grid_single_cell(self):
        g = GridLevel(level=4, delta=16, dim=2)
        pts = np.array([[1, 1], [16, 16]])
        assert len(set(g.cell_ids(pts).tolist())) == 1

    def test_cell_ids_in_range(self, rng):
        g = GridLevel(level=2, delta=64, dim=3)
        pts = rng.integers(1, 65, size=(50, 3))
        ids = g.cell_ids(pts)
        assert (ids >= 0).all() and (ids < g.num_cells).all()

    def test_same_cell_same_id(self):
        g = GridLevel(level=2, delta=64, dim=2)
        assert g.cell_id([1, 1]) == g.cell_id([4, 4])
        assert g.cell_id([1, 1]) != g.cell_id([5, 1])

    def test_cell_center_contains_points(self, rng):
        g = GridLevel(level=3, delta=64, dim=2)
        pts = rng.integers(1, 65, size=(30, 2))
        for p in pts:
            cid = g.cell_id(p)
            c = g.cell_center(cid)
            assert np.abs(p - c).max() <= g.side / 2.0

    def test_cell_center_roundtrip(self):
        g = GridLevel(level=1, delta=8, dim=2)
        for p in [[1, 1], [8, 8], [3, 6]]:
            cid = g.cell_id(p)
            c = g.cell_center(cid)
            # centre maps back to the same cell
            assert g.cell_id(np.clip(np.round(c), 1, 8).astype(int)) == cid

    def test_out_of_universe_rejected(self):
        g = GridLevel(level=0, delta=8, dim=1)
        with pytest.raises(ValueError):
            g.cell_ids(np.array([[0]]))
        with pytest.raises(ValueError):
            g.cell_ids(np.array([[9]]))

    def test_wrong_dim_rejected(self):
        g = GridLevel(level=0, delta=8, dim=2)
        with pytest.raises(ValueError):
            g.cell_ids(np.array([[1, 1, 1]]))

    def test_cell_id_out_of_range(self):
        g = GridLevel(level=0, delta=4, dim=1)
        with pytest.raises(ValueError):
            g.cell_center(100)


class TestGridHierarchy:
    def test_num_levels(self):
        assert GridHierarchy(delta=1024, dim=2).num_levels == 11
        assert GridHierarchy(delta=1000, dim=2).num_levels == 11

    def test_level_accessor(self):
        h = GridHierarchy(delta=64, dim=2)
        assert h.level(0).side == 1
        assert h.level(6).side == 64
        with pytest.raises(ValueError):
            h.level(7)

    def test_levels_list(self):
        h = GridHierarchy(delta=16, dim=1)
        lv = h.levels()
        assert [g.level for g in lv] == list(range(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            GridHierarchy(delta=1, dim=2)
        with pytest.raises(ValueError):
            GridHierarchy(delta=8, dim=0)

    def test_finest_level_for_radius(self):
        h = GridHierarchy(delta=1024, dim=2)
        # Lemma 25: 2^j <= (eps/sqrt(d)) r < 2^{j+1}
        j = h.finest_level_for_radius(100.0, 0.5)
        lo = 2**j
        assert lo <= 0.5 * 100.0 / np.sqrt(2) < 2 * lo

    def test_finest_level_clamped(self):
        h = GridHierarchy(delta=64, dim=2)
        assert h.finest_level_for_radius(0.0, 0.5) == 0
        assert h.finest_level_for_radius(1e-9, 0.5) == 0
        assert h.finest_level_for_radius(1e9, 0.5) == h.num_levels - 1
