"""The persistent grid ladder (:class:`repro.geometry.PointGridHierarchy`).

The hierarchy is a performance structure only — soundness must come
from the same ring arithmetic a fresh per-guess grid uses — so the
tests here pin exactly that: for ANY guess radius, the snapped level's
candidate superset contains every true neighbor (of both the ``g``-ball
and the expanded ``3g``-ball the Charikar decision queries), the snap
heuristic keeps rings within the ladder's ``max_ring`` budget, and
derived levels partition the input exactly like direct builds do.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import PointGrid, PointGridHierarchy


def _true_ball(pts, i, dist):
    """Indices within Euclidean ``dist`` of point ``i`` (the tightest of
    the supported metrics' balls, and the superset contract is metric-
    independent: cells are Chebyshev boxes)."""
    return set(np.nonzero(
        np.linalg.norm(pts - pts[i], axis=1) <= dist
    )[0].tolist())


class TestLevelSnap:
    def test_side_brackets_cutoff(self):
        h = PointGridHierarchy(np.zeros((1, 2)), 0.01)
        for cutoff in (0.01, 0.013, 0.04, 1.0, 7.3, 1e4):
            lvl = h.level_for(cutoff)
            target = cutoff * (1.0 + 1e-6)
            # the snap-up rule keeps side in [target, 2*target): the
            # cutoff ball fits in ring 1 and the 3g-ball in ring 3
            assert h.side(lvl) >= target
            assert h.side(lvl) < 2.0 * target

    def test_rings_within_budget(self, rng):
        pts = rng.uniform(0, 10, size=(500, 2))
        h = PointGridHierarchy(pts, 1e-4)
        for cutoff in (2e-4, 0.003, 0.1, 1.7, 9.0):
            grid = h.grid_for(cutoff)
            assert grid is not None
            assert grid.ring(cutoff) == 1
            assert grid.ring(3.0 * cutoff) <= 3

    def test_invalid_cutoff_rejected(self):
        h = PointGridHierarchy(np.zeros((1, 2)), 1.0)
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                h.level_for(bad)

    def test_invalid_base_rejected(self):
        for bad in (0.0, -1.0, float("nan")):
            with pytest.raises(ValueError):
                PointGridHierarchy(np.zeros((1, 2)), bad)


class TestCounters:
    def test_snap_hits_and_derives(self, rng):
        pts = rng.uniform(0, 10, size=(300, 2))
        h = PointGridHierarchy(pts, 0.01)
        assert h.grid_for(0.5) is not None
        assert (h.direct_builds, h.derived_builds, h.snap_hits) == (1, 0, 0)
        # same cutoff again: served from the memoized level
        assert h.grid_for(0.5) is not None
        assert h.snap_hits == 1
        # a coarser cutoff derives its level from the finer one
        assert h.grid_for(4.0) is not None
        assert h.derived_builds == 1 and h.direct_builds == 1
        # nearby cutoffs snap into already-materialized levels
        assert h.grid_for(3.9) is not None
        assert h.snap_hits == 2


class TestExactSideFastPath:
    """``cell_budget`` turns on the refine step: grid_for may serve a
    side-equals-cutoff grid instead of the snapped ladder level, chosen
    by the scan-cost model — the superset contract is unchanged."""

    def test_exact_side_served_and_memoized(self, rng):
        # dense enough that the pair estimate demands tightness, and a
        # cutoff whose snapped side overshoots by >5%
        pts = rng.uniform(0, 10, size=(30_000, 2))
        h = PointGridHierarchy(pts, 0.01, cell_budget=4096)
        cutoff = 3.0  # snapped side 5.12 (ratio 1.71), few cells both ways
        grid = h.grid_for(cutoff)
        assert grid is not None
        assert grid.side == pytest.approx(cutoff * (1.0 + 1e-6))
        builds = h.direct_builds
        again = h.grid_for(cutoff)
        assert again is grid and h.direct_builds == builds
        assert h.snap_hits >= 1
        for i in (0, 100):
            cand = set(grid.query_point(i, cutoff).tolist())
            assert _true_ball(pts, i, cutoff) <= cand

    def test_near_exact_snap_keeps_level(self, rng):
        pts = rng.uniform(0, 10, size=(30_000, 2))
        h = PointGridHierarchy(pts, 0.01, cell_budget=4096)
        # base * 2^9 = 5.12: a cutoff within 5% below it keeps the level
        cutoff = 5.12 / 1.04
        grid = h.grid_for(cutoff)
        assert grid is not None
        assert grid.side == pytest.approx(5.12)

    def test_blocked_regime_keeps_snapped_level(self, rng):
        # snapped level under the budget, exact side estimated over it:
        # only the snapped level reaches the blocked-matvec regime
        pts = rng.uniform(0, 10, size=(50_000, 2))
        h = PointGridHierarchy(pts, 1e-3, cell_budget=120)
        cutoff = 0.75  # snapped side 1.024 -> 100 cells; exact ~186 est.
        grid = h.grid_for(cutoff)
        assert grid is not None
        snapped_side = h.side(h.level_for(cutoff))
        assert grid.side == pytest.approx(snapped_side)

    def test_budget_off_by_default(self, rng):
        pts = rng.uniform(0, 10, size=(2_000, 2))
        h = PointGridHierarchy(pts, 0.01)
        grid = h.grid_for(3.0)
        assert grid is not None
        assert grid.side == pytest.approx(h.side(h.level_for(3.0)))


class TestDerivedLevels:
    def test_derived_level_partitions_points(self, rng):
        pts = rng.uniform(-5, 5, size=(400, 3))
        h = PointGridHierarchy(pts, 0.05)
        fine = h.grid_for(0.1)
        coarse = h.grid_for(3.0)
        assert fine is not None and coarse is not None
        assert h.derived_builds >= 1
        for grid in (fine, coarse):
            assert int(grid.cell_counts.sum()) == len(pts)
            assert np.array_equal(np.sort(grid.order), np.arange(len(pts)))
            # every point's quantized coordinate matches its cell's axes
            q = np.floor(pts / grid.side).astype(np.int64)
            np.testing.assert_array_equal(
                grid.cell_axes[grid.point_cell], q)

    def test_derived_equals_direct_cell_structure(self, rng):
        # the nested-floor identity: deriving level L from a finer level
        # assigns every point the same absolute cell index a direct
        # quantization at side(L) would (the float divisions differ, but
        # both floor the same exact integer grid)
        pts = rng.uniform(0, 8, size=(250, 2))
        h = PointGridHierarchy(pts, 0.07)
        h.grid_for(0.07)  # materialize a fine level first
        derived = h.grid_for(2.0)
        assert derived is not None and h.derived_builds >= 1
        q = np.floor(pts / derived.side).astype(np.int64)
        np.testing.assert_array_equal(derived.cell_axes[derived.point_cell], q)


class TestAdversarialLayouts:
    def test_all_points_in_one_cell(self, rng):
        # a tight cluster far from the origin: every snapped level above
        # the spread has exactly one non-empty cell, and the superset
        # still covers the whole cluster
        pts = 1000.0 + rng.uniform(0, 1e-3, size=(200, 2))
        h = PointGridHierarchy(pts, 1e-2)
        for cutoff in (0.01, 0.5, 30.0):
            grid = h.grid_for(cutoff)
            assert grid is not None
            for i in (0, 50, 199):
                cand = set(grid.query_point(i, cutoff).tolist())
                assert _true_ball(pts, i, cutoff) <= cand
        assert h.grid_for(30.0).num_cells == 1

    def test_one_point_per_cell(self, rng):
        # a spread lattice at a fine cutoff: every point is alone in its
        # cell and the candidate superset still contains each g-ball
        pts = np.array([[float(i), float(j)]
                        for i in range(16) for j in range(16)])
        h = PointGridHierarchy(pts, 0.3)
        grid = h.grid_for(0.4)
        assert grid is not None
        assert grid.num_cells == len(pts)
        for i in (0, 17, 255):
            cand = set(grid.query_point(i, 0.4).tolist())
            assert _true_ball(pts, i, 0.4) <= cand

    def test_huge_coordinates_snap_coarser_or_refuse(self):
        # untrusted fine levels: grid_for may serve a coarser (always
        # sound) level or refuse entirely, never a corrupt grid
        pts = np.array([[0.0, 0.0], [1e12, 1e12]])
        h = PointGridHierarchy(pts, 1e-3)
        grid = h.grid_for(1e-3)
        if grid is not None:
            assert grid.side >= 1e-3
            cand = set(grid.query_point(0, 1e-3).tolist())
            assert _true_ball(pts, 0, 1e-3) <= cand


# ---------------------------------------------------------------------------
# Property: hierarchy-snapped levels are sound for EVERY guess radius
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(5, 120),
    d=st.integers(1, 4),
    scale=st.sampled_from([1e-3, 1.0, 1e4]),
    cutoff_mult=st.floats(1e-4, 50.0),
)
def test_snapped_level_superset_property(seed, n, d, scale, cutoff_mult):
    """For any dataset and any guess radius: the snapped grid's
    ``query_point`` superset contains the true ``cutoff``-ball AND the
    expanded ``3 * cutoff``-ball (what ``_grid_decision`` queries), i.e.
    the triangle-inequality slack of the ring rule survives the snap."""
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, d)) * scale
    spread = float(np.max(np.abs(pts))) or 1.0
    base = spread * 1e-5
    cutoff = base * cutoff_mult * 10.0
    h = PointGridHierarchy(pts, base)
    grid = h.grid_for(cutoff)
    if grid is None:  # refusing is allowed, serving corrupt cells is not
        return
    assert grid.ring(cutoff) == 1
    assert grid.ring(3.0 * cutoff) <= 3
    for i in (0, n // 2, n - 1):
        cand = set(grid.query_point(i, cutoff).tolist())
        assert _true_ball(pts, i, cutoff) <= cand
        cand3 = set(grid.query_point(i, 3.0 * cutoff).tolist())
        assert _true_ball(pts, i, 3.0 * cutoff) <= cand3


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(10, 80),
    d=st.integers(1, 3),
)
def test_derived_matches_direct_quantization_property(seed, n, d):
    """A derived coarse level assigns every point the cell a direct
    ``floor(p / side)`` quantization gives (nested-floor identity)."""
    rng = np.random.default_rng(seed)
    pts = rng.uniform(-20, 20, size=(n, d))
    h = PointGridHierarchy(pts, 0.11)
    h.grid_for(0.11)
    for cutoff in (0.9, 6.5):
        grid = h.grid_for(cutoff)
        if grid is None:
            continue
        q = np.floor(pts / grid.side).astype(np.int64)
        np.testing.assert_array_equal(grid.cell_axes[grid.point_cell], q)
        direct = PointGrid.build(pts, grid.side, max_ring=grid.max_ring)
        assert direct is not None
        np.testing.assert_array_equal(
            np.sort(direct.point_cell), np.sort(grid.point_cell))
