"""KCenterSession's concurrency contract (see `repro.api.session`).

Eight threads hammering one session must (a) keep the accounting exact,
(b) apply every batch atomically — the final state is bit-identical to a
serial run applying the same batches in the order the lock admitted
them — and (c) for order-insensitive backends (the linear dynamic
sketches), be bit-identical to *any* serial run of the same multiset.
"""

import threading

import numpy as np
import pytest

from repro.api import KCenterSession, ProblemSpec

DELTA = 64
THREADS = 8
BATCHES_PER_THREAD = 6
BATCH = 25


def _spec(seed=7):
    return ProblemSpec(k=3, z=5, eps=0.5, dim=2, seed=seed)


def _batches(integer: bool, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(THREADS * BATCHES_PER_THREAD):
        if integer:
            out.append(rng.integers(1, DELTA, size=(BATCH, 2)).astype(float))
        else:
            out.append(rng.normal(size=(BATCH, 2)) * 5.0)
    return out


def _hammer(sess, batches):
    """Extend `sess` from THREADS threads, each owning a batch slice."""
    start = threading.Barrier(THREADS)
    errors = []

    def worker(i):
        try:
            start.wait()
            for b in batches[i::THREADS]:
                sess.extend(b)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,))
               for i in range(THREADS)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, f"worker raised: {errors[0]!r}"


class TestDynamicOrderInsensitive:
    """The linear sketch state commutes, so threaded == serial exactly."""

    @pytest.mark.parametrize("backend", ["dynamic", "dynamic-deterministic"])
    def test_threaded_equals_serial_multiset(self, backend):
        batches = _batches(integer=True)
        opts = {"delta_universe": DELTA, "s_override": 24}

        threaded = KCenterSession.from_spec(_spec(), backend=backend, **opts)
        _hammer(threaded, batches)

        serial = KCenterSession.from_spec(_spec(), backend=backend, **opts)
        for b in batches:
            serial.extend(b)

        assert threaded.updates_seen == serial.updates_seen
        t_cs, s_cs = threaded.coreset(), serial.coreset()
        assert np.array_equal(t_cs.points, s_cs.points)
        assert np.array_equal(t_cs.weights, s_cs.weights)
        t_sol, s_sol = threaded.solve(), serial.solve()
        assert t_sol.radius == s_sol.radius
        assert np.array_equal(t_sol.centers, s_sol.centers)


class TestBatchAtomicity:
    """Order-dependent backends: the threaded run must equal a serial
    replay of the batches in the exact order the session admitted them
    (i.e. each batch was applied atomically, none interleaved)."""

    @pytest.mark.parametrize("backend", ["insertion-only", "offline"])
    def test_threaded_equals_serial_in_admitted_order(self, backend):
        batches = _batches(integer=False)
        sess = KCenterSession.from_spec(_spec(), backend=backend)

        admitted = []
        inner = sess.backend.extend

        def logging_extend(pts, _inner=inner):
            # runs under the session lock, so append order == apply order
            admitted.append(np.array(pts))
            _inner(pts)

        sess.backend.extend = logging_extend
        _hammer(sess, batches)
        assert sess.updates_seen == THREADS * BATCHES_PER_THREAD * BATCH
        assert len(admitted) == len(batches)

        serial = KCenterSession.from_spec(_spec(), backend=backend)
        for b in admitted:
            serial.extend(b)

        t_cs, s_cs = sess.coreset(), serial.coreset()
        assert np.array_equal(t_cs.points, s_cs.points)
        assert np.array_equal(t_cs.weights, s_cs.weights)
        assert sess.solve().radius == serial.solve().radius


class TestMixedReadersAndWriters:
    def test_solves_interleaved_with_extends(self):
        batches = _batches(integer=False, seed=3)
        sess = KCenterSession.from_spec(_spec(), backend="insertion-only")
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    sol = sess.solve()
                    assert sol.radius >= 0.0
                    sess.stats()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in readers:
            t.start()
        try:
            _hammer(sess, batches)
        finally:
            stop.set()
            for t in readers:
                t.join()
        assert not errors, f"reader raised: {errors[0]!r}"
        assert sess.updates_seen == THREADS * BATCHES_PER_THREAD * BATCH

    def test_concurrent_saves_consistent(self, tmp_path):
        sess = KCenterSession.from_spec(_spec(), backend="insertion-only")
        sess.extend(np.random.default_rng(0).normal(size=(200, 2)))
        paths = [str(tmp_path / f"s{i}.snap") for i in range(4)]
        threads = [threading.Thread(target=sess.save, args=(p,))
                   for p in paths]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        loaded = [KCenterSession.load(p) for p in paths]
        for lo in loaded:
            assert lo.updates_seen == 200
            assert np.array_equal(lo.coreset().points, sess.coreset().points)
