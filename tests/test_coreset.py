"""Unit tests for repro.core.coreset (Definition 1 verification)."""

import numpy as np
import pytest

from repro.core import (
    WeightedPointSet,
    mbc_construction,
    opt_bounds,
    verify_covering_property,
    verify_expansion_property,
    verify_sandwich,
    verify_weight_property,
)


class TestWeightProperty:
    def test_pass(self, small_set):
        mbc = mbc_construction(small_set, 2, 4, 0.5)
        assert verify_weight_property(small_set, mbc.coreset).ok

    def test_fail_on_lost_weight(self, small_set):
        bad = small_set.subset(np.arange(len(small_set) - 1))
        assert not verify_weight_property(small_set, bad).ok


class TestOptBounds:
    def test_exact_for_small(self, tiny_set):
        lo, hi = opt_bounds(tiny_set, 2, 1)
        assert lo == hi  # brute force

    def test_certified_interval_large(self, small_set):
        lo, hi = opt_bounds(small_set, 2, 4)
        assert 0 < lo <= hi <= 3 * lo + 1e-9

    def test_interval_contains_brute(self, rng):
        P = WeightedPointSet.from_points(rng.uniform(0, 5, (14, 2)))
        lo, hi = opt_bounds(P, 2, 2, exact_limit=5)  # force greedy interval
        from repro.core import brute_force_opt
        opt = brute_force_opt(P, 2, 2).radius
        assert lo - 1e-9 <= opt <= hi + 1e-9


class TestSandwich:
    def test_mbc_passes(self, small_set):
        mbc = mbc_construction(small_set, 2, 4, 0.5)
        assert verify_sandwich(small_set, mbc.coreset, 2, 4, 0.5).ok

    def test_garbage_coreset_fails(self, small_set):
        # a single far-away heavy point is not a coreset
        bad = WeightedPointSet(np.array([[1e6, 1e6]]), [small_set.total_weight])
        chk = verify_sandwich(small_set, bad, 2, 4, 0.5)
        assert not chk.ok

    def test_identity_coreset_trivially_passes(self, small_set):
        assert verify_sandwich(small_set, small_set, 2, 4, 0.0).ok


class TestCoveringProperty:
    def test_detects_missing_assignment(self, small_set):
        mbc = mbc_construction(small_set, 2, 4, 0.5)
        import dataclasses
        broken = dataclasses.replace(
            mbc, assignment=np.full(len(small_set), -1, dtype=np.int64)
        )
        assert not verify_covering_property(small_set, broken, 1.0).ok

    def test_detects_length_mismatch(self, small_set):
        mbc = mbc_construction(small_set, 2, 4, 0.5)
        import dataclasses
        broken = dataclasses.replace(mbc, assignment=mbc.assignment[:-1])
        assert not verify_covering_property(small_set, broken, 1.0).ok

    def test_metric_aware(self):
        P = WeightedPointSet.from_points(np.array([[0.0, 0.0], [3.0, 4.0]]))
        mbc = mbc_construction(P, 1, 0, 1.0)
        # under L_inf the worst distance is smaller than under L2
        chk_l2 = verify_covering_property(P, mbc, 5.0, "l2")
        chk_linf = verify_covering_property(P, mbc, 4.0, "linf")
        assert chk_l2.ok and chk_linf.ok


class TestExpansionProperty:
    def test_mbc_passes_random_balls(self, small_set, rng):
        mbc = mbc_construction(small_set, 2, 4, 0.5)
        chk = verify_expansion_property(
            small_set, mbc.coreset, 2, 4, 0.5, rng=rng, trials=30
        )
        assert chk.ok, chk.details

    def test_explicit_ball_sets(self, small_set):
        mbc = mbc_construction(small_set, 2, 4, 0.5)
        _, hi = opt_bounds(small_set, 2, 4)
        balls = [(mbc.coreset.points[:2], hi), (mbc.coreset.points[:1], 2 * hi)]
        chk = verify_expansion_property(
            small_set, mbc.coreset, 2, 4, 0.5, ball_sets=balls, opt_value=hi
        )
        assert chk.ok

    def test_rejects_too_many_balls(self, small_set):
        mbc = mbc_construction(small_set, 2, 4, 0.5)
        balls = [(mbc.coreset.points[:5], 1.0)]
        with pytest.raises(ValueError):
            verify_expansion_property(
                small_set, mbc.coreset, 2, 4, 0.5, ball_sets=balls, opt_value=1.0
            )

    def test_catches_weight_starved_coreset(self, small_planar):
        """A 'coreset' that silently dropped the outliers fails condition
        (2): balls covering it with budget z leave > z weight uncovered in
        the original."""
        P = small_planar.point_set()
        inliers = P.subset(~small_planar.outlier_mask)
        k, z = 2, 3  # fewer than the 4 planted outliers
        _, hi = opt_bounds(P, k, z)
        # balls covering all inliers with radius ~ cluster scale
        from repro.core import charikar_greedy
        res = charikar_greedy(inliers, k, 0)
        balls = [(inliers.points[res.centers_idx], res.radius)]
        chk = verify_expansion_property(
            P, inliers, k, z, 0.3, ball_sets=balls, opt_value=hi
        )
        assert not chk.ok
