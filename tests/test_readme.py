"""Execute every fenced ``python`` block in README.md.

The quickstart is documentation *and* a contract: blocks run in order,
in one shared namespace (like a REPL session), so a README that names a
symbol that no longer exists, or passes options a backend no longer
accepts, fails the suite instead of silently drifting.
"""

import pathlib
import re

README = pathlib.Path(__file__).resolve().parents[1] / "README.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.S)


def _python_blocks() -> "list[str]":
    return _FENCE.findall(README.read_text())


def test_readme_has_python_blocks():
    assert len(_python_blocks()) >= 4, "README lost its quickstart blocks"


def test_readme_python_blocks_execute(capsys):
    ns = {"__name__": "__readme__"}
    for i, block in enumerate(_python_blocks()):
        code = compile(block, f"README.md[python block {i}]", "exec")
        try:
            exec(code, ns)  # noqa: S102 - executing our own documentation
        except Exception as exc:
            raise AssertionError(
                f"README python block {i} failed ({type(exc).__name__}: "
                f"{exc}):\n{block}"
            ) from exc
    # the quickstart session must actually have produced a solution
    assert "sol" in ns and ns["sol"].radius > 0
    assert "result" in ns and len(ns["result"].cells) >= 4
