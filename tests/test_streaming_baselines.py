"""Tests for the streaming baselines (CPP19, McCutchen-Khuller)."""

import numpy as np
import pytest

from repro.core import WeightedPointSet, charikar_greedy, verify_sandwich
from repro.streaming import (
    CeccarelloStreamingCoreset,
    McCutchenKhuller,
    MKInstance,
    cpp_size_threshold,
)
from repro.workloads import drifting_stream


class TestCPPStreaming:
    def test_threshold_shape(self):
        # (k+z)/eps^d versus ours' k/eps^d + z: baseline grows in z
        ours_like = 2 * 32 + 100
        assert cpp_size_threshold(2, 100, 0.5, 1) == 102 * 32 > 4 * ours_like

    def test_valid_coreset(self, rng):
        stream = drifting_stream(500, 2, 5, d=1, rng=rng)
        cpp = CeccarelloStreamingCoreset(2, 5, 1.0, d=1)
        cpp.extend(stream)
        P = WeightedPointSet.from_points(stream)
        assert cpp.coreset().total_weight == 500
        assert verify_sandwich(P, cpp.coreset(), 2, 5, 1.0).ok

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            cpp_size_threshold(1, 0, 0.0, 1)


class TestMKInstance:
    def test_capacity_respected(self, rng):
        inst = MKInstance(2, 3, __import__("repro.core", fromlist=["get_metric"]).get_metric(None))
        for p in rng.uniform(0, 100, size=(200, 1)):
            inst.insert(p)
        assert inst.size <= inst.capacity

    def test_weight_preserved(self, rng):
        from repro.core import get_metric
        inst = MKInstance(2, 3, get_metric(None))
        for p in rng.uniform(0, 100, size=(150, 1)):
            inst.insert(p)
        assert sum(inst._w) == 150


class TestMcCutchenKhuller:
    def test_storage_shape(self, rng):
        mk = McCutchenKhuller(3, 10, eps=0.5)
        for p in rng.uniform(0, 100, size=(300, 2)):
            mk.insert(p)
        # per instance k(z+1)+z+1; 2 staggered instances at eps=0.5
        assert mk.size <= 2 * (3 * 11 + 11)

    def test_estimate_constant_factor(self, rng):
        pts = np.concatenate([
            rng.normal(0, 0.3, (100, 1)), rng.normal(50, 0.3, (100, 1)),
            rng.uniform(500, 600, (3, 1)),
        ])
        rng.shuffle(pts)
        mk = McCutchenKhuller(2, 3, eps=0.5)
        mk.extend(pts)
        P = WeightedPointSet.from_points(pts)
        greedy = charikar_greedy(P, 2, 3)
        opt_lb, opt_ub = greedy.radius / 3, greedy.radius
        est = mk.estimate()
        # constant-factor window around the optimum interval
        assert est <= 16 * opt_ub + 1e-9
        assert est >= opt_lb / 16 - 1e-9

    def test_zero_estimate_before_capacity(self):
        mk = McCutchenKhuller(2, 3, eps=1.0, instances=1)
        mk.insert([0.0])
        # stored points (1) below k+z: exact answer is 0 via k centers
        assert mk.estimate() == 0.0

    def test_instances_default(self):
        mk = McCutchenKhuller(2, 3, eps=0.25)
        assert len(mk.instances) == 4
