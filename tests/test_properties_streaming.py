"""Property-based tests on the streaming structures and grids."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import WeightedPointSet, brute_force_opt
from repro.geometry import GridHierarchy
from repro.sketches import VandermondeSketch
from repro.streaming import InsertionOnlyCoreset

coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, width=32)


class TestInsertionOnlyInvariants:
    @given(xs=st.lists(coords, min_size=1, max_size=14))
    @settings(max_examples=40, deadline=None)
    def test_weight_and_radius_lower_bound(self, xs):
        """On any tiny stream: total weight preserved, and the radius
        estimate never exceeds the exact optimum (paper threshold)."""
        st_ = InsertionOnlyCoreset(2, 1, 1.0, d=1)
        pts = np.asarray(xs, dtype=float).reshape(-1, 1)
        st_.extend(pts)
        cs = st_.coreset()
        assert cs.total_weight == len(xs)
        P = WeightedPointSet.from_points(pts)
        opt = brute_force_opt(P, 2, 1, max_points=14).radius
        assert st_.r <= opt + 1e-9

    @given(xs=st.lists(coords, min_size=3, max_size=14))
    @settings(max_examples=30, deadline=None)
    def test_coreset_radius_sandwich(self, xs):
        """opt on the coreset within (1 +- eps) * 3-approx slack of opt on
        the stream, for every hypothesis-generated stream."""
        st_ = InsertionOnlyCoreset(2, 1, 1.0, d=1)
        pts = np.asarray(xs, dtype=float).reshape(-1, 1)
        st_.extend(pts)
        P = WeightedPointSet.from_points(pts)
        opt_p = brute_force_opt(P, 2, 1, max_points=14).radius
        cs = st_.coreset()
        opt_c = brute_force_opt(cs, 2, 1, max_points=len(cs)).radius
        # Definition 1 with eps = 1: opt_c in [0, 2 opt_p] and the
        # covering property bounds the other side
        assert opt_c <= 2 * opt_p + 1e-9
        assert opt_p <= opt_c + 2 * 1.0 * max(opt_p, st_.r) + 1e-9


class TestGridProperties:
    @given(
        delta_pow=st.integers(2, 10),
        level=st.integers(0, 5),
        pts=st.lists(st.tuples(st.integers(1, 1023), st.integers(1, 1023)),
                     min_size=1, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_cell_id_consistent_with_geometry(self, delta_pow, level, pts):
        delta = 1 << delta_pow
        level = min(level, delta_pow)
        g = GridHierarchy(delta, 2).level(level)
        arr = np.asarray([(min(x, delta), min(y, delta)) for x, y in pts],
                         dtype=np.int64)
        ids = g.cell_ids(arr)
        # two points share an id iff they share every axis cell index
        idx = (arr - 1) >> level
        for i in range(len(arr)):
            for j in range(i + 1, len(arr)):
                same_geom = bool((idx[i] == idx[j]).all())
                assert same_geom == (ids[i] == ids[j])

    @given(
        delta_pow=st.integers(2, 8),
        pt=st.tuples(st.integers(1, 255), st.integers(1, 255)),
    )
    @settings(max_examples=40, deadline=None)
    def test_cell_center_within_half_side(self, delta_pow, pt):
        delta = 1 << delta_pow
        h = GridHierarchy(delta, 2)
        p = np.asarray([min(pt[0], delta), min(pt[1], delta)], dtype=np.int64)
        for lvl in h.levels():
            c = lvl.cell_center(lvl.cell_id(p))
            assert np.abs(c - p).max() <= lvl.side / 2.0


class TestVandermondeProperties:
    @given(items=st.dictionaries(st.integers(0, 9999), st.integers(1, 100),
                                 min_size=0, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, items):
        sk = VandermondeSketch(6, 10000)
        for k, w in items.items():
            sk.update(k, w)
        res = sk.decode()
        assert res.success and res.items == items

    @given(items=st.dictionaries(st.integers(0, 999), st.integers(1, 9),
                                 min_size=1, max_size=6),
           extra=st.integers(0, 999))
    @settings(max_examples=30, deadline=None)
    def test_linearity(self, items, extra):
        """Insert-then-delete any overlay leaves the base decodable."""
        sk = VandermondeSketch(6, 1000)
        for k, w in items.items():
            sk.update(k, w)
        sk.update(extra, 3)
        sk.update(extra, -3)
        res = sk.decode()
        assert res.success and res.items == items
