"""Tests for the thread-parallel MPC execution mode."""

import numpy as np

from repro.mpc import (
    one_round_coreset,
    parallel_map,
    partition_adversarial_outliers,
    partition_random,
    two_round_coreset,
)
from repro.workloads import clustered_with_outliers


class TestParallelMap:
    def test_preserves_order(self):
        out = parallel_map(lambda x: x * x, range(20), parallel=True)
        assert out == [x * x for x in range(20)]

    def test_sequential_identical(self):
        seq = parallel_map(lambda x: x + 1, range(10), parallel=False)
        par = parallel_map(lambda x: x + 1, range(10), parallel=True)
        assert seq == par

    def test_single_item_shortcut(self):
        assert parallel_map(lambda x: -x, [5], parallel=True) == [-5]

    def test_empty(self):
        assert parallel_map(lambda x: x, [], parallel=True) == []


class TestParallelAlgorithms:
    def test_two_round_parallel_identical(self, rng):
        wl = clustered_with_outliers(400, 3, 12, d=2, rng=rng)
        P = wl.point_set()
        parts = partition_adversarial_outliers(P, wl.outlier_mask, 5, rng)
        seq = two_round_coreset(parts, 3, 12, 0.5, parallel=False)
        par = two_round_coreset(parts, 3, 12, 0.5, parallel=True)
        assert np.array_equal(seq.coreset.points, par.coreset.points)
        assert np.array_equal(seq.coreset.weights, par.coreset.weights)
        assert seq.extras["rhat"] == par.extras["rhat"]
        assert seq.extras["jhats"] == par.extras["jhats"]

    def test_one_round_parallel_identical(self, rng):
        wl = clustered_with_outliers(400, 3, 12, d=2, rng=rng)
        P = wl.point_set()
        parts = partition_random(P, 5, rng)
        seq = one_round_coreset(parts, 3, 12, 0.5, parallel=False)
        par = one_round_coreset(parts, 3, 12, 0.5, parallel=True)
        assert np.array_equal(seq.coreset.points, par.coreset.points)
        assert np.array_equal(seq.coreset.weights, par.coreset.weights)
        assert seq.stats == par.stats
