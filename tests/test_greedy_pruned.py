"""The grid-pruned candidate scans: PointGrid correctness, the sparse
pair-distance kernel, workspace norm-subset reuse, and bit-for-bit
parity of the pruned geometric search against the dense path on
adversarial layouts.

Parity here is *identity*, not closeness: integer weights are exact in
float64 (sums are order-independent), and :func:`pair_distances`
reproduces the corresponding ``cdist`` entries bit for bit, so every
argmax pick of the pruned decision procedure must equal the dense one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.greedy as greedy_mod
from repro.core import WeightedPointSet, charikar_greedy
from repro.core._greedy_reference import charikar_greedy_reference
from repro.core.greedy import _grid_decision, _grid_for_guess
from repro.core.metrics import get_metric
from repro.geometry import PointGrid
from repro.kernels import Workspace, pair_distances, pairwise_kernel

METRICS = ("euclidean", "chebyshev", "manhattan")


# ---------------------------------------------------------------------------
# PointGrid
# ---------------------------------------------------------------------------


class TestPointGrid:
    def test_partitions_all_points(self, rng):
        pts = rng.uniform(-5, 5, size=(200, 3))
        grid = PointGrid.build(pts, 0.7)
        assert grid is not None
        assert int(grid.cell_counts.sum()) == len(pts)
        # order is a permutation and point_cell matches the sorted layout
        assert np.array_equal(np.sort(grid.order), np.arange(len(pts)))
        for c in range(grid.num_cells):
            members = grid.order[
                grid.cell_starts[c] : grid.cell_starts[c] + grid.cell_counts[c]
            ]
            assert np.all(grid.point_cell[members] == c)

    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_query_point_is_a_candidate_superset(self, rng, d):
        pts = rng.uniform(-3, 3, size=(150, d))
        for dist in (0.2, 0.9, 2.5):
            grid = PointGrid.build(pts, dist * (1 + 1e-6), max_ring=1)
            assert grid is not None
            for i in (0, 7, 149):
                cand = set(grid.query_point(i, dist).tolist())
                true = np.nonzero(
                    np.linalg.norm(pts - pts[i], axis=1) <= dist
                )[0]
                assert set(true.tolist()) <= cand
                assert i in cand

    def test_ring_rule(self):
        pts = np.zeros((1, 2))
        grid = PointGrid.build(pts, 1.0, max_ring=3)
        assert grid.ring(0.0) == 1
        assert grid.ring(0.999999) == 1
        assert grid.ring(1.5) == 2
        assert grid.ring(2.999) == 3
        with pytest.raises(ValueError):
            grid.ring(3.5)

    def test_build_rejects_untrustworthy_quantization(self):
        pts = np.array([[0.0, 0.0], [1e12, 1e12]])
        assert PointGrid.build(pts, 1e-3) is None  # |cell index| >= 2^30
        assert PointGrid.build(pts, 0.0) is None
        assert PointGrid.build(pts, float("nan")) is None
        assert PointGrid.build(np.array([[np.inf, 0.0]]), 1.0) is None

    def test_points_in_cells_matches_loop(self, rng):
        pts = rng.uniform(0, 4, size=(80, 2))
        grid = PointGrid.build(pts, 0.5)
        cells = np.array([0, grid.num_cells - 1, 0])  # duplicates allowed
        got = grid.points_in_cells(cells)
        want = np.concatenate([
            grid.order[grid.cell_starts[c] : grid.cell_starts[c]
                       + grid.cell_counts[c]]
            for c in cells
        ])
        assert np.array_equal(got, want)

    def test_query_cells_union_unique_superset(self, rng):
        pts = rng.uniform(0, 4, size=(120, 2))
        dist = 0.6
        grid = PointGrid.build(pts, dist * (1 + 1e-6), max_ring=1)
        cells = grid.point_cell[np.array([3, 57, 3])]
        got = grid.query_cells_union(cells, dist)
        assert len(np.unique(got)) == len(got)
        for i in (3, 57):
            true = np.nonzero(
                np.linalg.norm(pts - pts[i], axis=1) <= dist
            )[0]
            assert set(true.tolist()) <= set(got.tolist())


# ---------------------------------------------------------------------------
# pair_distances — the sparse kernel must bit-match cdist
# ---------------------------------------------------------------------------


class TestPairDistances:
    @pytest.mark.parametrize("kind", METRICS)
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_bit_matches_cdist(self, rng, kind, d):
        pts = rng.normal(size=(60, d)) * rng.choice([1e-3, 1.0, 1e6])
        rows = rng.integers(0, 60, size=300)
        cols = rng.integers(0, 60, size=300)
        D = pairwise_kernel(kind, pts, pts)  # the cdist reference path
        got = pair_distances(kind, pts, rows, cols)
        assert got.dtype == np.float64
        np.testing.assert_array_equal(got, D[rows, cols])

    def test_empty_pairs(self):
        pts = np.zeros((3, 2))
        out = pair_distances(
            "euclidean", pts, np.zeros(0, dtype=int), np.zeros(0, dtype=int)
        )
        assert out.shape == (0,)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            pair_distances("cosine", np.zeros((2, 2)), [0], [1])


# ---------------------------------------------------------------------------
# Workspace.take — cached norm subsets for the pruned scans
# ---------------------------------------------------------------------------


class TestWorkspaceTake:
    def test_subset_norms_bit_equal_and_seeded(self, rng):
        ws = Workspace()
        base = rng.normal(size=(50, 3)).astype(np.float32)
        full = ws.sqnorms(base)
        idx = np.array([4, 9, 11, 30])
        sub = ws.take(base, idx)
        np.testing.assert_array_equal(sub, base[idx])
        # the subset's norms were seeded from the cached full reduction
        np.testing.assert_array_equal(ws.sqnorms(sub), full[idx])

    def test_memoized_per_index_set(self, rng):
        ws = Workspace()
        base = rng.normal(size=(20, 2))
        idx = np.array([1, 3, 5])
        sub1 = ws.take(base, idx)
        sub2 = ws.take(base, idx.copy())  # equal content, distinct array
        assert sub1 is sub2
        other = ws.take(base, np.array([2, 4]))
        assert other is not sub1


# ---------------------------------------------------------------------------
# Pruned-vs-dense parity on adversarial layouts
# ---------------------------------------------------------------------------


def _assert_same_result(a, b):
    assert a.radius == b.radius
    assert a.guess == b.guess
    np.testing.assert_array_equal(a.centers_idx, b.centers_idx)
    np.testing.assert_array_equal(a.uncovered, b.uncovered)


def _check_parity(P, k, z, metric=None, pairwise_limit=8):
    """prune='auto' vs prune='off' vs the frozen reference, bit for bit.

    A tiny ``pairwise_limit`` forces the geometric search where the grid
    pruning lives.
    """
    met = get_metric(metric)
    pruned = charikar_greedy(P, k, z, met, pairwise_limit=pairwise_limit)
    dense = charikar_greedy(
        P, k, z, met, pairwise_limit=pairwise_limit, prune="off"
    )
    assert dense.path == "dense"
    _assert_same_result(pruned, dense)
    _assert_same_result(
        pruned,
        charikar_greedy_reference(P, k, z, met, pairwise_limit=pairwise_limit),
    )
    return pruned


class TestAdversarialParity:
    @pytest.mark.parametrize("metric", METRICS)
    def test_all_points_in_one_cell(self, rng, metric):
        # a tight cluster far from the origin: every radius guess above
        # the spread buckets the whole input into a single giant cell
        pts = 1000.0 + rng.uniform(0, 1e-3, size=(300, 2))
        P = WeightedPointSet(pts, rng.integers(1, 4, 300))
        _check_parity(P, 2, 5, metric)

    @pytest.mark.parametrize("metric", METRICS)
    def test_exact_cell_boundary_coordinates(self, rng, metric):
        # lattice points at exact integer multiples of plausible cell
        # sides: floor(p/side) sits on the rounding knife-edge the ring
        # slack must absorb
        lattice = rng.integers(0, 12, size=(256, 2)).astype(float)
        lattice *= rng.choice([0.25, 0.5, 1.0])
        P = WeightedPointSet(lattice, rng.integers(1, 5, 256))
        _check_parity(P, 3, 8, metric)

    @pytest.mark.parametrize("metric", METRICS)
    def test_duplicate_flood(self, rng, metric):
        # 10 distinct locations, 30 copies each: radius-0 guesses, zero
        # candidate distances and heavy per-cell multiplicity
        base = rng.uniform(0, 5, size=(10, 2))
        pts = np.repeat(base, 30, axis=0)
        P = WeightedPointSet(pts, rng.integers(1, 3, 300))
        _check_parity(P, 4, 12, metric)

    def test_duplicate_flood_radius_zero(self, rng):
        # k >= distinct locations: the optimal radius is exactly 0 and
        # decide(0.0) must succeed on the grid path
        base = rng.uniform(0, 5, size=(4, 2))
        pts = np.repeat(base, 60, axis=0)
        P = WeightedPointSet(pts, np.ones(240, dtype=np.int64))
        res = _check_parity(P, 4, 0)
        assert res.radius == 0.0

    def test_coo_and_oversized_pair_machinery(self, rng, monkeypatch):
        # tiny thresholds force the COO pair-expansion path, its budget
        # chunking, and the oversized-single-pair diversion to the
        # blocked kernel — all must stay bit-identical
        monkeypatch.setattr(greedy_mod, "_GRID_BLOCK_CELLS", 1)
        monkeypatch.setattr(greedy_mod, "_GRID_PAIR_CHUNK", 64)
        monkeypatch.setattr(greedy_mod, "_GRID_MATCH_CHUNK", 7)
        pts = rng.uniform(0, 10, size=(400, 2))
        # one dense blob => one cell pair with >> 64 pairs (oversized)
        pts[:150] = 5.0 + rng.uniform(0, 1e-4, size=(150, 2))
        P = WeightedPointSet(pts, rng.integers(1, 6, 400))
        _check_parity(P, 3, 10)

    def test_one_dimensional_input(self, rng):
        pts = np.sort(rng.normal(size=100)).reshape(-1, 1) * 50.0
        P = WeightedPointSet(pts, rng.integers(1, 4, 100))
        _check_parity(P, 3, 6)

    def test_huge_coordinates_fall_back_dense(self, rng):
        # coordinates too large for trustworthy cell indices at small
        # guesses: the grid build refuses and the dense path answers
        pts = rng.uniform(0, 1, size=(120, 2)) * 1e14
        pts[0] = 0.0
        P = WeightedPointSet(pts, np.ones(120, dtype=np.int64))
        _check_parity(P, 3, 4)


class TestPruneKnob:
    def test_invalid_prune_rejected(self, rng):
        P = WeightedPointSet.from_points(rng.uniform(0, 1, size=(10, 2)))
        with pytest.raises(ValueError, match="prune"):
            charikar_greedy(P, 2, 1, prune="maybe")

    def test_path_provenance(self, rng):
        pts = rng.uniform(0, 10, size=(300, 2))
        P = WeightedPointSet(pts, np.ones(300, dtype=np.int64))
        assert charikar_greedy(P, 3, 5).path == "pairwise"
        geo = charikar_greedy(P, 3, 5, pairwise_limit=8)
        assert geo.path in ("grid", "mixed")
        assert charikar_greedy(P, 3, 5, pairwise_limit=8,
                               prune="off").path == "dense"

    def test_high_dimension_stays_dense(self, rng):
        pts = rng.uniform(0, 10, size=(64, 6))
        P = WeightedPointSet(pts, np.ones(64, dtype=np.int64))
        assert charikar_greedy(P, 3, 2, pairwise_limit=8).path == "dense"

    def test_float32_kernel_prunes_with_float64_parity(self, rng):
        # float32 sessions now take the grid path too: the pruned scans
        # always evaluate exact float64 sparse distances, so the result
        # is bit-identical to the float64 dense reference (not merely to
        # a float32 dense run)
        pts = rng.uniform(0, 10, size=(300, 2))
        P = WeightedPointSet(pts, np.ones(300, dtype=np.int64))
        res = charikar_greedy(P, 3, 2, pairwise_limit=8, dtype="float32")
        assert res.path in ("grid", "mixed")
        dense64 = charikar_greedy(P, 3, 2, pairwise_limit=8, prune="off")
        _assert_same_result(res, dense64)

    def test_force_grid_and_dense(self, rng):
        pts = rng.uniform(0, 10, size=(200, 2))
        P = WeightedPointSet(pts, np.ones(200, dtype=np.int64))
        forced = charikar_greedy(P, 3, 5, pairwise_limit=8, prune="grid")
        assert forced.path in ("grid", "mixed")
        assert forced.stats["grid_builds"] + forced.stats["grid_derived"] > 0
        _assert_same_result(
            forced,
            charikar_greedy(P, 3, 5, pairwise_limit=8, prune="dense"),
        )

    def test_force_grid_rejected_when_gate_fails(self, rng):
        # dimension 6 is above the grid gate: prune="grid" must refuse
        # loudly instead of silently answering dense
        pts = rng.uniform(0, 10, size=(64, 6))
        P = WeightedPointSet(pts, np.ones(64, dtype=np.int64))
        with pytest.raises(ValueError, match="grid"):
            charikar_greedy(P, 3, 2, pairwise_limit=8, prune="grid")

    def test_invalid_decision_jobs_rejected(self, rng):
        P = WeightedPointSet.from_points(rng.uniform(0, 1, size=(10, 2)))
        with pytest.raises(ValueError, match="decision_jobs"):
            charikar_greedy(P, 2, 1, decision_jobs=0)

    @pytest.mark.parametrize("jobs", [2, 8])
    def test_sharded_decisions_bit_match_serial(self, rng, jobs, monkeypatch):
        # drop the sharding floor so a small instance actually shards,
        # then demand bit-parity with jobs=1 and with the dense path
        monkeypatch.setattr(greedy_mod, "_GRID_SHARD_MIN_POINTS", 1)
        pts = rng.uniform(0, 10, size=(600, 2))
        P = WeightedPointSet(pts, rng.integers(1, 5, 600))
        sharded = charikar_greedy(P, 4, 10, pairwise_limit=8,
                                  decision_jobs=jobs)
        assert sharded.stats["decision_jobs"] == jobs
        assert sharded.stats["decision_shards"] >= 2
        serial = charikar_greedy(P, 4, 10, pairwise_limit=8)
        _assert_same_result(sharded, serial)
        _assert_same_result(
            sharded,
            charikar_greedy(P, 4, 10, pairwise_limit=8, prune="off"),
        )


class TestGridDecisionDirect:
    def test_matches_dense_decision_across_guesses(self, rng):
        from repro.core._greedy_reference import geometric_decision_reference

        pts = rng.uniform(0, 8, size=(220, 2))
        P = WeightedPointSet(pts, rng.integers(1, 5, 220))
        met = get_metric(None)
        for g in (0.0, 0.1, 0.7, 3.0):
            grid = _grid_for_guess(P.points, g + 1e-9 * max(1.0, g))
            assert grid is not None
            ok_a, c_a, u_a = _grid_decision(P, met, 4, 6, g, grid, Workspace())
            ok_b, c_b, u_b = geometric_decision_reference(P, met, 4, 6, g)
            assert ok_a == ok_b and list(c_a) == list(c_b)
            np.testing.assert_array_equal(u_a, u_b)


# ---------------------------------------------------------------------------
# Property: pruned-vs-dense bit parity on random low-dim instances
# ---------------------------------------------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(20, 220),
    d=st.integers(1, 4),
    k=st.integers(1, 6),
    z=st.integers(0, 10),
    scale=st.sampled_from([1e-3, 1.0, 1e4]),
    metric=st.sampled_from(METRICS),
)
def test_pruned_dense_bit_parity_property(seed, n, d, k, z, scale, metric):
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, d)) * scale
    if n > 4 and seed % 3 == 0:  # fold in duplicates
        pts[: n // 4] = pts[n // 4 : 2 * (n // 4)]
    P = WeightedPointSet(pts, rng.integers(1, 7, n))
    met = get_metric(metric)
    pruned = charikar_greedy(P, k, z, met, pairwise_limit=8)
    dense = charikar_greedy(P, k, z, met, pairwise_limit=8, prune="off")
    _assert_same_result(pruned, dense)
