"""Unit tests for repro.core.metrics."""

import numpy as np
import pytest

from repro.core import (
    CallableMetric,
    ChebyshevMetric,
    EuclideanMetric,
    ManhattanMetric,
    get_metric,
)

A = np.array([[0.0, 0.0], [3.0, 4.0]])
B = np.array([[0.0, 0.0], [1.0, 1.0], [3.0, 0.0]])


class TestEuclidean:
    def test_pairwise_values(self):
        D = EuclideanMetric().pairwise(A, B)
        assert D.shape == (2, 3)
        assert D[1, 0] == pytest.approx(5.0)
        assert D[0, 1] == pytest.approx(np.sqrt(2))

    def test_to_set(self):
        d = EuclideanMetric().to_set(np.array([3.0, 4.0]), B)
        assert d[0] == pytest.approx(5.0)

    def test_distance_scalar(self):
        assert EuclideanMetric().distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_empty_inputs(self):
        assert EuclideanMetric().pairwise(np.zeros((0, 2)), B).shape == (0, 3)
        assert EuclideanMetric().to_set(np.zeros(2), np.zeros((0, 2))).shape == (0,)


class TestOtherNorms:
    def test_chebyshev(self):
        assert ChebyshevMetric().distance([0, 0], [3, 4]) == pytest.approx(4.0)

    def test_manhattan(self):
        assert ManhattanMetric().distance([0, 0], [3, 4]) == pytest.approx(7.0)

    def test_norm_ordering(self):
        """L_inf <= L2 <= L1 pointwise."""
        p, q = np.array([1.0, 2.0, 3.0]), np.array([-1.0, 5.0, 2.0])
        linf = ChebyshevMetric().distance(p, q)
        l2 = EuclideanMetric().distance(p, q)
        l1 = ManhattanMetric().distance(p, q)
        assert linf <= l2 <= l1

    def test_doubling_dimension_default(self):
        assert ChebyshevMetric().doubling_dimension(3) == 3


class TestCallableMetric:
    def test_wraps_scalar_function(self):
        m = CallableMetric(lambda p, q: float(abs(p[0] - q[0])), name="x-only")
        D = m.pairwise(A, B)
        assert D[1, 2] == pytest.approx(0.0)

    def test_doubling_override(self):
        m = CallableMetric(lambda p, q: 0.0, doubling=5)
        assert m.doubling_dimension(100) == 5


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [
        ("euclidean", EuclideanMetric), ("l2", EuclideanMetric),
        ("linf", ChebyshevMetric), ("chebyshev", ChebyshevMetric),
        ("l1", ManhattanMetric), ("manhattan", ManhattanMetric),
    ])
    def test_names(self, name, cls):
        assert isinstance(get_metric(name), cls)

    def test_none_defaults_euclidean(self):
        assert isinstance(get_metric(None), EuclideanMetric)

    def test_passthrough_instance(self):
        m = ChebyshevMetric()
        assert get_metric(m) is m

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            get_metric("hamming")
