"""Tests for the Theorem 28 dynamic lower-bound construction (§5.2)."""

import numpy as np
import pytest

from repro.core import WeightedPointSet, coverage_radius
from repro.lowerbounds import Theorem28Instance


@pytest.fixture
def inst():
    return Theorem28Instance.build(k=2, z=2, d=1, eps=1 / 16, delta_universe=2**12)


class TestConstruction:
    def test_scale_count(self, inst):
        assert inst.g == int(0.5 * 12) - 2  # (1/2) log2(Delta) - 2

    def test_group_sizes(self, inst):
        # (lambda+1)^d - (lambda/2+1)^d = 5 - 3 = 2 for lambda=4, d=1
        assert inst.points_per_group == 2
        for pts in inst.group_points.values():
            assert len(pts) == 2

    def test_required_storage_counts_all_scales(self, inst):
        assert inst.required_storage == inst.num_clusters * inst.g * 2

    def test_groups_nest(self, inst):
        """Group m's points exceed the octant; smaller groups live inside
        the omitted octant region."""
        for m in range(2, inst.g + 1):
            big = inst.group_points[(0, m)]
            small = inst.group_points[(0, m - 1)]
            # the smaller group's extent fits below the bigger group's
            # octant cutoff (lam/2 * 2^m)
            assert small.max() <= inst.lam / 2 * (2**m) + 1e-9
            assert big.max() > small.max()

    def test_k_constraint(self):
        with pytest.raises(ValueError):
            Theorem28Instance.build(k=1, z=0, d=1, eps=1 / 16, delta_universe=64)

    def test_odd_lambda_rejected(self):
        # eps = 1/12 gives lambda = 3 (odd) -> Theorem 28 needs lambda even
        with pytest.raises(ValueError):
            Theorem28Instance.build(k=2, z=0, d=1, eps=1 / 12, delta_universe=64)


class TestStreamViews:
    def test_insert_then_delete_events(self, inst):
        ins = inst.insert_events()
        assert len(ins) == inst.required_storage + inst.z
        dels = inst.deletion_events(m_star=2)
        expected = sum(
            len(pts) for (i, m), pts in inst.group_points.items() if m >= 2
        )
        assert len(dels) == expected
        assert all(s == -1 for _, s in dels)

    def test_deletion_keeps_attacked_group(self, inst):
        dels = inst.deletion_events(m_star=2, keep=(0, 2))
        deleted = {tuple(p) for p, _ in dels}
        kept = {tuple(p) for p in inst.group_points[(0, 2)]}
        assert not (deleted & kept)


class TestClaims:
    @pytest.mark.parametrize("m_star", [1, 2, 3])
    def test_scaled_gap(self, inst, m_star):
        """(1-eps) * lb > ub at every scale (the scaled Lemma 41)."""
        lb = inst.claim_lower_bound(m_star)
        ub = inst.claim_upper_bound(m_star)
        assert (1 - inst.eps) * lb > ub

    @pytest.mark.parametrize("m_star", [2, 3])
    def test_witness_centers_realize_ub(self, inst, m_star):
        """After the deletions, the witness centers cover the surviving
        coreset (minus p*) within 2^{m*} r with z outliers."""
        key = (0, m_star)
        p_star = inst.group_points[key][0]
        survivors = [inst.outliers]
        for (i, m), pts in inst.group_points.items():
            if m < m_star or (i, m) == key:
                survivors.append(pts)
        live = np.concatenate(survivors)
        live = live[~np.all(np.isclose(live, p_star), axis=1)]
        gadget = inst.cross_gadget(p_star, m_star)
        coreset = WeightedPointSet(
            np.concatenate([live, gadget]),
            np.concatenate([
                np.ones(len(live), dtype=np.int64),
                np.full(len(gadget), 2, dtype=np.int64),
            ]),
        )
        centers = inst.witness_centers(p_star, m_star, 0)
        r_cov = coverage_radius(coreset, centers, inst.z)
        assert r_cov <= inst.claim_upper_bound(m_star) + 1e-9

    def test_required_storage_grows_with_delta(self):
        small = Theorem28Instance.build(2, 2, 1, 1 / 16, 2**10)
        big = Theorem28Instance.build(2, 2, 1, 1 / 16, 2**20)
        assert big.required_storage > small.required_storage
        # linear in log Delta
        assert big.g - small.g == 5
