"""Unit tests for repro.core.points."""

import numpy as np
import pytest

from repro.core import WeightedPointSet


class TestConstruction:
    def test_unit_weights_default(self):
        P = WeightedPointSet(np.zeros((5, 2)))
        assert P.weights.tolist() == [1] * 5

    def test_explicit_weights(self):
        P = WeightedPointSet(np.zeros((3, 2)), [1, 2, 3])
        assert P.total_weight == 6

    def test_1d_input_promoted(self):
        P = WeightedPointSet(np.arange(4, dtype=float))
        assert P.points.shape == (4, 1)

    def test_rejects_3d_points(self):
        with pytest.raises(ValueError):
            WeightedPointSet(np.zeros((2, 2, 2)))

    def test_rejects_zero_weight(self):
        with pytest.raises(ValueError):
            WeightedPointSet(np.zeros((2, 1)), [1, 0])

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            WeightedPointSet(np.zeros((2, 1)), [1, -2])

    def test_rejects_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            WeightedPointSet(np.zeros((3, 1)), [1, 2])

    def test_arrays_read_only(self):
        P = WeightedPointSet(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            P.points[0, 0] = 1.0
        with pytest.raises(ValueError):
            P.weights[0] = 5

    def test_from_points(self):
        P = WeightedPointSet.from_points([[0, 0], [1, 1]])
        assert len(P) == 2 and P.total_weight == 2

    def test_empty(self):
        P = WeightedPointSet.empty(3)
        assert len(P) == 0 and P.dim == 3 and P.total_weight == 0


class TestOperations:
    def test_subset_by_mask(self):
        P = WeightedPointSet(np.arange(6, dtype=float).reshape(-1, 1), [1, 2, 3, 4, 5, 6])
        Q = P.subset(P.weights > 3)
        assert len(Q) == 3 and Q.total_weight == 15

    def test_subset_by_index(self):
        P = WeightedPointSet(np.arange(6, dtype=float).reshape(-1, 1))
        Q = P.subset([0, 5])
        assert Q.points[:, 0].tolist() == [0.0, 5.0]

    def test_concat_preserves_weight(self):
        A = WeightedPointSet(np.zeros((2, 2)), [1, 2])
        B = WeightedPointSet(np.ones((3, 2)), [3, 4, 5])
        C = WeightedPointSet.concat([A, B])
        assert len(C) == 5 and C.total_weight == A.total_weight + B.total_weight

    def test_concat_skips_empty(self):
        A = WeightedPointSet(np.zeros((2, 2)))
        C = WeightedPointSet.concat([A, WeightedPointSet.empty(2)])
        assert len(C) == 2

    def test_concat_dim_mismatch(self):
        with pytest.raises(ValueError):
            WeightedPointSet.concat(
                [WeightedPointSet(np.zeros((1, 2))), WeightedPointSet(np.zeros((1, 3)))]
            )

    def test_concat_all_empty_raises(self):
        with pytest.raises(ValueError):
            WeightedPointSet.concat([WeightedPointSet.empty(2)])

    def test_with_weights(self):
        P = WeightedPointSet(np.zeros((2, 1)))
        Q = P.with_weights([5, 7])
        assert Q.total_weight == 12 and P.total_weight == 2

    def test_merged_sums_coincident(self):
        P = WeightedPointSet(np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 0.0]]), [1, 2, 3])
        M = P.merged()
        assert len(M) == 2 and M.total_weight == 6
        w = {tuple(p): int(wt) for p, wt in zip(M.points, M.weights)}
        assert w[(0.0, 0.0)] == 3 and w[(1.0, 0.0)] == 3

    def test_merged_noop_on_distinct(self):
        P = WeightedPointSet(np.arange(4, dtype=float).reshape(-1, 1))
        assert len(P.merged()) == 4

    def test_merged_empty(self):
        P = WeightedPointSet.empty(2)
        assert len(P.merged()) == 0

    def test_total_weight_int(self):
        P = WeightedPointSet(np.zeros((2, 1)), [10**9, 10**9])
        assert P.total_weight == 2 * 10**9


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, rng):
        P = WeightedPointSet(rng.normal(size=(20, 3)),
                             rng.integers(1, 10, size=20))
        path = tmp_path / "coreset.npz"
        P.save(path)
        Q = WeightedPointSet.load(path)
        assert np.array_equal(P.points, Q.points)
        assert np.array_equal(P.weights, Q.weights)

    def test_save_load_empty(self, tmp_path):
        P = WeightedPointSet.empty(2)
        path = tmp_path / "empty.npz"
        P.save(path)
        Q = WeightedPointSet.load(path)
        assert len(Q) == 0 and Q.dim == 2
