"""Scaled-down Table-1 shape checks inside the unit suite.

The benchmarks assert the paper's headline shapes at full size; these
miniatures witness the same claims in seconds so `pytest tests/` alone
covers them.
"""

import numpy as np
import pytest

from repro.mpc import (
    ceccarello_one_round_deterministic,
    partition_adversarial_outliers,
    two_round_coreset,
)
from repro.streaming import (
    CeccarelloStreamingCoreset,
    InsertionOnlyCoreset,
    SlidingWindowCoreset,
    cpp_size_threshold,
    paper_size_threshold,
)
from repro.workloads import clustered_with_outliers, drifting_stream


class TestMPCShapes:
    def test_ours_flat_in_z_baseline_linear(self, rng):
        """Table 1 rows 3-4: coreset growth in z under adversarial
        distribution."""
        sizes_ours, sizes_base = [], []
        for z in (8, 64):
            wl = clustered_with_outliers(600, 3, z, d=2,
                                         rng=np.random.default_rng(0))
            P = wl.point_set()
            parts = partition_adversarial_outliers(P, wl.outlier_mask, 6, rng)
            sizes_ours.append(len(two_round_coreset(parts, 3, z, 0.5).coreset))
            sizes_base.append(
                len(ceccarello_one_round_deterministic(parts, 3, z, 0.5).coreset)
            )
        growth_ours = sizes_ours[1] / sizes_ours[0]
        growth_base = sizes_base[1] / sizes_base[0]
        assert growth_base > growth_ours


class TestStreamingShapes:
    def test_threshold_shapes(self):
        """Rows 6-7: ours additive in z, CPP multiplicative."""
        k, d = 3, 1
        for eps in (1.0, 0.5):
            ours_gap = paper_size_threshold(k, 256, eps, d) - paper_size_threshold(
                k, 0, eps, d
            )
            cpp_gap = cpp_size_threshold(k, 256, eps, d) - cpp_size_threshold(
                k, 0, eps, d
            )
            assert ours_gap == 256  # exactly additive
            assert cpp_gap == 256 * int(np.ceil(16 / eps))  # multiplied

    def test_measured_storage_near_lower_bound(self, rng):
        """Row 6 vs row 8: measured storage within a small constant of the
        Omega(k/eps^d + z) value."""
        k, z, eps, d = 2, 16, 1.0, 1
        stream = drifting_stream(1500, k, z, d, rng=rng)
        st = InsertionOnlyCoreset(k, z, eps, d)
        st.extend(stream)
        lb = k / eps**d + z
        assert st.size <= 6 * lb

    def test_cpp_stores_more_at_large_z(self, rng):
        k, z, eps, d = 2, 48, 0.5, 1
        stream = drifting_stream(1500, k, z, d, rng=rng)
        ours = InsertionOnlyCoreset(k, z, eps, d)
        cpp = CeccarelloStreamingCoreset(k, z, eps, d)
        ours.extend(stream)
        cpp.extend(stream)
        assert cpp.size > ours.size


class TestSlidingWindowShapes:
    def test_storage_scales_with_ladder(self, rng):
        stream = drifting_stream(300, 2, 6, d=1, rng=rng)
        short = SlidingWindowCoreset(2, 2, 0.5, 1, 100, r_min=1.0, r_max=8.0)
        long = SlidingWindowCoreset(2, 2, 0.5, 1, 100, r_min=0.01, r_max=800.0)
        short.extend(stream)
        long.extend(stream)
        assert long.num_guesses > short.num_guesses
        assert long.stored_items >= short.stored_items
