"""Property and unit tests for the verification statistics (repro.verify)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.verify import (
    METRICS,
    cell_metric,
    derived_rng,
    holm,
    paired_bootstrap,
    paired_comparison,
    sign_test,
    significance_markdown,
    significance_matrix,
    stable_entropy,
    summarize,
    summarize_cells,
)

# bounded, finite sample strategy (the statistics reject NaN/inf by design)
finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
samples = st.lists(finite, min_size=1, max_size=30)
pvals = st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                 min_size=0, max_size=12)


class TestStableEntropy:
    def test_eight_words_process_independent(self):
        words = stable_entropy("radius_ratio", "offline", "insertion-only")
        assert len(words) == 8
        assert all(0 <= w < 2 ** 32 for w in words)
        # same tokens -> same words; different tokens -> different words
        assert words == stable_entropy("radius_ratio", "offline",
                                       "insertion-only")
        assert words != stable_entropy("radius_ratio", "insertion-only",
                                       "offline")

    def test_derived_rng_replays(self):
        a = derived_rng(0, "x").standard_normal(4)
        b = derived_rng(0, "x").standard_normal(4)
        c = derived_rng(0, "y").standard_normal(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestSummarize:
    @given(values=samples)
    @settings(max_examples=60, deadline=None)
    def test_ci_contains_sample_mean(self, values):
        s = summarize(values, n_boot=200)
        mean = float(np.mean(values))
        assert s.ci_lo <= mean <= s.ci_hi
        assert s.mean == pytest.approx(mean)
        assert s.n == len(values)
        assert s.quantiles["min"] <= s.quantiles["median"] <= s.quantiles["max"]

    @given(values=samples, seed=st.integers(0, 2 ** 16))
    @settings(max_examples=30, deadline=None)
    def test_deterministic_under_seed(self, values, seed):
        assert summarize(values, seed=seed, n_boot=100) == \
            summarize(values, seed=seed, n_boot=100)

    def test_single_and_constant_samples_degenerate(self):
        for values in ([3.5], [2.0, 2.0, 2.0]):
            s = summarize(values)
            assert s.ci_lo == s.mean == s.ci_hi

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0, float("nan")])
        with pytest.raises(ValueError):
            summarize([1.0, 2.0], confidence=1.0)


class TestSignTest:
    @given(diffs=st.lists(finite, min_size=1, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_symmetric_under_label_swap(self, diffs):
        fwd = sign_test(diffs)
        rev = sign_test([-d for d in diffs])
        assert fwd.p == pytest.approx(rev.p)
        assert (fwd.n_pos, fwd.n_neg) == (rev.n_neg, rev.n_pos)
        assert fwd.n_ties == rev.n_ties
        assert 0.0 <= fwd.p <= 1.0

    def test_exact_binomial_value(self):
        # 5 wins, 0 losses: p = 2 * C(5,0) / 2^5 = 1/16
        t = sign_test([1.0] * 5)
        assert t.p == pytest.approx(2 / 32)
        assert (t.n_pos, t.n_neg, t.n_ties) == (5, 0, 0)

    def test_all_ties_is_p_one_not_division_by_zero(self):
        t = sign_test([0.0] * 7)
        assert t.p == 1.0
        assert t.n_ties == 7 and t.n_pos == t.n_neg == 0


class TestPairedBootstrap:
    @given(diffs=st.lists(finite, min_size=2, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_ci_brackets_mean_and_p_in_range(self, diffs):
        mean, lo, hi, p = paired_bootstrap(diffs, n_boot=200)
        assert lo <= mean <= hi
        assert 0.0 < p <= 1.0  # +1 smoothing: never exactly zero

    def test_all_zero_differences_degenerate(self):
        assert paired_bootstrap([0.0] * 6) == (0.0, 0.0, 0.0, 1.0)

    def test_obvious_effect_is_significant(self):
        mean, lo, hi, p = paired_bootstrap([1.0, 1.1, 0.9, 1.05, 0.95, 1.0,
                                            1.02, 0.98], n_boot=500)
        assert mean == pytest.approx(1.0)
        assert p < 0.05


class TestHolm:
    @given(raw=pvals)
    @settings(max_examples=60, deadline=None)
    def test_monotone_and_bounded(self, raw):
        adj = holm(raw)
        assert len(adj) == len(raw)
        for a, r in zip(adj, raw):
            assert r <= a <= 1.0
        # order preservation: a smaller raw p never gets a larger adjusted p
        for i in range(len(raw)):
            for j in range(len(raw)):
                if raw[i] <= raw[j]:
                    assert adj[i] <= adj[j] + 1e-12

    def test_known_example(self):
        # m=3 sorted: 0.01*3=0.03, 0.03*2=0.06, max(0.06, 0.04*1)=0.06
        assert holm([0.01, 0.04, 0.03]) == \
            pytest.approx([0.03, 0.06, 0.06])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            holm([0.5, 1.5])
        with pytest.raises(ValueError):
            holm([float("nan")])
        assert holm([]) == []


class TestPairedComparison:
    def test_combined_report(self):
        c = paired_comparison([1.0, 1.2, 1.1, 1.3], [1.5, 1.6, 1.4, 1.7])
        assert c.n_pairs == 4
        assert c.mean_diff < 0  # first sample is lower (= better)
        assert c.ci_lo <= c.mean_diff <= c.ci_hi
        assert c.sign.n_neg == 4
        d = c.as_dict()
        assert {"n_pairs", "mean_diff", "ci_lo", "ci_hi", "sign_p",
                "n_pos", "n_neg", "n_ties", "boot_p"} == set(d)

    def test_unequal_lengths_raise(self):
        with pytest.raises(ValueError, match="equal length"):
            paired_comparison([1.0, 2.0], [1.0])

    def test_identical_samples_are_null(self):
        c = paired_comparison([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert c.mean_diff == 0.0
        assert c.p == 1.0 and c.sign.p == 1.0


def _cell(scenario, backend, seed, replicate, ratio, status="ok"):
    return {"scenario": scenario, "backend": backend, "status": status,
            "seed": seed, "replicate": replicate, "radius_ratio": ratio,
            "peak_storage": 10.0, "wall_time": 0.1}


class TestSignificanceMatrix:
    def _replicated(self, better="A", n=8):
        # backend A consistently lower radius ratio than B on shared
        # (scenario, seed, replicate) conditions
        cells = []
        for rep in range(n):
            lo, hi = 1.0 + 0.01 * rep, 1.4 + 0.01 * rep
            a_ratio, b_ratio = (lo, hi) if better == "A" else (hi, lo)
            cells.append(_cell("s", "A", 100 + rep, rep, a_ratio))
            cells.append(_cell("s", "B", 100 + rep, rep, b_ratio))
        return cells

    def test_detects_the_consistent_winner(self):
        sig = significance_matrix(self._replicated("A"), ["A", "B"])
        cmp_ = sig["metrics"]["radius_ratio"][0]
        assert cmp_["better"] == "A"
        assert cmp_["boot_p_holm"] < sig["alpha"]
        assert cmp_["mean_diff"] < 0

    def test_winner_flips_with_the_data(self):
        sig = significance_matrix(self._replicated("B"), ["A", "B"])
        assert sig["metrics"]["radius_ratio"][0]["better"] == "B"

    def test_identical_backends_make_no_call(self):
        cells = []
        for rep in range(6):
            cells.append(_cell("s", "A", rep, rep, 1.2))
            cells.append(_cell("s", "B", rep, rep, 1.2))
        sig = significance_matrix(cells, ["A", "B"])
        cmp_ = sig["metrics"]["radius_ratio"][0]
        assert cmp_["better"] is None
        assert cmp_["boot_p"] == 1.0

    def test_insufficient_pairs_are_skipped(self):
        cells = [_cell("s", "A", 0, 0, 1.0), _cell("s", "B", 0, 0, 2.0)]
        sig = significance_matrix(cells, ["A", "B"])
        assert sig["metrics"]["radius_ratio"] == []

    def test_non_ok_cells_are_excluded(self):
        cells = self._replicated("A")
        cells.append(_cell("s", "A", 999, 99, 0.0, status="error"))
        assert cell_metric(cells[-1], "radius_ratio") is None
        sig = significance_matrix(cells, ["A", "B"])
        assert sig["metrics"]["radius_ratio"][0]["n_pairs"] == 8

    def test_markdown_renders(self):
        sig = significance_matrix(self._replicated("A"), ["A", "B"])
        md = significance_markdown(sig)
        assert "A vs B" in md
        assert "**A wins**" in md
        for metric in METRICS:
            assert metric in md

    def test_summarize_cells_groups_by_scenario_backend_metric(self):
        rows = summarize_cells(self._replicated("A"))
        keyed = {(r["scenario"], r["backend"], r["metric"]): r for r in rows}
        assert len(rows) == 2 * len(METRICS)
        row = keyed[("s", "A", "radius_ratio")]
        assert row["n"] == 8
        assert row["ci_lo"] <= row["mean"] <= row["ci_hi"]
        assert set(row["quantiles"]) == {"min", "p25", "median", "p75", "max"}
