"""The chunked on-disk point store and its PointSource adapters.

Covers the container (`PointStore` writer -> `StoreSource` reader):
roundtrip fidelity, manifest-written-last atomicity (an aborted or
killed write never leaves a store that opens), memory-mapped zero-copy
reads, chunk-cursor seeks; and the adapter layer (`from_array`,
`from_npy_memmap`, `from_iterable`, `as_source`, `iter_point_chunks`)
including the chunking-independence of `sample()` and `bounds()`.
"""

import os

import numpy as np
import pytest

from repro.store import (
    ArraySource,
    IterableSource,
    MemmapSource,
    PointStore,
    StoreError,
    as_source,
    from_array,
    from_iterable,
    from_npy_memmap,
    is_chunked,
    iter_point_chunks,
    write_points_npy,
)


def _pts(n, d=2, seed=0):
    return np.random.default_rng(seed).normal(size=(n, d)) * 3.0


class TestPointStore:
    def test_write_read_roundtrip(self, tmp_path):
        pts = _pts(1000, 3)
        path = str(tmp_path / "store")
        src = PointStore.write(path, (pts[i:i + 137] for i in
                                      range(0, len(pts), 137)),
                               chunk_rows=256)
        assert len(src) == 1000 and src.dim == 3
        assert np.array_equal(src.materialize()[0], pts)

    def test_append_across_chunk_boundaries(self, tmp_path):
        pts = _pts(777)
        store = PointStore.create(str(tmp_path / "s"), chunk_rows=100)
        for lo in range(0, 777, 50):
            store.append(pts[lo:lo + 50])
        src = store.finalize()
        assert src.n_chunks == 8  # ceil(777/100)
        assert np.array_equal(src.materialize()[0], pts)

    def test_weighted_roundtrip(self, tmp_path):
        pts = _pts(300)
        w = np.random.default_rng(1).integers(1, 9, 300)
        store = PointStore.create(str(tmp_path / "s"), chunk_rows=64,
                                  weighted=True)
        store.append(pts, w)
        src = store.finalize()
        assert src.weighted
        got_p, got_w = src.materialize()
        assert np.array_equal(got_p, pts)
        assert np.array_equal(got_w, w)

    def test_abort_leaves_nothing(self, tmp_path):
        path = str(tmp_path / "s")
        store = PointStore.create(path, chunk_rows=16)
        store.append(_pts(40))
        store.abort()
        assert not os.path.exists(path)
        with pytest.raises(StoreError):
            PointStore.open(path)

    def test_killed_write_never_opens(self, tmp_path):
        """Manifest-written-last: a staging dir without the manifest (a
        process killed mid-write) is invisible to open()."""
        path = str(tmp_path / "s")
        store = PointStore.create(path, chunk_rows=16)
        store.append(_pts(40))
        # simulate the kill: staging dir exists, finalize never ran
        assert not os.path.exists(path)
        staged = [p for p in os.listdir(tmp_path) if p.startswith("s.tmp.")]
        assert staged, "writer must stage under <path>.tmp.<pid>"
        with pytest.raises(StoreError):
            PointStore.open(path)
        store.abort()

    def test_finalize_replaces_existing(self, tmp_path):
        path = str(tmp_path / "s")
        PointStore.write(path, (_pts(10, seed=1),))
        new = _pts(20, seed=2)
        src = PointStore.write(path, (new,), overwrite=True)
        assert len(src) == 20
        reopened = PointStore.open(path)
        assert np.array_equal(reopened.materialize()[0], new)

    def test_open_rejects_truncated_chunk(self, tmp_path):
        path = str(tmp_path / "s")
        PointStore.write(path, (_pts(100),), chunk_rows=32)
        victim = os.path.join(path, "points-00001.npy")
        os.unlink(victim)
        with pytest.raises(StoreError):
            PointStore.open(path)

    def test_reader_is_memory_mapped(self, tmp_path):
        src = PointStore.write(str(tmp_path / "s"), (_pts(128),),
                               chunk_rows=64)
        (chunk, _w) = next(iter(src.chunks()))
        assert isinstance(chunk, np.memmap) or isinstance(
            getattr(chunk, "base", None), np.memmap)

    def test_chunks_seek_matches_slice(self, tmp_path):
        pts = _pts(500)
        src = PointStore.write(str(tmp_path / "s"), (pts,), chunk_rows=64)
        tail = np.concatenate([c for c, _ in src.chunks(batch=64, start=3)])
        assert np.array_equal(tail, pts[3 * 64:])


class TestWritePointsNpy:
    def test_single_file_roundtrip(self, tmp_path):
        pts = _pts(321, 4)
        path = str(tmp_path / "p.npy")
        n, dim = write_points_npy(path, (pts[:100], pts[100:]))
        assert (n, dim) == (321, 4)
        assert np.array_equal(np.load(path), pts)
        # and it memory-maps (a plain uncompressed npy)
        assert np.array_equal(np.load(path, mmap_mode="r"), pts)

    def test_atomic_tmp_rename(self, tmp_path):
        path = str(tmp_path / "p.npy")

        def chunks():
            yield _pts(10)
            raise RuntimeError("mid-stream failure")

        with pytest.raises(RuntimeError):
            write_points_npy(path, chunks())
        assert not os.path.exists(path)


class TestAdapters:
    def test_array_source_chunks(self):
        pts = _pts(100)
        src = from_array(pts)
        assert isinstance(src, ArraySource)
        assert len(src) == 100 and src.dim == 2 and not src.weighted
        got = np.concatenate([c for c, _ in src.chunks(batch=7)])
        assert np.array_equal(got, pts)

    def test_memmap_source(self, tmp_path):
        pts = _pts(64, 3)
        path = str(tmp_path / "m.npy")
        np.save(path, pts)
        src = from_npy_memmap(path)
        assert isinstance(src, MemmapSource)
        assert np.array_equal(src.materialize()[0], pts)

    def test_iterable_source_factory_is_replayable(self):
        pts = _pts(90)
        src = from_iterable(lambda: (pts[i:i + 13] for i in
                                     range(0, 90, 13)), n=90, dim=2)
        for _ in range(2):  # factory => reusable
            got = np.concatenate([c for c, _ in src.chunks(batch=31)])
            assert np.array_equal(got, pts)

    def test_iterable_source_bare_iterator_single_shot(self):
        pts = _pts(40)
        src = from_iterable(iter([pts]))
        assert np.array_equal(
            np.concatenate([c for c, _ in src.chunks(batch=16)]), pts)
        with pytest.raises(RuntimeError):
            list(src.chunks(batch=16))

    def test_as_source_passthrough_and_wrap(self):
        pts = _pts(10)
        src = from_array(pts)
        assert as_source(src) is src
        assert isinstance(as_source(pts), ArraySource)
        assert isinstance(as_source(iter([pts])), IterableSource)

    def test_is_chunked(self):
        pts = _pts(5)
        assert is_chunked(from_array(pts))
        assert is_chunked(iter([pts]))
        assert not is_chunked(pts)
        assert not is_chunked([[0.0, 1.0]])

    def test_iter_point_chunks_dense_is_one_chunk(self):
        pts = _pts(33)
        chunks = list(iter_point_chunks(pts, 8))
        # dense carriers are the in-RAM fast path: untouched, one chunk
        assert len(chunks) == 1
        assert np.array_equal(chunks[0][0], pts)

    def test_iter_point_chunks_source_rechunks(self):
        pts = _pts(33)
        chunks = list(iter_point_chunks(from_array(pts), 8))
        assert [len(c) for c, _ in chunks] == [8, 8, 8, 8, 1]


class TestChunkingIndependence:
    """sample() and bounds() must not depend on how the stream is cut —
    that is what makes the scenario reference reproducible across
    chunk sizes."""

    @pytest.mark.parametrize("batch", [7, 64, 1000])
    def test_sample_is_chunking_invariant(self, tmp_path, batch):
        pts = _pts(1000)
        base = from_array(pts).sample(100, batch=None)
        assert np.array_equal(from_array(pts).sample(100, batch=batch), base)
        src = PointStore.write(str(tmp_path / f"s{batch}"), (pts,),
                               chunk_rows=97)
        assert np.array_equal(src.sample(100, batch=batch), base)

    @pytest.mark.parametrize("batch", [11, 256])
    def test_bounds_is_chunking_invariant(self, batch):
        pts = _pts(500, 3)
        lo, hi = from_array(pts).bounds(batch)
        assert np.array_equal(lo, pts.min(axis=0))
        assert np.array_equal(hi, pts.max(axis=0))
