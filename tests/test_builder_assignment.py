"""Tests for CoresetBuilder (merge/reduce API) and cluster extraction."""

import numpy as np
import pytest

from repro.core import (
    CoresetBuilder,
    WeightedPointSet,
    charikar_greedy,
    coverage_radius,
    extract_clusters,
    verify_sandwich,
)
from repro.workloads import clustered_with_outliers


class TestCoresetBuilder:
    def test_leaf_has_zero_eps(self, small_set):
        b = CoresetBuilder.from_points(small_set, 2, 4)
        assert b.eps == 0.0 and b.size == len(small_set)

    def test_reduce_composes_error(self, small_set):
        b = CoresetBuilder.from_points(small_set, 2, 4).reduce(0.3).reduce(0.3)
        # compose(0, 0.3) = 0.3; compose(0.3, 0.3) = 0.3 + 0.3 + 0.09
        assert b.eps == pytest.approx(0.69)

    def test_merge_preserves_weight(self, small_set):
        half = len(small_set) // 2
        a = CoresetBuilder.from_points(small_set.subset(np.arange(half)), 2, 4)
        b = CoresetBuilder.from_points(
            small_set.subset(np.arange(half, len(small_set))), 2, 4
        )
        m = a.merge(b)
        assert m.total_weight == small_set.total_weight
        assert m.eps == 0.0

    def test_merge_takes_max_eps(self, small_set):
        half = len(small_set) // 2
        a = CoresetBuilder.from_points(small_set.subset(np.arange(half)), 2, 4).reduce(0.5)
        b = CoresetBuilder.from_points(
            small_set.subset(np.arange(half, len(small_set))), 2, 4
        )
        assert a.merge(b).eps == a.eps

    def test_merge_kz_mismatch(self, small_set):
        a = CoresetBuilder.from_points(small_set, 2, 4)
        b = CoresetBuilder.from_points(small_set, 3, 4)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_all_tree_is_valid_coreset(self, rng):
        """A hand-built two-level merge-reduce tree produces a valid
        coreset with the tracked eps."""
        wl = clustered_with_outliers(400, 2, 8, d=2, rng=rng)
        P = wl.point_set()
        chunks = [P.subset(np.arange(i, len(P), 4)) for i in range(4)]
        leaves = [
            CoresetBuilder.from_points(c, 2, 8).reduce(0.3, z_budget=8)
            for c in chunks
        ]
        root = CoresetBuilder.merge_all(leaves).reduce(0.3)
        assert root.total_weight == P.total_weight
        assert verify_sandwich(P, root.coreset, 2, 8, root.eps).ok

    def test_merge_all_empty_list(self):
        with pytest.raises(ValueError):
            CoresetBuilder.merge_all([])

    def test_merge_with_empty_piece(self, small_set):
        a = CoresetBuilder.from_points(small_set, 2, 4)
        b = CoresetBuilder.from_points(WeightedPointSet.empty(2), 2, 4)
        assert a.merge(b).size == len(small_set)
        assert b.merge(a).size == len(small_set)


class TestExtractClusters:
    def test_matches_coverage_radius(self, small_set):
        res = charikar_greedy(small_set, 2, 4)
        centers = small_set.points[res.centers_idx]
        asg = extract_clusters(small_set, centers, 4)
        assert asg.radius == pytest.approx(coverage_radius(small_set, centers, 4))

    def test_outlier_budget_respected(self, small_set):
        res = charikar_greedy(small_set, 2, 4)
        asg = extract_clusters(small_set, small_set.points[res.centers_idx], 4)
        assert asg.outlier_weight <= 4
        assert asg.outlier_mask.sum() == (asg.labels == -1).sum()

    def test_planted_outliers_found(self, small_planar):
        P = small_planar.point_set()
        res = charikar_greedy(P, 2, 4)
        asg = extract_clusters(P, P.points[res.centers_idx], 4)
        assert (asg.outlier_mask == small_planar.outlier_mask).all()

    def test_cluster_indices(self, small_set):
        res = charikar_greedy(small_set, 2, 4)
        asg = extract_clusters(small_set, small_set.points[res.centers_idx], 4)
        total = sum(len(asg.cluster_indices(j)) for j in range(2))
        assert total + asg.outlier_mask.sum() == len(small_set)

    def test_empty_inputs(self):
        P = WeightedPointSet.empty(2)
        asg = extract_clusters(P, np.zeros((1, 2)), 0)
        assert len(asg.labels) == 0
        P2 = WeightedPointSet.from_points(np.zeros((3, 2)))
        asg2 = extract_clusters(P2, np.zeros((0, 2)), 0)
        assert (asg2.labels == -1).all() and asg2.outlier_weight == 3

    def test_weighted_outlier_cut(self):
        """A heavy far point that exceeds the budget stays covered."""
        P = WeightedPointSet(np.array([[0.0], [10.0], [20.0]]), [1, 1, 5])
        asg = extract_clusters(P, np.array([[0.0]]), 2)
        assert not asg.outlier_mask[2]  # weight 5 > z=2
        assert asg.radius == pytest.approx(20.0)
