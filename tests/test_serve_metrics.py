"""Prometheus text-format registry: rendering grammar and semantics."""

import re
import threading

import pytest

from repro.serve import MetricsRegistry

# The Prometheus text exposition grammar (v0.0.4), restricted to what a
# well-behaved exporter emits: HELP/TYPE comment lines and sample lines.
_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_HELP_RE = re.compile(rf"^# HELP ({_METRIC_NAME}) (.*)$")
_TYPE_RE = re.compile(
    rf"^# TYPE ({_METRIC_NAME}) (counter|gauge|histogram|summary|untyped)$")
_SAMPLE_RE = re.compile(
    rf"^({_METRIC_NAME})"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*")*\})?'
    r" (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]Inf|NaN)$")


def parse_prometheus(text):
    """Parse a scrape body under the text grammar; dict of family info.

    Returns ``{family: {"type": kind, "help": str, "samples":
    [(name, labels_dict, value), ...]}}`` and asserts structural rules:
    every sample belongs to a declared family, HELP precedes TYPE
    precedes samples, and the body ends with a newline.
    """
    assert text.endswith("\n"), "scrape body must end with a newline"
    families = {}
    current = None
    for line in text.splitlines():
        m = _HELP_RE.match(line)
        if m:
            name = m.group(1)
            assert name not in families, f"duplicate HELP for {name}"
            families[name] = {"help": m.group(2), "type": None, "samples": []}
            current = name
            continue
        m = _TYPE_RE.match(line)
        if m:
            assert m.group(1) == current, "TYPE must follow its HELP line"
            families[current]["type"] = m.group(2)
            continue
        m = _SAMPLE_RE.match(line)
        assert m, f"line does not match the sample grammar: {line!r}"
        sample_name, label_block, value = m.group(1), m.group(2), m.group(4)
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix) and sample_name[: -len(suffix)] in families:
                base = sample_name[: -len(suffix)]
        assert base in families, f"sample {sample_name!r} has no HELP/TYPE"
        assert families[base]["type"] is not None
        labels = {}
        if label_block:
            for pair in re.findall(
                    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\\\|\\"|\\n)*)"',
                    label_block):
                labels[pair[0]] = pair[1]
        families[base]["samples"].append((sample_name, labels, value))
    return families


def _histogram_series(fam, **want_labels):
    """Split one labelled histogram child into (buckets, sum, count)."""
    buckets, total, count = [], None, None
    for name, labels, value in fam["samples"]:
        rest = {k: v for k, v in labels.items() if k != "le"}
        if rest != want_labels:
            continue
        if name.endswith("_bucket"):
            buckets.append((labels["le"], float(value)))
        elif name.endswith("_sum"):
            total = float(value)
        elif name.endswith("_count"):
            count = float(value)
    return buckets, total, count


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "Requests.", ("route",))
        c.labels(route="/a").inc()
        c.labels(route="/a").inc(2)
        c.labels(route="/b").inc()
        assert c.value(route="/a") == 3
        assert c.value(route="/b") == 1

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "C.")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_label_set_must_match(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "C.", ("op",))
        with pytest.raises(ValueError):
            c.labels(op="x", extra="y")
        with pytest.raises(ValueError):
            c.labels()


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("g", "G.")
        g.set(5)
        g.labels().inc(2)
        g.labels().dec(3)
        assert g.value() == 4

    def test_remove_drops_series(self):
        reg = MetricsRegistry()
        g = reg.gauge("g", "G.", ("session",))
        g.labels(session="a").set(1)
        g.labels(session="b").set(2)
        g.remove(session="a")
        fams = parse_prometheus(reg.render())
        sessions = {s[1]["session"] for s in fams["g"]["samples"]}
        assert sessions == {"b"}


class TestHistogram:
    def test_cumulative_buckets_and_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        fams = parse_prometheus(reg.render())
        buckets, total, count = _histogram_series(fams["lat_seconds"])
        assert [b[1] for b in buckets] == [1, 3, 4, 5]
        assert buckets[-1][0] == "+Inf"
        # cumulative monotone, +Inf bucket equals _count
        assert all(b1[1] <= b2[1] for b1, b2 in zip(buckets, buckets[1:]))
        assert count == buckets[-1][1] == 5
        assert total == pytest.approx(56.05)

    def test_invalid_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h", "H.", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("h2", "H.", buckets=(1.0, 1.0))

    def test_explicit_inf_bucket_is_absorbed(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", "H.", buckets=(1.0, float("inf")))
        assert h.buckets == (1.0,)


class TestRegistry:
    def test_idempotent_creation(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "X.", ("op",))
        b = reg.counter("x_total", "X.", ("op",))
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total", "X.")
        with pytest.raises(ValueError):
            reg.gauge("x_total", "X.")
        with pytest.raises(ValueError):
            reg.counter("x_total", "X.", ("op",))  # label-set conflict

    def test_invalid_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("", "X.")
        with pytest.raises(ValueError):
            reg.counter("0bad", "X.")

    def test_render_is_sorted_and_parses(self):
        reg = MetricsRegistry()
        reg.gauge("zz", "Z.").set(1)
        reg.counter("aa_total", "A.").inc()
        reg.histogram("mm_seconds", "M.").observe(0.01)
        text = reg.render()
        fams = parse_prometheus(text)
        assert list(fams) == sorted(fams)
        assert fams["aa_total"]["type"] == "counter"
        assert fams["zz"]["type"] == "gauge"
        assert fams["mm_seconds"]["type"] == "histogram"

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        g = reg.gauge("g", "G.", ("name",))
        hostile = 'a"b\\c\nd'
        g.labels(name=hostile).set(1)
        text = reg.render()
        fams = parse_prometheus(text)
        (sample,) = fams["g"]["samples"]
        unescaped = (sample[1]["name"].replace(r"\"", '"')
                     .replace(r"\n", "\n").replace("\\\\", "\\"))
        assert unescaped == hostile

    def test_integer_values_render_without_exponent(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "C.").inc(7)
        assert "\nc_total 7\n" in "\n" + reg.render()

    def test_concurrent_observations_are_not_lost(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "C.", ("op",))
        h = reg.histogram("h_seconds", "H.", ("op",))
        n_threads, per_thread = 8, 500

        def work():
            for _ in range(per_thread):
                c.labels(op="x").inc()
                h.labels(op="x").observe(0.001)

        pool = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert c.value(op="x") == n_threads * per_thread
        fams = parse_prometheus(reg.render())
        _, _, count = _histogram_series(fams["h_seconds"], op="x")
        assert count == n_threads * per_thread
