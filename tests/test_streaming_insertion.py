"""Tests for Algorithm 3 (insertion-only streaming coreset)."""

import numpy as np
import pytest

from repro.core import (
    WeightedPointSet,
    brute_force_opt,
    verify_sandwich,
)
from repro.streaming import InsertionOnlyCoreset, paper_size_threshold
from repro.workloads import drifting_stream


class TestThreshold:
    def test_formula(self):
        from math import ceil
        assert paper_size_threshold(2, 5, 0.5, 1) == 2 * ceil(32) + 5

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            paper_size_threshold(1, 0, 0.0, 1)


class TestBasicStreaming:
    def test_weight_equals_stream_length(self, rng):
        st = InsertionOnlyCoreset(2, 3, 1.0, d=1)
        pts = rng.normal(size=(200, 1))
        st.extend(pts)
        assert st.coreset().total_weight == 200
        assert st.points_seen == 200

    def test_size_within_threshold(self, rng):
        st = InsertionOnlyCoreset(2, 3, 1.0, d=1, size_cap=30)
        st.extend(rng.normal(size=(500, 1)))
        assert st.size <= 30

    def test_r_lower_bounds_opt(self, rng):
        """Lemma 17's invariant r <= opt_{k,z}(P(t)): holds when running
        with the paper threshold (it is exactly what `size_cap` trades
        away).  Checked against the exact discrete optimum, which upper
        bounds the continuous one."""
        pts = rng.uniform(0, 10, size=(60, 1))
        st = InsertionOnlyCoreset(1, 0, 1.0, d=1)  # threshold k*16+z = 16
        st.extend(pts)
        assert st.doublings > 0  # the interesting regime is exercised
        opt = brute_force_opt(
            WeightedPointSet.from_points(pts), 1, 0, max_points=60
        ).radius
        assert st.r <= opt + 1e-9

    def test_coreset_sandwich(self, rng):
        stream = drifting_stream(600, 2, 5, d=1, rng=rng)
        st = InsertionOnlyCoreset(2, 5, 1.0, d=1)
        st.extend(stream)
        P = WeightedPointSet.from_points(stream)
        assert verify_sandwich(P, st.coreset(), 2, 5, 1.0).ok

    def test_duplicate_points_absorbed_at_r0(self):
        st = InsertionOnlyCoreset(1, 0, 1.0, d=1)
        for _ in range(10):
            st.insert([5.0])
        assert st.size == 1 and st.coreset().total_weight == 10

    def test_r_initialization_at_k_plus_z_plus_1(self):
        st = InsertionOnlyCoreset(2, 1, 1.0, d=1)
        for x in [0.0, 10.0, 20.0]:
            st.insert([x])
        assert st.r == 0.0
        st.insert([30.0])  # k + z + 1 = 4th distinct point
        assert st.r == pytest.approx(5.0)  # min pairwise 10 / 2

    def test_doubling_occurs_when_capped(self, rng):
        st = InsertionOnlyCoreset(2, 2, 1.0, d=1, size_cap=8)
        st.extend(rng.uniform(0, 100, size=(300, 1)))
        assert st.doublings > 0
        assert st.size <= 8

    def test_dim_mismatch_rejected(self):
        st = InsertionOnlyCoreset(1, 0, 1.0, d=2)
        st.insert([0.0, 0.0])
        with pytest.raises(ValueError):
            st.insert([0.0])

    def test_empty_coreset(self):
        st = InsertionOnlyCoreset(1, 0, 1.0, d=1)
        assert len(st.coreset()) == 0

    def test_param_validation(self):
        with pytest.raises(ValueError):
            InsertionOnlyCoreset(1, 0, 0.0, d=1)
        with pytest.raises(ValueError):
            InsertionOnlyCoreset(0, 0, 0.5, d=1)
        with pytest.raises(ValueError):
            InsertionOnlyCoreset(2, 3, 0.5, d=1, size_cap=4)  # < k+z+2


class TestAdversarialOrder:
    def test_sorted_order(self, rng):
        """Sorted arrival is the classic adversarial order for doubling
        algorithms."""
        pts = np.sort(rng.uniform(0, 100, size=(400,))).reshape(-1, 1)
        st = InsertionOnlyCoreset(2, 4, 1.0, d=1)
        st.extend(pts)
        P = WeightedPointSet.from_points(pts)
        assert verify_sandwich(P, st.coreset(), 2, 4, 1.0).ok
        assert st.size <= st.threshold

    def test_outliers_first(self, rng):
        """All outliers before any cluster point."""
        outliers = rng.uniform(1000, 2000, size=(5, 1))
        clusters = np.concatenate([
            rng.normal(0, 0.1, (100, 1)), rng.normal(50, 0.1, (100, 1)),
        ])
        pts = np.concatenate([outliers, clusters])
        st = InsertionOnlyCoreset(2, 5, 1.0, d=1)
        st.extend(pts)
        P = WeightedPointSet.from_points(pts)
        assert verify_sandwich(P, st.coreset(), 2, 5, 1.0).ok

    def test_interleaved_scales(self, rng):
        """Alternating near/far points stress the radius doubling."""
        near = rng.normal(0, 0.01, size=(200, 1))
        far = rng.normal(1000, 0.01, size=(200, 1))
        pts = np.empty((400, 1))
        pts[0::2] = near
        pts[1::2] = far
        st = InsertionOnlyCoreset(2, 2, 1.0, d=1)
        st.extend(pts)
        P = WeightedPointSet.from_points(pts)
        assert verify_sandwich(P, st.coreset(), 2, 2, 1.0).ok


class TestPrefixProperty:
    def test_coreset_valid_at_every_checkpoint(self, rng):
        """Theorem 18 holds for every prefix, not just the final state."""
        stream = drifting_stream(300, 2, 4, d=1, rng=rng)
        st = InsertionOnlyCoreset(2, 4, 1.0, d=1)
        for t, p in enumerate(stream, 1):
            st.insert(p)
            if t in (50, 150, 300):
                P = WeightedPointSet.from_points(stream[:t])
                assert verify_sandwich(P, st.coreset(), 2, 4, 1.0).ok, f"t={t}"
