"""Facade unit tests: ProblemSpec validation, registry error handling,
session behaviour and the backend protocol."""

import numpy as np
import pytest

from repro.api import (
    CoresetBackend,
    DuplicateBackendError,
    Guarantee,
    KCenterSession,
    ProblemSpec,
    UnknownBackendError,
    UnsupportedOperationError,
    available_backends,
    backend_table,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.core import ChebyshevMetric
from repro.core.mbc import compose_errors


class TestProblemSpec:
    def test_basic_construction(self):
        spec = ProblemSpec(k=3, z=10, eps=0.5, dim=2, seed=7)
        assert (spec.k, spec.z, spec.eps, spec.dim, spec.seed) == (3, 10, 0.5, 2, 7)
        assert spec.metric_name == "euclidean"

    @pytest.mark.parametrize("kwargs", [
        {"k": 0, "z": 1, "eps": 0.5},
        {"k": 1, "z": -1, "eps": 0.5},
        {"k": 1, "z": 1, "eps": 0.0},
        {"k": 1, "z": 1, "eps": 1.5},
        {"k": 1, "z": 1, "eps": 0.5, "dim": 0},
        {"k": 1, "z": 1, "eps": 0.5, "seed": -3},
        {"k": 1, "z": 1, "eps": 0.5, "prune": "maybe"},
        {"k": 1, "z": 1, "eps": 0.5, "decision_jobs": 0},
        {"k": 1, "z": 1, "eps": 0.5, "decision_jobs": -2},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ProblemSpec(**kwargs)

    def test_prune_and_decision_jobs_accepted(self):
        spec = ProblemSpec(1, 0, 1.0, prune="grid", decision_jobs=4)
        assert spec.prune == "grid"
        assert spec.decision_jobs == 4 and isinstance(spec.decision_jobs, int)
        assert ProblemSpec(1, 0, 1.0).prune is None

    def test_metric_resolution(self):
        assert ProblemSpec(1, 0, 1.0, metric="linf").metric_name == "chebyshev"
        m = ChebyshevMetric()
        assert ProblemSpec(1, 0, 1.0, metric=m).resolved_metric is m
        with pytest.raises(ValueError):
            ProblemSpec(1, 0, 1.0, metric="no-such-metric")

    def test_coercion(self):
        spec = ProblemSpec(k="3", z=2.0, eps="0.5", dim=2.0)
        assert spec.k == 3 and isinstance(spec.k, int)
        assert spec.z == 2 and isinstance(spec.z, int)
        assert spec.eps == 0.5 and isinstance(spec.eps, float)

    def test_replace(self):
        spec = ProblemSpec(k=3, z=10, eps=0.5, dim=2, seed=7)
        spec2 = spec.replace(eps=0.25)
        assert spec2.eps == 0.25 and spec2.k == 3 and spec.eps == 0.5

    def test_require_dim(self):
        with pytest.raises(ValueError, match="dim"):
            ProblemSpec(1, 0, 1.0).require_dim()
        assert ProblemSpec(1, 0, 1.0, dim=4).require_dim() == 4

    def test_rng_reproducible_and_salted(self):
        spec = ProblemSpec(1, 0, 1.0, seed=5)
        a, b = spec.rng(), spec.rng()
        assert a.integers(0, 1 << 30) == b.integers(0, 1 << 30)
        assert spec.rng().integers(0, 1 << 30) != spec.rng(salt=1).integers(0, 1 << 30)

    def test_as_dict(self):
        d = ProblemSpec(2, 3, 0.5, dim=1, seed=0).as_dict()
        assert d == {"k": 2, "z": 3, "eps": 0.5, "metric": "euclidean",
                     "seed": 0, "dim": 1, "executor": None, "jobs": None,
                     "dtype": None, "kernel_chunk": None,
                     "kernel_backend": None, "prune": None,
                     "decision_jobs": None}


class TestRegistry:
    def test_all_builtins_registered(self):
        names = available_backends()
        assert len(names) >= 8
        for expected in [
            "offline", "insertion-only", "ceccarello-stream", "dynamic",
            "dynamic-deterministic", "sliding-window", "mpc-one-round",
            "mpc-two-round", "mpc-multi-round", "cpp-mpc-deterministic",
            "cpp-mpc-randomized",
        ]:
            assert expected in names

    def test_unknown_backend(self):
        with pytest.raises(UnknownBackendError, match="no-such"):
            get_backend("no-such")
        # the error is discoverable: it lists the registered names
        with pytest.raises(UnknownBackendError, match="insertion-only"):
            get_backend("no-such")

    def test_unknown_backend_via_session(self):
        with pytest.raises(UnknownBackendError):
            KCenterSession(ProblemSpec(1, 0, 1.0, dim=1), backend="typo")

    def test_duplicate_registration(self):
        def factory(spec):
            raise AssertionError("never constructed")

        register_backend("test-dup-backend", factory)
        try:
            with pytest.raises(DuplicateBackendError, match="test-dup-backend"):
                register_backend("test-dup-backend", factory)
            # explicit overwrite is allowed
            register_backend("test-dup-backend", factory, overwrite=True)
        finally:
            unregister_backend("test-dup-backend")
        with pytest.raises(UnknownBackendError):
            get_backend("test-dup-backend")

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            register_backend("", lambda spec: None)

    def test_model_filter_and_table(self):
        assert set(available_backends(model="mpc")) >= {
            "mpc-one-round", "mpc-two-round", "mpc-multi-round",
        }
        table = backend_table()
        assert [i.name for i in table] == available_backends()
        info = get_backend("insertion-only")
        assert "Algorithm 3" in info.algorithm
        assert not info.supports_delete
        assert get_backend("dynamic").supports_delete

    def test_decorator_form(self):
        @register_backend("test-decorated", model="offline")
        class Dummy:
            def __init__(self, spec):
                self.spec = spec

        try:
            assert get_backend("test-decorated").factory is Dummy
        finally:
            unregister_backend("test-decorated")


class TestSession:
    @pytest.fixture
    def spec(self):
        return ProblemSpec(k=2, z=4, eps=0.5, dim=2, seed=0)

    @pytest.fixture
    def points(self):
        rng = np.random.default_rng(3)
        return np.concatenate([
            rng.normal((0, 0), 0.3, (60, 2)),
            rng.normal((9, 9), 0.3, (60, 2)),
            rng.uniform(40, 50, (4, 2)),
        ])

    def test_protocol_conformance(self, spec):
        sess = KCenterSession.from_spec(spec, backend="insertion-only")
        assert isinstance(sess.backend, CoresetBackend)

    def test_delete_unsupported(self, spec):
        sess = KCenterSession.from_spec(spec, backend="insertion-only")
        with pytest.raises(UnsupportedOperationError, match="dynamic"):
            sess.delete([0.0, 0.0])

    def test_solve_provenance(self, spec, points):
        sess = KCenterSession.from_spec(spec, backend="offline")
        sess.extend(points)
        sess.insert(points[0])
        sol = sess.solve()
        assert sol.backend == "offline"
        assert sol.spec is spec
        assert sol.updates == len(points) + 1
        assert sol.coreset_size == len(sess.coreset())
        assert sol.eps_guarantee == spec.eps
        assert sol.wall_time > 0
        assert sol.radius > 0
        assert "3 *" in sol.approx_factor

    def test_solve_empty_session(self, spec):
        sess = KCenterSession.from_spec(spec, backend="offline")
        sol = sess.solve()
        assert sol.radius == 0.0 and sol.coreset_size == 0

    def test_solve_brute_method(self, spec):
        sess = KCenterSession.from_spec(spec, backend="offline")
        rng = np.random.default_rng(0)
        sess.extend(rng.normal(0, 1, (12, 2)))
        sol = sess.solve(method="brute")
        assert sol.method == "brute"
        assert sol.approx_factor.startswith("(1 +")

    def test_guarantee_composition(self, spec):
        two = KCenterSession.from_spec(spec, backend="mpc-two-round")
        assert two.guarantee().eps == pytest.approx(
            compose_errors(spec.eps, spec.eps)
        )
        multi = KCenterSession.from_spec(spec, backend="mpc-multi-round",
                                         rounds=3)
        assert multi.guarantee().eps == pytest.approx(
            (1 + spec.eps) ** 3 - 1
        )
        assert isinstance(two.guarantee(), Guarantee)

    def test_stats_merge(self, spec, points):
        sess = KCenterSession.from_spec(spec, backend="insertion-only")
        sess.extend(points)
        st = sess.stats()
        assert st["backend"] == "insertion-only"
        assert st["model"] == "insertion-only"
        assert st["updates"] == len(points)
        assert st["k"] == spec.k and st["eps"] == spec.eps
        assert st["stored"] > 0 and st["threshold"] > 0

    def test_updates_count_deletes_and_are_authoritative(self, spec):
        sess = KCenterSession.from_spec(spec, backend="dynamic",
                                        delta_universe=16, s_override=8)
        pts = np.ones((10, 2), dtype=np.int64)
        sess.extend(pts)
        sess.delete_many(pts[:4])
        sess.delete(pts[4])
        assert sess.updates_seen == 15
        st = sess.stats()
        # the session's own counter must not be shadowed by backend stats
        assert st["updates"] == 15
        assert st["sketch_updates"] == 15
        assert sess.solve().updates == 15

    def test_delete_many_unsupported(self, spec):
        sess = KCenterSession.from_spec(spec, backend="insertion-only")
        with pytest.raises(UnsupportedOperationError):
            sess.delete_many(np.zeros((2, 2)))

    def test_option_validation(self, spec):
        with pytest.raises(ValueError, match="delta_universe"):
            KCenterSession.from_spec(spec, backend="dynamic")
        with pytest.raises(ValueError, match="window"):
            KCenterSession.from_spec(spec, backend="sliding-window")
        with pytest.raises(ValueError, match="dim"):
            KCenterSession.from_spec(ProblemSpec(2, 4, 0.5),
                                     backend="insertion-only")

    def test_bad_partition_scheme(self, spec, points):
        sess = KCenterSession.from_spec(spec, backend="mpc-two-round",
                                        partition="bogus")
        sess.extend(points)
        with pytest.raises(ValueError, match="partition"):
            sess.coreset()

    def test_radius_shortcut(self, spec, points):
        sess = KCenterSession.from_spec(spec, backend="offline")
        sess.extend(points)
        assert sess.radius() == sess.solve().radius

    def test_top_level_exports(self):
        import repro

        assert repro.__version__ == "1.10.0"
        assert repro.ProblemSpec is ProblemSpec
        assert repro.KCenterSession is KCenterSession
        assert "api" in repro.__all__
