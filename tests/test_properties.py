"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import (
    WeightedPointSet,
    brute_force_opt,
    charikar_greedy,
    continuous_opt_1d,
    coverage_radius,
    mbc_construction,
    update_coreset,
)
from repro.geometry import separated_subset
from repro.sketches import OneSparseCell, SSparseRecovery

# bounded, finite coordinate strategy
coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, width=32)


def _points_1d(min_size=2, max_size=12):
    return st.lists(coords, min_size=min_size, max_size=max_size).map(
        lambda xs: np.asarray(xs, dtype=float).reshape(-1, 1)
    )


def _points_2d(min_size=2, max_size=10):
    return st.lists(
        st.tuples(coords, coords), min_size=min_size, max_size=max_size
    ).map(lambda xs: np.asarray(xs, dtype=float))


class TestGreedyCertificateProperty:
    @given(pts=_points_2d(min_size=3, max_size=10),
           k=st.integers(1, 3), z=st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_radius_between_opt_and_3opt(self, pts, k, z):
        P = WeightedPointSet.from_points(pts)
        opt = brute_force_opt(P, k, z).radius
        res = charikar_greedy(P, k, z)
        assert opt <= res.radius + 1e-6
        assert res.radius <= 3 * opt + 1e-6

    @given(pts=_points_2d(min_size=3, max_size=10), k=st.integers(1, 3),
           z=st.integers(0, 3))
    @settings(max_examples=30, deadline=None)
    def test_uncovered_weight_at_most_z(self, pts, k, z):
        P = WeightedPointSet.from_points(pts)
        res = charikar_greedy(P, k, z)
        assert int(P.weights[res.uncovered].sum()) <= z


class TestMBCProperties:
    @given(pts=_points_2d(min_size=2, max_size=12),
           eps=st.sampled_from([0.25, 0.5, 1.0]))
    @settings(max_examples=40, deadline=None)
    def test_weight_preservation(self, pts, eps):
        P = WeightedPointSet.from_points(pts)
        mbc = mbc_construction(P, 2, 1, eps)
        assert mbc.coreset.total_weight == P.total_weight

    @given(pts=_points_2d(min_size=2, max_size=12),
           eps=st.sampled_from([0.25, 0.5, 1.0]))
    @settings(max_examples=40, deadline=None)
    def test_assignment_within_mini_ball(self, pts, eps):
        P = WeightedPointSet.from_points(pts)
        mbc = mbc_construction(P, 2, 1, eps)
        reps = mbc.coreset.points[mbc.assignment]
        d = np.linalg.norm(P.points - reps, axis=1)
        assert d.max() <= mbc.mini_ball_radius + 1e-9

    @given(pts=_points_2d(min_size=2, max_size=12), delta=st.floats(0.0, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_update_coreset_separation(self, pts, delta):
        P = WeightedPointSet.from_points(pts)
        mbc = update_coreset(P, delta)
        if mbc.size > 1:
            from scipy.spatial.distance import pdist
            assert pdist(mbc.coreset.points).min() > delta - 1e-9


class TestCoverageRadiusProperties:
    @given(pts=_points_1d(min_size=2, max_size=12), z=st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_z(self, pts, z):
        P = WeightedPointSet.from_points(pts)
        c = pts[:1]
        assert coverage_radius(P, c, z + 1) <= coverage_radius(P, c, z) + 1e-12

    @given(pts=_points_1d(min_size=2, max_size=10),
           k=st.integers(1, 3), z=st.integers(0, 2))
    @settings(max_examples=40, deadline=None)
    def test_continuous_at_most_discrete(self, pts, k, z):
        P = WeightedPointSet.from_points(pts)
        cont = continuous_opt_1d(P, k, z)
        disc = brute_force_opt(P, k, z).radius
        assert cont <= disc + 1e-9


class TestSeparatedSubsetProperties:
    @given(pts=_points_2d(min_size=1, max_size=30), delta=st.floats(0.1, 20.0))
    @settings(max_examples=30, deadline=None)
    def test_net_properties(self, pts, delta):
        idx = separated_subset(pts, delta)
        sel = pts[idx]
        from scipy.spatial.distance import cdist
        D = cdist(pts, sel)
        # covering
        assert D.min(axis=1).max() <= delta + 1e-6
        # separation
        if len(sel) > 1:
            DD = cdist(sel, sel)
            np.fill_diagonal(DD, np.inf)
            assert DD.min() > delta - 1e-6


class TestSketchProperties:
    @given(updates=st.lists(
        st.tuples(st.integers(0, 50), st.integers(1, 3)), min_size=0, max_size=30,
    ))
    @settings(max_examples=30, deadline=None)
    def test_sparse_recovery_exact(self, updates):
        """Insert-then-delete-some always decodes exactly when the live
        support is within capacity."""
        rng = np.random.default_rng(0)
        sk = SSparseRecovery(16, 64, rng=rng)
        truth: dict[int, int] = {}
        for key, w in updates:
            sk.update(key, w)
            truth[key] = truth.get(key, 0) + w
        # delete down to at most 10 keys
        keys = sorted(truth)
        for k in keys[10:]:
            sk.update(k, -truth[k])
            del truth[k]
        res = sk.decode()
        assert res.success
        assert res.items == {k: v for k, v in truth.items() if v != 0}

    @given(key=st.integers(0, 10**12), w=st.integers(1, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_one_sparse_roundtrip(self, key, w):
        c = OneSparseCell(zeta=1234577)
        c.update(key, w)
        assert c.decode() == (key, w)
        c.update(key, -w)
        assert c.is_zero
