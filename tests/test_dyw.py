"""Tests for the Ding-Yu-Wang style randomized greedy (reference [21])."""

import numpy as np
import pytest

from repro.core import WeightedPointSet, brute_force_opt, dyw_greedy
from repro.workloads import clustered_with_outliers


class TestDYWGreedy:
    def test_bi_criteria_outlier_budget(self, rng):
        wl = clustered_with_outliers(200, 3, 8, d=2, rng=rng)
        res = dyw_greedy(wl.point_set(), 3, 8, delta=0.5, rng=rng)
        assert res.outlier_weight <= int(np.floor(1.5 * 8))

    def test_radius_constant_factor(self, rng):
        P = WeightedPointSet.from_points(rng.uniform(0, 10, size=(12, 2)))
        opt = brute_force_opt(P, 2, 1).radius
        res = dyw_greedy(P, 2, 1, delta=0.5, rng=rng, trials=16)
        # bi-criteria: radius within a small constant of opt (2x in theory
        # for the relaxed budget; allow slack for sampling)
        assert res.radius <= 4 * opt + 1e-9

    def test_certificate_consistency(self, rng):
        """The returned (radius, outlier_weight) pair is always a valid
        certificate regardless of sampling luck."""
        wl = clustered_with_outliers(150, 2, 6, d=2, rng=rng)
        P = wl.point_set()
        res = dyw_greedy(P, 2, 6, delta=0.3, rng=rng)
        from repro.core import uncovered_weight
        assert uncovered_weight(
            P, P.points[res.centers_idx], res.radius
        ) == res.outlier_weight

    def test_clustered_instance_finds_structure(self, rng):
        wl = clustered_with_outliers(300, 3, 10, d=2, cluster_std=0.2,
                                     rng=rng)
        P = wl.point_set()
        res = dyw_greedy(P, 3, 10, delta=0.5, rng=rng, trials=16)
        # the planted clusters have radius << spacing; DYW must find them
        assert res.radius < 10.0

    def test_degenerate_cases(self, rng):
        empty = WeightedPointSet.empty(2)
        assert dyw_greedy(empty, 2, 1, rng=rng).radius == 0.0
        P = WeightedPointSet.from_points(np.zeros((5, 2)))
        assert dyw_greedy(P, 1, 0, rng=rng).radius == 0.0
        # total weight below the relaxed budget
        P2 = WeightedPointSet.from_points(np.array([[0.0], [100.0]]))
        assert dyw_greedy(P2, 1, 2, rng=rng).radius == 0.0

    def test_k_validation(self, rng):
        P = WeightedPointSet.from_points(np.arange(10, dtype=float).reshape(-1, 1))
        with pytest.raises(ValueError):
            dyw_greedy(P, 0, 0, rng=rng)

    def test_weighted_sampling(self, rng):
        """Weight-proportional sampling: heavy inlier mass is found even
        with many light outliers."""
        pts = np.concatenate([np.zeros((1, 1)), rng.uniform(50, 100, (10, 1))])
        weights = np.concatenate([[1000], np.ones(10, dtype=int)]).astype(int)
        P = WeightedPointSet(pts, weights)
        res = dyw_greedy(P, 1, 10, delta=0.2, rng=rng, trials=8)
        # the heavy point at 0 must be covered
        assert res.radius <= 100.0
        assert res.outlier_weight <= 12
