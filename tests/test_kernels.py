"""Tests for the shared distance-kernel layer (:mod:`repro.kernels`).

Covers the satellite requirements of the kernels PR: float64 kernel
parity with SciPy across all built-in metrics, float32-versus-float64
tolerance bounds, chunk autotuning, workspace reuse, and the new
``dtype`` / ``kernel_chunk`` knobs on :class:`repro.api.ProblemSpec`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.spatial.distance import cdist

from repro.api import ProblemSpec
from repro.core.metrics import get_metric
from repro.kernels import (
    Workspace,
    auto_chunk,
    pairwise_kernel,
    resolve_dtype,
    sqnorms,
)

METRICS = ("euclidean", "chebyshev", "manhattan")
_CDIST = {"euclidean": "euclidean", "chebyshev": "chebyshev",
          "manhattan": "cityblock"}


class TestResolveDtype:
    def test_default_is_float64(self):
        assert resolve_dtype(None) == np.float64

    def test_names_and_dtypes(self):
        assert resolve_dtype("float32") == np.float32
        assert resolve_dtype(np.float64) == np.float64

    def test_rejects_others(self):
        with pytest.raises(ValueError):
            resolve_dtype("int32")
        with pytest.raises(ValueError):
            resolve_dtype("float16")


class TestAutoChunk:
    def test_bounds(self):
        assert 64 <= auto_chunk(10) <= 8192
        assert 64 <= auto_chunk(10**9) <= 8192

    def test_smaller_dtype_bigger_chunk(self):
        assert auto_chunk(100_000, dtype="float32") >= auto_chunk(
            100_000, dtype="float64"
        )


class TestFloat64Parity:
    """The float64 path must be bit-identical to SciPy's cdist — the
    pre-kernels implementation every parity test pins."""

    @pytest.mark.parametrize("name", METRICS)
    def test_matches_cdist(self, name):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(37, 3)), rng.normal(size=(23, 3))
        D = pairwise_kernel(name, a, b)
        assert D.dtype == np.float64
        np.testing.assert_array_equal(D, cdist(a, b, metric=_CDIST[name]))

    @pytest.mark.parametrize("name", METRICS)
    def test_metric_object_routes_through_kernel(self, name):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=(11, 2)), rng.normal(size=(7, 2))
        m = get_metric(name)
        np.testing.assert_array_equal(
            m.pairwise(a, b), cdist(a, b, metric=_CDIST[name])
        )
        np.testing.assert_array_equal(
            m.pairwise_block(a, b, dtype="float64"),
            cdist(a, b, metric=_CDIST[name]),
        )

    def test_empty_inputs(self):
        a = np.zeros((0, 2))
        b = np.ones((4, 2))
        assert pairwise_kernel("euclidean", a, b).shape == (0, 4)
        assert pairwise_kernel("euclidean", b, a).shape == (4, 0)
        assert pairwise_kernel("euclidean", a, b, dtype="float32").dtype == np.float32

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            pairwise_kernel("mahalanobis", np.zeros((2, 2)), np.zeros((2, 2)))


class TestFloat32Tolerance:
    """float32 kernels agree with float64 within documented bounds."""

    @pytest.mark.parametrize("name", METRICS)
    def test_relative_error_bound(self, name):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(64, 4)) * 10
        b = rng.normal(size=(48, 4)) * 10
        D64 = pairwise_kernel(name, a, b)
        D32 = pairwise_kernel(name, a, b, dtype="float32")
        assert D32.dtype == np.float32
        scale = max(1.0, D64.max())
        assert np.abs(D32.astype(np.float64) - D64).max() <= 1e-4 * scale

    @given(
        st.integers(0, 2**31),
        st.sampled_from(METRICS),
        st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_float32_close(self, seed, name, d):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(20, d)) * rng.choice([0.01, 1.0, 100.0])
        b = rng.normal(size=(15, d)) * rng.choice([0.01, 1.0, 100.0])
        D64 = pairwise_kernel(name, a, b)
        D32 = pairwise_kernel(name, a, b, dtype="float32")
        scale = max(1.0, float(D64.max()))
        # euclidean-f32 goes through the GEMM formulation, whose error is
        # relative to the coordinate scale, not the distance scale
        scale = max(scale, float(np.abs(a).max()), float(np.abs(b).max()))
        np.testing.assert_allclose(
            D32.astype(np.float64), D64, atol=2e-4 * scale, rtol=1e-4
        )

    def test_euclidean_f32_nonnegative_on_duplicates(self):
        # the GEMM formulation must clamp tiny negative squared distances;
        # its absolute error near zero scales with sqrt(eps32) times the
        # coordinate norm (catastrophic cancellation of |a|^2 + |b|^2 - 2ab)
        rng = np.random.default_rng(3)
        a = rng.normal(size=(10, 3)) * 1000
        a = np.vstack([a, a])
        D = pairwise_kernel("euclidean", a, a, dtype="float32")
        assert (D >= 0).all()
        assert float(np.diag(D).max()) <= 1e-3 * float(np.abs(a).max())


class TestWorkspace:
    def test_buffer_reuse_and_growth(self):
        ws = Workspace()
        b1 = ws.buffer("t", (4, 4), np.float64)
        b2 = ws.buffer("t", (2, 8), np.float64)
        assert b1.base is b2.base  # same backing allocation, re-viewed
        b3 = ws.buffer("t", (100, 100), np.float64)
        assert b3.shape == (100, 100)

    def test_buffer_distinct_tags_and_dtypes(self):
        ws = Workspace()
        a = ws.buffer("x", (4,), np.float64)
        b = ws.buffer("y", (4,), np.float64)
        c = ws.buffer("x", (4,), np.float32)
        assert a.base is not b.base and a.dtype != c.dtype

    def test_sqnorms_cached_by_identity(self):
        ws = Workspace()
        x = np.random.default_rng(4).normal(size=(10, 3))
        n1 = ws.sqnorms(x)
        n2 = ws.sqnorms(x)
        assert n1 is n2
        np.testing.assert_allclose(n1, sqnorms(x))
        y = x.copy()
        assert ws.sqnorms(y) is not n1


class TestSpecKnobs:
    def test_defaults(self):
        spec = ProblemSpec(k=2, z=1, eps=0.5)
        assert spec.dtype is None and spec.kernel_chunk is None

    def test_normalization(self):
        spec = ProblemSpec(k=2, z=1, eps=0.5, dtype=np.float32, kernel_chunk=512.0)
        assert spec.dtype == "float32" and spec.kernel_chunk == 512

    def test_validation(self):
        with pytest.raises(ValueError):
            ProblemSpec(k=2, z=1, eps=0.5, dtype="int8")
        with pytest.raises(ValueError):
            ProblemSpec(k=2, z=1, eps=0.5, kernel_chunk=0)

    def test_as_dict_and_replace_roundtrip(self):
        spec = ProblemSpec(k=2, z=1, eps=0.5, dtype="float32", kernel_chunk=256)
        d = spec.as_dict()
        assert d["dtype"] == "float32" and d["kernel_chunk"] == 256
        spec2 = spec.replace(dtype=None)
        assert spec2.dtype is None and spec2.kernel_chunk == 256

    def test_float32_solve_close_to_float64(self):
        from repro.core import WeightedPointSet, charikar_greedy

        rng = np.random.default_rng(5)
        P = WeightedPointSet(rng.random((300, 2)) * 10, rng.integers(1, 4, 300))
        r64 = charikar_greedy(P, 3, 5).radius
        r32 = charikar_greedy(P, 3, 5, dtype="float32").radius
        assert r32 == pytest.approx(r64, rel=1e-3)
        # and through the geometric path
        g64 = charikar_greedy(P, 3, 5, pairwise_limit=64).radius
        g32 = charikar_greedy(P, 3, 5, pairwise_limit=64, dtype="float32").radius
        assert g32 == pytest.approx(g64, rel=1e-3)
