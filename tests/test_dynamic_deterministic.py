"""Tests for the deterministic fully dynamic coreset (§5 discussion)."""

import numpy as np
import pytest

from repro.core import WeightedPointSet, charikar_greedy
from repro.streaming import DeterministicDynamicCoreset, DynamicCoreset
from repro.workloads import integer_workload


@pytest.fixture
def det(request):
    return DeterministicDynamicCoreset(2, 3, 1.0, 64, 2, s_override=32)


class TestDeterministicDynamic:
    def test_weight_recovery(self, det, rng):
        pts = rng.integers(1, 65, size=(25, 2))
        for p in pts:
            det.insert(p)
        assert det.coreset().total_weight == 25

    def test_deletions(self, det, rng):
        pts = rng.integers(1, 65, size=(25, 2))
        for p in pts:
            det.insert(p)
        for p in pts[:10]:
            det.delete(p)
        assert det.coreset().total_weight == 15

    def test_empty_after_full_deletion(self, det, rng):
        pts = rng.integers(1, 65, size=(10, 2))
        for p in pts:
            det.insert(p)
        for p in pts:
            det.delete(p)
        cs = det.coreset()
        assert len(cs) == 0 and det.selected_level() == 0

    def test_bit_for_bit_determinism(self, rng):
        pts = rng.integers(1, 65, size=(30, 2))
        results = []
        for _ in range(2):
            d = DeterministicDynamicCoreset(2, 3, 1.0, 64, 2, s_override=24)
            for p in pts:
                d.insert(p)
            cs = d.coreset()
            results.append((cs.points.tobytes(), cs.weights.tobytes()))
        assert results[0] == results[1]

    def test_falls_back_to_coarser_grid(self, rng):
        d = DeterministicDynamicCoreset(1, 0, 1.0, 64, 2, s_override=4)
        pts = rng.integers(1, 65, size=(40, 2))
        for p in pts:
            d.insert(p)
        assert d.selected_level() > 0
        assert d.coreset().total_weight == 40

    def test_matches_randomized_weight(self, rng):
        wl = integer_workload(40, 2, 3, 64, 2, rng=rng)
        det = DeterministicDynamicCoreset(2, 3, 1.0, 64, 2, s_override=40)
        ran = DynamicCoreset(2, 3, 1.0, 64, 2, rng=np.random.default_rng(0))
        for p in wl.points:
            det.insert(p)
            ran.insert(p)
        assert det.coreset().total_weight == ran.coreset().total_weight == 40

    def test_radius_quality(self, rng):
        wl = integer_workload(50, 2, 4, 64, 2, rng=rng)
        d = DeterministicDynamicCoreset(2, 4, 1.0, 64, 2, s_override=50)
        for p in wl.points:
            d.insert(p)
        P = WeightedPointSet.from_points(wl.points.astype(float))
        r_full = charikar_greedy(P, 2, 4).radius
        r_core = charikar_greedy(d.coreset(), 2, 4).radius
        side = d.hier.level(d.selected_level()).side
        assert abs(r_core - r_full) <= 3 * r_full + 2 * side

    def test_universe_guard(self):
        with pytest.raises(ValueError):
            DeterministicDynamicCoreset(1, 0, 1.0, 2**16, 2)  # 2^32 cells

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            DeterministicDynamicCoreset(1, 0, 0.0, 64, 1)

    def test_storage_grows_logarithmically(self):
        small = DeterministicDynamicCoreset(1, 0, 1.0, 16, 1, s_override=8)
        big = DeterministicDynamicCoreset(1, 0, 1.0, 4096, 1, s_override=8)
        # (2s + check) * num_levels: linear in log Delta
        assert big.storage_cells / small.storage_cells == pytest.approx(
            13 / 5, rel=0.01
        )
