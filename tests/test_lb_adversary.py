"""Tests for the adversary harness (executable lower bounds)."""

import numpy as np
import pytest

from repro.lowerbounds import (
    DroppingMaintainer,
    ExactMaintainer,
    Lemma12Instance,
    Lemma15Instance,
    attack_lemma12,
    attack_lemma15,
    find_dropped_point,
)
from repro.streaming import InsertionOnlyCoreset


@pytest.fixture
def inst12():
    return Lemma12Instance.build(k=2, z=2, d=1, eps=1 / 8)


class TestMaintainers:
    def test_exact_maintainer_stores_all(self):
        m = ExactMaintainer(1)
        m.insert([1.0])
        m.insert([2.0])
        m.insert([1.0])
        cs = m.coreset()
        assert len(cs) == 2 and cs.total_weight == 3

    def test_dropping_maintainer_drops_target(self):
        m = DroppingMaintainer(1, [[2.0]])
        for x in [1.0, 2.0, 3.0]:
            m.insert([x])
        assert m.dropped_count == 1
        assert find_dropped_point(m.coreset(), np.array([[2.0]])) is not None
        assert find_dropped_point(m.coreset(), np.array([[1.0]])) is None


class TestFindDroppedPoint:
    def test_none_when_all_present(self, inst12):
        m = ExactMaintainer(1)
        for p in inst12.prefix_points():
            m.insert(p)
        assert find_dropped_point(m.coreset(), inst12.cluster_points) is None

    def test_finds_first_missing(self):
        from repro.core import WeightedPointSet
        cs = WeightedPointSet.from_points(np.array([[0.0], [2.0]]))
        missing = find_dropped_point(cs, np.array([[0.0], [1.0], [2.0]]))
        assert missing[0] == 1.0


class TestLemma12Attack:
    def test_exact_survives(self, inst12):
        rep = attack_lemma12(ExactMaintainer(1), inst12)
        assert rep.survived and not rep.violated
        assert rep.storage >= rep.required

    @pytest.mark.parametrize("idx", [0, 1, 2])
    def test_dropping_any_point_is_fatal(self, inst12, idx):
        p = inst12.cluster_points[idx]
        rep = attack_lemma12(DroppingMaintainer(1, p), inst12)
        assert not rep.survived
        assert rep.violated
        assert (1 - inst12.eps) * rep.opt_full_lb > rep.opt_coreset_ub

    def test_fatal_in_2d(self):
        inst = Lemma12Instance.build(k=4, z=2, d=2, eps=1 / 16)
        p = inst.cluster_points[3]
        rep = attack_lemma12(DroppingMaintainer(2, p), inst)
        assert rep.violated

    def test_compressing_maintainer_fails(self):
        """A real streaming structure with a cap below the bound either
        stores all cluster points or gets caught."""
        inst = Lemma12Instance.build(k=4, z=2, d=1, eps=1 / 16)
        cap = inst.required_storage // 2 + 2  # below Omega(k/eps^d)
        st = InsertionOnlyCoreset(4, 2, 1.0, d=1, size_cap=max(cap, 4 + 2 + 2))
        rep = attack_lemma12(st, inst)
        assert rep.survived or rep.violated  # compression is caught when it bites


class TestLemma15Attack:
    def test_exact_survives(self):
        inst = Lemma15Instance(k=2, z=3)
        rep = attack_lemma15(ExactMaintainer(1), inst)
        assert rep.survived

    @pytest.mark.parametrize("idx", [0, 2, 4])
    def test_dropping_any_point_is_fatal(self, idx):
        inst = Lemma15Instance(k=2, z=3)
        p = inst.prefix_points()[idx]
        rep = attack_lemma15(DroppingMaintainer(1, p), inst)
        assert rep.violated
        assert rep.opt_coreset_ub == 0.0
        assert rep.opt_full_lb == 0.5
