"""Cross-module integration tests: the paper's end-to-end pipelines."""

import numpy as np

from repro.core import (
    WeightedPointSet,
    charikar_greedy,
    solve_via_coreset,
    verify_sandwich,
)
from repro.mpc import (
    one_round_coreset,
    partition_adversarial_outliers,
    partition_random,
    two_round_coreset,
)
from repro.streaming import DynamicCoreset, InsertionOnlyCoreset, SlidingWindowCoreset
from repro.workloads import clustered_with_outliers, drifting_stream, integer_workload


class TestMPCPipelines:
    def test_mpc_to_solver_pipeline(self, rng):
        """Partition -> Algorithm 2 -> offline solve on the coreset: the
        final radius approximates the full-data radius."""
        wl = clustered_with_outliers(800, 3, 20, d=2, rng=rng)
        P = wl.point_set()
        parts = partition_adversarial_outliers(P, wl.outlier_mask, 8, rng)
        res = two_round_coreset(parts, 3, 20, 0.4)
        sol = solve_via_coreset(res.coreset, 3, 20)
        r_full = charikar_greedy(P, 3, 20).radius
        ratio = sol.radius / r_full
        assert 1 / 5 <= ratio <= 5

    def test_streaming_feeds_mpc(self, rng):
        """Composability: per-machine streaming coresets can seed an MPC
        union (the Lemma 4/5 machinery end to end)."""
        wl = clustered_with_outliers(600, 2, 10, d=2, rng=rng)
        P = wl.point_set()
        parts = partition_random(P, 4, rng)
        # each "machine" streams its shard through Algorithm 3
        pieces = []
        for part in parts:
            st = InsertionOnlyCoreset(2, 10, 0.4, d=2)
            st.extend(part.points)  # weights are 1 in this workload
            pieces.append(st.coreset())
        union = WeightedPointSet.concat(pieces)
        assert union.total_weight == P.total_weight
        assert verify_sandwich(P, union, 2, 10, 1.0).ok


class TestStreamingPipelines:
    def test_dynamic_matches_insertion_when_no_deletes(self, rng):
        """On a pure-insert integer stream, the dynamic sketch's coreset
        and Algorithm 3's coreset induce comparable radii."""
        wl = integer_workload(150, 2, 5, 128, 2, rng=rng)
        dyn = DynamicCoreset(2, 5, 1.0, 128, 2, rng=np.random.default_rng(1))
        ins = InsertionOnlyCoreset(2, 5, 1.0, d=2)
        for p in wl.points:
            dyn.insert(p)
            ins.insert(p.astype(float))
        r_dyn = charikar_greedy(dyn.coreset(), 2, 5).radius
        r_ins = charikar_greedy(ins.coreset(), 2, 5).radius
        scale = max(r_ins, 1.0)
        assert abs(r_dyn - r_ins) <= 3 * scale

    def test_sliding_window_equals_insertion_when_window_covers_stream(self, rng):
        """W >= n: the window is the whole stream, answers must agree."""
        stream = drifting_stream(200, 2, 6, d=1, rng=rng)
        sw = SlidingWindowCoreset(2, 6, 0.5, 1, window=1000, r_min=0.01, r_max=500)
        sw.extend(stream)
        P = WeightedPointSet.from_points(stream)
        r_off = charikar_greedy(P, 2, 6).radius
        r_sw = sw.radius()
        assert r_sw <= 3 * r_off + 1e-9 and r_off <= 3 * r_sw + 1e-9

    def test_full_lifecycle_insert_delete_reinsert(self, rng):
        dyn = DynamicCoreset(2, 3, 1.0, 64, 2, rng=np.random.default_rng(2))
        pts = rng.integers(1, 65, size=(50, 2))
        for p in pts:
            dyn.insert(p)
        for p in pts:
            dyn.delete(p)
        for p in pts[:20]:
            dyn.insert(p)
        assert dyn.coreset().total_weight == 20


class TestWeightedInputs:
    def test_weighted_problem_end_to_end(self, rng):
        """The weighted version (§1): total outlier WEIGHT at most z."""
        pts = np.concatenate([rng.normal(0, 0.2, (30, 2)), [[50.0, 50.0]]])
        weights = np.concatenate([np.ones(30, dtype=int), [5]])
        P = WeightedPointSet(pts, weights)
        # z=4 < 5: the heavy far point cannot be an outlier
        r_small_z = charikar_greedy(P, 1, 4).radius
        # z=5: it can
        r_big_z = charikar_greedy(P, 1, 5).radius
        assert r_small_z > 30 and r_big_z < 5

    def test_mpc_weighted(self, rng):
        pts = rng.normal(0, 1.0, (60, 2))
        weights = rng.integers(1, 5, size=60)
        P = WeightedPointSet(pts, weights)
        parts = [P.subset(np.arange(0, 30)), P.subset(np.arange(30, 60))]
        res = two_round_coreset(parts, 2, 3, 0.5)
        assert res.coreset.total_weight == P.total_weight

    def test_one_round_weighted(self, rng):
        pts = rng.normal(0, 1.0, (60, 2))
        weights = rng.integers(1, 5, size=60)
        P = WeightedPointSet(pts, weights)
        parts = [P.subset(np.arange(0, 30)), P.subset(np.arange(30, 60))]
        res = one_round_coreset(parts, 2, 3, 0.5)
        assert res.coreset.total_weight == P.total_weight
