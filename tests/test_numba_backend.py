"""The optional ``"numba"`` kernel backend.

The compiled kernels must be *bit-identical* to the numpy/cdist path:
they accumulate per coordinate in index order with every intermediate
rounded (no fastmath), exactly like cdist's inner loop, and the gain
kernels only sum integer-valued float64 weights.  These tests skip
cleanly when the ``repro[accel]`` extra is absent (the default
environment); the CI accel leg runs them compiled.
"""

import numpy as np
import pytest

from repro.core import WeightedPointSet, charikar_greedy, mbc_construction
from repro.core._greedy_reference import charikar_greedy_reference
from repro.core.greedy import _greedy_disks
from repro.core.metrics import get_metric
from repro.kernels import (
    Workspace,
    numba_available,
    pair_distances,
    pairwise_kernel,
)
from repro.kernels import numba_backend

METRICS = ("euclidean", "chebyshev", "manhattan")


class TestWithoutNumba:
    """Behaviour that must hold in the default (no-numba) environment."""

    def test_backend_name_validates_without_numba(self):
        from repro.api import ProblemSpec

        # specs naming the backend build anywhere; availability is a
        # solve-time concern
        spec = ProblemSpec(2, 1, 0.5, kernel_backend="numba")
        assert spec.kernel_backend == "numba"
        assert spec.as_dict()["kernel_backend"] == "numba"

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_require_raises_actionable_error(self):
        with pytest.raises(RuntimeError, match=r"repro\[accel\]"):
            numba_backend.require()

    @pytest.mark.skipif(numba_available(), reason="numba is installed")
    def test_solve_with_numba_backend_raises_actionable_error(self, rng):
        P = WeightedPointSet.from_points(rng.uniform(0, 1, size=(32, 2)))
        with pytest.raises(RuntimeError, match=r"repro\[accel\]"):
            charikar_greedy(P, 2, 1, kernel_backend="numba")


pytestmark_compiled = pytest.mark.skipif(
    not numba_available(), reason="numba not installed (optional extra)"
)


@pytestmark_compiled
class TestCompiledKernels:
    @pytest.mark.parametrize("kind", METRICS)
    @pytest.mark.parametrize("d", [1, 2, 3, 4])
    def test_pairwise_bit_matches_cdist(self, rng, kind, d):
        a = rng.normal(size=(40, d)) * rng.choice([1e-3, 1.0, 1e6])
        b = rng.normal(size=(25, d))
        want = pairwise_kernel(kind, a, b)  # cdist
        got = pairwise_kernel(kind, a, b, backend="numba")
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("kind", METRICS)
    def test_pair_distances_bit_matches_numpy(self, rng, kind):
        pts = rng.normal(size=(50, 3))
        rows = rng.integers(0, 50, size=400)
        cols = rng.integers(0, 50, size=400)
        want = pair_distances(kind, pts, rows, cols)
        got = pair_distances(kind, pts, rows, cols, backend="numba")
        np.testing.assert_array_equal(got, want)

    def test_gain_kernels_bit_match_numpy_path(self, rng):
        n = 120
        D = pairwise_kernel("euclidean", rng.normal(size=(n, 2)),
                            rng.normal(size=(n, 2)))
        w = rng.integers(1, 9, n)
        cutoff = float(np.median(D))
        got = numba_backend.gain_seed(D, w.astype(np.float64), cutoff)
        want = ((D <= cutoff) @ w.astype(np.float64))
        np.testing.assert_array_equal(got, want)
        idx = np.sort(rng.choice(n, size=20, replace=False))
        numba_backend.gain_subtract(D, got, idx, w.astype(np.float64), cutoff)
        want -= (D[:, idx] <= cutoff) @ w[idx].astype(np.float64)
        np.testing.assert_array_equal(got, want)


@pytestmark_compiled
class TestGreedyParityUnderNumba:
    @pytest.mark.parametrize("seed", range(6))
    def test_charikar_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 200))
        d = int(rng.integers(1, 4))
        P = WeightedPointSet(rng.normal(size=(n, d)) * 10,
                             rng.integers(1, 6, n))
        k = int(rng.integers(1, 5))
        z = int(rng.integers(0, 8))
        met = get_metric(str(rng.choice(METRICS)))
        limit = 8 if seed % 2 else 2048
        a = charikar_greedy(P, k, z, met, pairwise_limit=limit,
                            kernel_backend="numba")
        b = charikar_greedy_reference(P, k, z, met, pairwise_limit=limit)
        assert a.radius == b.radius and a.guess == b.guess
        np.testing.assert_array_equal(a.centers_idx, b.centers_idx)
        np.testing.assert_array_equal(a.uncovered, b.uncovered)

    def test_greedy_disks_bit_identical(self, rng):
        n = 150
        pts = rng.normal(size=(n, 2))
        D = pairwise_kernel("euclidean", pts, pts)
        w = rng.integers(1, 7, n)
        g = float(np.quantile(D, 0.2))
        ok_a, c_a, u_a = _greedy_disks(D, w, 3, 5, g, Workspace(),
                                       backend="numba")
        ok_b, c_b, u_b = _greedy_disks(D, w, 3, 5, g, Workspace())
        assert ok_a == ok_b and c_a == c_b
        np.testing.assert_array_equal(u_a, u_b)

    def test_mbc_bit_identical(self, rng):
        P = WeightedPointSet(rng.normal(size=(300, 2)) * 5,
                             rng.integers(1, 4, 300))
        a = mbc_construction(P, 4, 8, 0.4, kernel_backend="numba")
        b = mbc_construction(P, 4, 8, 0.4)
        assert a.greedy_radius == b.greedy_radius
        np.testing.assert_array_equal(a.coreset.points, b.coreset.points)
        np.testing.assert_array_equal(a.coreset.weights, b.coreset.weights)
        np.testing.assert_array_equal(a.assignment, b.assignment)
