"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro import WeightedPointSet
from repro.workloads import clustered_with_outliers


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_planar(rng):
    """Two tight planar clusters plus 4 planted outliers (k=2, z=4)."""
    wl = clustered_with_outliers(
        120, k=2, z=4, d=2, cluster_std=0.3, center_spread=10.0,
        outlier_spread=80.0, rng=rng,
    )
    return wl


@pytest.fixture
def small_set(small_planar):
    return small_planar.point_set()


@pytest.fixture
def tiny_set(rng):
    """12 random points — small enough for brute force."""
    return WeightedPointSet.from_points(rng.uniform(0, 10, size=(12, 2)))


@pytest.fixture
def line_set():
    """Ten collinear unit-spaced points."""
    return WeightedPointSet.from_points(np.arange(10, dtype=float).reshape(-1, 1))
