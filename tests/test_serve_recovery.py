"""Crash recovery: SIGKILL the server, restart on the same spool.

The durability contract under test: with a checkpoint cadence of C
points, a ``kill -9`` loses at most the updates since each session's
last checkpoint — a restarted server recovers every spooled session,
and each recovered session's solve is **bit-identical** to an
uninterrupted library run over the checkpointed prefix.  Covered for
one streaming backend (insertion-only) and one fully-dynamic linear
sketch (dynamic), ≥ 8 concurrent sessions.
"""

import http.client
import json
import os
import pathlib
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.api import KCenterSession, ProblemSpec

SPEC = dict(k=3, z=4, eps=0.5, dim=2, seed=0)
DELTA = 64
DYN_OPTS = {"delta_universe": DELTA, "s_override": 24}
BATCH = 40
CADENCE = 2 * BATCH  # checkpoint fires exactly after the second batch

REPO = pathlib.Path(__file__).resolve().parents[1]


def _spawn_server(spool, extra_args=()):
    """Start ``python -m repro.serve`` on an ephemeral port; return proc."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src")] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                               else []))
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", "0",
         "--spool-dir", str(spool), "--checkpoint-every", str(CADENCE),
         *extra_args],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )


def _await_ready(spool, proc, timeout=60.0):
    """Poll the ready file until it names this process; return base URL."""
    ready = pathlib.Path(spool) / "server.json"
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out, err = proc.communicate()
            raise AssertionError(
                f"server died during startup: {out!r} {err!r}")
        try:
            doc = json.loads(ready.read_text())
            if doc.get("pid") == proc.pid:
                return doc["url"], doc
        except (OSError, ValueError):
            pass
        time.sleep(0.05)
    raise AssertionError("server did not become ready in time")


class _Client:
    def __init__(self, url):
        host, port = url.split("//")[1].split(":")
        self.conn = http.client.HTTPConnection(host, int(port), timeout=60)

    def req(self, method, path, doc=None):
        body = json.dumps(doc).encode() if doc is not None else None
        self.conn.request(method, path, body=body,
                          headers={"Content-Type": "application/json"})
        resp = self.conn.getresponse()
        payload = resp.read()
        assert 200 <= resp.status < 300, (
            f"{method} {path} -> {resp.status}: {payload[:300]!r}")
        return json.loads(payload) if payload else {}

    def close(self):
        self.conn.close()


def _session_plan():
    """8 sessions: 4 insertion-only + 4 dynamic, 3 distinct batches each."""
    plan = {}
    for i in range(4):
        rng = np.random.default_rng(100 + i)
        plan[f"ins-{i}"] = ("insertion-only", {}, [
            rng.normal(size=(BATCH, 2)) * 4.0 for _ in range(3)])
    for i in range(4):
        rng = np.random.default_rng(200 + i)
        plan[f"dyn-{i}"] = ("dynamic", dict(DYN_OPTS), [
            rng.integers(1, DELTA, size=(BATCH, 2)).astype(float)
            for _ in range(3)])
    return plan


def _control_solution(backend, options, batches):
    """The uninterrupted library run the recovered server must match."""
    sess = KCenterSession.from_spec(
        ProblemSpec(**SPEC), backend=backend, **options)
    for b in batches:
        sess.extend(b)
    sol = sess.solve(method="greedy3")
    return {"radius": sol.radius,
            "centers": np.asarray(sol.centers, dtype=float)}


@pytest.mark.slow
def test_sigkill_recovery_is_bit_identical_to_last_checkpoint(tmp_path):
    spool = tmp_path / "spool"
    plan = _session_plan()
    proc = _spawn_server(spool)
    try:
        url, _ = _await_ready(spool, proc)
        client = _Client(url)
        try:
            for name, (backend, options, batches) in plan.items():
                client.req("PUT", f"/sessions/{name}",
                           {"spec": SPEC, "backend": backend,
                            "options": options})
            # batches 1-2 reach the cadence checkpoint; batch 3 is the
            # window the crash is allowed to lose
            for batch_idx in range(3):
                for name, (_, _, batches) in plan.items():
                    out = client.req("POST", f"/sessions/{name}/extend",
                                     {"points": batches[batch_idx].tolist()})
                    assert out["checkpointed"] is (batch_idx == 1), (
                        name, batch_idx)
        finally:
            client.close()
    finally:
        proc.kill()  # SIGKILL: no graceful checkpoint of batch 3
        proc.wait(timeout=30)

    for name in plan:
        assert (spool / f"{name}.snap").exists()

    proc2 = _spawn_server(spool)
    try:
        url, ready_doc = _await_ready(spool, proc2)
        assert sorted(ready_doc["recovered"]) == sorted(plan)
        client = _Client(url)
        try:
            listing = client.req("GET", "/sessions")["sessions"]
            assert len(listing) == len(plan)
            for record in listing:
                assert record["spooled"] and not record["resident"]
                assert record["updates"] == 2 * BATCH  # batch 3 lost
                assert record["checkpoint_every"] == CADENCE

            # recovered solve == uninterrupted run over the checkpointed
            # prefix, bit for bit
            for name, (backend, options, batches) in plan.items():
                want = _control_solution(backend, options, batches[:2])
                got = client.req("GET", f"/sessions/{name}/solve")
                assert got["radius"] == want["radius"], name
                assert np.array_equal(np.asarray(got["centers"]),
                                      want["centers"]), name

            # restore-then-continue: replaying the lost batch on the
            # recovered server matches the never-crashed run in full
            for name, (backend, options, batches) in plan.items():
                client.req("POST", f"/sessions/{name}/extend",
                           {"points": batches[2].tolist()})
                want = _control_solution(backend, options, batches)
                got = client.req("GET", f"/sessions/{name}/solve")
                assert got["radius"] == want["radius"], name
                assert np.array_equal(np.asarray(got["centers"]),
                                      want["centers"]), name
        finally:
            client.close()
    finally:
        proc2.terminate()
        try:
            proc2.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover
            proc2.kill()
            proc2.wait(timeout=30)


@pytest.mark.slow
def test_graceful_shutdown_loses_nothing(tmp_path):
    """SIGTERM checkpoints everything — even past-cadence tails survive."""
    spool = tmp_path / "spool"
    rng = np.random.default_rng(5)
    batches = [rng.normal(size=(BATCH, 2)) * 4.0 for _ in range(3)]
    proc = _spawn_server(spool)
    try:
        url, _ = _await_ready(spool, proc)
        client = _Client(url)
        try:
            client.req("PUT", "/sessions/a",
                       {"spec": SPEC, "backend": "insertion-only"})
            for b in batches:  # 120 points: cadence + a 40-point tail
                client.req("POST", "/sessions/a/extend",
                           {"points": b.tolist()})
        finally:
            client.close()
    finally:
        proc.terminate()  # SIGTERM: graceful, checkpoints the tail
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover
            proc.kill()
            raise

    proc2 = _spawn_server(spool)
    try:
        url, _ = _await_ready(spool, proc2)
        client = _Client(url)
        try:
            info = client.req("GET", "/sessions/a")
            assert info["updates"] == 3 * BATCH  # nothing lost
            want = _control_solution("insertion-only", {}, batches)
            got = client.req("GET", "/sessions/a/solve")
            assert got["radius"] == want["radius"]
            assert np.array_equal(np.asarray(got["centers"]),
                                  want["centers"])
        finally:
            client.close()
    finally:
        proc2.terminate()
        try:
            proc2.wait(timeout=30)
        except subprocess.TimeoutExpired:  # pragma: no cover
            proc2.kill()
            proc2.wait(timeout=30)
