"""Tests for the scenario registry, the built-in catalogue and the
real-dataset loader."""

import numpy as np
import pytest

from repro.api import get_backend
from repro.scenarios import (
    DuplicateScenarioError,
    ScenarioInstance,
    UnknownScenarioError,
    available_scenarios,
    get_scenario,
    load_dataset,
    register_scenario,
    scenario_table,
    unregister_scenario,
)
from repro.scenarios.datasets import DatasetUnavailableError


def _nonreal_names():
    return [n for n in available_scenarios()
            if "real" not in get_scenario(n).tags]


class TestRegistry:
    def test_builtins_registered(self):
        names = available_scenarios()
        assert len(names) >= 10
        for expected in ("clustered-baseline", "concentric-drift",
                         "adversarial-insertion", "duplicate-flood",
                         "outlier-burst", "sliding-churn", "high-dim",
                         "integer-grid", "real-iris"):
            assert expected in names

    def test_round_trip(self):
        sc = get_scenario("outlier-burst")

        register_scenario("_test-sc", sc.factory, tags=("testing",),
                          description="round trip")
        try:
            got = get_scenario("_test-sc")
            assert got.name == "_test-sc"
            assert got.tags == ("testing",)
            assert got.description == "round trip"
            assert "_test-sc" in available_scenarios()
            assert "_test-sc" in available_scenarios(tag="testing")
            with pytest.raises(DuplicateScenarioError):
                register_scenario("_test-sc", sc.factory)
            register_scenario("_test-sc", sc.factory, overwrite=True)
        finally:
            unregister_scenario("_test-sc")
        assert "_test-sc" not in available_scenarios()

    def test_unknown_raises_with_listing(self):
        with pytest.raises(UnknownScenarioError) as ei:
            get_scenario("no-such-scenario")
        assert "no-such-scenario" in str(ei.value)
        assert "outlier-burst" in str(ei.value)
        with pytest.raises(UnknownScenarioError):
            unregister_scenario("no-such-scenario")

    def test_tag_filter(self):
        assert len(available_scenarios(tag="drift")) >= 2
        assert len(available_scenarios(tag="adversarial")) >= 2
        assert available_scenarios(tag="no-such-tag") == []

    def test_table_sorted_and_described(self):
        table = scenario_table()
        assert [sc.name for sc in table] == available_scenarios()
        for sc in table:
            assert sc.description, sc.name
            assert sc.tags, sc.name


class TestBuiltinInstances:
    @pytest.mark.parametrize("name", [
        n for n in ("clustered-baseline", "concentric-drift",
                    "drifting-clusters", "adversarial-insertion",
                    "adversarial-sorted", "duplicate-flood", "outlier-burst",
                    "sliding-churn", "high-dim", "integer-grid")
    ])
    def test_deterministic_and_well_formed(self, name):
        sc = get_scenario(name)
        a = sc.make(quick=True, seed=3)
        b = sc.make(quick=True, seed=3)
        c = sc.make(quick=True, seed=4)
        assert isinstance(a, ScenarioInstance)
        assert np.array_equal(a.points, b.points), "same seed must reproduce"
        assert not np.array_equal(a.points, c.points), "seed must matter"
        # batches partition the stream, in order
        assert np.array_equal(np.concatenate(a.batches), a.points)
        assert a.dim == a.spec.dim
        assert a.spec.z < a.n
        assert a.reference() > 0
        assert a.reference() == a.reference()  # cached, stable

    def test_outlier_burst_is_at_the_tail(self):
        inst = get_scenario("outlier-burst").make(quick=True, seed=0)
        z = inst.spec.z
        tail_norms = np.linalg.norm(inst.points[-z:], axis=1)
        head_norms = np.linalg.norm(inst.points[:-z], axis=1)
        assert tail_norms.min() > head_norms.max()

    def test_duplicate_flood_is_duplicate_heavy(self):
        inst = get_scenario("duplicate-flood").make(quick=True, seed=0)
        distinct = len(np.unique(inst.points, axis=0))
        assert distinct <= 3 * inst.spec.k + inst.spec.z
        assert inst.n >= 10 * distinct

    def test_adversarial_insertion_outliers_first(self):
        inst = get_scenario("adversarial-insertion").make(quick=True, seed=0)
        z = inst.spec.z
        # the Lemma 12 outliers sit on the negative first axis, before any
        # cluster point arrives
        assert (inst.points[:z, 0] < 0).all()
        assert (inst.points[z:, 0] >= 0).all()

    def test_integer_grid_enables_dynamic(self):
        inst = get_scenario("integer-grid").make(quick=True, seed=0)
        assert inst.delta_universe is not None
        assert np.array_equal(inst.points, np.round(inst.points))
        assert inst.points.min() >= 1
        assert inst.points.max() <= inst.delta_universe
        assert inst.compatible(get_backend("dynamic"))

    def test_float_streams_skip_dynamic(self):
        inst = get_scenario("clustered-baseline").make(quick=True, seed=0)
        assert not inst.compatible(get_backend("dynamic"))
        assert inst.compatible(get_backend("insertion-only"))
        assert inst.compatible(get_backend("mpc-two-round"))

    def test_sliding_window_options_derived(self):
        inst = get_scenario("sliding-churn").make(quick=True, seed=0)
        assert inst.window is not None and inst.window < inst.n
        opts = inst.session_options(get_backend("sliding-window"))
        assert opts["window"] == inst.window
        assert 0 < opts["r_min"] < opts["r_max"]
        # non-window scenarios default to full coverage
        base = get_scenario("clustered-baseline").make(quick=True, seed=0)
        assert base.session_options(get_backend("sliding-window"))["window"] \
            == base.n

    def test_quick_is_smaller_than_full(self):
        sc = get_scenario("clustered-baseline")
        assert sc.make(quick=True, seed=0).n < sc.make(quick=False, seed=0).n


class TestDatasets:
    def test_offline_without_files_is_unavailable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OFFLINE", "1")
        with pytest.raises(DatasetUnavailableError):
            load_dataset("iris", data_dir=str(tmp_path))

    def test_unknown_dataset(self, tmp_path):
        with pytest.raises(DatasetUnavailableError):
            load_dataset("no-such-dataset", data_dir=str(tmp_path))

    def test_user_dropped_csv_is_parsed_and_cached(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OFFLINE", "1")
        rows = ["5.1,3.5,1.4,0.2,Iris-setosa",
                "4.9,3.0,1.4,0.2,Iris-setosa",
                "6.3,3.3,6.0,2.5,Iris-virginica",
                "",  # blank + junk lines are skipped
                "sepal,width,petal,length,label"]
        (tmp_path / "iris.csv").write_text("\n".join(rows))
        pts = load_dataset("iris", data_dir=str(tmp_path))
        assert pts.shape == (3, 4)
        assert pts[0, 0] == 5.1
        # cached as npy + provenance sidecar; reload hits the cache
        assert (tmp_path / "iris.npy").exists()
        assert (tmp_path / "iris.json").exists()
        (tmp_path / "iris.csv").unlink()
        again = load_dataset("iris", data_dir=str(tmp_path))
        assert np.array_equal(pts, again)

    def test_real_scenario_reports_unavailable(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OFFLINE", "1")
        monkeypatch.setenv("REPRO_DATA_DIR", str(tmp_path))
        from repro.scenarios import run_cell

        cell = run_cell("real-iris", "offline", quick=True)
        assert cell.status == "unavailable"
        assert cell.radius is None
