"""Tests for Algorithm 2 (deterministic 2-round MPC)."""

import numpy as np
import pytest

from repro.core import WeightedPointSet, charikar_greedy, verify_sandwich
from repro.mpc import (
    SimulatedMPC,
    compute_rhat,
    outlier_vector_length,
    partition_adversarial_outliers,
    partition_contiguous,
    two_round_coreset,
)
from repro.workloads import clustered_with_outliers


@pytest.fixture
def adversarial_setup(rng):
    wl = clustered_with_outliers(400, k=3, z=10, d=2, rng=rng)
    P = wl.point_set()
    parts = partition_adversarial_outliers(P, wl.outlier_mask, 5, rng)
    return P, parts, wl


class TestOutlierVectorLength:
    @pytest.mark.parametrize("z,expected", [(0, 1), (1, 2), (2, 3), (3, 3), (7, 4), (8, 5)])
    def test_values(self, z, expected):
        assert outlier_vector_length(z) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            outlier_vector_length(-1)

    def test_budget_covers_z(self):
        # the largest budget 2^(len-1) - 1 must be >= z
        for z in range(0, 200):
            j_max = outlier_vector_length(z) - 1
            assert (1 << j_max) - 1 >= z


class TestComputeRhat:
    def test_single_machine(self):
        v = np.array([5.0, 3.0, 1.0])
        rhat, jh = compute_rhat([v], z=3)
        # r=1 needs j=2, i.e. budget 2^2-1 = 3 <= 2z = 6: feasible, and it
        # is the smallest candidate, so rhat = 1
        assert rhat == 1.0 and jh == [2]

    def test_budget_constraint_forces_larger_r(self):
        # machine needs j=2 (3 outliers) unless r >= 9
        v = np.array([9.0, 6.0, 3.0])
        rhat, jh = compute_rhat([v], z=1)
        # sum(2^j - 1) <= 2 means j <= 1; smallest r with j<=1 is 6
        assert rhat == 6.0 and jh == [1]

    def test_multi_machine_budgets_sum(self):
        vs = [np.array([10.0, 1.0]), np.array([10.0, 1.0]), np.array([2.0, 1.0])]
        rhat, jh = compute_rhat(vs, z=1)
        total = sum((1 << j) - 1 for j in jh)
        assert total <= 2 * 1
        assert rhat <= 10.0

    def test_monotone_candidates(self):
        vs = [np.array([4.0, 2.0, 1.0]) for _ in range(3)]
        rhat, jh = compute_rhat(vs, z=100)
        assert rhat == 1.0  # relaxed budget allows the smallest candidate


class TestTwoRound:
    def test_budgets_sum_at_most_2z(self, adversarial_setup):
        P, parts, wl = adversarial_setup
        res = two_round_coreset(parts, 3, 10, 0.5)
        assert sum(res.extras["outlier_budgets"]) <= 2 * 10

    def test_rounds_is_two(self, adversarial_setup):
        P, parts, _ = adversarial_setup
        res = two_round_coreset(parts, 3, 10, 0.5)
        assert res.stats.rounds == 2

    def test_coreset_is_valid(self, adversarial_setup):
        P, parts, _ = adversarial_setup
        res = two_round_coreset(parts, 3, 10, 0.5)
        chk = verify_sandwich(P, res.coreset, 3, 10, res.eps_guarantee)
        assert chk.ok, chk.details

    def test_weight_preserved(self, adversarial_setup):
        P, parts, _ = adversarial_setup
        res = two_round_coreset(parts, 3, 10, 0.5)
        assert res.coreset.total_weight == P.total_weight

    def test_rhat_certificate(self, adversarial_setup):
        """Lemma 8: rhat <= 3 opt (checked against the greedy certificate
        interval on the full data)."""
        P, parts, _ = adversarial_setup
        res = two_round_coreset(parts, 3, 10, 0.5)
        r_full = charikar_greedy(P, 3, 10).radius  # in [opt, 3 opt]
        assert res.extras["rhat"] <= 3.0 * r_full + 1e-9

    def test_eps_guarantee_value(self, adversarial_setup):
        P, parts, _ = adversarial_setup
        eps = 0.4
        res = two_round_coreset(parts, 3, 10, eps)
        assert res.eps_guarantee == pytest.approx(eps + eps + eps * eps)

    def test_no_final_compress(self, adversarial_setup):
        P, parts, _ = adversarial_setup
        a = two_round_coreset(parts, 3, 10, 0.5, final_compress=True)
        b = two_round_coreset(parts, 3, 10, 0.5, final_compress=False)
        assert len(b.coreset) >= len(a.coreset)
        assert b.eps_guarantee == 0.5
        assert b.coreset.total_weight == P.total_weight

    def test_naive_ablation_single_round(self, adversarial_setup):
        P, parts, _ = adversarial_setup
        res = two_round_coreset(parts, 3, 10, 0.5, outlier_guessing=False)
        assert res.stats.rounds == 1
        assert sum(res.extras["outlier_budgets"]) == 10 * len(parts)
        assert verify_sandwich(P, res.coreset, 3, 10, res.eps_guarantee).ok

    def test_zero_outliers(self, rng):
        wl = clustered_with_outliers(200, k=2, z=0, d=2, rng=rng)
        P = wl.point_set()
        parts = partition_contiguous(P, 4)
        res = two_round_coreset(parts, 2, 0, 0.5)
        assert sum(res.extras["outlier_budgets"]) == 0
        assert verify_sandwich(P, res.coreset, 2, 0, res.eps_guarantee).ok

    def test_single_machine(self, small_set):
        res = two_round_coreset([small_set], 2, 4, 0.5)
        assert verify_sandwich(small_set, res.coreset, 2, 4, res.eps_guarantee).ok

    def test_cluster_size_mismatch_rejected(self, small_set):
        parts = partition_contiguous(small_set, 3)
        with pytest.raises(ValueError):
            two_round_coreset(parts, 2, 4, 0.5, cluster=SimulatedMPC(2))

    def test_empty_machine_handled(self, small_set):
        parts = partition_contiguous(small_set, 3) + [WeightedPointSet.empty(2)]
        res = two_round_coreset(parts, 2, 4, 0.5)
        assert res.coreset.total_weight == small_set.total_weight

    def test_deterministic(self, adversarial_setup):
        P, parts, _ = adversarial_setup
        a = two_round_coreset(parts, 3, 10, 0.5)
        b = two_round_coreset(parts, 3, 10, 0.5)
        assert np.array_equal(a.coreset.points, b.coreset.points)
        assert np.array_equal(a.coreset.weights, b.coreset.weights)
