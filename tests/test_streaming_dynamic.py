"""Tests for Algorithm 5 (fully dynamic streaming coreset)."""

import numpy as np
import pytest

from repro.core import WeightedPointSet, charikar_greedy
from repro.streaming import DynamicCoreset, DynamicKCenter
from repro.workloads import integer_workload


@pytest.fixture
def dyn(rng):
    return DynamicCoreset(2, 3, 1.0, delta_universe=64, dim=2,
                          rng=np.random.default_rng(7))


class TestDynamicCoreset:
    def test_insert_only_recovers_weight(self, dyn, rng):
        pts = rng.integers(1, 65, size=(40, 2))
        for p in pts:
            dyn.insert(p)
        cs = dyn.coreset()
        assert cs.total_weight == 40

    def test_deletions_cancel(self, dyn, rng):
        pts = rng.integers(1, 65, size=(40, 2))
        for p in pts:
            dyn.insert(p)
        for p in pts:
            dyn.delete(p)
        cs = dyn.coreset()
        assert len(cs) == 0 and cs.total_weight == 0

    def test_partial_deletion(self, dyn, rng):
        pts = rng.integers(1, 65, size=(60, 2))
        for p in pts:
            dyn.insert(p)
        for p in pts[:25]:
            dyn.delete(p)
        assert dyn.coreset().total_weight == 35

    def test_relaxed_coreset_near_points(self, dyn, rng):
        """Cell-centre representatives are within the selected cell size of
        live points."""
        pts = rng.integers(1, 65, size=(30, 2))
        for p in pts:
            dyn.insert(p)
        lvl = dyn.selected_level()
        side = dyn.hier.level(lvl).side
        cs = dyn.coreset()
        from scipy.spatial.distance import cdist
        d = cdist(cs.points, pts.astype(float)).min(axis=1)
        assert d.max() <= side * np.sqrt(2) / 2 + 1e-9

    def test_finest_grid_when_sparse(self, dyn):
        for x in [(1, 1), (10, 10), (30, 30)]:
            dyn.insert(x)
        assert dyn.selected_level() == 0  # 3 cells <= s at level 0

    def test_coarser_grid_when_dense(self, rng):
        dc = DynamicCoreset(1, 0, 1.0, delta_universe=256, dim=2,
                            rng=np.random.default_rng(3), s_override=8)
        pts = rng.integers(1, 257, size=(120, 2))
        for p in pts:
            dc.insert(p)
        assert dc.selected_level() > 0

    def test_radius_quality_end_to_end(self, rng):
        wl = integer_workload(120, 2, 4, 128, 2, rng=rng)
        dc = DynamicCoreset(2, 4, 1.0, 128, 2, rng=np.random.default_rng(5))
        for p in wl.points:
            dc.insert(p)
        P = WeightedPointSet.from_points(wl.points.astype(float))
        r_full = charikar_greedy(P, 2, 4).radius
        r_core = charikar_greedy(dc.coreset(), 2, 4).radius
        # relaxed (eps,k,z)-coreset: radii within a small constant factor
        assert r_core <= 3.5 * r_full + 1e-9
        assert r_full <= 3.5 * r_core + dc.hier.level(dc.selected_level()).side * 2

    def test_no_f0_ablation_matches(self, rng):
        pts = rng.integers(1, 65, size=(30, 2))
        a = DynamicCoreset(2, 3, 1.0, 64, 2, rng=np.random.default_rng(1), use_f0=True)
        b = DynamicCoreset(2, 3, 1.0, 64, 2, rng=np.random.default_rng(1), use_f0=False)
        for p in pts:
            a.insert(p)
            b.insert(p)
        ca, cb = a.coreset(), b.coreset()
        assert ca.total_weight == cb.total_weight

    def test_storage_grows_with_delta(self):
        small = DynamicCoreset(2, 3, 1.0, 16, 1, rng=np.random.default_rng(1))
        big = DynamicCoreset(2, 3, 1.0, 4096, 1, rng=np.random.default_rng(1))
        assert big.storage_cells > small.storage_cells
        # polylog growth: far less than the universe ratio
        assert big.storage_cells / small.storage_cells < 4096 / 16

    def test_eps_validation(self):
        with pytest.raises(ValueError):
            DynamicCoreset(1, 0, 0.0, 16, 1)

    def test_updates_counted(self, dyn):
        dyn.insert((1, 1))
        dyn.delete((1, 1))
        assert dyn.updates_seen == 2


class TestDynamicKCenter:
    def test_radius_zero_cases(self):
        algo = DynamicKCenter(2, 3, 1.0, 64, 2, rng=np.random.default_rng(2))
        assert algo.radius() == 0.0  # empty
        algo.insert((5, 5))
        assert algo.radius() == 0.0  # weight <= z

    def test_radius_tracks_live_set(self, rng):
        algo = DynamicKCenter(2, 2, 1.0, 128, 2, rng=np.random.default_rng(2))
        wl = integer_workload(80, 2, 2, 128, 2, rng=rng)
        for p in wl.points:
            algo.insert(p)
        r1 = algo.radius()
        assert r1 > 0
        # delete everything but ~k+z points: radius collapses
        for p in wl.points[: len(wl.points) - 4]:
            algo.delete(p)
        r2 = algo.radius()
        assert r2 <= r1 + 1e-9

    def test_centers_shape(self, rng):
        algo = DynamicKCenter(2, 2, 1.0, 64, 2, rng=np.random.default_rng(2))
        wl = integer_workload(40, 2, 2, 64, 2, rng=rng)
        for p in wl.points:
            algo.insert(p)
        c = algo.centers()
        assert c.shape[1] == 2 and 1 <= len(c) <= 2
