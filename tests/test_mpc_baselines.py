"""Tests for the Ceccarello et al. MPC baselines."""

import numpy as np

from repro.core import WeightedPointSet, nearest_center_distances, opt_bounds, verify_sandwich
from repro.mpc import (
    ceccarello_one_round_deterministic,
    ceccarello_one_round_randomized,
    cpp_local_coreset,
    partition_adversarial_outliers,
    partition_random,
    two_round_coreset,
)
from repro.workloads import clustered_with_outliers


class TestLocalCoreset:
    def test_weight_preserved(self, small_set):
        local = cpp_local_coreset(small_set, 2, 4, 0.5)
        assert local.total_weight == small_set.total_weight

    def test_covering_distance(self, small_set):
        """Every point within eps * 2 * opt_ub of a representative."""
        eps = 0.5
        local = cpp_local_coreset(small_set, 2, 4, eps)
        _, hi = opt_bounds(small_set, 2, 4)
        d = nearest_center_distances(small_set, local.points)
        assert d.max() <= 2 * eps * hi + 1e-9

    def test_empty(self):
        P = WeightedPointSet.empty(2)
        assert len(cpp_local_coreset(P, 2, 4, 0.5)) == 0

    def test_coincident_points(self):
        P = WeightedPointSet.from_points(np.zeros((10, 2)))
        local = cpp_local_coreset(P, 2, 1, 0.5)
        assert len(local) == 1 and local.total_weight == 10


class TestBaselineRuns:
    def test_deterministic_valid_coreset(self, small_planar, rng):
        P = small_planar.point_set()
        parts = partition_adversarial_outliers(P, small_planar.outlier_mask, 4, rng)
        res = ceccarello_one_round_deterministic(parts, 2, 4, 0.5)
        assert res.stats.rounds == 1
        assert res.coreset.total_weight == P.total_weight
        assert verify_sandwich(P, res.coreset, 2, 4, 2 * 0.5).ok

    def test_randomized_valid_coreset(self, small_planar, rng):
        P = small_planar.point_set()
        parts = partition_random(P, 4, rng)
        res = ceccarello_one_round_randomized(parts, 2, 4, 0.5)
        assert res.coreset.total_weight == P.total_weight
        assert verify_sandwich(P, res.coreset, 2, 4, 2 * 0.5).ok

    def test_z_shape_vs_ours(self, rng):
        """The headline comparison: under adversarial distribution with
        large z, the baseline's shipped union carries Theta(m z) items that
        Algorithm 2 avoids."""
        z, m = 120, 6
        wl = clustered_with_outliers(1200, k=3, z=z, d=2, rng=rng)
        P = wl.point_set()
        parts = partition_adversarial_outliers(P, wl.outlier_mask, m, rng)
        base = ceccarello_one_round_deterministic(parts, 3, z, 0.5)
        ours = two_round_coreset(parts, 3, z, 0.5)
        assert len(base.coreset) > 2 * len(ours.coreset)
